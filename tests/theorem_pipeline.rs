//! Cross-crate integration: the paper's full theorem pipeline on randomly
//! generated systems — Theorem 10 (serial replicated → serial
//! non-replicated), Lemmas 7–8 (monitored), Theorem 11 (concurrent 2PL →
//! logical serializability), and the §4 reconfiguration analogue.

use proptest::prelude::*;
use qcnt::cc::{check_theorem11, CcRunOptions};
use qcnt::reconfig::{check_rc_random, RcItemSpec, RcRunOptions, RcSystemSpec};
use qcnt::replication::{
    check_random, random_spec, GenParams, RunOptions, UserSpec, UserStep,
};
use qcnt::txn::Value;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Theorem 10 over arbitrary generated system shapes and schedules.
    #[test]
    fn theorem10_on_generated_systems(gen_seed in 0u64..10_000, run_seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(gen_seed);
        let spec = random_spec(&mut rng, &GenParams::default());
        let report = check_random(
            &spec,
            RunOptions {
                seed: run_seed,
                max_steps: 12_000,
                ..RunOptions::default()
            },
        );
        prop_assert!(report.is_ok(), "refuted: {:?}", report.err().map(|e| e.to_string()));
    }

    /// Theorem 10 under extreme abort pressure.
    #[test]
    fn theorem10_under_abort_pressure(gen_seed in 0u64..10_000, weight in 20u32..100) {
        let mut rng = ChaCha8Rng::seed_from_u64(gen_seed);
        let spec = random_spec(&mut rng, &GenParams::default());
        let report = check_random(
            &spec,
            RunOptions {
                seed: gen_seed,
                abort_weight: weight,
                max_steps: 12_000,
                ..RunOptions::default()
            },
        );
        prop_assert!(report.is_ok(), "refuted: {:?}", report.err().map(|e| e.to_string()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// Theorem 11 on generated concurrent systems (bounded shapes so the
    /// concurrent runs quiesce quickly).
    #[test]
    fn theorem11_on_generated_systems(gen_seed in 0u64..10_000, run_seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(gen_seed);
        let spec = random_spec(
            &mut rng,
            &GenParams {
                items: (1, 2),
                replicas: (1, 3),
                users: (1, 3),
                ops_per_user: (1, 3),
                max_depth: 1,
                sub_probability: 0.2,
                write_probability: 0.5,
                with_plain: false,
            },
        );
        let report = check_theorem11(
            &spec,
            CcRunOptions {
                seed: run_seed,
                abort_weight: 1,
                max_steps: 150_000,
                ..CcRunOptions::default()
            },
        );
        prop_assert!(report.is_ok(), "refuted: {:?}", report.err().map(|e| e.to_string()));
    }
}

#[test]
fn reconfiguration_pipeline_over_seeds() {
    let u: Vec<usize> = (0..3).collect();
    let spec = RcSystemSpec {
        items: vec![RcItemSpec {
            name: "x".into(),
            init: Value::Int(0),
            replicas: 3,
            initial_config: qcnt::quorum::generators::majority(&u),
            alt_configs: vec![qcnt::quorum::generators::rowa(&u)],
        }],
        users: vec![
            UserSpec::new(vec![UserStep::Write(0, Value::Int(1)), UserStep::Read(0)]),
            UserSpec::new(vec![UserStep::Read(0)]),
        ],
        max_reconfigs_per_user: 2,
    };
    let mut reconfigs = 0;
    for seed in 0..10 {
        let r = check_rc_random(
            &spec,
            RcRunOptions {
                seed,
                ..RcRunOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        reconfigs += r.reconfigs_committed;
    }
    assert!(reconfigs > 0, "spies never reconfigured across ten seeds");
}

#[test]
fn deep_nesting_pipeline() {
    // Four levels of user nesting over one item, checked through both the
    // serial and the concurrent pipelines.
    let deep = UserSpec::new(vec![UserStep::Sub(UserSpec::new(vec![
        UserStep::Write(0, Value::Int(1)),
        UserStep::Sub(UserSpec::new(vec![
            UserStep::Read(0),
            UserStep::Sub(UserSpec::new(vec![UserStep::Write(0, Value::Int(2))])),
        ])),
        UserStep::Read(0),
    ]))]);
    let spec = qcnt::replication::SystemSpec {
        items: vec![qcnt::replication::ItemSpec {
            name: "x".into(),
            init: Value::Int(0),
            replicas: 3,
            config: qcnt::replication::ConfigChoice::Majority,
        }],
        plain: vec![],
        users: vec![deep, UserSpec::new(vec![UserStep::Read(0)])],
        strategy: Default::default(),
    };
    for seed in 0..6 {
        check_random(
            &spec,
            RunOptions {
                seed,
                ..RunOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("theorem 10, seed {seed}: {e}"));
        check_theorem11(
            &spec,
            CcRunOptions {
                seed,
                ..CcRunOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("theorem 11, seed {seed}: {e}"));
    }
}

#[test]
fn single_replica_degenerates_to_single_copy() {
    // With one replica and ROWA, system B is "trivially replicated": every
    // logical op touches the single DM; the projection must still replay.
    let spec = qcnt::replication::SystemSpec {
        items: vec![qcnt::replication::ItemSpec {
            name: "x".into(),
            init: Value::Int(7),
            replicas: 1,
            config: qcnt::replication::ConfigChoice::Rowa,
        }],
        plain: vec![],
        users: vec![UserSpec::new(vec![
            UserStep::Read(0),
            UserStep::Write(0, Value::Int(8)),
            UserStep::Read(0),
        ])],
        strategy: Default::default(),
    };
    for seed in 0..5 {
        let r = check_random(
            &spec,
            RunOptions {
                seed,
                ..RunOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(r.b_len >= r.a_len);
    }
}
