//! Property-based tests for the formal model: transaction-name laws,
//! schedule projection laws, and well-formedness checking.

use proptest::prelude::*;
use qcnt::ioa::Schedule;
use qcnt::txn::{wf, Tid, TxnOp, Value};

fn tid_strategy() -> impl Strategy<Value = Tid> {
    prop::collection::vec(0u32..4, 0..5).prop_map(|p| Tid::from_path(&p))
}

proptest! {
    /// Ancestry is a partial order refining the prefix relation, with the
    /// root below everything and every name its own ancestor.
    #[test]
    fn ancestry_laws(a in tid_strategy(), b in tid_strategy(), c in tid_strategy()) {
        prop_assert!(Tid::root().is_ancestor_of(&a));
        prop_assert!(a.is_ancestor_of(&a));
        // Antisymmetry.
        if a.is_ancestor_of(&b) && b.is_ancestor_of(&a) {
            prop_assert_eq!(&a, &b);
        }
        // Transitivity.
        if a.is_ancestor_of(&b) && b.is_ancestor_of(&c) {
            prop_assert!(a.is_ancestor_of(&c));
        }
    }

    /// The LCA is a common ancestor and is maximal among common ancestors.
    #[test]
    fn lca_laws(a in tid_strategy(), b in tid_strategy()) {
        let l = a.lca(&b);
        prop_assert!(l.is_ancestor_of(&a));
        prop_assert!(l.is_ancestor_of(&b));
        // Any deeper common ancestor would be l itself.
        if a.is_ancestor_of(&b) {
            prop_assert_eq!(&l, &a);
        }
        prop_assert_eq!(a.lca(&b), b.lca(&a));
    }

    /// parent/child round trips; siblings share parents and differ.
    #[test]
    fn parent_child_laws(a in tid_strategy(), i in 0u32..8, j in 0u32..8) {
        let ci = a.child(i);
        let parent = ci.parent();
        prop_assert_eq!(parent.as_ref(), Some(&a));
        prop_assert!(ci.is_child_of(&a));
        let cj = a.child(j);
        if i != j {
            prop_assert!(ci.is_sibling_of(&cj));
        } else {
            prop_assert!(!ci.is_sibling_of(&cj));
        }
    }

    /// Projection is idempotent, monotone in length, and order-preserving;
    /// projecting with complementary predicates partitions the schedule.
    #[test]
    fn projection_laws(ops in prop::collection::vec(0u32..10, 0..40), modulus in 1u32..5) {
        let sched: Schedule<u32> = ops.clone().into();
        let keep = |x: &u32| x.is_multiple_of(modulus);
        let p = sched.project(keep);
        prop_assert!(p.len() <= sched.len());
        prop_assert_eq!(p.project(keep), p.clone());
        let q = sched.project(|x| !keep(x));
        prop_assert_eq!(p.len() + q.len(), sched.len());
        // Order preservation: p is a subsequence of sched.
        let mut it = sched.iter();
        for x in p.iter() {
            prop_assert!(it.any(|y| y == x));
        }
    }

    /// The incremental transaction well-formedness tracker agrees with the
    /// whole-sequence checker on arbitrary op soups.
    #[test]
    fn wf_incremental_matches_batch(choices in prop::collection::vec((0u8..5, 0u32..3), 0..25)) {
        let me = Tid::root().child(1);
        let ops: Vec<TxnOp> = choices
            .into_iter()
            .map(|(kind, idx)| {
                let child = me.child(idx);
                match kind {
                    0 => TxnOp::Create { tid: me.clone(), access: None, param: None },
                    1 => TxnOp::request_create(child),
                    2 => TxnOp::Commit { tid: child, value: Value::Nil },
                    3 => TxnOp::Abort { tid: child },
                    _ => TxnOp::RequestCommit { tid: me.clone(), value: Value::Nil },
                }
            })
            .collect();
        let batch = wf::check_transaction_wf(&me, &ops);
        let mut tracker = wf::TxnWfTracker::new();
        let mut incremental = Ok(());
        for op in &ops {
            if let Err(e) = tracker.observe(&me, op) {
                incremental = Err(e);
                break;
            }
        }
        prop_assert_eq!(batch.is_ok(), incremental.is_ok());
        if let (Err(a), Err(b)) = (batch, incremental) {
            prop_assert_eq!(a, b);
        }
    }

    /// Well-formed prefixes stay well-formed (well-formedness is
    /// prefix-closed, as the recursive definition requires).
    #[test]
    fn wf_prefix_closed(n_children in 1u32..5) {
        let me = Tid::root().child(0);
        let mut ops = vec![TxnOp::Create { tid: me.clone(), access: None, param: None }];
        for i in 0..n_children {
            ops.push(TxnOp::request_create(me.child(i)));
            ops.push(TxnOp::Commit { tid: me.child(i), value: Value::Int(i64::from(i)) });
        }
        ops.push(TxnOp::RequestCommit { tid: me.clone(), value: Value::Nil });
        prop_assert!(wf::check_transaction_wf(&me, &ops).is_ok());
        for k in 0..=ops.len() {
            prop_assert!(wf::check_transaction_wf(&me, &ops[..k]).is_ok());
        }
    }

    /// Value ordering is total and stable under clone (sanity for use as
    /// BTreeMap keys in schedulers).
    #[test]
    fn value_total_order(a in -5i64..5, b in -5i64..5) {
        let (va, vb) = (Value::Int(a), Value::Int(b));
        prop_assert_eq!(va.cmp(&vb), a.cmp(&b));
        prop_assert_eq!(va.clone(), va);
    }
}
