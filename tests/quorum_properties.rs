//! Property-based tests for quorum systems: legality, spec/configuration
//! agreement, quorum-finding soundness, and availability monotonicity.

use std::collections::BTreeSet;

use proptest::prelude::*;
use qcnt::quorum::{
    analysis, generators, to_configuration, Grid, Majority, QuorumSpec, Rowa, TreeQuorum,
    Weighted,
};

fn subset_strategy(n: usize) -> impl Strategy<Value = BTreeSet<usize>> {
    prop::collection::btree_set(0..n, 0..=n)
}

proptest! {
    /// Every generator yields a legal, usable configuration.
    #[test]
    fn generators_always_legal(n in 1usize..8) {
        let universe: Vec<u32> = (0..n as u32).collect();
        prop_assert!(generators::rowa(&universe).is_usable());
        prop_assert!(generators::raow(&universe).is_usable());
        prop_assert!(generators::majority(&universe).is_usable());
    }

    /// Weighted voting with any votes and legal thresholds is legal.
    #[test]
    fn weighted_always_legal(votes in prop::collection::vec(1u32..4, 1..6)) {
        let total: u32 = votes.iter().sum();
        let read = total / 2 + 1;
        let write = total / 2 + 1;
        let named: Vec<(u32, u32)> = votes.iter().enumerate().map(|(i, &v)| (i as u32, v)).collect();
        let cfg = generators::weighted(&named, read, write);
        prop_assert!(cfg.is_usable());
    }

    /// The predicate specs agree with their enumerated configurations on
    /// arbitrary subsets.
    #[test]
    fn spec_matches_enumeration(set in subset_strategy(6)) {
        let specs: Vec<Box<dyn QuorumSpec>> = vec![
            Box::new(Rowa::new(6)),
            Box::new(Majority::new(6)),
            Box::new(Grid::new(2, 3)),
            Box::new(Weighted::new(vec![2, 1, 1, 1, 1, 1], 4, 4)),
        ];
        for q in &specs {
            let cfg = to_configuration(q.as_ref());
            prop_assert_eq!(
                q.is_read_quorum(&set),
                cfg.covers_read_quorum(&set),
                "read disagreement for {} on {:?}", q.label(), set
            );
            prop_assert_eq!(
                q.is_write_quorum(&set),
                cfg.covers_write_quorum(&set),
                "write disagreement for {} on {:?}", q.label(), set
            );
        }
    }

    /// Found quorums are quorums, are minimal, and lie within availability.
    #[test]
    fn find_quorum_sound(avail in subset_strategy(9)) {
        let specs: Vec<Box<dyn QuorumSpec>> = vec![
            Box::new(Rowa::new(9)),
            Box::new(Majority::new(9)),
            Box::new(Grid::new(3, 3)),
            Box::new(TreeQuorum::new(9)),
        ];
        for q in &specs {
            match q.find_read_quorum(&avail) {
                Some(found) => {
                    prop_assert!(found.is_subset(&avail));
                    prop_assert!(q.is_read_quorum(&found));
                    // Minimality: removing any single element breaks it.
                    for x in &found {
                        let mut smaller = found.clone();
                        smaller.remove(x);
                        prop_assert!(!q.is_read_quorum(&smaller));
                    }
                }
                None => prop_assert!(!q.is_read_quorum(&avail)),
            }
        }
    }

    /// Read/write quorum intersection: any read quorum meets any write
    /// quorum found from any availability (the legality property, tested
    /// through the predicate interface).
    #[test]
    fn read_meets_write(a in subset_strategy(9), b in subset_strategy(9)) {
        let specs: Vec<Box<dyn QuorumSpec>> = vec![
            Box::new(Majority::new(9)),
            Box::new(Grid::new(3, 3)),
            Box::new(TreeQuorum::new(9)),
            Box::new(Rowa::new(9)),
        ];
        for q in &specs {
            if let (Some(r), Some(w)) = (q.find_read_quorum(&a), q.find_write_quorum(&b)) {
                prop_assert!(
                    r.intersection(&w).next().is_some(),
                    "{}: read {:?} misses write {:?}", q.label(), r, w
                );
            }
        }
    }

    /// Availability is monotone in the per-site up-probability.
    #[test]
    fn availability_monotone(p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let q = Majority::new(5);
        let a_lo = analysis::exact_read_availability(&q, lo);
        let a_hi = analysis::exact_read_availability(&q, hi);
        prop_assert!(a_lo <= a_hi + 1e-12);
    }

    /// Read availability dominates write availability for ROWA; they are
    /// equal for symmetric majority.
    #[test]
    fn rowa_read_dominates_write(p in 0.0f64..=1.0) {
        let rowa = Rowa::new(5);
        prop_assert!(
            analysis::exact_read_availability(&rowa, p)
                >= analysis::exact_write_availability(&rowa, p) - 1e-12
        );
        let maj = Majority::new(5);
        let r = analysis::exact_read_availability(&maj, p);
        let w = analysis::exact_write_availability(&maj, p);
        prop_assert!((r - w).abs() < 1e-12);
    }

    /// Configuration `map` preserves legality and quorum structure.
    #[test]
    fn map_preserves_legality(n in 1usize..7, offset in 0u32..100) {
        let universe: Vec<u32> = (0..n as u32).collect();
        let cfg = generators::majority(&universe);
        let mapped = cfg.map(|x| x + offset);
        prop_assert!(mapped.is_usable());
        prop_assert_eq!(mapped.read_quorums().len(), cfg.read_quorums().len());
    }
}
