//! Properties of the return-order serialization over *real* concurrent
//! executions (not hand-built schedules): projection preservation, length
//! accounting, and final-state agreement between the concurrent run and
//! its serial witness.

use proptest::prelude::*;
use qcnt::cc::{
    final_dm_values, non_orphans, run_concurrent, serialize_return_order, CcRunOptions,
};
use qcnt::replication::{ops_of_transaction, random_spec, GenParams};
use qcnt::txn::TxnOp;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_params() -> GenParams {
    GenParams {
        items: (1, 2),
        replicas: (1, 3),
        users: (1, 3),
        ops_per_user: (1, 3),
        max_depth: 1,
        sub_probability: 0.2,
        write_probability: 0.5,
        with_plain: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        .. ProptestConfig::default()
    })]

    /// On quiescent runs: σ contains exactly γ minus the operations of
    /// aborted subtrees (every non-orphan op survives, every orphan op
    /// past its ABORT disappears), and σ|T = γ|T for every non-orphan.
    #[test]
    fn sigma_accounts_for_every_non_orphan_op(gen_seed in 0u64..10_000, run_seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(gen_seed);
        let spec = random_spec(&mut rng, &small_params());
        let (gamma, _, _, quiescent) = run_concurrent(
            &spec,
            CcRunOptions {
                seed: run_seed,
                max_steps: 150_000,
                ..CcRunOptions::default()
            },
        )
        .expect("run");
        prop_assume!(quiescent);
        let sigma = serialize_return_order(&gamma).expect("quiescent run serializes");
        prop_assert!(sigma.len() <= gamma.len());

        // Aborted tids in γ.
        let aborted: Vec<_> = gamma
            .iter()
            .filter_map(|op| match op {
                TxnOp::Abort { tid } => Some(tid.clone()),
                _ => None,
            })
            .collect();
        // σ length = γ length minus ops of strict members of aborted
        // subtrees (their ABORT itself stays; ops *of* the aborted
        // transaction and below go).
        let erased = gamma
            .iter()
            .filter(|op| {
                let tid = match op {
                    // Ops attributed to the transaction itself.
                    TxnOp::Create { tid, .. } | TxnOp::RequestCommit { tid, .. } => tid.clone(),
                    // Parent-attributed ops survive unless the *parent* is
                    // in an aborted subtree.
                    TxnOp::RequestCreate { tid, .. }
                    | TxnOp::Commit { tid, .. }
                    | TxnOp::Abort { tid } => match tid.parent() {
                        Some(p) => p,
                        None => return false,
                    },
                };
                aborted.iter().any(|a| a.is_ancestor_of(&tid))
            })
            .count();
        prop_assert_eq!(sigma.len() + erased, gamma.len());

        for tid in non_orphans(&gamma) {
            prop_assert_eq!(
                ops_of_transaction(&tid, &gamma),
                ops_of_transaction(&tid, &sigma),
                "projection differs at {}", tid
            );
        }
    }

    /// Replaying σ on a fresh system B leaves the data managers holding
    /// versioned values (domain discipline survives the whole pipeline).
    #[test]
    fn sigma_replay_leaves_versioned_dms(gen_seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(gen_seed);
        let spec = random_spec(&mut rng, &small_params());
        let (gamma, _, _, quiescent) = run_concurrent(
            &spec,
            CcRunOptions {
                seed: gen_seed,
                max_steps: 150_000,
                ..CcRunOptions::default()
            },
        )
        .expect("run");
        prop_assume!(quiescent);
        let sigma = serialize_return_order(&gamma).expect("serializes");
        let values = final_dm_values(&spec, &sigma);
        prop_assert!(!values.is_empty(), "σ must replay on B");
        for (name, v) in values {
            if name.starts_with("dm(") {
                prop_assert!(
                    v.as_versioned().is_some(),
                    "{} holds non-versioned {}", name, v
                );
            }
        }
    }
}
