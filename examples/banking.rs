//! A replicated banking ledger under *concurrent* nested transactions.
//!
//! Two accounts are each replicated across five data managers with majority
//! quorums. Deposit and audit transactions from several tellers interleave
//! under Moss two-phase locking at the copy level; the scheduler may abort
//! transactions (deadlock victims), and the example then verifies the
//! paper's Theorem 11 end-to-end: the concurrent run serializes against the
//! replicated serial system B, and its projection replays on the
//! single-copy system A.
//!
//! ```sh
//! cargo run --example banking
//! ```

use qcnt::cc::{check_theorem11, CcRunOptions};
use qcnt::replication::{ConfigChoice, ItemSpec, SystemSpec, UserSpec, UserStep};
use qcnt::txn::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Item 0 = alice's account, item 1 = bob's account.
    let account = |name: &str| ItemSpec {
        name: name.into(),
        init: Value::Int(100),
        replicas: 5,
        config: ConfigChoice::Majority,
    };

    // Teller 1 deposits to alice then audits; teller 2 moves value from
    // bob to alice as a nested transfer sub-transaction; teller 3 audits
    // both accounts.
    let spec = SystemSpec {
        items: vec![account("alice"), account("bob")],
        plain: vec![],
        users: vec![
            UserSpec::new(vec![
                UserStep::Write(0, Value::Int(150)),
                UserStep::Read(0),
            ]),
            UserSpec::new(vec![UserStep::Sub(UserSpec::new(vec![
                UserStep::Write(1, Value::Int(50)),
                UserStep::Write(0, Value::Int(200)),
            ]))]),
            UserSpec::new(vec![UserStep::Read(0), UserStep::Read(1)]),
        ],
        strategy: Default::default(),
    };

    println!("tellers: deposit, nested transfer, audit — interleaved under 2PL\n");
    let mut serialized = 0;
    for seed in 0..5 {
        let report = check_theorem11(
            &spec,
            CcRunOptions {
                seed,
                ..CcRunOptions::default()
            },
        )?;
        serialized += 1;
        println!(
            "seed {seed}: γ = {:>4} ops, σ = {:>4} ops, α = {:>3} ops | \
             {} committed tellers, {} aborts, {} lock conflicts",
            report.gamma_len,
            report.sigma_len,
            report.alpha_len,
            report.users_committed,
            report.aborts,
            report.lock_conflicts,
        );
    }
    println!(
        "\nTheorem 11 verified on {serialized}/{serialized} concurrent runs: every \
         interleaving was serializable at the logical-account level."
    );
    Ok(())
}
