//! A replicated banking ledger under *concurrent* nested transactions.
//!
//! Two accounts are each replicated across five data managers with majority
//! quorums. Deposit and audit transactions from several tellers interleave
//! under Moss two-phase locking at the copy level; the scheduler may abort
//! transactions (deadlock victims), and the example then verifies the
//! paper's Theorem 11 end-to-end: the concurrent run serializes against the
//! replicated serial system B, and its projection replays on the
//! single-copy system A.
//!
//! ```sh
//! cargo run --example banking
//! ```

use std::sync::Arc;

use qcnt::cc::{check_theorem11, CcRunOptions};
use qcnt::quorum::Majority;
use qcnt::replication::{ConfigChoice, ItemSpec, SystemSpec, UserSpec, UserStep};
use qcnt::sim::{check_commit_order_serializable, run_txn_committed, SimTime, TxnConfig};
use qcnt::txn::{BankingGen, Value, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Item 0 = alice's account, item 1 = bob's account.
    let account = |name: &str| ItemSpec {
        name: name.into(),
        init: Value::Int(100),
        replicas: 5,
        config: ConfigChoice::Majority,
    };

    // Teller 1 deposits to alice then audits; teller 2 moves value from
    // bob to alice as a nested transfer sub-transaction; teller 3 audits
    // both accounts.
    let spec = SystemSpec {
        items: vec![account("alice"), account("bob")],
        plain: vec![],
        users: vec![
            UserSpec::new(vec![
                UserStep::Write(0, Value::Int(150)),
                UserStep::Read(0),
            ]),
            UserSpec::new(vec![UserStep::Sub(UserSpec::new(vec![
                UserStep::Write(1, Value::Int(50)),
                UserStep::Write(0, Value::Int(200)),
            ]))]),
            UserSpec::new(vec![UserStep::Read(0), UserStep::Read(1)]),
        ],
        strategy: Default::default(),
    };

    println!("tellers: deposit, nested transfer, audit — interleaved under 2PL\n");
    let mut serialized = 0;
    for seed in 0..5 {
        let report = check_theorem11(
            &spec,
            CcRunOptions {
                seed,
                ..CcRunOptions::default()
            },
        )?;
        serialized += 1;
        println!(
            "seed {seed}: γ = {:>4} ops, σ = {:>4} ops, α = {:>3} ops | \
             {} committed tellers, {} aborts, {} lock conflicts",
            report.gamma_len,
            report.sigma_len,
            report.alpha_len,
            report.users_committed,
            report.aborts,
            report.lock_conflicts,
        );
    }
    println!(
        "\nTheorem 11 verified on {serialized}/{serialized} concurrent runs: every \
         interleaving was serializable at the logical-account level."
    );

    // The same banking story at simulator scale: the hand-written teller
    // scripts above generalise to the seeded `BankingGen` workload —
    // deposit/audit/transfer program trees with doomed (aborting)
    // subtrees — executed over the replicated sharded store with quorum
    // operations at every copy access. The committed projection of every
    // top-level transaction must again replay serially in commit order.
    let mut config = TxnConfig::new(
        Arc::new(Majority::new(5)),
        WorkloadKind::Banking(BankingGen::new(4)),
    );
    config.duration = SimTime::from_secs(2);
    config.seed = 17;
    let (report, commits) = run_txn_committed(&config, 2);
    check_commit_order_serializable(&|_| 0, &commits)?;
    println!(
        "\nat scale: {} nested transactions over {} replicated accounts — \
         {} committed, {} doomed subtrees compensated, zero lemma violations, \
         committed projection serializable (Theorem 11)",
        report.stats.txns_started,
        config.items,
        report.stats.txns_committed,
        report.stats.subtree_aborts,
    );
    assert_eq!(report.stats.lemma_violations, 0);
    Ok(())
}
