//! Dynamic reconfiguration (paper §4): spies transparently change quorums
//! mid-execution while user transactions keep reading correct values.
//!
//! Each user transaction is shadowed by a *spy automaton* that may invoke
//! reconfigure-TMs as hidden children of the transaction. The example runs
//! the reconfigurable replicated system across several seeds, reports how
//! many reconfigurations actually committed, and verifies the §4 analogue
//! of Theorem 10 — after erasing the whole replication machinery (TM
//! subtrees, coordinators, spies, reconfigure-TMs), what remains is a
//! schedule of the single-copy system A.
//!
//! ```sh
//! cargo run --example reconfiguration
//! ```

use qcnt::reconfig::{check_rc_random, RcItemSpec, RcRunOptions, RcSystemSpec};
use qcnt::replication::{UserSpec, UserStep};
use qcnt::txn::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let universe: Vec<usize> = (0..5).collect();
    let spec = RcSystemSpec {
        items: vec![RcItemSpec {
            name: "x".into(),
            init: Value::Int(0),
            replicas: 5,
            initial_config: qcnt::quorum::generators::majority(&universe),
            alt_configs: vec![
                qcnt::quorum::generators::rowa(&universe),
                qcnt::quorum::generators::raow(&universe),
            ],
        }],
        users: vec![
            UserSpec::new(vec![
                UserStep::Write(0, Value::Int(7)),
                UserStep::Read(0),
            ]),
            UserSpec::new(vec![
                UserStep::Read(0),
                UserStep::Write(0, Value::Int(9)),
                UserStep::Read(0),
            ]),
        ],
        max_reconfigs_per_user: 2,
    };

    println!("reconfigurable system: 5 replicas, majority → {{rowa, raow}} candidates\n");
    let mut total = 0;
    for seed in 0..8 {
        let report = check_rc_random(
            &spec,
            RcRunOptions {
                seed,
                ..RcRunOptions::default()
            },
        )?;
        total += report.reconfigs_committed;
        println!(
            "seed {seed}: |β| = {:>5}, |α| = {:>3}, reconfigurations committed: {}",
            report.b_len, report.a_len, report.reconfigs_committed
        );
    }
    println!(
        "\n{total} reconfigurations committed across seeds; every execution still \
         projected onto the non-replicated system A (generation and version \
         invariants monitored at each step)."
    );
    Ok(())
}
