//! Choosing a quorum configuration for a read-heavy inventory service.
//!
//! A product catalog is replicated across sites; lookups vastly outnumber
//! restocks. This example uses the analysis tools and the discrete-event
//! simulator to compare read-one/write-all, majority, and grid quorums on
//! message cost, latency, and availability under site failures — the
//! trade-off Gifford's algorithm exists to navigate.
//!
//! ```sh
//! cargo run --release --example inventory
//! ```

use std::sync::Arc;

use qcnt::quorum::{analysis, Grid, Majority, QuorumSpec, Rowa};
use qcnt::sim::{run, run_txn, ContactPolicy, LatencyModel, SimConfig, SimTime, TxnConfig};
use qcnt::txn::{InventoryGen, WorkloadKind};

fn main() {
    let n = 9;
    let systems: Vec<Arc<dyn QuorumSpec + Send + Sync>> = vec![
        Arc::new(Rowa::new(n)),
        Arc::new(Majority::new(n)),
        Arc::new(Grid::new(3, 3)),
    ];

    println!("inventory service: {n} replicas, 95% reads, WAN latencies\n");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "quorum", "msgs/read", "msgs/write", "read p50", "write p50", "read avail", "write avail"
    );

    for q in &systems {
        // Analytic availability at 10% per-site failure probability.
        let r_avail = analysis::exact_read_availability(q.as_ref(), 0.9);
        let w_avail = analysis::exact_write_availability(q.as_ref(), 0.9);

        // Simulated costs and latencies under a failure process.
        let mut config = SimConfig::new(Arc::clone(q));
        config.read_fraction = 0.95;
        config.latency = LatencyModel::wan();
        config.contact = ContactPolicy::MinimalQuorum;
        config.mttf = Some(SimTime::from_secs(90));
        config.mttr = SimTime::from_secs(10);
        config.timeout = SimTime::from_millis(200);
        config.duration = SimTime::from_secs(60);
        config.seed = 7;
        let m = run(config);

        println!(
            "{:<16} {:>10.1} {:>10.1} {:>9.1}ms {:>9.1}ms {:>10.4} {:>10.4}",
            q.label(),
            m.reads.messages_per_op(),
            m.writes.messages_per_op(),
            m.reads.percentile_ms(50.0),
            m.writes.percentile_ms(50.0),
            r_avail,
            w_avail,
        );
    }

    println!(
        "\nROWA reads are cheapest but a single down site blocks every restock; \
         majority balances both; the grid cuts write cost at scale."
    );

    // The flat read/write mix above abstracts what an inventory service
    // really runs: nested order transactions (check stock, then decrement
    // several products, some orders cancelling mid-flight). The seeded
    // `InventoryGen` workload drives exactly those trees through the
    // replicated store under copy-level locking; the abort rate here is
    // lock contention between orders touching the same products.
    println!("\nnested order transactions (3 products, majority vs ROWA):");
    for quorum in [
        Arc::new(Majority::new(5)) as Arc<dyn QuorumSpec + Send + Sync>,
        Arc::new(Rowa::new(5)),
    ] {
        let label = quorum.label();
        let mut config = TxnConfig::new(quorum, WorkloadKind::Inventory(InventoryGen::new(3)));
        config.items = 6;
        config.clients_per_domain = 4;
        config.duration = SimTime::from_secs(2);
        config.seed = 7;
        let report = run_txn(&config, 2);
        let st = &report.stats;
        let done = st.txns_committed + st.txns_aborted;
        println!(
            "  {label:<16} {} orders, abort rate {:.3}, {} lock waits, {} compensations",
            st.txns_started,
            if done == 0 { 0.0 } else { st.txns_aborted as f64 / done as f64 },
            st.lock_waits,
            st.compensations,
        );
        assert_eq!(st.lemma_violations, 0);
    }
}
