//! Quickstart: run the replicated serial system **B**, watch the schedule,
//! and verify Theorem 10 (the projection is a schedule of the
//! non-replicated system **A**).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use qcnt::replication::{
    check_projection, project_to_a, run_system_b, ConfigChoice, ItemSpec, RunOptions, SystemSpec,
    UserSpec, UserStep,
};
use qcnt::txn::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One logical item `x`, five replicas, majority quorums; two user
    // transactions, the second nested.
    let spec = SystemSpec {
        items: vec![ItemSpec {
            name: "x".into(),
            init: Value::Int(0),
            replicas: 5,
            config: ConfigChoice::Majority,
        }],
        plain: vec![],
        users: vec![
            UserSpec::new(vec![
                UserStep::Write(0, Value::Int(42)),
                UserStep::Read(0),
            ]),
            UserSpec::new(vec![UserStep::Sub(UserSpec::new(vec![UserStep::Read(0)]))]),
        ],
        strategy: Default::default(),
    };

    // Run B with a seeded executor; the serial scheduler may spontaneously
    // abort transactions, and well-formedness plus Lemmas 7–8 are monitored
    // at every step.
    let opts = RunOptions {
        seed: 2026,
        ..RunOptions::default()
    };
    let (beta, layout) = run_system_b(&spec, opts)?;
    println!("β — a schedule of the replicated serial system B:");
    for (i, op) in beta.iter().enumerate() {
        println!("  {i:>3}: {op}");
    }

    // Theorem 10: erase every replica access; replay on A.
    let alpha = project_to_a(&layout, &beta);
    let report = check_projection(&spec, &layout, &beta)?;
    println!();
    println!("Theorem 10 verified:");
    println!("  |β| = {} operations (system B)", report.b_len);
    println!("  |α| = {} operations (system A)", alpha.len());
    println!("  projections agree at {} user transactions", report.users_checked);
    println!("  {} logical operations (TMs) appear in β", report.tms_in_beta);
    Ok(())
}
