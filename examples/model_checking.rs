//! Small-scope model checking: exhaustively enumerate *every* abort-free
//! schedule of a tiny replicated system and verify the paper's Lemma 7,
//! Lemma 8, and Theorem 10 on all of them.
//!
//! Where the other examples sample the schedule space randomly, this one
//! covers it completely — if the algorithm had a bug reachable within the
//! scope, this run would print a minimal witness schedule instead of the
//! summary.
//!
//! ```sh
//! cargo run --release --example model_checking
//! ```

use qcnt::ioa::ExploreLimits;
use qcnt::replication::{
    verify_exhaustive, ConfigChoice, ItemSpec, SystemSpec, UserSpec, UserStep,
};
use qcnt::txn::Value;

fn main() -> Result<(), String> {
    // One item, two replicas, majority quorums; one writer, one reader.
    let spec = SystemSpec {
        items: vec![ItemSpec {
            name: "x".into(),
            init: Value::Int(0),
            replicas: 2,
            config: ConfigChoice::Majority,
        }],
        plain: vec![],
        users: vec![
            UserSpec::new(vec![UserStep::Write(0, Value::Int(1))]),
            UserSpec::new(vec![UserStep::Read(0)]),
        ],
        strategy: Default::default(),
    };

    println!("exhaustively checking: 2 replicas, majority, writer + reader …");
    let report = verify_exhaustive(
        &spec,
        ExploreLimits {
            max_depth: 80,
            max_schedules: 5_000_000,
        },
    )?;

    println!();
    println!("schedules visited:     {}", report.stats.schedules);
    println!("maximal schedules:     {}", report.stats.maximal);
    println!("quiescent:             {}", report.stats.quiescent);
    println!("projections replayed:  {}", report.projections_checked);
    println!(
        "coverage:              {}",
        if report.stats.truncated {
            "bounded (depth limit hit)"
        } else {
            "COMPLETE abort-free behaviour"
        }
    );
    println!();
    println!(
        "Lemma 7, Lemma 8 held in every reachable state; Theorem 10 held on \
         every maximal schedule."
    );
    Ok(())
}
