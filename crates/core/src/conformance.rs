//! Schedule traces and the Theorem 10 conformance checker.
//!
//! The simulator in `qc-sim` runs the Gifford protocol over versioned
//! replica stores; the formal machinery in this crate runs I/O automata.
//! This module is the bridge between the two worlds. A [`ScheduleTrace`]
//! records a run — simulated or automaton-generated — as an ordered
//! schedule in the paper's operation vocabulary: `CREATE`,
//! `REQUEST-COMMIT`, `COMMIT` and `ABORT` for the transaction managers,
//! plus `READ-DM` / `WRITE-DM` for the replica accesses that Theorem 10
//! erases. [`check_trace`] replays a trace through three independent
//! oracles, reporting the **first divergent action** on failure:
//!
//! 1. **Protocol structure.** Every committed operation discovered its
//!    version number at a read quorum; every committed write installed
//!    `(vn + 1, value)` identically at a write quorum; every recorded
//!    replica access agrees with the replica-store state reconstructed
//!    from the trace itself.
//! 2. **Lemmas 7 and 8.** At every commit point (an "even point" of the
//!    access sequence — the simulator commits operations atomically) the
//!    reconstructed stores and the committed history satisfy the paper's
//!    invariants, via the same [`LemmaChecker`] the runtime monitors use.
//! 3. **Theorem 10.** Erasing the replica-access operations yields a
//!    candidate serial schedule α, which is replayed step by step on a
//!    *real* serial system **A** — a [`SerialScheduler`] over one
//!    non-replicated [`ReadWriteObject`] — so the trace is accepted only
//!    if it is literally a schedule of the non-replicated system.
//!
//! [`project_trace`] exposes the erasure step on its own, and
//! [`trace_from_schedule`] adapts an I/O-automaton schedule of system
//! **B** (serial or concurrency-controlled) into a trace, so the same
//! checker cross-validates the simulator and the automata.

use std::fmt;

use ioa::{Component, OpClass, Schedule, System};
use nested_txn::{
    AccessKind, AccessSpec, ObjectId, ReadWriteObject, SerialScheduler, Tid, TxnOp, Value,
};
use quorum::{QuorumFamily, QuorumSpec, ReplicaSet};

use crate::invariants::{LemmaChecker, LemmaViolation};
use crate::item::ItemId;
use crate::spec::{Layout, TmRole};

/// Whether a traced transaction manager performs a logical read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TmKind {
    /// A read-TM: discovers the maximum version at a read quorum and
    /// returns its value.
    Read,
    /// A write-TM: discovers the current version at a read quorum, then
    /// installs `(vn + 1, value)` at a write quorum.
    Write,
    /// A reconfigure-TM (paper §4): discovers the current configuration
    /// and data at quorums of the *old* configuration, installs the new
    /// `(generation, members)` at a configuration write quorum of the old
    /// members, and refreshes the data at a write quorum of the new ones.
    Reconfig,
}

impl fmt::Display for TmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmKind::Read => write!(f, "read"),
            TmKind::Write => write!(f, "write"),
            TmKind::Reconfig => write!(f, "reconfig"),
        }
    }
}

/// Why a traced transaction manager aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbortReason {
    /// A forced abort (the paper's transaction-failure model).
    Forced,
    /// The live sites could not hold the quorums the operation needs.
    Unavailable,
    /// A quorum existed but did not assemble within the timeout.
    Timeout,
    /// The attempt ran against a superseded generation and was rejected;
    /// the operation retries under the newly discovered configuration.
    Stale,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::Forced => write!(f, "forced"),
            AbortReason::Unavailable => write!(f, "unavailable"),
            AbortReason::Timeout => write!(f, "timeout"),
            AbortReason::Stale => write!(f, "stale"),
        }
    }
}

/// The name of a traced transaction manager.
///
/// Each *attempt* of each logical operation is its own transaction in the
/// paper's sense (an aborted transaction was never created; a retry is a
/// fresh transaction), so the name carries the attempt number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceTid {
    /// The issuing client.
    pub client: u32,
    /// The client-local logical operation number.
    pub op: u64,
    /// The 1-based attempt number within the logical operation.
    pub attempt: u32,
}

impl fmt::Display for TraceTid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}.op{}.a{}", self.client, self.op, self.attempt)
    }
}

/// One action of a traced schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceAction {
    /// `CREATE(T)`: the transaction manager starts running.
    Create {
        /// Read or write TM.
        kind: TmKind,
    },
    /// A performed read access at a replica: the DM returned its store.
    ReadDm {
        /// The replica site.
        site: usize,
        /// The version number the site held.
        vn: u64,
        /// The value the site held.
        value: u64,
    },
    /// A performed write access at a replica: the DM installed a version.
    WriteDm {
        /// The replica site.
        site: usize,
        /// The installed version number.
        vn: u64,
        /// The installed value.
        value: u64,
    },
    /// A performed configuration read at a replica: the DM returned its
    /// stored generation number.
    ReadCfg {
        /// The replica site.
        site: usize,
        /// The generation the site's configuration store held.
        gen: u64,
    },
    /// A performed configuration install at a replica: the DM adopted the
    /// new `(generation, members)` pair.
    WriteCfg {
        /// The replica site.
        site: usize,
        /// The installed generation number.
        gen: u64,
        /// The installed member set.
        members: ReplicaSet,
    },
    /// `REQUEST-COMMIT(T, v)`: the TM announces its result.
    RequestCommit {
        /// The version the operation committed at (discovered maximum for
        /// reads; installed version for writes).
        vn: u64,
        /// The operation's value (returned for reads; installed for
        /// writes).
        value: u64,
    },
    /// `COMMIT(T)`: the scheduler reports success.
    Commit,
    /// `ABORT(T)`: the transaction was never created (it has no visible
    /// effect).
    Abort {
        /// Read or write TM.
        kind: TmKind,
        /// Why the attempt aborted.
        reason: AbortReason,
    },
}

impl fmt::Display for TraceAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceAction::Create { kind } => write!(f, "CREATE({kind}-TM)"),
            TraceAction::ReadDm { site, vn, value } => {
                write!(f, "READ-DM(site {site}, vn {vn}, value {value})")
            }
            TraceAction::WriteDm { site, vn, value } => {
                write!(f, "WRITE-DM(site {site}, vn {vn}, value {value})")
            }
            TraceAction::ReadCfg { site, gen } => {
                write!(f, "READ-CFG(site {site}, gen {gen})")
            }
            TraceAction::WriteCfg { site, gen, members } => {
                write!(f, "WRITE-CFG(site {site}, gen {gen}, members {members})")
            }
            TraceAction::RequestCommit { vn, value } => {
                write!(f, "REQUEST-COMMIT(vn {vn}, value {value})")
            }
            TraceAction::Commit => write!(f, "COMMIT"),
            TraceAction::Abort { kind, reason } => write!(f, "ABORT({kind}-TM, {reason})"),
        }
    }
}

/// One event of a [`ScheduleTrace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time in microseconds (schedule position for traces built
    /// from automaton schedules).
    pub at_us: u64,
    /// The transaction the action belongs to.
    pub tid: TraceTid,
    /// The action.
    pub action: TraceAction,
    /// Whether any fault was active when the action happened (a site down,
    /// a drop or delay window open, or a forced abort).
    pub faulted: bool,
}

/// An ordered schedule of one run over a single replicated item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// Label of the quorum system the run used (diagnostic only).
    pub quorum: String,
    /// Number of replica sites.
    pub sites: usize,
    /// The run's RNG seed (diagnostic only).
    pub seed: u64,
    /// The item's initial value (version 0 at every site).
    pub initial: u64,
    /// The events, in schedule order.
    pub events: Vec<TraceEvent>,
}

impl ScheduleTrace {
    /// An empty trace for a run over `sites` replicas.
    pub fn new(quorum: impl Into<String>, sites: usize, seed: u64) -> Self {
        ScheduleTrace {
            quorum: quorum.into(),
            sites,
            seed,
            initial: 0,
            events: Vec::new(),
        }
    }
}

/// What a conformance failure looked like.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The trace is not even shaped like a serial Gifford run.
    Malformed(String),
    /// A committed operation's read accesses do not cover a read quorum.
    NoReadQuorum,
    /// A committed write's installs do not cover a write quorum.
    NoWriteQuorum,
    /// A committed operation's configuration reads do not cover a
    /// configuration read quorum of its generation's members.
    NoConfigReadQuorum,
    /// A new configuration was installed without reaching a configuration
    /// write quorum of the *old* configuration (the Goldman–Lynch rule).
    NoConfigWriteQuorum,
    /// A committed operation ran against a superseded generation.
    StaleGeneration,
    /// Lemma 7 or 8 fails at a commit point (or at end of trace).
    Lemma(LemmaViolation),
    /// The Theorem 10 projection was refused by serial system **A**.
    Replay(String),
}

/// The first divergent action of a non-conforming trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Index into [`ScheduleTrace::events`] of the divergent action
    /// (`events.len()` for a divergence only visible at end of trace).
    pub event: usize,
    /// The divergent action, rendered (`"end of trace"` past the end).
    pub action: String,
    /// What went wrong there.
    pub kind: DivergenceKind,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event {} [{}]: ", self.event, self.action)?;
        match &self.kind {
            DivergenceKind::Malformed(why) => write!(f, "{why}"),
            DivergenceKind::NoReadQuorum => {
                write!(f, "read accesses do not cover a read quorum")
            }
            DivergenceKind::NoWriteQuorum => {
                write!(f, "installs do not cover a write quorum")
            }
            DivergenceKind::NoConfigReadQuorum => {
                write!(f, "configuration reads do not cover a configuration read quorum")
            }
            DivergenceKind::NoConfigWriteQuorum => write!(
                f,
                "the new configuration did not reach a configuration write quorum of the \
                 old configuration"
            ),
            DivergenceKind::StaleGeneration => {
                write!(f, "operation committed against a superseded generation")
            }
            DivergenceKind::Lemma(v) => write!(f, "{v}"),
            DivergenceKind::Replay(why) => write!(f, "{why}"),
        }
    }
}

impl std::error::Error for Divergence {}

/// Statistics of a successful conformance check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConformanceReport {
    /// Total trace events checked.
    pub events: usize,
    /// Transaction managers that committed.
    pub committed: usize,
    /// Transaction managers that aborted.
    pub aborted: usize,
    /// Replica-access operations erased by the Theorem 10 projection.
    pub erased: usize,
    /// Length of the candidate serial schedule α (including `CREATE(T0)`).
    pub alpha_len: usize,
    /// Events tagged as happening under an active fault.
    pub faulted_events: usize,
    /// `current-vn` of the committed history at end of trace.
    pub max_vn: u64,
}

/// A performed replica access within one TM block.
#[derive(Clone, Copy, Debug)]
struct Rep {
    site: usize,
    vn: u64,
    value: u64,
}

/// An open (not yet returned) TM block during the structural scan.
#[derive(Debug)]
struct Block {
    tid: TraceTid,
    kind: TmKind,
    reads: Vec<Rep>,
    writes: Vec<Rep>,
    /// Configuration reads: `(site, generation)`.
    cfg_reads: Vec<(usize, u64)>,
    /// Configuration installs: `(site, generation, members)`.
    cfg_writes: Vec<(usize, u64, ReplicaSet)>,
    rc: Option<(usize, u64, u64)>,
}

fn diverge(i: usize, ev: &TraceEvent, kind: DivergenceKind) -> Divergence {
    Divergence {
        event: i,
        action: format!("{}: {}", ev.tid, ev.action),
        kind,
    }
}

fn end_diverge(len: usize, kind: DivergenceKind) -> Divergence {
    Divergence {
        event: len,
        action: "end of trace".into(),
        kind,
    }
}

/// Check a trace against the protocol structure, Lemmas 7/8, and
/// Theorem 10.
///
/// `quorum` must be the quorum system the run used (over sites
/// `0..trace.sites`).
///
/// # Errors
///
/// The first divergent action.
pub fn check_trace(
    trace: &ScheduleTrace,
    quorum: &dyn QuorumSpec,
) -> Result<ConformanceReport, Divergence> {
    if quorum.n() != trace.sites {
        return Err(Divergence {
            event: 0,
            action: "trace header".into(),
            kind: DivergenceKind::Malformed(format!(
                "quorum system covers {} sites but the trace records {}",
                quorum.n(),
                trace.sites
            )),
        });
    }
    let mut stores: Vec<(u64, u64)> = vec![(0, trace.initial); trace.sites];
    let mut checker: LemmaChecker<u64> = LemmaChecker::new(trace.initial);

    // Dynamic-configuration state. Generation 0 is the full replica set
    // under the run's static quorum system; each committed reconfigure-TM
    // appends the next generation's member set. A trace that never touches
    // a configuration store stays at generation 0 and is checked exactly as
    // before.
    let family = QuorumFamily::of(quorum);
    let full = ReplicaSet::full(trace.sites);
    let mut cfg_stores: Vec<(u64, ReplicaSet)> = vec![(0, full); trace.sites];
    let mut configs: Vec<ReplicaSet> = vec![full];
    let mut cur_gen: u64 = 0;

    // Lemma 8(1a)'s write-quorum predicate: the static system's at
    // generation 0, the family rule over the current members once a
    // reconfiguration has committed.
    let check_stores = |checker: &LemmaChecker<u64>,
                        stores: &[(u64, u64)],
                        cur_gen: u64,
                        members: ReplicaSet|
     -> Result<(), LemmaViolation> {
        checker.check_states(
            stores.iter().enumerate().map(|(s, (vn, v))| (s, *vn, v)),
            true,
            |holders| {
                if cur_gen == 0 {
                    quorum.is_write_quorum_bits(holders)
                } else {
                    let fam = family.expect("generations only advance under a quorum family");
                    holders.intersection(members).len() >= fam.write_size(members.len())
                }
            },
        )
    };

    let mut open: Option<Block> = None;
    let mut committed = 0usize;
    let mut aborted = 0usize;
    let mut erased = 0usize;
    let mut faulted_events = 0usize;

    for (i, ev) in trace.events.iter().enumerate() {
        if ev.faulted {
            faulted_events += 1;
        }
        match ev.action {
            TraceAction::Create { kind } => {
                if let Some(b) = &open {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(format!(
                            "CREATE while {} is still running (serial property violated)",
                            b.tid
                        )),
                    ));
                }
                open = Some(Block {
                    tid: ev.tid,
                    kind,
                    reads: Vec::new(),
                    writes: Vec::new(),
                    cfg_reads: Vec::new(),
                    cfg_writes: Vec::new(),
                    rc: None,
                });
            }
            TraceAction::ReadDm { site, vn, value } => {
                erased += 1;
                let b = match open.as_mut() {
                    Some(b) if b.tid == ev.tid && b.rc.is_none() => b,
                    _ => {
                        return Err(diverge(
                            i,
                            ev,
                            DivergenceKind::Malformed(
                                "READ-DM outside its transaction manager's run".into(),
                            ),
                        ))
                    }
                };
                if !b.writes.is_empty() || !b.cfg_writes.is_empty() {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed("READ-DM after the install phase began".into()),
                    ));
                }
                if site >= trace.sites {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(format!(
                            "site {site} out of range (n = {})",
                            trace.sites
                        )),
                    ));
                }
                if b.reads.iter().any(|r| r.site == site) {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(format!("duplicate READ-DM at site {site}")),
                    ));
                }
                if stores[site] != (vn, value) {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(format!(
                            "READ-DM recorded (vn {vn}, value {value}) but the replica \
                             store holds (vn {}, value {})",
                            stores[site].0, stores[site].1
                        )),
                    ));
                }
                b.reads.push(Rep { site, vn, value });
            }
            TraceAction::WriteDm { site, vn, value } => {
                erased += 1;
                let b = match open.as_mut() {
                    Some(b) if b.tid == ev.tid && b.rc.is_none() => b,
                    _ => {
                        return Err(diverge(
                            i,
                            ev,
                            DivergenceKind::Malformed(
                                "WRITE-DM outside its transaction manager's run".into(),
                            ),
                        ))
                    }
                };
                if b.kind == TmKind::Read {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed("WRITE-DM in a read-TM".into()),
                    ));
                }
                if site >= trace.sites {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(format!(
                            "site {site} out of range (n = {})",
                            trace.sites
                        )),
                    ));
                }
                if b.writes.iter().any(|w| w.site == site) {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(format!("duplicate WRITE-DM at site {site}")),
                    ));
                }
                if let Some(w) = b.writes.first() {
                    if (w.vn, w.value) != (vn, value) {
                        return Err(diverge(
                            i,
                            ev,
                            DivergenceKind::Malformed(format!(
                                "inconsistent install: (vn {vn}, value {value}) after \
                                 (vn {}, value {})",
                                w.vn, w.value
                            )),
                        ));
                    }
                } else {
                    let dvn = b.reads.iter().map(|r| r.vn).max().unwrap_or(0);
                    // A write-TM advances the version; a reconfigure-TM
                    // *refreshes* the discovered version at the new members
                    // (the data does not change, only its placement).
                    let expect = if b.kind == TmKind::Reconfig { dvn } else { dvn + 1 };
                    if vn != expect {
                        return Err(diverge(
                            i,
                            ev,
                            DivergenceKind::Malformed(format!(
                                "installed vn {vn} but discovery saw maximum vn {dvn}"
                            )),
                        ));
                    }
                }
                stores[site] = (vn, value);
                b.writes.push(Rep { site, vn, value });
            }
            TraceAction::ReadCfg { site, gen } => {
                erased += 1;
                if family.is_none() {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(format!(
                            "configuration access under non-resizable quorum system {}",
                            quorum.label()
                        )),
                    ));
                }
                let b = match open.as_mut() {
                    Some(b) if b.tid == ev.tid && b.rc.is_none() => b,
                    _ => {
                        return Err(diverge(
                            i,
                            ev,
                            DivergenceKind::Malformed(
                                "READ-CFG outside its transaction manager's run".into(),
                            ),
                        ))
                    }
                };
                if !b.writes.is_empty() || !b.cfg_writes.is_empty() {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed("READ-CFG after the install phase began".into()),
                    ));
                }
                if site >= trace.sites {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(format!(
                            "site {site} out of range (n = {})",
                            trace.sites
                        )),
                    ));
                }
                if b.cfg_reads.iter().any(|&(s, _)| s == site) {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(format!("duplicate READ-CFG at site {site}")),
                    ));
                }
                if cfg_stores[site].0 != gen {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(format!(
                            "READ-CFG recorded gen {gen} but the site's configuration store \
                             holds gen {}",
                            cfg_stores[site].0
                        )),
                    ));
                }
                b.cfg_reads.push((site, gen));
            }
            TraceAction::WriteCfg { site, gen, members } => {
                erased += 1;
                if family.is_none() {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(format!(
                            "configuration access under non-resizable quorum system {}",
                            quorum.label()
                        )),
                    ));
                }
                let b = match open.as_mut() {
                    Some(b) if b.tid == ev.tid && b.rc.is_none() => b,
                    _ => {
                        return Err(diverge(
                            i,
                            ev,
                            DivergenceKind::Malformed(
                                "WRITE-CFG outside its transaction manager's run".into(),
                            ),
                        ))
                    }
                };
                if b.kind != TmKind::Reconfig {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed("WRITE-CFG outside a reconfigure-TM".into()),
                    ));
                }
                if site >= trace.sites {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(format!(
                            "site {site} out of range (n = {})",
                            trace.sites
                        )),
                    ));
                }
                if members.is_empty() || members.iter().any(|s| s >= trace.sites) {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(format!(
                            "WRITE-CFG installs invalid member set {members} (n = {})",
                            trace.sites
                        )),
                    ));
                }
                if b.cfg_writes.iter().any(|&(s, _, _)| s == site) {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(format!("duplicate WRITE-CFG at site {site}")),
                    ));
                }
                if let Some(&(_, g0, m0)) = b.cfg_writes.first() {
                    if (g0, m0) != (gen, members) {
                        return Err(diverge(
                            i,
                            ev,
                            DivergenceKind::Malformed(format!(
                                "inconsistent configuration install: (gen {gen}, members \
                                 {members}) after (gen {g0}, members {m0})"
                            )),
                        ));
                    }
                } else {
                    let old_gen = b.cfg_reads.iter().map(|&(_, g)| g).max().unwrap_or(0);
                    if gen != old_gen + 1 {
                        return Err(diverge(
                            i,
                            ev,
                            DivergenceKind::Malformed(format!(
                                "installed generation {gen} but discovery saw maximum \
                                 generation {old_gen}"
                            )),
                        ));
                    }
                }
                cfg_stores[site] = (gen, members);
                b.cfg_writes.push((site, gen, members));
            }
            TraceAction::RequestCommit { vn, value } => {
                let b = match open.as_mut() {
                    Some(b) if b.tid == ev.tid => b,
                    _ => {
                        return Err(diverge(
                            i,
                            ev,
                            DivergenceKind::Malformed(
                                "REQUEST-COMMIT outside its transaction manager's run".into(),
                            ),
                        ))
                    }
                };
                if b.rc.is_some() {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed("duplicate REQUEST-COMMIT".into()),
                    ));
                }
                // Generation gate, checked before any quorum question: a
                // block runs at the maximum generation its configuration
                // reads discovered (generation 0 when it read none, the
                // static case). An uninstalled generation is malformed; a
                // superseded one is the stale-rejection divergence. On a
                // faithful trace a *structurally valid* stale block cannot
                // exist — its configuration-read majority would intersect
                // the majority that installed the next generation — so
                // `StaleGeneration` fires only on mutated traces.
                let block_gen = b.cfg_reads.iter().map(|&(_, g)| g).max().unwrap_or(0);
                if block_gen > cur_gen {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(format!(
                            "REQUEST-COMMIT at generation {block_gen}, which was never \
                             installed (current generation {cur_gen})"
                        )),
                    ));
                }
                if block_gen < cur_gen {
                    return Err(diverge(i, ev, DivergenceKind::StaleGeneration));
                }
                let members = configs[block_gen as usize];
                let dynamic = !b.cfg_reads.is_empty() || b.kind == TmKind::Reconfig;
                if dynamic {
                    let cfg_read_set: ReplicaSet = b.cfg_reads.iter().map(|&(s, _)| s).collect();
                    if cfg_read_set.intersection(members).len()
                        < QuorumFamily::config_quorum_size(members.len())
                    {
                        return Err(diverge(i, ev, DivergenceKind::NoConfigReadQuorum));
                    }
                }
                let read_set: ReplicaSet = b.reads.iter().map(|r| r.site).collect();
                let read_ok = if dynamic {
                    let fam = family.expect("dynamic blocks carry configuration reads");
                    read_set.intersection(members).len() >= fam.read_size(members.len())
                } else {
                    quorum.is_read_quorum_bits(read_set)
                };
                if !read_ok {
                    return Err(diverge(i, ev, DivergenceKind::NoReadQuorum));
                }
                let dvn = b.reads.iter().map(|r| r.vn).max().unwrap_or(0);
                match b.kind {
                    TmKind::Read => {
                        if vn != dvn {
                            return Err(diverge(
                                i,
                                ev,
                                DivergenceKind::Malformed(format!(
                                    "read committed vn {vn} but the discovered maximum is {dvn}"
                                )),
                            ));
                        }
                        if !b.reads.iter().any(|r| r.vn == dvn && r.value == value) {
                            return Err(diverge(
                                i,
                                ev,
                                DivergenceKind::Malformed(format!(
                                    "returned value {value} was not read from any \
                                     maximum-version replica"
                                )),
                            ));
                        }
                    }
                    TmKind::Write => {
                        let write_set: ReplicaSet = b.writes.iter().map(|w| w.site).collect();
                        let write_ok = if dynamic {
                            let fam = family.expect("dynamic blocks carry configuration reads");
                            write_set.intersection(members).len() >= fam.write_size(members.len())
                        } else {
                            quorum.is_write_quorum_bits(write_set)
                        };
                        if b.writes.is_empty() || !write_ok {
                            return Err(diverge(i, ev, DivergenceKind::NoWriteQuorum));
                        }
                        let w = b.writes[0];
                        if (vn, value) != (w.vn, w.value) {
                            return Err(diverge(
                                i,
                                ev,
                                DivergenceKind::Malformed(format!(
                                    "REQUEST-COMMIT (vn {vn}, value {value}) differs from \
                                     the install (vn {}, value {})",
                                    w.vn, w.value
                                )),
                            ));
                        }
                    }
                    TmKind::Reconfig => {
                        // Goldman–Lynch: the new configuration reaches a
                        // configuration write quorum of the *old* members.
                        let Some(&(_, new_gen, new_members)) = b.cfg_writes.first() else {
                            return Err(diverge(i, ev, DivergenceKind::NoConfigWriteQuorum));
                        };
                        let cfg_write_set: ReplicaSet =
                            b.cfg_writes.iter().map(|&(s, _, _)| s).collect();
                        if cfg_write_set.intersection(members).len()
                            < QuorumFamily::config_quorum_size(members.len())
                        {
                            return Err(diverge(i, ev, DivergenceKind::NoConfigWriteQuorum));
                        }
                        // The data refresh reaches a write quorum of the
                        // *new* members, carrying the discovered state.
                        let fam = family.expect("reconfigure blocks require a family");
                        let write_set: ReplicaSet = b.writes.iter().map(|w| w.site).collect();
                        if write_set.intersection(new_members).len()
                            < fam.write_size(new_members.len())
                        {
                            return Err(diverge(i, ev, DivergenceKind::NoWriteQuorum));
                        }
                        if let Some(w) = b.writes.first() {
                            if w.vn != dvn
                                || !b.reads.iter().any(|r| r.vn == dvn && r.value == w.value)
                            {
                                return Err(diverge(
                                    i,
                                    ev,
                                    DivergenceKind::Malformed(format!(
                                        "reconfiguration refreshed (vn {}, value {}) but \
                                         discovery saw maximum vn {dvn}",
                                        w.vn, w.value
                                    )),
                                ));
                            }
                        }
                        if vn != new_gen || value != new_members.bits() as u64 {
                            return Err(diverge(
                                i,
                                ev,
                                DivergenceKind::Malformed(format!(
                                    "reconfiguration REQUEST-COMMIT (vn {vn}, value {value}) \
                                     differs from the installed configuration (gen {new_gen}, \
                                     members {new_members})"
                                )),
                            ));
                        }
                    }
                }
                b.rc = Some((i, vn, value));
            }
            TraceAction::Commit => {
                let matches = open.as_ref().is_some_and(|b| b.tid == ev.tid);
                let Some(b) = (if matches { open.take() } else { None }) else {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(
                            "COMMIT outside its transaction manager's run".into(),
                        ),
                    ));
                };
                let Some((_, vn, value)) = b.rc else {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed("COMMIT without REQUEST-COMMIT".into()),
                    ));
                };
                match b.kind {
                    TmKind::Read => checker
                        .check_read(&value)
                        .map_err(|v| diverge(i, ev, DivergenceKind::Lemma(v)))?,
                    TmKind::Write => checker
                        .commit_write(vn, value)
                        .map_err(|v| diverge(i, ev, DivergenceKind::Lemma(v)))?,
                    TmKind::Reconfig => {
                        // A reconfiguration changes no logical state — the
                        // committed history (and the lemma checker) is
                        // untouched. The next generation becomes current.
                        let (_, new_gen, new_members) =
                            *b.cfg_writes.first().expect("checked at REQUEST-COMMIT");
                        debug_assert_eq!(new_gen, cur_gen + 1);
                        cur_gen = new_gen;
                        configs.push(new_members);
                    }
                }
                check_stores(&checker, &stores, cur_gen, configs[cur_gen as usize])
                    .map_err(|v| diverge(i, ev, DivergenceKind::Lemma(v)))?;
                committed += 1;
            }
            TraceAction::Abort { .. } => {
                if open.is_some() {
                    return Err(diverge(
                        i,
                        ev,
                        DivergenceKind::Malformed(
                            "ABORT while a transaction manager is running (a created \
                             transaction never aborts in a serial system)"
                                .into(),
                        ),
                    ));
                }
                aborted += 1;
            }
        }
    }
    if let Some(b) = &open {
        return Err(end_diverge(
            trace.events.len(),
            DivergenceKind::Malformed(format!("trace ends inside {}'s run", b.tid)),
        ));
    }
    check_stores(&checker, &stores, cur_gen, configs[cur_gen as usize])
        .map_err(|v| end_diverge(trace.events.len(), DivergenceKind::Lemma(v)))?;

    // Theorem 10: erase the replica accesses and replay the candidate
    // serial schedule on a real system A.
    let (alpha, src) = project_trace(trace);
    replay_alpha(trace.initial, &alpha, &src, &trace.events)?;

    Ok(ConformanceReport {
        events: trace.events.len(),
        committed,
        aborted,
        erased,
        alpha_len: alpha.len(),
        faulted_events,
        max_vn: checker.current_vn(),
    })
}

/// The non-replicated object of the synthesized serial system **A**.
const A_OBJECT: ObjectId = ObjectId(0);

/// Erase the replica-access operations (`READ-DM` / `WRITE-DM`) from a
/// trace and emit the candidate serial schedule α of system **A**, plus,
/// for each α operation, the index of the trace event it came from.
///
/// Each traced transaction manager becomes an access transaction `T0.k` on
/// the single logical object; aborted managers contribute
/// `REQUEST-CREATE` / `ABORT` pairs (an aborted transaction was never
/// created), committed ones a full `REQUEST-CREATE` / `CREATE` /
/// `REQUEST-COMMIT` / `COMMIT` block. The erasure is lenient: events that
/// do not form a complete block are dropped (the structural layer of
/// [`check_trace`] reports them precisely).
pub fn project_trace(trace: &ScheduleTrace) -> (Schedule<TxnOp>, Vec<usize>) {
    let mut alpha: Schedule<TxnOp> = Schedule::new();
    let mut src: Vec<usize> = Vec::new();
    alpha.push(TxnOp::Create {
        tid: Tid::root(),
        access: None,
        param: None,
    });
    src.push(0);

    // An open TM block: (name, kind, CREATE index, REQUEST-COMMIT (value,
    // index) once seen).
    type OpenBlock = (TraceTid, TmKind, usize, Option<(u64, usize)>);
    let mut k: u32 = 0;
    let mut open: Option<OpenBlock> = None;
    for (i, ev) in trace.events.iter().enumerate() {
        match ev.action {
            TraceAction::Create { kind } => {
                open = Some((ev.tid, kind, i, None));
            }
            TraceAction::RequestCommit { value, .. } => {
                if let Some(o) = open.as_mut() {
                    if o.0 == ev.tid {
                        o.3 = Some((value, i));
                    }
                }
            }
            TraceAction::Commit => {
                let done = open
                    .take_if(|o| o.0 == ev.tid)
                    .and_then(|(_, kind, ev_create, rc)| rc.map(|rc| (kind, ev_create, rc)));
                if let Some((kind, ev_create, (value, ev_rc))) = done {
                    // Reconfigure-TMs change no logical state: Theorem 10's
                    // projection erases them entirely, so a dynamic trace
                    // projects to the same serial α as its static twin.
                    if kind == TmKind::Reconfig {
                        continue;
                    }
                    let tid = Tid::root().child(k);
                    k += 1;
                    let (spec, result) = match kind {
                        TmKind::Read => (AccessSpec::read(A_OBJECT), Value::Int(value as i64)),
                        TmKind::Write => (
                            AccessSpec::write(A_OBJECT, Value::Int(value as i64)),
                            Value::Nil,
                        ),
                        TmKind::Reconfig => unreachable!("erased above"),
                    };
                    alpha.push(TxnOp::RequestCreate {
                        tid: tid.clone(),
                        access: Some(spec.clone()),
                        param: None,
                    });
                    src.push(ev_create);
                    alpha.push(TxnOp::Create {
                        tid: tid.clone(),
                        access: Some(spec),
                        param: None,
                    });
                    src.push(ev_create);
                    alpha.push(TxnOp::RequestCommit {
                        tid: tid.clone(),
                        value: result.clone(),
                    });
                    src.push(ev_rc);
                    alpha.push(TxnOp::Commit { tid, value: result });
                    src.push(i);
                }
            }
            TraceAction::Abort { kind, .. } => {
                if open.is_none() && kind != TmKind::Reconfig {
                    let tid = Tid::root().child(k);
                    k += 1;
                    let spec = match kind {
                        TmKind::Read => AccessSpec::read(A_OBJECT),
                        TmKind::Write => AccessSpec::write(A_OBJECT, Value::Nil),
                        TmKind::Reconfig => unreachable!("erased above"),
                    };
                    alpha.push(TxnOp::RequestCreate {
                        tid: tid.clone(),
                        access: Some(spec),
                        param: None,
                    });
                    src.push(i);
                    alpha.push(TxnOp::Abort { tid });
                    src.push(i);
                }
            }
            TraceAction::ReadDm { .. }
            | TraceAction::WriteDm { .. }
            | TraceAction::ReadCfg { .. }
            | TraceAction::WriteCfg { .. } => {}
        }
    }
    (alpha, src)
}

/// The root "user program" of the synthesized system **A**: it outputs the
/// `REQUEST-CREATE`s of the top-level accesses and absorbs their returns.
/// Its apply is permissive — the serial scheduler and the object carry all
/// the preconditions the replay is checking.
#[derive(Clone, Debug)]
struct TraceRoot;

impl Component<TxnOp> for TraceRoot {
    fn name(&self) -> String {
        "trace-root".into()
    }

    fn classify(&self, op: &TxnOp) -> OpClass {
        match op {
            TxnOp::RequestCreate { tid, .. } if tid.depth() == 1 => OpClass::Output,
            TxnOp::Create { tid, .. } if tid.is_root() => OpClass::Input,
            TxnOp::Commit { tid, .. } | TxnOp::Abort { tid } if tid.depth() == 1 => OpClass::Input,
            _ => OpClass::NotMine,
        }
    }

    fn reset(&mut self) {}

    fn enabled_outputs(&self) -> Vec<TxnOp> {
        Vec::new()
    }

    fn apply(&mut self, _op: &TxnOp) -> Result<(), String> {
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn clone_boxed(&self) -> Box<dyn Component<TxnOp>> {
        Box::new(self.clone())
    }
}

/// Replay α on a fresh serial system **A**, mapping a refusal back to the
/// trace event the refused operation was projected from.
fn replay_alpha(
    initial: u64,
    alpha: &Schedule<TxnOp>,
    src: &[usize],
    events: &[TraceEvent],
) -> Result<(), Divergence> {
    let mut system: System<TxnOp> = System::new();
    system.push(Box::new(SerialScheduler::new()));
    system.push(Box::new(ReadWriteObject::new(
        A_OBJECT,
        "O(x)",
        Value::Int(initial as i64),
    )));
    system.push(Box::new(TraceRoot));
    for (j, op) in alpha.iter().enumerate() {
        if let Err(e) = system.step(op) {
            let at = src[j];
            let action = events
                .get(at)
                .map(|ev| format!("{}: {}", ev.tid, ev.action))
                .unwrap_or_else(|| "end of trace".into());
            return Err(Divergence {
                event: at,
                action,
                kind: DivergenceKind::Replay(format!("serial system A refused {op}: {e}")),
            });
        }
    }
    Ok(())
}

/// Adapt an I/O-automaton schedule of system **B** (serial, or a serial
/// witness σ from the concurrency-control layer) into a [`ScheduleTrace`]
/// for `item`, so [`check_trace`] can cross-validate the automata against
/// the same oracle the simulator uses.
///
/// Replica sites are the item's DM indices; each of the item's transaction
/// managers becomes one traced transaction. Late discovery reads of a
/// write-TM (read accesses performing after the first install) are
/// redundant under serial execution and are dropped. An incomplete
/// trailing block (a run truncated mid-TM) is dropped too.
///
/// # Errors
///
/// A description of the first inadaptable operation (non-integer values,
/// unknown item, or interleaved transaction managers).
pub fn trace_from_schedule(
    layout: &Layout,
    item: ItemId,
    schedule: &Schedule<TxnOp>,
) -> Result<ScheduleTrace, String> {
    let il = layout
        .items
        .get(&item)
        .ok_or_else(|| format!("unknown item {item:?}"))?;
    let initial = il
        .item
        .init
        .as_int()
        .ok_or_else(|| format!("item {} has a non-integer initial value", il.item.name))?;
    if initial < 0 {
        return Err(format!(
            "item {} has a negative initial value",
            il.item.name
        ));
    }
    let site_of: std::collections::BTreeMap<ObjectId, usize> = il
        .dm_objects
        .iter()
        .enumerate()
        .map(|(s, o)| (*o, s))
        .collect();

    let mut trace =
        ScheduleTrace::new(format!("schedule:{}", il.item.name), il.dm_objects.len(), 0);
    trace.initial = initial as u64;

    struct OpenTm {
        tid: Tid,
        kind: TmKind,
        /// `value(T)` for write-TMs.
        param: Option<u64>,
        /// The TM's announced result (read-TMs), once it request-commits.
        result: Option<u64>,
        name: TraceTid,
        buf: Vec<TraceEvent>,
        installed: bool,
    }
    let mut ordinal: u64 = 0;
    let mut open: Option<OpenTm> = None;
    let mut specs: std::collections::BTreeMap<Tid, AccessSpec> = std::collections::BTreeMap::new();

    let as_u64 = |v: &Value, what: &str| -> Result<u64, String> {
        let n = v
            .as_int()
            .ok_or_else(|| format!("{what}: non-integer value {v}"))?;
        if n < 0 {
            return Err(format!("{what}: negative value {n}"));
        }
        Ok(n as u64)
    };

    for (i, op) in schedule.iter().enumerate() {
        match op {
            TxnOp::Create {
                tid,
                access: None,
                param,
            } => {
                let Some(role) = layout.tm_roles.get(tid) else {
                    continue;
                };
                if role.item() != item {
                    continue;
                }
                if let Some(o) = &open {
                    return Err(format!(
                        "TM {tid} created while TM {} is still running",
                        o.tid
                    ));
                }
                let (kind, tm_param) = match role {
                    TmRole::Read(_) => (TmKind::Read, None),
                    TmRole::Write(_) => {
                        let v = param
                            .as_ref()
                            .ok_or_else(|| format!("write-TM {tid} created without value(T)"))?;
                        (TmKind::Write, Some(as_u64(v, "value(T)")?))
                    }
                };
                let name = TraceTid {
                    client: 0,
                    op: ordinal,
                    attempt: 1,
                };
                ordinal += 1;
                open = Some(OpenTm {
                    tid: tid.clone(),
                    kind,
                    param: tm_param,
                    result: None,
                    name,
                    buf: vec![TraceEvent {
                        at_us: i as u64,
                        tid: name,
                        action: TraceAction::Create { kind },
                        faulted: false,
                    }],
                    installed: false,
                });
            }
            TxnOp::Create {
                tid,
                access: Some(spec),
                ..
            } => {
                let Some(o) = &open else { continue };
                if tid.parent().as_ref() == Some(&o.tid) && site_of.contains_key(&spec.object) {
                    specs.insert(tid.clone(), spec.clone());
                }
            }
            TxnOp::RequestCommit { tid, value } => {
                if let Some(spec) = specs.get(tid) {
                    // A performed replica access of the open TM.
                    let o = open
                        .as_mut()
                        .ok_or_else(|| format!("access {tid} performed outside a TM run"))?;
                    let site = site_of[&spec.object];
                    match spec.kind {
                        AccessKind::Read => {
                            if o.installed {
                                // Redundant late discovery read; erased.
                                continue;
                            }
                            let (vn, v) = value
                                .as_versioned()
                                .ok_or_else(|| format!("read access {tid} returned {value}"))?;
                            let v = as_u64(v, "DM read value")?;
                            o.buf.push(TraceEvent {
                                at_us: i as u64,
                                tid: o.name,
                                action: TraceAction::ReadDm { site, vn, value: v },
                                faulted: false,
                            });
                        }
                        AccessKind::Write => {
                            let (vn, v) = spec.data.as_versioned().ok_or_else(|| {
                                format!("write access {tid} installs {}", spec.data)
                            })?;
                            let v = as_u64(v, "DM install value")?;
                            o.installed = true;
                            o.buf.push(TraceEvent {
                                at_us: i as u64,
                                tid: o.name,
                                action: TraceAction::WriteDm { site, vn, value: v },
                                faulted: false,
                            });
                        }
                    }
                } else if open.as_ref().is_some_and(|o| &o.tid == tid) {
                    // The TM announced its result. Extra accesses it had
                    // outstanding may still perform before its COMMIT, so
                    // the trace's REQUEST-COMMIT event is synthesized at
                    // the COMMIT — after every replica access of the block.
                    let o = open.as_mut().expect("checked above");
                    if o.kind == TmKind::Read {
                        o.result = Some(as_u64(value, "read-TM result")?);
                    }
                }
            }
            TxnOp::Commit { tid, .. } if open.as_ref().is_some_and(|o| &o.tid == tid) => {
                let mut o = open.take().expect("checked above");
                let rc = match o.kind {
                    TmKind::Read => {
                        let dvn = o
                            .buf
                            .iter()
                            .filter_map(|e| match e.action {
                                TraceAction::ReadDm { vn, .. } => Some(vn),
                                _ => None,
                            })
                            .max()
                            .unwrap_or(0);
                        TraceAction::RequestCommit {
                            vn: dvn,
                            value: o.result.unwrap_or(0),
                        }
                    }
                    TmKind::Write => {
                        let install = o.buf.iter().find_map(|e| match e.action {
                            TraceAction::WriteDm { vn, value, .. } => Some((vn, value)),
                            _ => None,
                        });
                        let (vn, v) = install.unwrap_or((0, o.param.unwrap_or(0)));
                        TraceAction::RequestCommit { vn, value: v }
                    }
                    TmKind::Reconfig => {
                        unreachable!("the schedule adapter produces only read/write TMs")
                    }
                };
                o.buf.push(TraceEvent {
                    at_us: i as u64,
                    tid: o.name,
                    action: rc,
                    faulted: false,
                });
                o.buf.push(TraceEvent {
                    at_us: i as u64,
                    tid: o.name,
                    action: TraceAction::Commit,
                    faulted: false,
                });
                trace.events.append(&mut o.buf);
                specs.clear();
            }
            TxnOp::Abort { tid } => {
                if let Some(role) = layout.tm_roles.get(tid) {
                    if role.item() == item && open.as_ref().is_none_or(|o| &o.tid != tid) {
                        let kind = match role {
                            TmRole::Read(_) => TmKind::Read,
                            TmRole::Write(_) => TmKind::Write,
                        };
                        let name = TraceTid {
                            client: 0,
                            op: ordinal,
                            attempt: 1,
                        };
                        ordinal += 1;
                        trace.events.push(TraceEvent {
                            at_us: i as u64,
                            tid: name,
                            action: TraceAction::Abort {
                                kind,
                                reason: AbortReason::Forced,
                            },
                            faulted: false,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    // An incomplete trailing block (truncated run) is dropped.
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ConfigChoice, ItemSpec, SystemSpec, UserSpec, UserStep};
    use crate::theorem10::{run_system_b, RunOptions};
    use quorum::{Majority, Rowa};

    fn ev(tid: TraceTid, action: TraceAction) -> TraceEvent {
        TraceEvent {
            at_us: 0,
            tid,
            action,
            faulted: false,
        }
    }

    fn tid(op: u64) -> TraceTid {
        TraceTid {
            client: 0,
            op,
            attempt: 1,
        }
    }

    /// A valid write-then-read run over Majority(3).
    fn good_trace() -> ScheduleTrace {
        let mut t = ScheduleTrace::new("majority(2/3)", 3, 0);
        let w = tid(0);
        let r = tid(1);
        t.events = vec![
            ev(
                w,
                TraceAction::Create {
                    kind: TmKind::Write,
                },
            ),
            ev(
                w,
                TraceAction::ReadDm {
                    site: 0,
                    vn: 0,
                    value: 0,
                },
            ),
            ev(
                w,
                TraceAction::ReadDm {
                    site: 1,
                    vn: 0,
                    value: 0,
                },
            ),
            ev(
                w,
                TraceAction::WriteDm {
                    site: 0,
                    vn: 1,
                    value: 7,
                },
            ),
            ev(
                w,
                TraceAction::WriteDm {
                    site: 1,
                    vn: 1,
                    value: 7,
                },
            ),
            ev(w, TraceAction::RequestCommit { vn: 1, value: 7 }),
            ev(w, TraceAction::Commit),
            ev(r, TraceAction::Create { kind: TmKind::Read }),
            ev(
                r,
                TraceAction::ReadDm {
                    site: 1,
                    vn: 1,
                    value: 7,
                },
            ),
            ev(
                r,
                TraceAction::ReadDm {
                    site: 2,
                    vn: 0,
                    value: 0,
                },
            ),
            ev(r, TraceAction::RequestCommit { vn: 1, value: 7 }),
            ev(r, TraceAction::Commit),
        ];
        t
    }

    #[test]
    fn good_trace_conforms() {
        let report = check_trace(&good_trace(), &Majority::new(3)).expect("conforms");
        assert_eq!(report.committed, 2);
        assert_eq!(report.aborted, 0);
        assert_eq!(report.erased, 6);
        assert_eq!(report.events, 12);
        assert_eq!(report.max_vn, 1);
        // CREATE(T0) + 4 ops per committed TM.
        assert_eq!(report.alpha_len, 9);
    }

    #[test]
    fn aborted_attempts_project_to_abort_pairs() {
        let mut t = good_trace();
        t.events.insert(
            0,
            ev(
                TraceTid {
                    client: 1,
                    op: 0,
                    attempt: 1,
                },
                TraceAction::Abort {
                    kind: TmKind::Write,
                    reason: AbortReason::Timeout,
                },
            ),
        );
        let report = check_trace(&t, &Majority::new(3)).expect("conforms");
        assert_eq!(report.aborted, 1);
        assert_eq!(report.alpha_len, 11);
    }

    #[test]
    fn read_without_quorum_is_rejected() {
        let mut t = good_trace();
        // Drop the read's second READ-DM: {1} is not a majority read quorum.
        t.events.remove(9);
        let d = check_trace(&t, &Majority::new(3)).unwrap_err();
        assert_eq!(d.kind, DivergenceKind::NoReadQuorum);
        assert_eq!(d.event, 9, "divergence at the REQUEST-COMMIT: {d}");
    }

    #[test]
    fn commit_without_quorum_install_is_rejected() {
        let mut t = good_trace();
        // Drop one WRITE-DM: {0} is not a majority write quorum.
        t.events.remove(4);
        let d = check_trace(&t, &Majority::new(3)).unwrap_err();
        assert_eq!(d.kind, DivergenceKind::NoWriteQuorum);
        assert_eq!(d.event, 4, "divergence at the write's REQUEST-COMMIT: {d}");
    }

    #[test]
    fn stale_version_install_is_rejected() {
        let mut t = good_trace();
        // The write claims to install vn 2 after discovering vn 0.
        t.events[3] = ev(
            tid(0),
            TraceAction::WriteDm {
                site: 0,
                vn: 2,
                value: 7,
            },
        );
        let d = check_trace(&t, &Majority::new(3)).unwrap_err();
        assert!(matches!(d.kind, DivergenceKind::Malformed(_)), "{d}");
        assert_eq!(d.event, 3);
    }

    #[test]
    fn store_mismatch_is_rejected_at_the_read() {
        let mut t = good_trace();
        // The read claims site 1 still holds vn 0 — but the write installed
        // vn 1 there.
        t.events[8] = ev(
            tid(1),
            TraceAction::ReadDm {
                site: 1,
                vn: 0,
                value: 0,
            },
        );
        let d = check_trace(&t, &Majority::new(3)).unwrap_err();
        assert!(matches!(d.kind, DivergenceKind::Malformed(_)), "{d}");
        assert_eq!(d.event, 8);
    }

    #[test]
    fn truncated_block_is_rejected_at_end_of_trace() {
        let mut t = good_trace();
        t.events.truncate(10);
        let d = check_trace(&t, &Majority::new(3)).unwrap_err();
        assert_eq!(d.event, 10);
        assert!(matches!(d.kind, DivergenceKind::Malformed(_)), "{d}");
    }

    #[test]
    fn nonintersecting_quorums_trip_lemma_8() {
        // An illegal configuration: read quorum {2} misses write quorum
        // {0, 1}. The structural layer is satisfied (each block uses its
        // quorums), but the read returns a stale value — exactly what
        // Lemma 8's quorum-intersection requirement exists to rule out.
        let config = quorum::Configuration::new(
            vec![[2].into_iter().collect()],
            vec![[0, 1].into_iter().collect()],
        );
        assert!(!config.is_legal());
        let w = tid(0);
        let r = tid(1);
        let mut t = ScheduleTrace::new("illegal", 3, 0);
        t.events = vec![
            ev(
                w,
                TraceAction::Create {
                    kind: TmKind::Write,
                },
            ),
            ev(
                w,
                TraceAction::ReadDm {
                    site: 2,
                    vn: 0,
                    value: 0,
                },
            ),
            ev(
                w,
                TraceAction::WriteDm {
                    site: 0,
                    vn: 1,
                    value: 7,
                },
            ),
            ev(
                w,
                TraceAction::WriteDm {
                    site: 1,
                    vn: 1,
                    value: 7,
                },
            ),
            ev(w, TraceAction::RequestCommit { vn: 1, value: 7 }),
            ev(w, TraceAction::Commit),
            ev(r, TraceAction::Create { kind: TmKind::Read }),
            ev(
                r,
                TraceAction::ReadDm {
                    site: 2,
                    vn: 0,
                    value: 0,
                },
            ),
            ev(r, TraceAction::RequestCommit { vn: 0, value: 0 }),
            ev(r, TraceAction::Commit),
        ];
        let d = check_trace(&t, &config).unwrap_err();
        assert!(matches!(d.kind, DivergenceKind::Lemma(_)), "{d}");
        assert_eq!(d.event, 9, "stale read detected at its COMMIT: {d}");
    }

    /// A reconfigure-then-write-then-read run over ROWA(3): generation 1
    /// shrinks the membership to {0, 1}, and the later data ops run (and
    /// are quorum-checked) under the new configuration.
    ///
    /// Event indices: reconfig TM 0–9 (REQUEST-COMMIT at 8), write TM
    /// 10–17 (REQUEST-COMMIT at 16), read TM 18–23.
    fn dynamic_trace() -> ScheduleTrace {
        let rt = tid(0);
        let wt = tid(1);
        let rd = tid(2);
        let members: ReplicaSet = [0usize, 1].into_iter().collect();
        let mut t = ScheduleTrace::new("rowa(3)", 3, 0);
        t.events = vec![
            // Reconfigure-TM: discover gen 0 at a config majority of the
            // full membership, install gen 1 = {0, 1} at an old-config
            // write quorum, refresh the data at the new members.
            ev(
                rt,
                TraceAction::Create {
                    kind: TmKind::Reconfig,
                },
            ),
            ev(rt, TraceAction::ReadCfg { site: 0, gen: 0 }),
            ev(rt, TraceAction::ReadCfg { site: 1, gen: 0 }),
            ev(
                rt,
                TraceAction::ReadDm {
                    site: 0,
                    vn: 0,
                    value: 0,
                },
            ),
            ev(
                rt,
                TraceAction::WriteCfg {
                    site: 0,
                    gen: 1,
                    members,
                },
            ),
            ev(
                rt,
                TraceAction::WriteCfg {
                    site: 1,
                    gen: 1,
                    members,
                },
            ),
            ev(
                rt,
                TraceAction::WriteDm {
                    site: 0,
                    vn: 0,
                    value: 0,
                },
            ),
            ev(
                rt,
                TraceAction::WriteDm {
                    site: 1,
                    vn: 0,
                    value: 0,
                },
            ),
            ev(
                rt,
                TraceAction::RequestCommit {
                    vn: 1,
                    value: members.bits() as u64,
                },
            ),
            ev(rt, TraceAction::Commit),
            // Write-TM at generation 1.
            ev(
                wt,
                TraceAction::Create {
                    kind: TmKind::Write,
                },
            ),
            ev(wt, TraceAction::ReadCfg { site: 0, gen: 1 }),
            ev(wt, TraceAction::ReadCfg { site: 1, gen: 1 }),
            ev(
                wt,
                TraceAction::ReadDm {
                    site: 0,
                    vn: 0,
                    value: 0,
                },
            ),
            ev(
                wt,
                TraceAction::WriteDm {
                    site: 0,
                    vn: 1,
                    value: 7,
                },
            ),
            ev(
                wt,
                TraceAction::WriteDm {
                    site: 1,
                    vn: 1,
                    value: 7,
                },
            ),
            ev(wt, TraceAction::RequestCommit { vn: 1, value: 7 }),
            ev(wt, TraceAction::Commit),
            // Read-TM at generation 1.
            ev(rd, TraceAction::Create { kind: TmKind::Read }),
            ev(rd, TraceAction::ReadCfg { site: 0, gen: 1 }),
            ev(rd, TraceAction::ReadCfg { site: 1, gen: 1 }),
            ev(
                rd,
                TraceAction::ReadDm {
                    site: 1,
                    vn: 1,
                    value: 7,
                },
            ),
            ev(rd, TraceAction::RequestCommit { vn: 1, value: 7 }),
            ev(rd, TraceAction::Commit),
        ];
        t
    }

    #[test]
    fn reconfiguring_trace_conforms_and_projects_without_the_reconfig() {
        let report = check_trace(&dynamic_trace(), &Rowa::new(3)).expect("conforms");
        assert_eq!(report.committed, 3);
        assert_eq!(report.aborted, 0);
        // Every READ/WRITE-DM and READ/WRITE-CFG is erased.
        assert_eq!(report.erased, 15);
        assert_eq!(report.events, 24);
        assert_eq!(report.max_vn, 1);
        // CREATE(T0) + 4 ops for each committed *data* TM; the
        // reconfigure-TM leaves no trace in α.
        assert_eq!(report.alpha_len, 9);
    }

    #[test]
    fn stale_generation_commit_is_rejected() {
        let mut t = dynamic_trace();
        // Strip the write-TM's configuration reads: it now runs at
        // generation 0, which generation 1 superseded.
        t.events.remove(12);
        t.events.remove(11);
        let d = check_trace(&t, &Rowa::new(3)).unwrap_err();
        assert_eq!(d.kind, DivergenceKind::StaleGeneration);
        assert_eq!(d.event, 14, "divergence at the write's REQUEST-COMMIT: {d}");
    }

    #[test]
    fn install_without_old_config_write_quorum_is_rejected() {
        let mut t = dynamic_trace();
        // Drop one WRITE-CFG: {0} is not a config majority of the old
        // membership {0, 1, 2}.
        t.events.remove(5);
        let d = check_trace(&t, &Rowa::new(3)).unwrap_err();
        assert_eq!(d.kind, DivergenceKind::NoConfigWriteQuorum);
        assert_eq!(
            d.event, 7,
            "divergence at the reconfig's REQUEST-COMMIT: {d}"
        );
    }

    #[test]
    fn dynamic_op_without_config_read_quorum_is_rejected() {
        let mut t = dynamic_trace();
        // Drop one of the write-TM's READ-CFGs: {0} is not a config
        // majority of the current membership {0, 1}.
        t.events.remove(12);
        let d = check_trace(&t, &Rowa::new(3)).unwrap_err();
        assert_eq!(d.kind, DivergenceKind::NoConfigReadQuorum);
        assert_eq!(d.event, 15, "divergence at the write's REQUEST-COMMIT: {d}");
    }

    #[test]
    fn config_access_under_a_non_resizable_quorum_system_is_rejected() {
        let mut t = dynamic_trace();
        // Read/write thresholds (3, 1) over 3 sites fit no quorum family,
        // so the checker refuses configuration accesses outright.
        let d = check_trace(&t, &Majority::with_sizes(3, 3, 1)).unwrap_err();
        assert!(matches!(d.kind, DivergenceKind::Malformed(_)), "{d}");
        assert_eq!(d.event, 1, "refused at the first READ-CFG: {d}");
        // And a generation the discovery never saw is malformed even under
        // a family: claim gen 2 was installed after reading gen 0.
        t.events[4] = ev(
            tid(0),
            TraceAction::WriteCfg {
                site: 0,
                gen: 2,
                members: [0usize, 1].into_iter().collect(),
            },
        );
        let d = check_trace(&t, &Rowa::new(3)).unwrap_err();
        assert!(matches!(d.kind, DivergenceKind::Malformed(_)), "{d}");
        assert_eq!(d.event, 4, "refused at the skipping WRITE-CFG: {d}");
    }

    #[test]
    fn projection_erases_exactly_the_replica_accesses() {
        let t = good_trace();
        let (alpha, src) = project_trace(&t);
        assert_eq!(alpha.len(), 9);
        assert_eq!(src.len(), 9);
        assert!(alpha.iter().all(|op| !matches!(
            op,
            TxnOp::RequestCommit {
                value: Value::Versioned { .. },
                ..
            }
        )));
        // First op is CREATE(T0).
        assert!(matches!(
            alpha.as_slice()[0],
            TxnOp::Create { ref tid, .. } if tid.is_root()
        ));
    }

    #[test]
    fn system_b_schedules_adapt_and_conform() {
        let spec = SystemSpec {
            items: vec![ItemSpec {
                name: "x".into(),
                init: Value::Int(0),
                replicas: 3,
                config: ConfigChoice::Majority,
            }],
            plain: vec![],
            users: vec![
                UserSpec::new(vec![UserStep::Write(0, Value::Int(41)), UserStep::Read(0)]),
                UserSpec::new(vec![UserStep::Read(0), UserStep::Write(0, Value::Int(42))]),
            ],
            strategy: Default::default(),
        };
        let mut checked = 0;
        for seed in 0..8u64 {
            let opts = RunOptions {
                seed,
                ..RunOptions::default()
            };
            let (beta, layout) = run_system_b(&spec, opts).expect("B runs");
            let trace = trace_from_schedule(&layout, ItemId(0), &beta).expect("schedule adapts");
            let il = &layout.items[&ItemId(0)];
            let site_of: std::collections::BTreeMap<_, _> = il
                .dm_objects
                .iter()
                .enumerate()
                .map(|(s, o)| (*o, s))
                .collect();
            let config = il.config.map(|o| site_of[o]);
            let report = check_trace(&trace, &config).expect("B trace conforms");
            checked += report.committed;
        }
        assert!(checked > 0, "no TM ever committed across the seeds");
    }
}
