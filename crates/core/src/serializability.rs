//! Whole-run Theorem 11 serializability check for simulated nested
//! workloads.
//!
//! Theorem 11's conclusion, operationally: the committed top-level
//! transactions of a run, taken *in commit order*, must read and write the
//! logical items exactly as they would in a serial single-copy execution —
//! "the effect is just like an execution on a single copy database". The
//! simulator records, for every committed top-level transaction, the
//! committed projection of its access tree (aborted subtrees erased) as a
//! flat operation list in completion order; this module replays those
//! lists against a single-copy store.
//!
//! A read must observe either the last value committed by an earlier
//! transaction (the store) or an earlier write of its own transaction (the
//! overlay) — under strict two-phase copy-level locking with
//! abort-compensation those are the only values any committed read can
//! have seen. Writes update the overlay; the overlay folds into the store
//! when the transaction commits. The replay returns the final single-copy
//! state, which callers can cross-check against the replicated store's
//! final logical values.

use std::collections::BTreeMap;

/// One committed access of a committed top-level transaction, in
/// completion order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessRecord {
    /// The logical item (the caller's index space — global or per-domain).
    pub item: u32,
    /// Write (`true`) or read (`false`).
    pub write: bool,
    /// The value written, or the value the read observed.
    pub value: u64,
}

/// The committed projection of one top-level transaction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommittedTxn {
    /// The submitting client (diagnostics only).
    pub client: u32,
    /// Committed accesses in completion order, aborted subtrees erased.
    pub ops: Vec<AccessRecord>,
}

/// A committed read that no serial single-copy execution explains.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SerializabilityError {
    /// Index of the offending transaction in commit order.
    pub txn: usize,
    /// The submitting client.
    pub client: u32,
    /// Index of the offending access within the transaction.
    pub op: usize,
    /// The item read.
    pub item: u32,
    /// The value the read observed.
    pub observed: u64,
    /// The value a serial execution would have produced.
    pub expected: u64,
}

impl std::fmt::Display for SerializabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "txn #{} (client {}) op #{}: read of item {} observed {} but the \
             serial single-copy replay holds {}",
            self.txn, self.client, self.op, self.item, self.observed, self.expected
        )
    }
}

impl std::error::Error for SerializabilityError {}

/// Replay `txns` (in commit order) against a single-copy store initialised
/// by `initial`, returning the final store.
///
/// # Errors
///
/// The first committed read whose observed value matches neither the store
/// nor an earlier write of its own transaction.
pub fn check_commit_order_serializable(
    initial: &dyn Fn(u32) -> u64,
    txns: &[CommittedTxn],
) -> Result<BTreeMap<u32, u64>, SerializabilityError> {
    let mut store: BTreeMap<u32, u64> = BTreeMap::new();
    for (ti, txn) in txns.iter().enumerate() {
        let mut overlay: BTreeMap<u32, u64> = BTreeMap::new();
        for (oi, op) in txn.ops.iter().enumerate() {
            if op.write {
                overlay.insert(op.item, op.value);
            } else {
                let expected = overlay
                    .get(&op.item)
                    .or_else(|| store.get(&op.item))
                    .copied()
                    .unwrap_or_else(|| initial(op.item));
                if expected != op.value {
                    return Err(SerializabilityError {
                        txn: ti,
                        client: txn.client,
                        op: oi,
                        item: op.item,
                        observed: op.value,
                        expected,
                    });
                }
            }
        }
        store.append(&mut overlay);
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(item: u32, value: u64) -> AccessRecord {
        AccessRecord {
            item,
            write: false,
            value,
        }
    }

    fn w(item: u32, value: u64) -> AccessRecord {
        AccessRecord {
            item,
            write: true,
            value,
        }
    }

    fn txn(client: u32, ops: Vec<AccessRecord>) -> CommittedTxn {
        CommittedTxn { client, ops }
    }

    #[test]
    fn serial_chain_replays() {
        let txns = vec![
            txn(0, vec![r(0, 0), w(0, 5)]),
            txn(1, vec![r(0, 5), w(1, 7), r(1, 7)]),
            txn(2, vec![r(1, 7), r(0, 5)]),
        ];
        let store = check_commit_order_serializable(&|_| 0, &txns).unwrap();
        assert_eq!(store.get(&0), Some(&5));
        assert_eq!(store.get(&1), Some(&7));
    }

    #[test]
    fn own_writes_shadow_the_store() {
        let txns = vec![txn(0, vec![w(3, 9), r(3, 9), w(3, 11), r(3, 11)])];
        check_commit_order_serializable(&|_| 1, &txns).unwrap();
    }

    #[test]
    fn unexplained_read_is_rejected_with_position() {
        let txns = vec![
            txn(0, vec![w(0, 5)]),
            txn(4, vec![r(0, 6)]), // 6 was never written
        ];
        let err = check_commit_order_serializable(&|_| 0, &txns).unwrap_err();
        assert_eq!((err.txn, err.client, err.op), (1, 4, 0));
        assert_eq!((err.observed, err.expected), (6, 5));
    }

    #[test]
    fn commit_order_matters() {
        // Swapping two dependent transactions must break the replay.
        let a = txn(0, vec![w(0, 5)]);
        let b = txn(1, vec![r(0, 5)]);
        check_commit_order_serializable(&|_| 0, &[a.clone(), b.clone()]).unwrap();
        assert!(check_commit_order_serializable(&|_| 0, &[b, a]).is_err());
    }

    #[test]
    fn erased_aborted_subtree_is_consistent_with_compensation() {
        // A doomed subtree wrote 99 and was compensated back to 5; the
        // committed projection never mentions 99 and later reads see 5.
        let txns = vec![
            txn(0, vec![w(0, 5)]),
            txn(1, vec![r(0, 5) /* doomed write of 99 erased */, r(0, 5)]),
        ];
        check_commit_order_serializable(&|_| 0, &txns).unwrap();
    }
}
