//! The paper's sequence functions and lemma invariants, executable.
//!
//! `access(x, β)`, `logical-state(x, β)` and `current-vn(x, β)` (paper
//! §3.1) are implemented directly over schedules; [`LemmaMonitor`] checks
//! Lemma 7 and Lemma 8 incrementally after every step of a running
//! replicated system **B**.
//!
//! The lemma *statements* themselves — "the maximum version number among
//! the DMs equals `current-vn`" (Lemma 7), "some write-quorum holds the
//! current version, every holder of the current version holds the logical
//! state, and read-TMs return the logical state" (Lemma 8) — are factored
//! into the runtime-agnostic [`LemmaChecker`], shared between
//! [`LemmaMonitor`] (the I/O-automaton executor) and the discrete-event
//! simulator's `InvariantProbe` (`qc_sim`), so both runtimes assert the
//! same predicates against their own replica states.

use std::collections::BTreeMap;
use std::fmt;

use ioa::{Monitor, Schedule, System};
use nested_txn::{AccessKind, ObjectId, ReadWriteObject, Tid, TxnOp, Value};
use quorum::ReplicaSet;

use crate::item::ItemId;
use crate::spec::{Layout, TmRole};

/// A violation of Lemma 7 or Lemma 8, detected by a [`LemmaChecker`].
///
/// Values are rendered to strings at detection time so the violation type
/// stays independent of the checker's value type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LemmaViolation {
    /// Lemma 7: the maximum version number among the replicas differs from
    /// `current-vn`.
    Lemma7 {
        /// Maximum version number found across replica states.
        max_replica_vn: u64,
        /// `current-vn` implied by the committed writes.
        current_vn: u64,
    },
    /// Lemma 8(1a): no write-quorum's replicas all hold `current-vn`.
    Lemma8a {
        /// The current version number no write-quorum covers.
        current_vn: u64,
    },
    /// Lemma 8(1b): a replica at `current-vn` holds a value other than the
    /// logical state.
    Lemma8b {
        /// Index of the offending replica.
        replica: usize,
        /// The version number it holds (equal to `current-vn`).
        vn: u64,
        /// The value it holds, rendered with `Debug`.
        value: String,
        /// The logical state, rendered with `Debug`.
        logical: String,
    },
    /// Lemma 8(2): a committed read returned a value other than the
    /// logical state.
    Lemma8Read {
        /// The value the read returned, rendered with `Debug`.
        value: String,
        /// The logical state, rendered with `Debug`.
        logical: String,
    },
    /// A committed write's version number did not advance `current-vn` by
    /// exactly one — its read-quorum discovery missed the latest version.
    WriteVn {
        /// The version number the write committed.
        committed_vn: u64,
        /// `current-vn` at the time of the commit.
        current_vn: u64,
    },
}

impl fmt::Display for LemmaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LemmaViolation::Lemma7 {
                max_replica_vn,
                current_vn,
            } => write!(
                f,
                "Lemma 7 violated: max replica vn {max_replica_vn} ≠ current-vn {current_vn}"
            ),
            LemmaViolation::Lemma8a { current_vn } => write!(
                f,
                "Lemma 8(1a) violated: no write-quorum holds vn {current_vn}"
            ),
            LemmaViolation::Lemma8b {
                replica,
                vn,
                value,
                logical,
            } => write!(
                f,
                "Lemma 8(1b) violated: replica {replica} holds ({vn}, {value}) but \
                 logical-state is {logical}"
            ),
            LemmaViolation::Lemma8Read { value, logical } => write!(
                f,
                "Lemma 8(2) violated: read returned {value}, logical-state is {logical}"
            ),
            LemmaViolation::WriteVn {
                committed_vn,
                current_vn,
            } => write!(
                f,
                "write committed vn {committed_vn} but current-vn is {current_vn} \
                 (read-quorum discovery missed the latest version)"
            ),
        }
    }
}

/// Runtime-agnostic incremental checker for Lemma 7 and Lemma 8 over one
/// logical item's versioned replica states.
///
/// The checker tracks the two quantities the lemmas are stated against —
/// `current-vn(x, β)` and `logical-state(x, β)` — as committed writes are
/// fed to [`commit_write`](Self::commit_write), and asserts the lemma
/// predicates against whatever replica states the hosting runtime can
/// observe. [`LemmaMonitor`] instantiates it per step over the I/O-automaton
/// system's DM components; the simulator's `InvariantProbe` (`qc_sim`)
/// instantiates it over the simulated per-site stores. Generic over the
/// value type so both `Value`-based and plain-integer runtimes share the
/// exact predicate code.
#[derive(Clone, Debug)]
pub struct LemmaChecker<V> {
    current_vn: u64,
    logical: V,
}

impl<V: Clone + PartialEq + fmt::Debug> LemmaChecker<V> {
    /// A checker in the initial state: `current-vn = 0`, logical state
    /// `initial` (the paper's `i_x`).
    pub fn new(initial: V) -> Self {
        LemmaChecker {
            current_vn: 0,
            logical: initial,
        }
    }

    /// A checker at an arbitrary known state (used by [`LemmaMonitor`],
    /// which tracks `current-vn` and `logical-state` itself).
    pub fn from_state(current_vn: u64, logical: V) -> Self {
        LemmaChecker {
            current_vn,
            logical,
        }
    }

    /// `current-vn(x, β)` for the committed history fed so far.
    pub fn current_vn(&self) -> u64 {
        self.current_vn
    }

    /// `logical-state(x, β)` for the committed history fed so far.
    pub fn logical_state(&self) -> &V {
        &self.logical
    }

    /// Digest a committed logical write that installed `vn` with `value`.
    ///
    /// # Errors
    ///
    /// A committed write must have discovered the latest version at its
    /// read-quorum, so its `vn` must be exactly `current-vn + 1`; anything
    /// else is reported as [`LemmaViolation::WriteVn`] (and the checker
    /// state is left unchanged).
    pub fn commit_write(&mut self, vn: u64, value: V) -> Result<(), LemmaViolation> {
        if vn != self.current_vn + 1 {
            return Err(LemmaViolation::WriteVn {
                committed_vn: vn,
                current_vn: self.current_vn,
            });
        }
        self.current_vn = vn;
        self.logical = value;
        Ok(())
    }

    /// Digest a committed logical read that returned `value` — Lemma 8(2).
    ///
    /// # Errors
    ///
    /// [`LemmaViolation::Lemma8Read`] when `value` differs from the logical
    /// state.
    pub fn check_read(&self, value: &V) -> Result<(), LemmaViolation> {
        if *value != self.logical {
            return Err(LemmaViolation::Lemma8Read {
                value: format!("{value:?}"),
                logical: format!("{:?}", self.logical),
            });
        }
        Ok(())
    }

    /// Assert Lemma 7 — and, when `even_point` is true (the paper's
    /// "access(x, β) has even length": no access in progress), Lemma 8(1a)
    /// and 8(1b) — against the observed replica states.
    ///
    /// `states` yields `(replica index, version number, value)` for every
    /// replica of the item; `is_write_quorum` answers whether a set of
    /// replica indices covers a write-quorum.
    ///
    /// # Errors
    ///
    /// The first violated lemma, as a [`LemmaViolation`].
    pub fn check_states<'a, I, Q>(
        &self,
        states: I,
        even_point: bool,
        is_write_quorum: Q,
    ) -> Result<(), LemmaViolation>
    where
        V: 'a,
        I: IntoIterator<Item = (usize, u64, &'a V)>,
        Q: FnOnce(ReplicaSet) -> bool,
    {
        // One allocation-free pass: this runs after every committed
        // operation of a simulation, so it must not materialize the state
        // iterator. Everything the three lemma clauses need folds into
        // three accumulators, then the clauses are evaluated in the
        // original order (Lemma 7, 8(1a), 8(1b) — first offender in
        // iteration order), so the reported violation is unchanged.
        let mut max_replica_vn = 0u64;
        let mut holders = ReplicaSet::new();
        let mut mismatch: Option<(usize, u64, &V)> = None;
        for (r, vn, v) in states {
            max_replica_vn = max_replica_vn.max(vn);
            if vn == self.current_vn {
                holders.insert(r);
                if mismatch.is_none() && *v != self.logical {
                    mismatch = Some((r, vn, v));
                }
            }
        }
        // Lemma 7.
        if max_replica_vn != self.current_vn {
            return Err(LemmaViolation::Lemma7 {
                max_replica_vn,
                current_vn: self.current_vn,
            });
        }
        if even_point {
            // Lemma 8(1a).
            if !is_write_quorum(holders) {
                return Err(LemmaViolation::Lemma8a {
                    current_vn: self.current_vn,
                });
            }
            // Lemma 8(1b).
            if let Some((r, vn, v)) = mismatch {
                return Err(LemmaViolation::Lemma8b {
                    replica: r,
                    vn,
                    value: format!("{v:?}"),
                    logical: format!("{:?}", self.logical),
                });
            }
        }
        Ok(())
    }
}

/// `access(x, β)`: the subsequence of `β` containing the `CREATE` and
/// `REQUEST-COMMIT` operations for the members of `tm(x)`.
pub fn access_sequence<'a>(
    layout: &Layout,
    item: ItemId,
    beta: &'a Schedule<TxnOp>,
) -> Vec<&'a TxnOp> {
    beta.iter()
        .filter(|op| {
            matches!(op, TxnOp::Create { .. } | TxnOp::RequestCommit { .. })
                && layout
                    .tm_roles
                    .get(op.tid())
                    .is_some_and(|r| r.item() == item)
        })
        .collect()
}

/// `logical-state(x, β)`: `value(T)` of the last write-TM with a
/// `REQUEST-COMMIT` in `access(x, β)`, or `i_x` if there is none.
pub fn logical_state(layout: &Layout, item: ItemId, beta: &Schedule<TxnOp>) -> Value {
    let mut values: BTreeMap<Tid, Value> = BTreeMap::new();
    let mut state = layout.items[&item].item.init.clone();
    for op in beta.iter() {
        match op {
            TxnOp::Create { tid, param, .. } => {
                if matches!(layout.tm_roles.get(tid), Some(TmRole::Write(i)) if *i == item) {
                    values.insert(tid.clone(), param.clone().unwrap_or(Value::Nil));
                }
            }
            TxnOp::RequestCommit { tid, .. } => {
                if matches!(layout.tm_roles.get(tid), Some(TmRole::Write(i)) if *i == item) {
                    state = values.get(tid).cloned().unwrap_or(Value::Nil);
                }
            }
            _ => {}
        }
    }
    state
}

/// `current-vn(x, β)`: the maximum, over DMs for `x`, of the version number
/// of the last write access to that DM with a `REQUEST-COMMIT` in `β`; `0`
/// if there is none.
pub fn current_vn(layout: &Layout, item: ItemId, beta: &Schedule<TxnOp>) -> u64 {
    let il = &layout.items[&item];
    let mut spec_of: BTreeMap<Tid, (ObjectId, u64)> = BTreeMap::new();
    let mut last: BTreeMap<ObjectId, u64> = BTreeMap::new();
    for op in beta.iter() {
        match op {
            TxnOp::RequestCreate {
                tid,
                access: Some(spec),
                ..
            } if spec.kind == AccessKind::Write && il.dm_objects.contains(&spec.object) => {
                if let Some((vn, _)) = spec.data.as_versioned() {
                    spec_of.insert(tid.clone(), (spec.object, vn));
                }
            }
            TxnOp::RequestCommit { tid, .. } => {
                if let Some((o, vn)) = spec_of.get(tid) {
                    last.insert(*o, *vn);
                }
            }
            _ => {}
        }
    }
    last.values().copied().max().unwrap_or(0)
}

/// Per-item incremental tracking used by [`LemmaMonitor`].
#[derive(Clone, Debug)]
struct ItemTrack {
    open_tms: i64,
    logical_state: Value,
    dm_last_write_vn: BTreeMap<ObjectId, u64>,
}

/// An [`ioa::Monitor`] asserting, after every step of a running system
/// **B**:
///
/// * **Lemma 7**: the highest version number among the states of the DMs in
///   `dm(x)` equals `current-vn(x, β)`;
/// * **Lemma 8(1a)** (when `access(x, β)` is of even length): some
///   write-quorum's DMs all hold `current-vn(x, β)`;
/// * **Lemma 8(1b)** (even length): every DM holding `current-vn(x, β)`
///   holds `logical-state(x, β)` as its value;
/// * **Lemma 8(2)**: a read-TM's `REQUEST-COMMIT(T, v)` has
///   `v = logical-state(x, β)`.
#[derive(Debug)]
pub struct LemmaMonitor {
    layout: Layout,
    tm_values: BTreeMap<Tid, Value>,
    access_specs: BTreeMap<Tid, (ItemId, ObjectId, u64)>,
    items: BTreeMap<ItemId, ItemTrack>,
}

impl LemmaMonitor {
    /// A monitor for the given layout, in the initial (empty-schedule)
    /// state.
    pub fn new(layout: &Layout) -> Self {
        let items = layout
            .items
            .iter()
            .map(|(id, il)| {
                (
                    *id,
                    ItemTrack {
                        open_tms: 0,
                        logical_state: il.item.init.clone(),
                        dm_last_write_vn: BTreeMap::new(),
                    },
                )
            })
            .collect();
        LemmaMonitor {
            layout: layout.clone(),
            tm_values: BTreeMap::new(),
            access_specs: BTreeMap::new(),
            items,
        }
    }

    fn item_of_dm(&self, o: ObjectId) -> Option<ItemId> {
        self.layout
            .items
            .iter()
            .find(|(_, il)| il.dm_objects.contains(&o))
            .map(|(id, _)| *id)
    }

    /// Digest one operation; returns the read-TM commit to verify for
    /// Lemma 8(2), if the operation was one.
    fn digest(&mut self, op: &TxnOp) -> Option<(ItemId, Value)> {
        match op {
            TxnOp::RequestCreate {
                tid,
                access: Some(spec),
                ..
            } if spec.kind == AccessKind::Write => {
                if let Some(item) = self.item_of_dm(spec.object) {
                    if let Some((vn, _)) = spec.data.as_versioned() {
                        self.access_specs
                            .insert(tid.clone(), (item, spec.object, vn));
                    }
                }
                None
            }
            TxnOp::Create { tid, param, .. } => {
                if let Some(role) = self.layout.tm_roles.get(tid) {
                    let track = self.items.get_mut(&role.item()).expect("item tracked");
                    track.open_tms += 1;
                    if matches!(role, TmRole::Write(_)) {
                        self.tm_values
                            .insert(tid.clone(), param.clone().unwrap_or(Value::Nil));
                    }
                }
                None
            }
            TxnOp::RequestCommit { tid, value } => {
                if let Some(role) = self.layout.tm_roles.get(tid).cloned() {
                    let item = role.item();
                    let track = self.items.get_mut(&item).expect("item tracked");
                    track.open_tms -= 1;
                    match role {
                        TmRole::Write(_) => {
                            track.logical_state =
                                self.tm_values.get(tid).cloned().unwrap_or(Value::Nil);
                            None
                        }
                        TmRole::Read(_) => Some((item, value.clone())),
                    }
                } else if let Some((item, o, vn)) = self.access_specs.get(tid).copied() {
                    self.items
                        .get_mut(&item)
                        .expect("item tracked")
                        .dm_last_write_vn
                        .insert(o, vn);
                    None
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn check_item(
        &self,
        system: &System<TxnOp>,
        item: ItemId,
        read_commit: Option<&Value>,
    ) -> Result<(), String> {
        let il = &self.layout.items[&item];
        let track = &self.items[&item];
        // Gather DM states.
        let mut states: Vec<(ObjectId, u64, Value)> = Vec::new();
        for (r, name) in il.dm_names.iter().enumerate() {
            let dm: &ReadWriteObject = system
                .component_as(name)
                .ok_or_else(|| format!("missing DM component {name}"))?;
            let (vn, v) = dm
                .data()
                .as_versioned()
                .ok_or_else(|| format!("{name} holds non-versioned data"))?;
            states.push((il.dm_objects[r], vn, v.clone()));
        }
        let current = track.dm_last_write_vn.values().copied().max().unwrap_or(0);
        // Lemmas 7, 8(1a), 8(1b): shared predicate code with the simulator's
        // InvariantProbe, via LemmaChecker. Replica indices map to DM
        // objects positionally; 8(1a)/8(1b) apply only when access(x, β) has
        // even length (no TM in progress).
        let checker = LemmaChecker::from_state(current, track.logical_state.clone());
        checker
            .check_states(
                states
                    .iter()
                    .map(|(_, vn, v)| (*vn, v))
                    .enumerate()
                    .map(|(r, (vn, v))| (r, vn, v)),
                track.open_tms == 0,
                |holders: quorum::ReplicaSet| {
                    let objs: std::collections::BTreeSet<ObjectId> =
                        holders.iter().map(|r| il.dm_objects[r]).collect();
                    il.config.covers_write_quorum(&objs)
                },
            )
            .map_err(|e| format!("{item}: {e}"))?;
        // Lemma 8 (2).
        if let Some(v) = read_commit {
            checker.check_read(v).map_err(|e| format!("{item}: {e}"))?;
        }
        Ok(())
    }
}

impl Monitor<TxnOp> for LemmaMonitor {
    fn name(&self) -> String {
        "lemma-7-and-8".into()
    }

    fn check(
        &mut self,
        system: &System<TxnOp>,
        so_far: &Schedule<TxnOp>,
        step: usize,
    ) -> Result<(), String> {
        let op = &so_far[step];
        let read_commit = self.digest(op);
        let items: Vec<ItemId> = self.items.keys().copied().collect();
        for item in items {
            let rc = match &read_commit {
                Some((i, v)) if *i == item => Some(v),
                _ => None,
            };
            self.check_item(system, item, rc)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{build_system_b, ConfigChoice, ItemSpec, SystemSpec, UserSpec, UserStep};
    use crate::tm::TmStrategy;
    use nested_txn::AccessSpec;

    fn spec() -> SystemSpec {
        SystemSpec {
            items: vec![ItemSpec {
                name: "x".into(),
                init: Value::Int(10),
                replicas: 3,
                config: ConfigChoice::Majority,
            }],
            plain: vec![],
            users: vec![UserSpec::new(vec![
                UserStep::Write(0, Value::Int(1)),
                UserStep::Read(0),
            ])],
            strategy: TmStrategy::Eager,
        }
    }

    fn maj3(holders: quorum::ReplicaSet) -> bool {
        holders.len() >= 2
    }

    #[test]
    fn lemma_checker_green_on_faithful_history() {
        let mut c = LemmaChecker::new(0u64);
        assert_eq!(c.current_vn(), 0);
        // All replicas at the initial version satisfy everything.
        let states = [(0usize, 0u64, 0u64), (1, 0, 0), (2, 0, 0)];
        c.check_states(states.iter().map(|&(r, vn, ref v)| (r, vn, v)), true, maj3)
            .unwrap();
        // Install vn 1 = 7 at a majority {0, 2}.
        c.commit_write(1, 7).unwrap();
        let states = [(0usize, 1u64, 7u64), (1, 0, 0), (2, 1, 7)];
        c.check_states(states.iter().map(|&(r, vn, ref v)| (r, vn, v)), true, maj3)
            .unwrap();
        c.check_read(&7).unwrap();
        assert_eq!(*c.logical_state(), 7);
    }

    #[test]
    fn lemma_checker_fires_on_corrupted_replica() {
        let mut c = LemmaChecker::new(0u64);
        c.commit_write(1, 7).unwrap();
        // A replica scribbled with a version beyond current-vn → Lemma 7.
        let states = [(0usize, 1u64, 7u64), (1, 9, 3), (2, 1, 7)];
        let err = c
            .check_states(states.iter().map(|&(r, vn, ref v)| (r, vn, v)), true, maj3)
            .unwrap_err();
        assert!(matches!(
            err,
            LemmaViolation::Lemma7 {
                max_replica_vn: 9,
                current_vn: 1
            }
        ));
        // A replica at current-vn with the wrong value → Lemma 8(1b).
        let states = [(0usize, 1u64, 7u64), (1, 1, 3), (2, 1, 7)];
        let err = c
            .check_states(states.iter().map(|&(r, vn, ref v)| (r, vn, v)), true, maj3)
            .unwrap_err();
        assert!(matches!(err, LemmaViolation::Lemma8b { replica: 1, .. }));
        // Too few replicas at current-vn → Lemma 8(1a).
        let states = [(0usize, 1u64, 7u64), (1, 0, 0), (2, 0, 0)];
        let err = c
            .check_states(states.iter().map(|&(r, vn, ref v)| (r, vn, v)), true, maj3)
            .unwrap_err();
        assert!(matches!(err, LemmaViolation::Lemma8a { current_vn: 1 }));
        // ... but 8(1a)/8(1b) are not asserted at odd points.
        c.check_states(states.iter().map(|&(r, vn, ref v)| (r, vn, v)), false, maj3)
            .unwrap();
        // A read returning anything but the logical state → Lemma 8(2).
        let err = c.check_read(&3).unwrap_err();
        assert!(matches!(err, LemmaViolation::Lemma8Read { .. }));
    }

    #[test]
    fn lemma_checker_rejects_stale_write_vn() {
        let mut c = LemmaChecker::new(0u64);
        c.commit_write(1, 7).unwrap();
        // A second write at the same vn means its discovery missed vn 1.
        let err = c.commit_write(1, 8).unwrap_err();
        assert!(matches!(
            err,
            LemmaViolation::WriteVn {
                committed_vn: 1,
                current_vn: 1
            }
        ));
        // State unchanged by the rejected write.
        assert_eq!(c.current_vn(), 1);
        assert_eq!(*c.logical_state(), 7);
        assert!(format!("{err}").contains("missed the latest version"));
    }

    #[test]
    fn sequence_functions_on_empty_schedule() {
        let b = build_system_b(&spec());
        let empty = Schedule::new();
        assert_eq!(access_sequence(&b.layout, ItemId(0), &empty).len(), 0);
        assert_eq!(logical_state(&b.layout, ItemId(0), &empty), Value::Int(10));
        assert_eq!(current_vn(&b.layout, ItemId(0), &empty), 0);
    }

    #[test]
    fn logical_state_follows_write_tm_commits() {
        let b = build_system_b(&spec());
        let tm = Tid::root().child(0).child(0); // the write TM
        let sched: Schedule<TxnOp> = vec![
            TxnOp::Create {
                tid: tm.clone(),
                access: None,
                param: Some(Value::Int(1)),
            },
            TxnOp::RequestCommit {
                tid: tm.clone(),
                value: Value::Nil,
            },
        ]
        .into();
        assert_eq!(logical_state(&b.layout, ItemId(0), &sched), Value::Int(1));
        // Before the REQUEST-COMMIT, the initial value stands.
        assert_eq!(
            logical_state(&b.layout, ItemId(0), &sched.prefix(1)),
            Value::Int(10)
        );
    }

    #[test]
    fn current_vn_tracks_last_write_per_dm() {
        let b = build_system_b(&spec());
        let il = &b.layout.items[&ItemId(0)];
        let tm = Tid::root().child(0).child(0);
        let a0 = tm.child(0);
        let sched: Schedule<TxnOp> = vec![
            TxnOp::RequestCreate {
                tid: a0.clone(),
                access: Some(AccessSpec::write(
                    il.dm_objects[0],
                    Value::versioned(5, Value::Int(1)),
                )),
                param: None,
            },
            TxnOp::RequestCommit {
                tid: a0.clone(),
                value: Value::Nil,
            },
        ]
        .into();
        assert_eq!(current_vn(&b.layout, ItemId(0), &sched), 5);
        // The write access must REQUEST-COMMIT for its vn to count.
        assert_eq!(current_vn(&b.layout, ItemId(0), &sched.prefix(1)), 0);
    }

    #[test]
    fn access_sequence_filters_tm_ops_only() {
        let b = build_system_b(&spec());
        let tm = Tid::root().child(0).child(0);
        let user = Tid::root().child(0);
        let sched: Schedule<TxnOp> = vec![
            TxnOp::Create {
                tid: user,
                access: None,
                param: None,
            },
            TxnOp::Create {
                tid: tm.clone(),
                access: None,
                param: Some(Value::Int(1)),
            },
            TxnOp::RequestCommit {
                tid: tm,
                value: Value::Nil,
            },
        ]
        .into();
        assert_eq!(access_sequence(&b.layout, ItemId(0), &sched).len(), 2);
    }
}
