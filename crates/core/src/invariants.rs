//! The paper's sequence functions and lemma invariants, executable.
//!
//! `access(x, β)`, `logical-state(x, β)` and `current-vn(x, β)` (paper
//! §3.1) are implemented directly over schedules; [`LemmaMonitor`] checks
//! Lemma 7 and Lemma 8 incrementally after every step of a running
//! replicated system **B**.

use std::collections::BTreeMap;

use ioa::{Monitor, Schedule, System};
use nested_txn::{AccessKind, ObjectId, ReadWriteObject, Tid, TxnOp, Value};

use crate::item::ItemId;
use crate::spec::{Layout, TmRole};

/// `access(x, β)`: the subsequence of `β` containing the `CREATE` and
/// `REQUEST-COMMIT` operations for the members of `tm(x)`.
pub fn access_sequence<'a>(layout: &Layout, item: ItemId, beta: &'a Schedule<TxnOp>) -> Vec<&'a TxnOp> {
    beta.iter()
        .filter(|op| {
            matches!(op, TxnOp::Create { .. } | TxnOp::RequestCommit { .. })
                && layout
                    .tm_roles
                    .get(op.tid())
                    .is_some_and(|r| r.item() == item)
        })
        .collect()
}

/// `logical-state(x, β)`: `value(T)` of the last write-TM with a
/// `REQUEST-COMMIT` in `access(x, β)`, or `i_x` if there is none.
pub fn logical_state(layout: &Layout, item: ItemId, beta: &Schedule<TxnOp>) -> Value {
    let mut values: BTreeMap<Tid, Value> = BTreeMap::new();
    let mut state = layout.items[&item].item.init.clone();
    for op in beta.iter() {
        match op {
            TxnOp::Create { tid, param, .. } => {
                if matches!(layout.tm_roles.get(tid), Some(TmRole::Write(i)) if *i == item) {
                    values.insert(tid.clone(), param.clone().unwrap_or(Value::Nil));
                }
            }
            TxnOp::RequestCommit { tid, .. } => {
                if matches!(layout.tm_roles.get(tid), Some(TmRole::Write(i)) if *i == item) {
                    state = values.get(tid).cloned().unwrap_or(Value::Nil);
                }
            }
            _ => {}
        }
    }
    state
}

/// `current-vn(x, β)`: the maximum, over DMs for `x`, of the version number
/// of the last write access to that DM with a `REQUEST-COMMIT` in `β`; `0`
/// if there is none.
pub fn current_vn(layout: &Layout, item: ItemId, beta: &Schedule<TxnOp>) -> u64 {
    let il = &layout.items[&item];
    let mut spec_of: BTreeMap<Tid, (ObjectId, u64)> = BTreeMap::new();
    let mut last: BTreeMap<ObjectId, u64> = BTreeMap::new();
    for op in beta.iter() {
        match op {
            TxnOp::RequestCreate { tid, access: Some(spec), .. }
                if spec.kind == AccessKind::Write && il.dm_objects.contains(&spec.object) =>
            {
                if let Some((vn, _)) = spec.data.as_versioned() {
                    spec_of.insert(tid.clone(), (spec.object, vn));
                }
            }
            TxnOp::RequestCommit { tid, .. } => {
                if let Some((o, vn)) = spec_of.get(tid) {
                    last.insert(*o, *vn);
                }
            }
            _ => {}
        }
    }
    last.values().copied().max().unwrap_or(0)
}

/// Per-item incremental tracking used by [`LemmaMonitor`].
#[derive(Clone, Debug)]
struct ItemTrack {
    open_tms: i64,
    logical_state: Value,
    dm_last_write_vn: BTreeMap<ObjectId, u64>,
}

/// An [`ioa::Monitor`] asserting, after every step of a running system
/// **B**:
///
/// * **Lemma 7**: the highest version number among the states of the DMs in
///   `dm(x)` equals `current-vn(x, β)`;
/// * **Lemma 8(1a)** (when `access(x, β)` is of even length): some
///   write-quorum's DMs all hold `current-vn(x, β)`;
/// * **Lemma 8(1b)** (even length): every DM holding `current-vn(x, β)`
///   holds `logical-state(x, β)` as its value;
/// * **Lemma 8(2)**: a read-TM's `REQUEST-COMMIT(T, v)` has
///   `v = logical-state(x, β)`.
#[derive(Debug)]
pub struct LemmaMonitor {
    layout: Layout,
    tm_values: BTreeMap<Tid, Value>,
    access_specs: BTreeMap<Tid, (ItemId, ObjectId, u64)>,
    items: BTreeMap<ItemId, ItemTrack>,
}

impl LemmaMonitor {
    /// A monitor for the given layout, in the initial (empty-schedule)
    /// state.
    pub fn new(layout: &Layout) -> Self {
        let items = layout
            .items
            .iter()
            .map(|(id, il)| {
                (
                    *id,
                    ItemTrack {
                        open_tms: 0,
                        logical_state: il.item.init.clone(),
                        dm_last_write_vn: BTreeMap::new(),
                    },
                )
            })
            .collect();
        LemmaMonitor {
            layout: layout.clone(),
            tm_values: BTreeMap::new(),
            access_specs: BTreeMap::new(),
            items,
        }
    }

    fn item_of_dm(&self, o: ObjectId) -> Option<ItemId> {
        self.layout
            .items
            .iter()
            .find(|(_, il)| il.dm_objects.contains(&o))
            .map(|(id, _)| *id)
    }

    /// Digest one operation; returns the read-TM commit to verify for
    /// Lemma 8(2), if the operation was one.
    fn digest(&mut self, op: &TxnOp) -> Option<(ItemId, Value)> {
        match op {
            TxnOp::RequestCreate {
                tid,
                access: Some(spec),
                ..
            } if spec.kind == AccessKind::Write => {
                if let Some(item) = self.item_of_dm(spec.object) {
                    if let Some((vn, _)) = spec.data.as_versioned() {
                        self.access_specs.insert(tid.clone(), (item, spec.object, vn));
                    }
                }
                None
            }
            TxnOp::Create { tid, param, .. } => {
                if let Some(role) = self.layout.tm_roles.get(tid) {
                    let track = self.items.get_mut(&role.item()).expect("item tracked");
                    track.open_tms += 1;
                    if matches!(role, TmRole::Write(_)) {
                        self.tm_values
                            .insert(tid.clone(), param.clone().unwrap_or(Value::Nil));
                    }
                }
                None
            }
            TxnOp::RequestCommit { tid, value } => {
                if let Some(role) = self.layout.tm_roles.get(tid).cloned() {
                    let item = role.item();
                    let track = self.items.get_mut(&item).expect("item tracked");
                    track.open_tms -= 1;
                    match role {
                        TmRole::Write(_) => {
                            track.logical_state =
                                self.tm_values.get(tid).cloned().unwrap_or(Value::Nil);
                            None
                        }
                        TmRole::Read(_) => Some((item, value.clone())),
                    }
                } else if let Some((item, o, vn)) = self.access_specs.get(tid).copied() {
                    self.items
                        .get_mut(&item)
                        .expect("item tracked")
                        .dm_last_write_vn
                        .insert(o, vn);
                    None
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn check_item(
        &self,
        system: &System<TxnOp>,
        item: ItemId,
        read_commit: Option<&Value>,
    ) -> Result<(), String> {
        let il = &self.layout.items[&item];
        let track = &self.items[&item];
        // Gather DM states.
        let mut states: Vec<(ObjectId, u64, Value)> = Vec::new();
        for (r, name) in il.dm_names.iter().enumerate() {
            let dm: &ReadWriteObject = system
                .component_as(name)
                .ok_or_else(|| format!("missing DM component {name}"))?;
            let (vn, v) = dm
                .data()
                .as_versioned()
                .ok_or_else(|| format!("{name} holds non-versioned data"))?;
            states.push((il.dm_objects[r], vn, v.clone()));
        }
        let current = track
            .dm_last_write_vn
            .values()
            .copied()
            .max()
            .unwrap_or(0);
        // Lemma 7.
        let max_state = states.iter().map(|(_, vn, _)| *vn).max().unwrap_or(0);
        if max_state != current {
            return Err(format!(
                "Lemma 7 violated for {item}: max DM vn {max_state} ≠ current-vn {current}"
            ));
        }
        // Lemma 8 (1a, 1b): only when access(x, β) has even length.
        if track.open_tms == 0 {
            let holders: std::collections::BTreeSet<ObjectId> = states
                .iter()
                .filter(|(_, vn, _)| *vn == current)
                .map(|(o, _, _)| *o)
                .collect();
            if !il.config.covers_write_quorum(&holders) {
                return Err(format!(
                    "Lemma 8(1a) violated for {item}: no write-quorum holds vn {current}"
                ));
            }
            for (o, vn, v) in &states {
                if *vn == current && *v != track.logical_state {
                    return Err(format!(
                        "Lemma 8(1b) violated for {item}: DM {o} holds ({vn}, {v}) but \
                         logical-state is {}",
                        track.logical_state
                    ));
                }
            }
        }
        // Lemma 8 (2).
        if let Some(v) = read_commit {
            if *v != track.logical_state {
                return Err(format!(
                    "Lemma 8(2) violated for {item}: read-TM returned {v}, logical-state is {}",
                    track.logical_state
                ));
            }
        }
        Ok(())
    }
}

impl Monitor<TxnOp> for LemmaMonitor {
    fn name(&self) -> String {
        "lemma-7-and-8".into()
    }

    fn check(
        &mut self,
        system: &System<TxnOp>,
        so_far: &Schedule<TxnOp>,
        step: usize,
    ) -> Result<(), String> {
        let op = &so_far[step];
        let read_commit = self.digest(op);
        let items: Vec<ItemId> = self.items.keys().copied().collect();
        for item in items {
            let rc = match &read_commit {
                Some((i, v)) if *i == item => Some(v),
                _ => None,
            };
            self.check_item(system, item, rc)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{build_system_b, ConfigChoice, ItemSpec, SystemSpec, UserSpec, UserStep};
    use crate::tm::TmStrategy;
    use nested_txn::AccessSpec;

    fn spec() -> SystemSpec {
        SystemSpec {
            items: vec![ItemSpec {
                name: "x".into(),
                init: Value::Int(10),
                replicas: 3,
                config: ConfigChoice::Majority,
            }],
            plain: vec![],
            users: vec![UserSpec::new(vec![
                UserStep::Write(0, Value::Int(1)),
                UserStep::Read(0),
            ])],
            strategy: TmStrategy::Eager,
        }
    }

    #[test]
    fn sequence_functions_on_empty_schedule() {
        let b = build_system_b(&spec());
        let empty = Schedule::new();
        assert_eq!(access_sequence(&b.layout, ItemId(0), &empty).len(), 0);
        assert_eq!(logical_state(&b.layout, ItemId(0), &empty), Value::Int(10));
        assert_eq!(current_vn(&b.layout, ItemId(0), &empty), 0);
    }

    #[test]
    fn logical_state_follows_write_tm_commits() {
        let b = build_system_b(&spec());
        let tm = Tid::root().child(0).child(0); // the write TM
        let sched: Schedule<TxnOp> = vec![
            TxnOp::Create {
                tid: tm.clone(),
                access: None,
                param: Some(Value::Int(1)),
            },
            TxnOp::RequestCommit {
                tid: tm.clone(),
                value: Value::Nil,
            },
        ]
        .into();
        assert_eq!(logical_state(&b.layout, ItemId(0), &sched), Value::Int(1));
        // Before the REQUEST-COMMIT, the initial value stands.
        assert_eq!(
            logical_state(&b.layout, ItemId(0), &sched.prefix(1)),
            Value::Int(10)
        );
    }

    #[test]
    fn current_vn_tracks_last_write_per_dm() {
        let b = build_system_b(&spec());
        let il = &b.layout.items[&ItemId(0)];
        let tm = Tid::root().child(0).child(0);
        let a0 = tm.child(0);
        let sched: Schedule<TxnOp> = vec![
            TxnOp::RequestCreate {
                tid: a0.clone(),
                access: Some(AccessSpec::write(
                    il.dm_objects[0],
                    Value::versioned(5, Value::Int(1)),
                )),
                param: None,
            },
            TxnOp::RequestCommit {
                tid: a0.clone(),
                value: Value::Nil,
            },
        ]
        .into();
        assert_eq!(current_vn(&b.layout, ItemId(0), &sched), 5);
        // The write access must REQUEST-COMMIT for its vn to count.
        assert_eq!(current_vn(&b.layout, ItemId(0), &sched.prefix(1)), 0);
    }

    #[test]
    fn access_sequence_filters_tm_ops_only() {
        let b = build_system_b(&spec());
        let tm = Tid::root().child(0).child(0);
        let user = Tid::root().child(0);
        let sched: Schedule<TxnOp> = vec![
            TxnOp::Create {
                tid: user,
                access: None,
                param: None,
            },
            TxnOp::Create {
                tid: tm.clone(),
                access: None,
                param: Some(Value::Int(1)),
            },
            TxnOp::RequestCommit {
                tid: tm,
                value: Value::Nil,
            },
        ]
        .into();
        assert_eq!(access_sequence(&b.layout, ItemId(0), &sched).len(), 2);
    }
}
