//! Theorem 10, executable: the projection of every schedule of the
//! replicated system **B** is a schedule of the non-replicated system **A**.
//!
//! The paper's construction: "We construct α by removing from β all the
//! REQUEST-CREATE(T), CREATE(T), REQUEST-COMMIT(T,v), COMMIT(T,v), and
//! ABORT(T) operations for all transactions T in acc(x) for all x ∈ I."
//! We perform exactly that erasure and then *replay* α on a freshly built
//! system A, step by step; any refusal refutes the theorem. We additionally
//! verify the two stated conditions: α and β agree at every non-replica
//! object and at every user transaction.

use std::error::Error;
use std::fmt;

use ioa::{Executor, IoaError, Schedule, WeightedPolicy};
use nested_txn::{SystemWfMonitor, Tid, TxnOp};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::invariants::LemmaMonitor;
use crate::spec::{build_system_a, build_system_b, wf_monitor_for_a, Layout, SystemSpec};

/// Options controlling a randomized run of system **B**.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// RNG seed (runs are reproducible given the seed and spec).
    pub seed: u64,
    /// Maximum number of steps.
    pub max_steps: usize,
    /// Relative weight of spontaneous `ABORT`s against all other enabled
    /// operations (weight 100). `0` disables aborts.
    pub abort_weight: u32,
    /// Attach the well-formedness monitor.
    pub check_wf: bool,
    /// Attach the Lemma 7/8 monitor.
    pub check_lemmas: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            seed: 0,
            max_steps: 20_000,
            abort_weight: 3,
            check_wf: true,
            check_lemmas: true,
        }
    }
}

/// Run system **B** for `spec` under the given options, returning the
/// schedule `β` performed and the layout.
///
/// # Errors
///
/// Propagates executor errors, including monitor violations (which would
/// indicate a bug in the algorithm or the model).
pub fn run_system_b(
    spec: &SystemSpec,
    opts: RunOptions,
) -> Result<(Schedule<TxnOp>, Layout), IoaError> {
    let mut built = build_system_b(spec);
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut exec = Executor::new()
        .max_steps(opts.max_steps)
        .policy(WeightedPolicy::new(move |op: &TxnOp| match op {
            TxnOp::Abort { .. } => opts.abort_weight,
            _ => 100,
        }));
    if opts.check_wf {
        exec = exec.monitor(SystemWfMonitor::new());
    }
    if opts.check_lemmas {
        exec = exec.monitor(LemmaMonitor::new(&built.layout));
    }
    let execution = exec.run(&mut built.system, &mut rng)?;
    Ok((execution.into_schedule(), built.layout))
}

/// Why a Theorem 10 check failed.
#[derive(Clone, Debug)]
pub enum Theorem10Error {
    /// α was refused by system A.
    ReplayRefused(IoaError),
    /// `α|P ≠ β|P` for the named primitive (a user transaction or
    /// non-replica object) — cannot happen with the erasure construction,
    /// checked for completeness.
    ProjectionMismatch {
        /// The primitive at which the projections differ.
        primitive: String,
    },
}

impl fmt::Display for Theorem10Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Theorem10Error::ReplayRefused(e) => write!(f, "system A refused α: {e}"),
            Theorem10Error::ProjectionMismatch { primitive } => {
                write!(f, "projection mismatch at {primitive}")
            }
        }
    }
}

impl Error for Theorem10Error {}

/// Outcome of a successful Theorem 10 check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Theorem10Report {
    /// Length of β (the schedule of **B**).
    pub b_len: usize,
    /// Length of α (after erasing replica-access operations).
    pub a_len: usize,
    /// Number of user transactions whose projections were compared.
    pub users_checked: usize,
    /// Number of logical operations (TM names) that appear in β.
    pub tms_in_beta: usize,
}

/// The Theorem 10 construction: erase every replica-access operation.
pub fn project_to_a(layout: &Layout, beta: &Schedule<TxnOp>) -> Schedule<TxnOp> {
    beta.project(|op| !layout.is_replica_access_op(op))
}

/// The projection `σ|T` for a transaction `T`: `CREATE(T)`, returns for
/// `T`'s children, `REQUEST-CREATE` for `T`'s children, `REQUEST-COMMIT(T)`.
pub fn ops_of_transaction(tid: &Tid, sched: &Schedule<TxnOp>) -> Schedule<TxnOp> {
    sched.project(|op| match op {
        TxnOp::Create { tid: t, .. } | TxnOp::RequestCommit { tid: t, .. } => t == tid,
        TxnOp::RequestCreate { tid: t, .. }
        | TxnOp::Commit { tid: t, .. }
        | TxnOp::Abort { tid: t } => t.is_child_of(tid),
    })
}

/// Check Theorem 10 for a given schedule `β` of system **B**: construct α,
/// replay it on a fresh system **A** (with A's well-formedness monitored),
/// and compare projections at user transactions and non-replica objects.
///
/// # Errors
///
/// [`Theorem10Error`] describing the refutation, if any.
pub fn check_projection(
    spec: &SystemSpec,
    layout: &Layout,
    beta: &Schedule<TxnOp>,
) -> Result<Theorem10Report, Theorem10Error> {
    let alpha = project_to_a(layout, beta);
    let mut a = build_system_a(spec, layout);
    // Replay α step by step, feeding A's well-formedness monitor.
    a.system.reset();
    let mut wf = wf_monitor_for_a(layout);
    let mut so_far: Schedule<TxnOp> = Schedule::new();
    for (i, op) in alpha.iter().enumerate() {
        a.system.step(op).map_err(|e| {
            Theorem10Error::ReplayRefused(match e {
                IoaError::StepRefused {
                    component,
                    op,
                    reason,
                    ..
                } => IoaError::StepRefused {
                    component,
                    op,
                    reason,
                    at: Some(i),
                },
                other => other,
            })
        })?;
        so_far.push(op.clone());
        use ioa::Monitor as _;
        wf.check(&a.system, &so_far, i).map_err(|m| {
            Theorem10Error::ReplayRefused(IoaError::StepRefused {
                component: "wf-monitor(A)".into(),
                op: format!("{op:?}"),
                reason: m,
                at: Some(i),
            })
        })?;
    }
    // Condition 2: α|T = β|T for user transactions (including the root).
    let mut users_checked = 0;
    for u in layout.user_tids.iter().chain(std::iter::once(&Tid::root())) {
        if ops_of_transaction(u, beta) != ops_of_transaction(u, &alpha) {
            return Err(Theorem10Error::ProjectionMismatch {
                primitive: u.to_string(),
            });
        }
        users_checked += 1;
    }
    // Condition 1: α|O = β|O for non-replica objects.
    for (oid, name) in &layout.plain_objects {
        let of_obj = |s: &Schedule<TxnOp>| {
            s.project(|op| match op {
                TxnOp::Create {
                    access: Some(a), ..
                } => a.object == *oid,
                _ => false,
            })
        };
        if of_obj(beta) != of_obj(&alpha) {
            return Err(Theorem10Error::ProjectionMismatch {
                primitive: name.clone(),
            });
        }
    }
    let tms_in_beta = layout
        .tm_roles
        .keys()
        .filter(|t| beta.iter().any(|op| op.tid() == *t))
        .count();
    Ok(Theorem10Report {
        b_len: beta.len(),
        a_len: alpha.len(),
        users_checked,
        tms_in_beta,
    })
}

/// Run system **B** randomly and check Theorem 10 on the resulting
/// schedule. The single entry point used by tests and the experiment
/// harness.
///
/// # Errors
///
/// Run errors (including lemma-monitor violations) wrapped as
/// [`Theorem10Error::ReplayRefused`], or a genuine theorem refutation.
pub fn check_random(
    spec: &SystemSpec,
    opts: RunOptions,
) -> Result<Theorem10Report, Theorem10Error> {
    let (beta, layout) = run_system_b(spec, opts).map_err(Theorem10Error::ReplayRefused)?;
    check_projection(spec, &layout, &beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ConfigChoice, ItemSpec, PlainObjectSpec, SystemSpec, UserSpec, UserStep};
    use crate::tm::TmStrategy;
    use nested_txn::Value;

    fn spec() -> SystemSpec {
        SystemSpec {
            items: vec![
                ItemSpec {
                    name: "x".into(),
                    init: Value::Int(0),
                    replicas: 3,
                    config: ConfigChoice::Majority,
                },
                ItemSpec {
                    name: "y".into(),
                    init: Value::Text("init".into()),
                    replicas: 2,
                    config: ConfigChoice::Rowa,
                },
            ],
            plain: vec![PlainObjectSpec {
                name: "p".into(),
                init: Value::Int(5),
            }],
            users: vec![
                UserSpec::new(vec![
                    UserStep::Write(0, Value::Int(7)),
                    UserStep::Read(0),
                    UserStep::WritePlain(0, Value::Int(6)),
                ]),
                UserSpec::new(vec![
                    UserStep::Read(0),
                    UserStep::Write(1, Value::Text("hi".into())),
                    UserStep::Sub(UserSpec::new(vec![UserStep::Read(1)])),
                ]),
            ],
            strategy: TmStrategy::Eager,
        }
    }

    #[test]
    fn theorem10_holds_on_random_runs() {
        for seed in 0..25 {
            let report = check_random(
                &spec(),
                RunOptions {
                    seed,
                    ..RunOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(report.a_len <= report.b_len);
            assert_eq!(report.users_checked, 4); // 2 users + 1 sub + root
        }
    }

    #[test]
    fn theorem10_holds_without_aborts() {
        let report = check_random(
            &spec(),
            RunOptions {
                seed: 99,
                abort_weight: 0,
                ..RunOptions::default()
            },
        )
        .unwrap();
        // Without aborts the run should complete a good deal of work.
        assert!(report.tms_in_beta >= 1);
    }

    #[test]
    fn theorem10_holds_under_heavy_aborts() {
        for seed in 0..10 {
            check_random(
                &spec(),
                RunOptions {
                    seed,
                    abort_weight: 60,
                    ..RunOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn projection_erases_only_replica_accesses() {
        let (beta, layout) = run_system_b(
            &spec(),
            RunOptions {
                seed: 7,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let alpha = project_to_a(&layout, &beta);
        for op in alpha.iter() {
            assert!(!layout.is_replica_access_op(op));
        }
        let erased = beta.len() - alpha.len();
        let replica_ops = beta
            .iter()
            .filter(|op| layout.is_replica_access_op(op))
            .count();
        assert_eq!(erased, replica_ops);
    }

    #[test]
    fn targeted_strategy_also_satisfies_theorem10() {
        let mut s = spec();
        s.strategy = TmStrategy::Targeted;
        for seed in 0..10 {
            check_random(
                &s,
                RunOptions {
                    seed,
                    ..RunOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn chaotic_strategy_also_satisfies_theorem10() {
        let mut s = spec();
        s.strategy = TmStrategy::Chaotic { max_accesses: 6 };
        for seed in 0..10 {
            check_random(
                &s,
                RunOptions {
                    seed,
                    ..RunOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn under_erasure_is_refuted() {
        // Mutation: erase all replica accesses EXCEPT one — the leftover
        // access op names a transaction unknown to system A, so the replay
        // must refuse it (no component owns the operation).
        let (beta, layout) = run_system_b(
            &spec(),
            RunOptions {
                seed: 5,
                abort_weight: 0,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let mut kept_one = false;
        let alpha_bad: Schedule<TxnOp> = beta
            .iter()
            .filter(|op| {
                if !layout.is_replica_access_op(op) {
                    return true;
                }
                if !kept_one {
                    kept_one = true;
                    return true; // deliberately under-erase
                }
                false
            })
            .cloned()
            .collect();
        assert!(kept_one, "run contained replica accesses");
        let mut a = crate::spec::build_system_a(&spec(), &layout);
        assert!(
            a.system.replay(&alpha_bad).is_err(),
            "system A must refuse a leftover replica-access operation"
        );
    }

    #[test]
    fn illegal_configuration_is_rejected_at_build() {
        // Disjoint read/write quorums violate the legality requirement; the
        // builder asserts usability before composing the system.
        use quorum::Configuration;
        use std::collections::BTreeSet;
        let bad = Configuration::new(
            vec![BTreeSet::from([0usize])],
            vec![BTreeSet::from([1usize])],
        );
        assert!(!bad.is_legal());
        let mut s = spec();
        s.items[0].config = crate::spec::ConfigChoice::Explicit(bad);
        s.items[0].replicas = 2;
        let result = std::panic::catch_unwind(|| crate::spec::build_system_b(&s));
        assert!(result.is_err(), "illegal configuration must not build");
    }

    #[test]
    fn tampered_beta_is_refuted() {
        let (beta, layout) = run_system_b(
            &spec(),
            RunOptions {
                seed: 3,
                abort_weight: 0,
                ..RunOptions::default()
            },
        )
        .unwrap();
        // Corrupt a read-TM's returned value in β: replay on A must refuse,
        // because O(x) returns the true logical state.
        let mut ops = beta.into_vec();
        let mut tampered = false;
        for op in ops.iter_mut() {
            if let TxnOp::RequestCommit { tid, value } = op {
                if matches!(layout.tm_roles.get(tid), Some(crate::spec::TmRole::Read(_)))
                    && !value.is_nil()
                {
                    *value = Value::Int(987_654);
                    tampered = true;
                    break;
                }
            }
        }
        assert!(tampered, "no read-TM commit found to tamper with");
        let beta: Schedule<TxnOp> = ops.into();
        let err = check_projection(&spec(), &layout, &beta);
        assert!(err.is_err(), "tampered schedule must be refuted");
    }
}
