//! Quorum Consensus replication for nested transaction systems —
//! the core contribution of Goldman & Lynch, PODC 1987.
//!
//! Gifford's Quorum Consensus algorithm, generalized to (1) nested
//! transactions and (2) transaction failures (aborts), expressed in the
//! Lynch–Merritt I/O-automaton model and accompanied by *executable* forms
//! of the paper's correctness results:
//!
//! * [`ReadTm`] / [`WriteTm`] — the transaction-manager automata of §3.1,
//!   transcribed pre/postcondition by pre/postcondition;
//! * [`build_system_b`] — the replicated serial system **B** (data managers
//!   as versioned read-write objects, TMs as subtransactions of the user
//!   transactions);
//! * [`build_system_a`] — the corresponding non-replicated serial system
//!   **A** of §3.2, in which each logical item is a single read-write
//!   object whose accesses are the TM names;
//! * [`theorem10`] — the simulation result: erasing all replica-access
//!   operations from any schedule of **B** yields a schedule of **A**,
//!   identical at every user transaction and non-replica object;
//! * [`invariants`] — `access(x,β)`, `logical-state(x,β)`,
//!   `current-vn(x,β)` and runtime monitors for Lemma 7 and Lemma 8.
//!
//! # Quickstart
//!
//! ```
//! use qc_replication::{
//!     check_random, ConfigChoice, ItemSpec, RunOptions, SystemSpec, UserSpec, UserStep,
//! };
//! use nested_txn::Value;
//!
//! let spec = SystemSpec {
//!     items: vec![ItemSpec {
//!         name: "x".into(),
//!         init: Value::Int(0),
//!         replicas: 3,
//!         config: ConfigChoice::Majority,
//!     }],
//!     plain: vec![],
//!     users: vec![UserSpec::new(vec![
//!         UserStep::Write(0, Value::Int(42)),
//!         UserStep::Read(0),
//!     ])],
//!     strategy: Default::default(),
//! };
//! let report = check_random(&spec, RunOptions::default())?;
//! assert!(report.a_len <= report.b_len);
//! # Ok::<(), qc_replication::Theorem10Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
mod exhaustive;
pub mod genspec;
pub mod invariants;
mod item;
mod spec;
pub mod serializability;
pub mod theorem10;
mod tm;

pub use conformance::{
    check_trace, project_trace, trace_from_schedule, AbortReason, ConformanceReport, Divergence,
    DivergenceKind, ScheduleTrace, TmKind, TraceAction, TraceEvent, TraceTid,
};
pub use exhaustive::{verify_exhaustive, verify_exhaustive_with, ExhaustiveReport};
pub use genspec::{random_spec, GenParams};
pub use invariants::{
    access_sequence, current_vn, logical_state, LemmaChecker, LemmaMonitor, LemmaViolation,
};
pub use item::{ItemId, LogicalItem};
pub use serializability::{
    check_commit_order_serializable, AccessRecord, CommittedTxn, SerializabilityError,
};
pub use spec::{
    build_replicated_parts, build_system_a, build_system_b, user_spec_from_program,
    wf_monitor_for_a, BuiltSystem,
    Components, ConfigChoice, ItemLayout, ItemSpec, Layout, PlainObjectSpec, SystemSpec, TmRole,
    UserSpec, UserStep,
};
pub use theorem10::{
    check_projection, check_random, ops_of_transaction, project_to_a, run_system_b, RunOptions,
    Theorem10Error, Theorem10Report,
};
pub use tm::{ReadTm, TmStrategy, WriteTm};
