//! Random system-specification generation for model-based checking.
//!
//! The randomized checkers gain their strength from coverage over *system
//! shapes*, not just schedules: item counts, replica counts, quorum
//! configurations, user-transaction nesting, and operation mixes are all
//! drawn from seeded distributions here.

use rand::Rng;

use nested_txn::Value;

use crate::spec::{ConfigChoice, ItemSpec, PlainObjectSpec, SystemSpec, UserSpec, UserStep};
use crate::tm::TmStrategy;

/// Bounds for random specification generation.
#[derive(Clone, Copy, Debug)]
pub struct GenParams {
    /// Number of logical items (inclusive range).
    pub items: (usize, usize),
    /// Replicas per item.
    pub replicas: (usize, usize),
    /// Number of top-level user transactions.
    pub users: (usize, usize),
    /// Logical operations per user transaction.
    pub ops_per_user: (usize, usize),
    /// Maximum nesting depth of sub-transactions.
    pub max_depth: usize,
    /// Probability that a step is a sub-transaction (at depth < max).
    pub sub_probability: f64,
    /// Probability that a leaf step is a write.
    pub write_probability: f64,
    /// Include a plain (non-replicated) object and occasional direct
    /// accesses to it.
    pub with_plain: bool,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            items: (1, 3),
            replicas: (1, 5),
            users: (1, 3),
            ops_per_user: (1, 4),
            max_depth: 2,
            sub_probability: 0.25,
            write_probability: 0.5,
            with_plain: true,
        }
    }
}

fn range(rng: &mut dyn rand::RngCore, (lo, hi): (usize, usize)) -> usize {
    rng.gen_range(lo..=hi)
}

fn random_steps(
    rng: &mut dyn rand::RngCore,
    p: &GenParams,
    n_items: usize,
    depth: usize,
    counter: &mut i64,
) -> Vec<UserStep> {
    let n_ops = range(rng, p.ops_per_user);
    let mut steps = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let item = rng.gen_range(0..n_items);
        if depth < p.max_depth && rng.gen_bool(p.sub_probability) {
            let sub_steps = random_steps(rng, p, n_items, depth + 1, counter);
            steps.push(UserStep::Sub(UserSpec::new(sub_steps)));
        } else if p.with_plain && rng.gen_bool(0.15) {
            if rng.gen_bool(p.write_probability) {
                *counter += 1;
                steps.push(UserStep::WritePlain(0, Value::Int(*counter)));
            } else {
                steps.push(UserStep::ReadPlain(0));
            }
        } else if rng.gen_bool(p.write_probability) {
            *counter += 1;
            steps.push(UserStep::Write(item, Value::Int(*counter)));
        } else {
            steps.push(UserStep::Read(item));
        }
    }
    steps
}

/// Draw a random [`SystemSpec`] within the given bounds.
///
/// Every generated write carries a distinct value, so any value confusion
/// in the algorithms is observable.
pub fn random_spec(rng: &mut dyn rand::RngCore, p: &GenParams) -> SystemSpec {
    let n_items = range(rng, p.items);
    let mut items = Vec::with_capacity(n_items);
    for i in 0..n_items {
        let replicas = range(rng, p.replicas);
        let config = match rng.gen_range(0..3) {
            0 => ConfigChoice::Rowa,
            1 => ConfigChoice::Majority,
            _ => {
                // Read-all/write-one: the legal dual, rarely exercised
                // elsewhere.
                let universe: Vec<usize> = (0..replicas).collect();
                ConfigChoice::Explicit(quorum::generators::raow(&universe))
            }
        };
        items.push(ItemSpec {
            name: format!("x{i}"),
            init: Value::Int(-(i as i64) - 1),
            replicas,
            config,
        });
    }
    let plain = if p.with_plain {
        vec![PlainObjectSpec {
            name: "p".into(),
            init: Value::Int(0),
        }]
    } else {
        Vec::new()
    };
    let mut counter = 0i64;
    let n_users = range(rng, p.users);
    let users = (0..n_users)
        .map(|_| UserSpec::new(random_steps(rng, p, n_items, 0, &mut counter)))
        .collect();
    SystemSpec {
        items,
        plain,
        users,
        strategy: if rng.gen_bool(0.25) {
            TmStrategy::Chaotic { max_accesses: 6 }
        } else {
            TmStrategy::Eager
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generated_specs_build() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let spec = random_spec(&mut rng, &GenParams::default());
            let b = crate::spec::build_system_b(&spec);
            assert!(b.system.len() >= 2);
            for il in b.layout.items.values() {
                assert!(il.config.is_usable());
            }
        }
    }

    #[test]
    fn generated_specs_respect_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = GenParams {
            items: (2, 2),
            replicas: (3, 3),
            users: (1, 1),
            ops_per_user: (2, 2),
            max_depth: 0,
            sub_probability: 0.0,
            write_probability: 1.0,
            with_plain: false,
        };
        let spec = random_spec(&mut rng, &p);
        assert_eq!(spec.items.len(), 2);
        assert_eq!(spec.users.len(), 1);
        assert!(spec.plain.is_empty());
        assert_eq!(spec.users[0].steps.len(), 2);
    }

    #[test]
    fn distinct_write_values() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = GenParams {
            write_probability: 1.0,
            with_plain: false,
            sub_probability: 0.0,
            ..GenParams::default()
        };
        let spec = random_spec(&mut rng, &p);
        let mut vals = Vec::new();
        for u in &spec.users {
            for s in &u.steps {
                if let UserStep::Write(_, v) = s {
                    vals.push(v.clone());
                }
            }
        }
        let mut dedup = vals.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(vals.len(), dedup.len());
    }
}
