//! Exhaustive (small-scope) verification of the replication algorithm:
//! enumerate *every* schedule of a small system **B** and check Lemmas 7–8
//! in every reachable state and Theorem 10 on every maximal schedule.
//!
//! Because the erasure construction is monotone — the projection of a
//! prefix of β is a prefix of the projection of β — replaying the
//! projection of each *maximal* schedule covers all of its prefixes, so a
//! successful exploration verifies Theorem 10 over the system's entire
//! bounded behaviour, spontaneous aborts and all. This complements the
//! randomized checker: small scopes, total coverage.

use ioa::{
    explore_profiled, ExploreError, ExploreLimits, ExploreProfile, ExploreStats, ReplayStrategy,
    Schedule, System,
};
use nested_txn::{ReadWriteObject, TxnOp};

use crate::invariants::{access_sequence, current_vn, logical_state};
use crate::spec::{build_system_b, Layout, SystemSpec, TmRole};
use crate::theorem10::check_projection;

/// Outcome of an exhaustive verification.
#[derive(Clone, Copy, Debug)]
pub struct ExhaustiveReport {
    /// Exploration statistics.
    pub stats: ExploreStats,
    /// Maximal schedules whose projections were replayed on **A**.
    pub projections_checked: u64,
    /// State-reconstruction work counters (replayed steps, snapshots).
    pub profile: ExploreProfile,
}

/// Functional (non-incremental) form of the Lemma 7 / Lemma 8 state
/// checks, recomputed from the schedule — usable under the explorer's
/// backtracking, where incremental monitors cannot be.
fn check_lemmas_functional(
    system: &System<TxnOp>,
    layout: &Layout,
    sched: &Schedule<TxnOp>,
) -> Result<(), String> {
    for (item, il) in &layout.items {
        let mut states = Vec::new();
        for (r, name) in il.dm_names.iter().enumerate() {
            let dm: &ReadWriteObject = system
                .component_as(name)
                .ok_or_else(|| format!("missing DM {name}"))?;
            let (vn, v) = dm
                .data()
                .as_versioned()
                .ok_or_else(|| format!("{name} holds non-versioned data"))?;
            states.push((il.dm_objects[r], vn, v.clone()));
        }
        let cur = current_vn(layout, *item, sched);
        let max_state = states.iter().map(|(_, vn, _)| *vn).max().unwrap_or(0);
        if max_state != cur {
            return Err(format!(
                "Lemma 7: max DM vn {max_state} ≠ current-vn {cur} for {item}"
            ));
        }
        let acc = access_sequence(layout, *item, sched);
        if acc.len().is_multiple_of(2) {
            let state = logical_state(layout, *item, sched);
            let holders: std::collections::BTreeSet<_> = states
                .iter()
                .filter(|(_, vn, _)| *vn == cur)
                .map(|(o, _, _)| *o)
                .collect();
            if !il.config.covers_write_quorum(&holders) {
                return Err(format!(
                    "Lemma 8(1a): no write-quorum of {item} holds vn {cur}"
                ));
            }
            for (o, vn, v) in &states {
                if *vn == cur && *v != state {
                    return Err(format!(
                        "Lemma 8(1b): DM {o} holds {v} at current vn, logical-state {state}"
                    ));
                }
            }
        }
        // Lemma 8(2): a schedule ending in a read-TM REQUEST-COMMIT
        // returns the logical state.
        if let Some(TxnOp::RequestCommit { tid, value }) = sched.as_slice().last() {
            if matches!(layout.tm_roles.get(tid), Some(TmRole::Read(i)) if i == item) {
                let state = logical_state(layout, *item, sched);
                if *value != state {
                    return Err(format!(
                        "Lemma 8(2): read-TM returned {value}, logical-state {state}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Exhaustively verify Theorem 10 and Lemmas 7–8 for `spec` within
/// `limits`, over the *abort-free* behaviour of system **B**.
///
/// Spontaneous `ABORT`s are pruned from the enumeration: together with the
/// TMs' retry-on-abort logic they make the behaviour infinite (an aborted
/// access can always be reissued under a fresh name), so exhaustive
/// coverage is only meaningful without them. The randomized checkers
/// ([`crate::check_random`]) cover abort interleavings instead.
///
/// Use small specifications: the schedule space grows exponentially with
/// the number of operations. If the returned stats report
/// `truncated == false`, the verification covered the complete abort-free
/// behaviour.
///
/// # Errors
///
/// A description of the first violated property together with its witness
/// schedule.
pub fn verify_exhaustive(
    spec: &SystemSpec,
    limits: ExploreLimits,
) -> Result<ExhaustiveReport, String> {
    verify_exhaustive_with(spec, limits, ReplayStrategy::default())
}

/// [`verify_exhaustive`] with an explicit state-reconstruction strategy —
/// used to compare checkpointed exploration against the full-replay
/// baseline (the report's `profile` carries the work counters; `stats` is
/// strategy-independent).
///
/// # Errors
///
/// As for [`verify_exhaustive`].
pub fn verify_exhaustive_with(
    spec: &SystemSpec,
    limits: ExploreLimits,
    strategy: ReplayStrategy,
) -> Result<ExhaustiveReport, String> {
    let layout = build_system_b(spec).layout;
    let mut projections_checked = 0u64;
    let spec2 = spec.clone();
    let layout2 = layout.clone();
    let (stats, profile) = explore_profiled(
        move || build_system_b(&spec2).system,
        limits,
        strategy,
        |op: &TxnOp| !matches!(op, TxnOp::Abort { .. }),
        |system, sched, maximal| -> Result<(), String> {
            check_lemmas_functional(system, &layout2, sched)?;
            if maximal {
                check_projection(spec, &layout2, sched).map_err(|e| e.to_string())?;
                projections_checked += 1;
            }
            Ok(())
        },
    )
    .map_err(|e| match e {
        ExploreError::Property { schedule, error } => {
            format!("{error}\nwitness schedule:\n  {}", schedule.join("\n  "))
        }
        other => other.to_string(),
    })?;
    Ok(ExhaustiveReport {
        stats,
        projections_checked,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ConfigChoice, ItemSpec, UserSpec, UserStep};
    use nested_txn::Value;

    fn tiny(steps: Vec<UserStep>, replicas: usize, config: ConfigChoice) -> SystemSpec {
        SystemSpec {
            items: vec![ItemSpec {
                name: "x".into(),
                init: Value::Int(0),
                replicas,
                config,
            }],
            plain: vec![],
            users: vec![UserSpec::new(steps)],
            strategy: Default::default(),
        }
    }

    #[test]
    fn exhaustive_single_read_rowa() {
        let spec = tiny(vec![UserStep::Read(0)], 2, ConfigChoice::Rowa);
        let report = verify_exhaustive(
            &spec,
            ExploreLimits {
                max_depth: 40,
                max_schedules: 2_000_000,
            },
        )
        .unwrap();
        assert!(!report.stats.truncated, "behaviour fully covered");
        assert!(report.projections_checked > 1);
    }

    #[test]
    fn exhaustive_single_write_majority() {
        let spec = tiny(
            vec![UserStep::Write(0, Value::Int(1))],
            2,
            ConfigChoice::Majority,
        );
        let report = verify_exhaustive(
            &spec,
            ExploreLimits {
                max_depth: 60,
                max_schedules: 2_000_000,
            },
        )
        .unwrap();
        assert!(!report.stats.truncated);
        assert!(report.stats.quiescent > 0);
    }

    #[test]
    fn exhaustive_detects_seeded_fault() {
        // Sanity that the harness can fail: an illegal configuration where
        // the read quorum misses the write quorum would break Lemma 8; we
        // simulate by checking a *wrong* property instead (every maximal
        // schedule has even length — false as soon as aborts exist).
        let spec = tiny(vec![UserStep::Read(0)], 2, ConfigChoice::Rowa);
        let spec2 = spec.clone();
        let err = ioa::explore(
            move || build_system_b(&spec2).system,
            ExploreLimits {
                max_depth: 40,
                max_schedules: 50_000,
            },
            |_, sched, maximal| {
                if maximal && sched.len() % 2 == 1 {
                    Err("odd-length maximal schedule".to_string())
                } else {
                    Ok(())
                }
            },
        );
        assert!(err.is_err());
    }
}
