//! Logical data items.

use std::fmt;

use nested_txn::Value;

/// Identifier of a logical data item `x ∈ I`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A logical data item: "a variable, whose type is the tuple `(V_x, i_x)`"
/// — a domain of possible values and an initial value (paper §2.3).
///
/// The domain is left implicit (any [`Value`]); the special undefined value
/// `nil` is always a member.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogicalItem {
    /// The item's identifier.
    pub id: ItemId,
    /// Human-readable name for diagnostics.
    pub name: String,
    /// The initial value `i_x`.
    pub init: Value,
}

impl LogicalItem {
    /// A logical item with the given id, name, and initial value.
    pub fn new(id: ItemId, name: impl Into<String>, init: Value) -> Self {
        LogicalItem {
            id,
            name: name.into(),
            init,
        }
    }
}
