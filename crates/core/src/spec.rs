//! Declarative system specifications and the builders for the replicated
//! serial system **B** (paper §3.1) and the corresponding non-replicated
//! serial system **A** (paper §3.2).

use std::collections::BTreeMap;

use ioa::System;
use nested_txn::{
    AccessKind, AccessSpec, ChildRequest, ObjectId, ReadWriteObject, RegisteredAccess,
    ScriptProgram, ScriptStep, SerialScheduler, SystemWfMonitor, Tid, TransactionNode, TxnOp,
    Value,
};
use quorum::Configuration;

use crate::item::{ItemId, LogicalItem};
use crate::tm::{ReadTm, TmStrategy, WriteTm};

/// Choice of quorum configuration for a replicated item, expressed over
/// replica indices `0..replicas`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigChoice {
    /// Read-one / write-all.
    Rowa,
    /// Read-majority / write-majority.
    Majority,
    /// Gifford weighted voting: per-replica votes and read/write
    /// thresholds (`read + write > total votes`).
    Weighted {
        /// Votes per replica (length must equal the replica count).
        votes: Vec<u32>,
        /// Read threshold.
        read: u32,
        /// Write threshold.
        write: u32,
    },
    /// An explicit configuration over replica indices.
    Explicit(Configuration<usize>),
}

impl ConfigChoice {
    fn instantiate(&self, replicas: usize) -> Configuration<usize> {
        let universe: Vec<usize> = (0..replicas).collect();
        match self {
            ConfigChoice::Rowa => quorum::generators::rowa(&universe),
            ConfigChoice::Majority => quorum::generators::majority(&universe),
            ConfigChoice::Weighted { votes, read, write } => {
                assert_eq!(votes.len(), replicas, "one vote count per replica");
                let named: Vec<(usize, u32)> =
                    votes.iter().enumerate().map(|(i, &v)| (i, v)).collect();
                quorum::generators::weighted(&named, *read, *write)
            }
            ConfigChoice::Explicit(c) => c.clone(),
        }
    }
}

/// Specification of one replicated logical data item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ItemSpec {
    /// Human-readable name (`x`, `y`, …).
    pub name: String,
    /// Initial value `i_x`.
    pub init: Value,
    /// Number of data managers (replicas).
    pub replicas: usize,
    /// Quorum configuration.
    pub config: ConfigChoice,
}

/// Specification of a non-replicated basic object, accessed directly by
/// user transactions (a "non-replica access" in the paper's Figure 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlainObjectSpec {
    /// Human-readable name.
    pub name: String,
    /// Initial value.
    pub init: Value,
}

/// One step of a user transaction's program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UserStep {
    /// Logical read of the `i`-th item (spawns a read-TM in **B**, a read
    /// access in **A**).
    Read(usize),
    /// Logical write of the `i`-th item with a value.
    Write(usize, Value),
    /// Direct read access to the `i`-th plain object.
    ReadPlain(usize),
    /// Direct write access to the `i`-th plain object.
    WritePlain(usize, Value),
    /// A nested sub-transaction.
    Sub(UserSpec),
}

/// Specification of a (possibly nested) user transaction: steps executed
/// sequentially, then a `REQUEST-COMMIT` with `commit` (if any — the root
/// never commits).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct UserSpec {
    /// Steps, executed one at a time, each awaited to completion.
    pub steps: Vec<UserStep>,
    /// Value to commit with after all steps, or `None` to never commit.
    pub commit: Option<Value>,
}

impl UserSpec {
    /// A user transaction performing `steps` then committing `nil`.
    pub fn new(steps: Vec<UserStep>) -> Self {
        UserSpec {
            steps,
            commit: Some(Value::Nil),
        }
    }
}

/// Specification of a whole system: items, plain objects, and top-level
/// user transactions (children of the root `T0`).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SystemSpec {
    /// The replicated logical data items.
    pub items: Vec<ItemSpec>,
    /// Non-replicated objects.
    pub plain: Vec<PlainObjectSpec>,
    /// Top-level user transactions.
    pub users: Vec<UserSpec>,
    /// TM strategy (see [`TmStrategy`]).
    pub strategy: TmStrategy,
}

/// The role a transaction-manager name plays.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TmRole {
    /// A read-TM for the item.
    Read(ItemId),
    /// A write-TM for the item.
    Write(ItemId),
}

impl TmRole {
    /// The item this TM manages.
    pub fn item(&self) -> ItemId {
        match self {
            TmRole::Read(i) | TmRole::Write(i) => *i,
        }
    }
}

/// Layout of one item's replicas.
#[derive(Clone, Debug)]
pub struct ItemLayout {
    /// The logical item.
    pub item: LogicalItem,
    /// Object ids of the data managers, indexed by replica number.
    pub dm_objects: Vec<ObjectId>,
    /// Component names of the data managers, aligned with `dm_objects`.
    pub dm_names: Vec<String>,
    /// The configuration over DM object ids.
    pub config: Configuration<ObjectId>,
    /// The object id of the single read-write object `O(x)` in system A.
    pub a_object: ObjectId,
}

/// Everything the checkers need to know about how a [`SystemSpec`] was
/// realised: object allocation, TM roles, and transaction names.
#[derive(Clone, Debug, Default)]
pub struct Layout {
    /// Per-item layout.
    pub items: BTreeMap<ItemId, ItemLayout>,
    /// Every TM name and its role (`tm(x)` for each `x`, as a single map).
    pub tm_roles: BTreeMap<Tid, TmRole>,
    /// Plain (non-replica) objects: `(id, component name)`.
    pub plain_objects: Vec<(ObjectId, String)>,
    /// All user transaction names (non-access, non-TM), excluding the root.
    pub user_tids: Vec<Tid>,
}

impl Layout {
    /// Whether `op` is an operation of a *replica access* — a child of a
    /// TM. These are exactly the operations erased by the Theorem 10
    /// construction.
    pub fn is_replica_access_op(&self, op: &TxnOp) -> bool {
        match op.tid().parent() {
            Some(p) => self.tm_roles.contains_key(&p),
            None => false,
        }
    }

    /// Whether `tid` names a TM.
    pub fn is_tm(&self, tid: &Tid) -> bool {
        self.tm_roles.contains_key(tid)
    }

    /// The layout of the item a TM manages, if `tid` is a TM.
    pub fn item_of_tm(&self, tid: &Tid) -> Option<&ItemLayout> {
        self.tm_roles.get(tid).map(|r| &self.items[&r.item()])
    }
}

/// Boxed component automata, as assembled by the builders.
pub type Components = Vec<Box<dyn ioa::Component<TxnOp>>>;

/// A built serial system together with its layout.
pub struct BuiltSystem {
    /// The composed I/O automaton.
    pub system: System<TxnOp>,
    /// The realisation map.
    pub layout: Layout,
}

impl std::fmt::Debug for BuiltSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltSystem")
            .field("components", &self.system.len())
            .finish_non_exhaustive()
    }
}

/// Walk context shared by both builders.
struct Walk<'a> {
    spec: &'a SystemSpec,
    layout: &'a Layout,
    /// For **B**: collected TM components. For **A**: None.
    tms: Option<Vec<Box<dyn ioa::Component<TxnOp>>>>,
    /// User transaction nodes (both systems).
    nodes: Vec<Box<dyn ioa::Component<TxnOp>>>,
    /// All user tids found (to fill the layout on the first walk).
    user_tids: Vec<Tid>,
    /// Accumulated TM roles (first walk only).
    tm_roles: BTreeMap<Tid, TmRole>,
    strategy: TmStrategy,
}

impl<'a> Walk<'a> {
    /// Build the node (and, in B-mode, TM components) for the user
    /// transaction `tid` with the given spec.
    fn visit(&mut self, tid: &Tid, user: &UserSpec) {
        let mut steps: Vec<ScriptStep> = Vec::new();
        for (k, step) in user.steps.iter().enumerate() {
            let index = k as u32;
            let child = tid.child(index);
            match step {
                UserStep::Read(i) => {
                    let il = &self.layout.items[&ItemId(*i as u32)];
                    self.tm_roles
                        .insert(child.clone(), TmRole::Read(il.item.id));
                    if let Some(tms) = &mut self.tms {
                        tms.push(Box::new(ReadTm::new(
                            child.clone(),
                            il.item.id,
                            il.item.init.clone(),
                            il.dm_objects.clone(),
                            il.config.clone(),
                            self.strategy,
                        )));
                    }
                    steps.push(ScriptStep::Run(vec![ChildRequest {
                        index,
                        access: None,
                        param: None,
                    }]));
                }
                UserStep::Write(i, v) => {
                    let il = &self.layout.items[&ItemId(*i as u32)];
                    self.tm_roles
                        .insert(child.clone(), TmRole::Write(il.item.id));
                    if let Some(tms) = &mut self.tms {
                        tms.push(Box::new(WriteTm::new(
                            child.clone(),
                            il.item.id,
                            il.dm_objects.clone(),
                            il.config.clone(),
                            self.strategy,
                        )));
                    }
                    steps.push(ScriptStep::Run(vec![ChildRequest {
                        index,
                        access: None,
                        param: Some(v.clone()),
                    }]));
                }
                UserStep::ReadPlain(p) => {
                    let (oid, _) = self.layout.plain_objects[*p];
                    steps.push(ScriptStep::Run(vec![ChildRequest {
                        index,
                        access: Some(AccessSpec::read(oid)),
                        param: None,
                    }]));
                }
                UserStep::WritePlain(p, v) => {
                    let (oid, _) = self.layout.plain_objects[*p];
                    steps.push(ScriptStep::Run(vec![ChildRequest {
                        index,
                        access: Some(AccessSpec::write(oid, v.clone())),
                        param: None,
                    }]));
                }
                UserStep::Sub(sub) => {
                    self.user_tids.push(child.clone());
                    self.visit(&child, sub);
                    steps.push(ScriptStep::Run(vec![ChildRequest {
                        index,
                        access: None,
                        param: None,
                    }]));
                }
            }
        }
        if let Some(v) = &user.commit {
            steps.push(ScriptStep::Commit(v.clone()));
        }
        self.nodes.push(Box::new(TransactionNode::new(
            tid.clone(),
            ScriptProgram::new(steps),
        )));
        let _ = self.spec; // context retained for future extensions
    }
}

/// Allocate object ids and per-item layouts for a spec.
///
/// Plain objects take ids `0..p`; DMs take the next `Σ replicas`; the
/// system-A objects `O(x)` take the ids after that. The id spaces are thus
/// globally disjoint, so a configuration over DM ids can never be confused
/// with one over A-objects.
fn allocate_layout(spec: &SystemSpec) -> Layout {
    let mut layout = Layout::default();
    let mut next = 0u32;
    for p in &spec.plain {
        layout
            .plain_objects
            .push((ObjectId(next), format!("obj({})", p.name)));
        next += 1;
    }
    let mut item_layouts = Vec::new();
    for (i, ispec) in spec.items.iter().enumerate() {
        let id = ItemId(i as u32);
        let dm_objects: Vec<ObjectId> = (0..ispec.replicas)
            .map(|_| {
                let o = ObjectId(next);
                next += 1;
                o
            })
            .collect();
        let dm_names: Vec<String> = (0..ispec.replicas)
            .map(|r| format!("dm({},{r})", ispec.name))
            .collect();
        let config = ispec
            .config
            .instantiate(ispec.replicas)
            .map(|&r| dm_objects[r]);
        assert!(config.is_usable(), "item {} config unusable", ispec.name);
        item_layouts.push(ItemLayout {
            item: LogicalItem::new(id, ispec.name.clone(), ispec.init.clone()),
            dm_objects,
            dm_names,
            config,
            a_object: ObjectId(0), // fixed up below
        });
    }
    for il in &mut item_layouts {
        il.a_object = ObjectId(next);
        next += 1;
        layout.items.insert(il.item.id, il.clone());
    }
    layout
}

/// Run the user-transaction walk, returning nodes (+ TMs in B-mode) and
/// completing the layout.
fn walk_users(
    spec: &SystemSpec,
    layout: &mut Layout,
    build_tms: bool,
) -> (Components, Option<Components>) {
    let root = Tid::root();
    let mut walk = Walk {
        spec,
        layout,
        tms: if build_tms { Some(Vec::new()) } else { None },
        nodes: Vec::new(),
        user_tids: Vec::new(),
        tm_roles: BTreeMap::new(),
        strategy: spec.strategy,
    };
    // The root requests all top-level users at once (the serial scheduler
    // chooses the order), and never commits.
    let root_spec = UserSpec {
        steps: spec.users.iter().cloned().map(UserStep::Sub).collect(),
        commit: None,
    };
    // Flatten: visit children of root directly so that indices line up.
    let mut steps = Vec::new();
    for (k, user) in spec.users.iter().enumerate() {
        let child = root.child(k as u32);
        walk.user_tids.push(child.clone());
        walk.visit(&child, user);
        steps.push(ChildRequest {
            index: k as u32,
            access: None,
            param: None,
        });
    }
    let _ = root_spec;
    walk.nodes.push(Box::new(TransactionNode::new(
        root.clone(),
        ScriptProgram::new(vec![ScriptStep::Run(steps)]),
    )));
    let Walk {
        nodes,
        tms,
        user_tids,
        tm_roles,
        ..
    } = walk;
    layout.user_tids = user_tids;
    layout.tm_roles = tm_roles;
    (nodes, tms)
}

/// The reusable parts of the replicated system: the layout, the user
/// transaction nodes (including the root), and the TM components.
///
/// `qc-cc` uses this to assemble a *concurrent* system **C** with the same
/// user transactions and TMs as **B** but a non-serial scheduler and
/// lock-based resilient objects at the copy level (Theorem 11).
pub fn build_replicated_parts(spec: &SystemSpec) -> (Layout, Components, Components) {
    let mut layout = allocate_layout(spec);
    let (nodes, tms) = walk_users(spec, &mut layout, true);
    (layout, nodes, tms.expect("replicated parts build TMs"))
}

/// Build the replicated serial system **B** for `spec`.
///
/// Components: the serial scheduler, the root node, user transaction nodes,
/// one read-/write-TM per logical operation, one DM per replica, and the
/// plain objects.
pub fn build_system_b(spec: &SystemSpec) -> BuiltSystem {
    let mut layout = allocate_layout(spec);
    let (nodes, tms) = walk_users(spec, &mut layout, true);
    let mut system: System<TxnOp> = System::new();
    system.push(Box::new(SerialScheduler::new()));
    for (oid, name) in &layout.plain_objects {
        let init = &spec.plain[oid.0 as usize].init;
        system.push(Box::new(ReadWriteObject::new(
            *oid,
            name.clone(),
            init.clone(),
        )));
    }
    for il in layout.items.values() {
        for (r, oid) in il.dm_objects.iter().enumerate() {
            // A DM for x is a read-write object over N × V_x with initial
            // data (0, i_x).
            system.push(Box::new(ReadWriteObject::new(
                *oid,
                il.dm_names[r].clone(),
                Value::versioned(0, il.item.init.clone()),
            )));
        }
    }
    for node in nodes {
        system.push(node);
    }
    for tm in tms.expect("B-mode builds TMs") {
        system.push(tm);
    }
    BuiltSystem { system, layout }
}

/// Build the corresponding non-replicated serial system **A** for `spec`
/// (paper §3.2): same user transactions, but each logical item is a single
/// read-write object `O(x)` whose accesses are the TM names.
///
/// The layout must come from [`build_system_b`] (or share its allocation)
/// so the two systems agree on names.
pub fn build_system_a(spec: &SystemSpec, layout: &Layout) -> BuiltSystem {
    let mut layout_a = layout.clone();
    let (nodes, _) = walk_users(spec, &mut layout_a, false);
    let mut system: System<TxnOp> = System::new();
    system.push(Box::new(SerialScheduler::new()));
    for (oid, name) in &layout_a.plain_objects {
        let init = &spec.plain[oid.0 as usize].init;
        system.push(Box::new(ReadWriteObject::new(
            *oid,
            name.clone(),
            init.clone(),
        )));
    }
    // One object O(x) per item, with the TMs registered as its accesses.
    for il in layout_a.items.values() {
        let mut registry: BTreeMap<Tid, RegisteredAccess> = BTreeMap::new();
        for (tid, role) in &layout_a.tm_roles {
            if role.item() != il.item.id {
                continue;
            }
            let kind = match role {
                TmRole::Read(_) => AccessKind::Read,
                TmRole::Write(_) => AccessKind::Write,
            };
            registry.insert(
                tid.clone(),
                RegisteredAccess {
                    kind,
                    // Write data = value(T): delivered as the CREATE param.
                    data: None,
                },
            );
        }
        system.push(Box::new(ReadWriteObject::with_registry(
            il.a_object,
            format!("O({})", il.item.name),
            il.item.init.clone(),
            registry,
        )));
    }
    for node in nodes {
        system.push(node);
    }
    BuiltSystem {
        system,
        layout: layout_a,
    }
}

/// The committed projection of a generated
/// [`ProgramTree`](nested_txn::ProgramTree) as a [`UserSpec`], mapping slot
/// `k` to the `k`-th logical item.
///
/// Doomed subtrees are *erased*: in the serial systems **A**/**B** a
/// sibling abort means the subtree was never created, so its committed
/// projection is empty — exactly what the simulator's abort-compensation
/// machinery must be equivalent to. Parallel batches are sequentialised
/// (the serial scheduler runs siblings one at a time regardless). Writes
/// carry the same position-derived values as
/// [`ProgramTree::root_script`](nested_txn::ProgramTree::root_script).
pub fn user_spec_from_program(tree: &nested_txn::ProgramTree) -> UserSpec {
    fn steps_of(node: &nested_txn::ProgramNode) -> Vec<UserStep> {
        node.children
            .iter()
            .filter(|c| !c.doomed)
            .map(|c| match c.access {
                Some((slot, false)) => UserStep::Read(slot as usize),
                Some((slot, true)) => {
                    UserStep::Write(slot as usize, Value::Int(i64::from(slot) + 1))
                }
                None => UserStep::Sub(UserSpec {
                    steps: steps_of(c),
                    commit: Some(Value::Nil),
                }),
            })
            .collect()
    }
    UserSpec {
        steps: steps_of(&tree.root),
        commit: Some(Value::Nil),
    }
}

/// A well-formedness monitor pre-registered with system A's accesses (whose
/// operations carry no inline [`AccessSpec`]).
pub fn wf_monitor_for_a(layout: &Layout) -> SystemWfMonitor {
    let mut m = SystemWfMonitor::new();
    for (tid, role) in &layout.tm_roles {
        let il = &layout.items[&role.item()];
        m.register_access(tid.clone(), il.a_object);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SystemSpec {
        SystemSpec {
            items: vec![ItemSpec {
                name: "x".into(),
                init: Value::Int(0),
                replicas: 3,
                config: ConfigChoice::Majority,
            }],
            plain: vec![PlainObjectSpec {
                name: "p".into(),
                init: Value::Int(100),
            }],
            users: vec![
                UserSpec::new(vec![UserStep::Write(0, Value::Int(7)), UserStep::Read(0)]),
                UserSpec::new(vec![UserStep::Read(0), UserStep::ReadPlain(0)]),
            ],
            strategy: TmStrategy::Eager,
        }
    }

    #[test]
    fn layout_allocates_disjoint_ids() {
        let b = build_system_b(&small_spec());
        let il = &b.layout.items[&ItemId(0)];
        assert_eq!(b.layout.plain_objects[0].0, ObjectId(0));
        assert_eq!(il.dm_objects, vec![ObjectId(1), ObjectId(2), ObjectId(3)]);
        assert_eq!(il.a_object, ObjectId(4));
        assert!(il.config.is_usable());
    }

    #[test]
    fn tm_roles_cover_all_logical_steps() {
        let b = build_system_b(&small_spec());
        // Users 0 and 1 contribute 2 + 1 TM steps.
        assert_eq!(b.layout.tm_roles.len(), 3);
        let root = Tid::root();
        assert_eq!(
            b.layout.tm_roles[&root.child(0).child(0)],
            TmRole::Write(ItemId(0))
        );
        assert_eq!(
            b.layout.tm_roles[&root.child(0).child(1)],
            TmRole::Read(ItemId(0))
        );
        assert_eq!(
            b.layout.tm_roles[&root.child(1).child(0)],
            TmRole::Read(ItemId(0))
        );
    }

    #[test]
    fn component_counts() {
        let spec = small_spec();
        let b = build_system_b(&spec);
        // scheduler + 1 plain + 3 DMs + (2 users + root) + 3 TMs = 11.
        assert_eq!(b.system.len(), 11);
        let a = build_system_a(&spec, &b.layout);
        // scheduler + 1 plain + 1 O(x) + (2 users + root) = 6.
        assert_eq!(a.system.len(), 6);
    }

    #[test]
    fn nested_users_walk() {
        let spec = SystemSpec {
            items: vec![ItemSpec {
                name: "x".into(),
                init: Value::Nil,
                replicas: 2,
                config: ConfigChoice::Rowa,
            }],
            plain: vec![],
            users: vec![UserSpec::new(vec![UserStep::Sub(UserSpec::new(vec![
                UserStep::Write(0, Value::Int(1)),
            ]))])],
            strategy: TmStrategy::Eager,
        };
        let b = build_system_b(&spec);
        // TM lives under the sub-transaction: T0.0.0.0.
        let tm = Tid::root().child(0).child(0).child(0);
        assert!(b.layout.is_tm(&tm));
        assert_eq!(b.layout.user_tids.len(), 2); // user + sub
    }

    #[test]
    fn replica_access_classification() {
        let b = build_system_b(&small_spec());
        let tm = Tid::root().child(0).child(0);
        let access = tm.child(0);
        let op = TxnOp::request_create(access);
        assert!(b.layout.is_replica_access_op(&op));
        let op2 = TxnOp::request_create(tm);
        assert!(!b.layout.is_replica_access_op(&op2));
    }
}
