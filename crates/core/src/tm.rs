//! Transaction managers: the Quorum Consensus algorithm itself (paper §3.1).
//!
//! A *read-TM* performs a logical read of item `x` by invoking read accesses
//! to data managers until it has heard from some read-quorum, then returns
//! the value with the highest version number seen. A *write-TM* first reads
//! a read-quorum to discover the current version number, then writes
//! `(vn + 1, value(T))` to DMs until some write-quorum has committed, then
//! returns `nil`.
//!
//! The automata transcribe the paper's pre/postconditions. The paper's TMs
//! are highly nondeterministic — "the read-TM simply invokes any number of
//! accesses to any of the DMs until it happens to notice that COMMIT
//! operations have been received from some read-quorum". [`TmStrategy`]
//! selects how much of that nondeterminism to expose to the executor; every
//! strategy only ever performs operations satisfying the paper's
//! preconditions, so (as the paper notes) correctness is unaffected.

use std::any::Any;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

use ioa::{Component, OpClass};
use nested_txn::{AccessKind, AccessSpec, ObjectId, Tid, TxnOp, Value};
use quorum::Configuration;

use crate::item::ItemId;

/// How a TM chooses which accesses to offer to the executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TmStrategy {
    /// Offer an access to every data manager not currently outstanding or
    /// already committed, retrying aborted ones, and stop offering new
    /// accesses once the needed quorum is covered. Terminating and fully
    /// within the paper's preconditions.
    #[default]
    Eager,
    /// Like `Eager`, but keep offering redundant accesses (up to the given
    /// total) even after the quorum is covered — exercising the paper's
    /// full nondeterminism. Used by the randomized checkers for execution
    /// diversity.
    Chaotic {
        /// Upper bound on accesses invoked per phase.
        max_accesses: u32,
    },
    /// Contact exactly one minimal quorum per phase ("one would want the
    /// read-TM to invoke accesses with some particular read-quorum in
    /// mind", §3.1) — the efficient implementation the paper sketches.
    /// Aborted members are retried; the target never widens.
    Targeted,
}

/// Per-DM bookkeeping for an access phase (read or write).
#[derive(Clone, Debug, Default)]
struct Phase {
    /// DMs from which a COMMIT has been recorded into the quorum set.
    done: BTreeSet<ObjectId>,
    /// DMs with an access requested but not yet returned.
    outstanding: BTreeSet<ObjectId>,
    /// Number of accesses invoked in this phase.
    invoked: u32,
}

/// Common machinery shared by read- and write-TMs.
#[derive(Clone, Debug)]
struct TmBase {
    tid: Tid,
    item: ItemId,
    label: String,
    config: Configuration<ObjectId>,
    dms: Vec<ObjectId>,
    strategy: TmStrategy,
    awake: bool,
    committed: bool,
    next_child: u32,
    /// Access-name bookkeeping: child tid → (target DM, kind).
    children: BTreeMap<Tid, (ObjectId, AccessKind)>,
}

impl TmBase {
    fn new(
        tid: Tid,
        item: ItemId,
        kind: &str,
        config: Configuration<ObjectId>,
        dms: Vec<ObjectId>,
        strategy: TmStrategy,
    ) -> Self {
        let label = format!("{kind}-tm({item},{tid})");
        TmBase {
            tid,
            item,
            label,
            config,
            dms,
            strategy,
            awake: false,
            committed: false,
            next_child: 0,
            children: BTreeMap::new(),
        }
    }

    fn classify(&self, op: &TxnOp) -> OpClass {
        match op {
            TxnOp::Create { tid, .. } if tid == &self.tid => OpClass::Input,
            // Own-abort information (concurrent systems only): halt.
            TxnOp::Abort { tid } if tid == &self.tid => OpClass::Input,
            TxnOp::Commit { tid, .. } | TxnOp::Abort { tid } if tid.is_child_of(&self.tid) => {
                OpClass::Input
            }
            TxnOp::RequestCreate { tid, .. } if tid.is_child_of(&self.tid) => OpClass::Output,
            TxnOp::RequestCommit { tid, .. } if tid == &self.tid => OpClass::Output,
            _ => OpClass::NotMine,
        }
    }

    fn reset(&mut self) {
        self.awake = false;
        self.committed = false;
        self.next_child = 0;
        self.children.clear();
    }

    /// Candidate `REQUEST-CREATE`s for this phase: one per eligible DM, all
    /// sharing the next child index (the executor performs at most one).
    fn access_candidates(
        &self,
        phase: &Phase,
        kind: AccessKind,
        data: impl Fn() -> Value,
        quorum_covered: bool,
    ) -> Vec<TxnOp> {
        if !self.awake || self.committed {
            return Vec::new();
        }
        let allow_more = match self.strategy {
            TmStrategy::Eager | TmStrategy::Targeted => !quorum_covered,
            TmStrategy::Chaotic { max_accesses } => phase.invoked < max_accesses,
        };
        if !allow_more {
            return Vec::new();
        }
        // Targeted: restrict candidates to one chosen minimal quorum.
        let target: Option<std::collections::BTreeSet<ObjectId>> =
            if self.strategy == TmStrategy::Targeted {
                let all: std::collections::BTreeSet<ObjectId> = self.dms.iter().copied().collect();
                match kind {
                    AccessKind::Read => self.config.find_read_quorum(&all).cloned(),
                    AccessKind::Write => self.config.find_write_quorum(&all).cloned(),
                }
            } else {
                None
            };
        let child = self.tid.child(self.next_child);
        self.dms
            .iter()
            .filter(|dm| target.as_ref().is_none_or(|t| t.contains(dm)))
            .filter(|dm| !phase.done.contains(dm) && !phase.outstanding.contains(dm))
            .map(|dm| {
                let spec = match kind {
                    AccessKind::Read => AccessSpec::read(*dm),
                    AccessKind::Write => AccessSpec::write(*dm, data()),
                };
                TxnOp::RequestCreate {
                    tid: child.clone(),
                    access: Some(spec),
                    param: None,
                }
            })
            .collect()
    }

    /// Record a performed `REQUEST-CREATE` for an access child.
    fn note_request(
        &mut self,
        tid: &Tid,
        spec: &AccessSpec,
        phase: &mut Phase,
    ) -> Result<(), String> {
        if self.children.contains_key(tid) {
            return Err(format!("{}: repeated REQUEST-CREATE({tid})", self.label));
        }
        if !self.awake || self.committed {
            return Err(format!("{}: REQUEST-CREATE while not active", self.label));
        }
        self.children.insert(tid.clone(), (spec.object, spec.kind));
        phase.outstanding.insert(spec.object);
        phase.invoked += 1;
        if tid.last_index() == Some(self.next_child) {
            self.next_child += 1;
        }
        Ok(())
    }

    /// Look up the DM and kind of a returned child.
    fn child_target(&self, tid: &Tid) -> Result<(ObjectId, AccessKind), String> {
        self.children
            .get(tid)
            .copied()
            .ok_or_else(|| format!("{}: return for unknown child {tid}", self.label))
    }
}

/// A read-TM for logical item `x` (paper §3.1).
///
/// State components (besides bookkeeping): `awake`, `data ∈ D_x`
/// (initially `(0, i_x)`), and `read ⊆ dm(x)`. It may `REQUEST-COMMIT(T,v)`
/// exactly when `awake`, some read-quorum is contained in `read`, and
/// `v = data.value`.
#[derive(Clone, Debug)]
pub struct ReadTm {
    base: TmBase,
    init: Value,
    /// `data`: highest (version-number, value) seen.
    data_vn: u64,
    data_value: Value,
    /// `read`: DMs whose read accesses have committed to this TM.
    read: BTreeSet<ObjectId>,
    phase: Phase,
}

impl ReadTm {
    /// A read-TM named `tid` for `item`, over the given DM objects and
    /// configuration (a legal configuration of `dm(x)`).
    pub fn new(
        tid: Tid,
        item: ItemId,
        init: Value,
        dms: Vec<ObjectId>,
        config: Configuration<ObjectId>,
        strategy: TmStrategy,
    ) -> Self {
        ReadTm {
            base: TmBase::new(tid, item, "read", config, dms, strategy),
            data_vn: 0,
            data_value: init.clone(),
            init,
            read: BTreeSet::new(),
            phase: Phase::default(),
        }
    }

    /// The transaction name of this TM.
    pub fn tid(&self) -> &Tid {
        &self.base.tid
    }

    /// The item this TM reads.
    pub fn item(&self) -> ItemId {
        self.base.item
    }

    /// The set `read` of DMs heard from.
    pub fn read_set(&self) -> &BTreeSet<ObjectId> {
        &self.read
    }

    /// The current `(version-number, value)` in `data`.
    pub fn data(&self) -> (u64, &Value) {
        (self.data_vn, &self.data_value)
    }

    fn quorum_covered(&self) -> bool {
        self.base.config.covers_read_quorum(&self.read)
    }
}

impl Component<TxnOp> for ReadTm {
    fn name(&self) -> String {
        self.base.label.clone()
    }

    fn classify(&self, op: &TxnOp) -> OpClass {
        self.base.classify(op)
    }

    fn reset(&mut self) {
        self.base.reset();
        self.data_vn = 0;
        self.data_value = self.init.clone();
        self.read.clear();
        self.phase = Phase::default();
    }

    fn enabled_outputs(&self) -> Vec<TxnOp> {
        let mut out = self.base.access_candidates(
            &self.phase,
            AccessKind::Read,
            Value::default,
            self.quorum_covered(),
        );
        // REQUEST-COMMIT(T, v): awake ∧ ∃q ∈ config.r: q ⊆ read ∧ v = data.value.
        if self.base.awake && !self.base.committed && self.quorum_covered() {
            out.push(TxnOp::RequestCommit {
                tid: self.base.tid.clone(),
                value: self.data_value.clone(),
            });
        }
        out
    }

    fn apply(&mut self, op: &TxnOp) -> Result<(), String> {
        match op {
            TxnOp::Abort { tid } if tid == &self.base.tid => {
                self.base.awake = false;
                self.base.committed = true; // halt: no further outputs
                Ok(())
            }
            TxnOp::Create { tid, .. } if tid == &self.base.tid => {
                self.base.awake = true;
                Ok(())
            }
            TxnOp::RequestCreate { tid, access, .. } if tid.is_child_of(&self.base.tid) => {
                let spec = access
                    .as_ref()
                    .ok_or_else(|| format!("{}: access child without spec", self.base.label))?;
                if spec.kind != AccessKind::Read {
                    return Err(format!("{}: read-TM may only read", self.base.label));
                }
                // Split borrows: note_request needs base and phase.
                let phase = &mut self.phase;
                self.base.note_request(tid, spec, phase)
            }
            TxnOp::Commit { tid, value } if tid.is_child_of(&self.base.tid) => {
                let (dm, kind) = self.base.child_target(tid)?;
                debug_assert_eq!(kind, AccessKind::Read);
                self.phase.outstanding.remove(&dm);
                self.phase.done.insert(dm);
                // Postconditions: read ∪= {O(T')}; keep the highest-vn pair.
                self.read.insert(dm);
                if let Some((vn, v)) = value.as_versioned() {
                    if vn > self.data_vn {
                        self.data_vn = vn;
                        self.data_value = v.clone();
                    }
                } else {
                    return Err(format!(
                        "{}: read access returned non-versioned {value}",
                        self.base.label
                    ));
                }
                Ok(())
            }
            TxnOp::Abort { tid } if tid.is_child_of(&self.base.tid) => {
                // Paper: no postconditions. (Bookkeeping only: the DM may be
                // retried with a fresh access name.)
                let (dm, _) = self.base.child_target(tid)?;
                self.phase.outstanding.remove(&dm);
                Ok(())
            }
            TxnOp::RequestCommit { tid, value } if tid == &self.base.tid => {
                if !self.base.awake || self.base.committed {
                    return Err(format!(
                        "{}: REQUEST-COMMIT while not awake",
                        self.base.label
                    ));
                }
                if !self.quorum_covered() {
                    return Err(format!("{}: no read-quorum covered", self.base.label));
                }
                if *value != self.data_value {
                    return Err(format!("{}: wrong return value", self.base.label));
                }
                self.base.committed = true;
                self.base.awake = false;
                Ok(())
            }
            other => Err(format!("{}: unexpected operation {other}", self.base.label)),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_boxed(&self) -> Box<dyn Component<TxnOp>> {
        Box::new(self.clone())
    }
}

/// A write-TM for logical item `x` (paper §3.1).
///
/// First reads a read-quorum to learn the current version number (ignoring
/// read results once writing has begun, so it never sees its own writes),
/// then writes `(vn + 1, value(T))` until a write-quorum has committed, then
/// returns `nil`. The associated `value(T)` arrives as the `param` of its
/// `CREATE` (the paper's "transactions with different parameters are
/// different transactions" convention).
#[derive(Clone, Debug)]
pub struct WriteTm {
    base: TmBase,
    /// `value(T)`, fixed at creation.
    value: Option<Value>,
    /// `data.version-number` (the value component is unused by the paper's
    /// write-TM).
    data_vn: u64,
    read: BTreeSet<ObjectId>,
    written: BTreeSet<ObjectId>,
    read_phase: Phase,
    write_phase: Phase,
    /// Whether any write access has been requested (`write-requested ≠ {}`).
    writing: bool,
}

impl WriteTm {
    /// A write-TM named `tid` for `item`.
    pub fn new(
        tid: Tid,
        item: ItemId,
        dms: Vec<ObjectId>,
        config: Configuration<ObjectId>,
        strategy: TmStrategy,
    ) -> Self {
        WriteTm {
            base: TmBase::new(tid, item, "write", config, dms, strategy),
            value: None,
            data_vn: 0,
            read: BTreeSet::new(),
            written: BTreeSet::new(),
            read_phase: Phase::default(),
            write_phase: Phase::default(),
            writing: false,
        }
    }

    /// The transaction name of this TM.
    pub fn tid(&self) -> &Tid {
        &self.base.tid
    }

    /// The item this TM writes.
    pub fn item(&self) -> ItemId {
        self.base.item
    }

    /// The value this TM writes (`value(T)`), once created.
    pub fn value(&self) -> Option<&Value> {
        self.value.as_ref()
    }

    /// The set of DMs whose write accesses have committed.
    pub fn written_set(&self) -> &BTreeSet<ObjectId> {
        &self.written
    }

    fn read_covered(&self) -> bool {
        self.base.config.covers_read_quorum(&self.read)
    }

    fn write_covered(&self) -> bool {
        self.base.config.covers_write_quorum(&self.written)
    }

    fn write_data(&self) -> Value {
        Value::versioned(self.data_vn + 1, self.value.clone().unwrap_or(Value::Nil))
    }
}

impl Component<TxnOp> for WriteTm {
    fn name(&self) -> String {
        self.base.label.clone()
    }

    fn classify(&self, op: &TxnOp) -> OpClass {
        self.base.classify(op)
    }

    fn reset(&mut self) {
        self.base.reset();
        self.value = None;
        self.data_vn = 0;
        self.read.clear();
        self.written.clear();
        self.read_phase = Phase::default();
        self.write_phase = Phase::default();
        self.writing = false;
    }

    fn enabled_outputs(&self) -> Vec<TxnOp> {
        let mut out = Vec::new();
        // Read phase: discover the version number. (Refinement: stop
        // offering reads once writing has begun — late read COMMITs would
        // be ignored anyway.)
        if !self.writing {
            out.extend(self.base.access_candidates(
                &self.read_phase,
                AccessKind::Read,
                Value::default,
                self.read_covered(),
            ));
        }
        // Write phase: requires a covered read-quorum (precondition
        // `q ∈ config.r ∧ q ⊆ read`).
        if self.read_covered() {
            let data = self.write_data();
            out.extend(self.base.access_candidates(
                &self.write_phase,
                AccessKind::Write,
                || data.clone(),
                self.write_covered(),
            ));
        }
        // REQUEST-COMMIT(T, nil): some write-quorum ⊆ written.
        if self.base.awake && !self.base.committed && self.write_covered() {
            out.push(TxnOp::RequestCommit {
                tid: self.base.tid.clone(),
                value: Value::Nil,
            });
        }
        out
    }

    fn apply(&mut self, op: &TxnOp) -> Result<(), String> {
        match op {
            TxnOp::Abort { tid } if tid == &self.base.tid => {
                self.base.awake = false;
                self.base.committed = true; // halt: no further outputs
                Ok(())
            }
            TxnOp::Create { tid, param, .. } if tid == &self.base.tid => {
                self.base.awake = true;
                self.value = Some(param.clone().unwrap_or(Value::Nil));
                Ok(())
            }
            TxnOp::RequestCreate { tid, access, .. } if tid.is_child_of(&self.base.tid) => {
                let spec = access
                    .as_ref()
                    .ok_or_else(|| format!("{}: access child without spec", self.base.label))?;
                match spec.kind {
                    AccessKind::Read => {
                        let phase = &mut self.read_phase;
                        self.base.note_request(tid, spec, phase)
                    }
                    AccessKind::Write => {
                        // Preconditions: read-quorum covered; data is
                        // (data.vn + 1, value(T)).
                        if !self.read_covered() {
                            return Err(format!(
                                "{}: write access before read-quorum",
                                self.base.label
                            ));
                        }
                        if spec.data != self.write_data() {
                            return Err(format!(
                                "{}: write access with wrong data",
                                self.base.label
                            ));
                        }
                        self.writing = true;
                        let phase = &mut self.write_phase;
                        self.base.note_request(tid, spec, phase)
                    }
                }
            }
            TxnOp::Commit { tid, value } if tid.is_child_of(&self.base.tid) => {
                let (dm, kind) = self.base.child_target(tid)?;
                match kind {
                    AccessKind::Read => {
                        self.read_phase.outstanding.remove(&dm);
                        self.read_phase.done.insert(dm);
                        // Postconditions (guarded): only if no write access
                        // has been requested — otherwise the TM might see
                        // its own writes and re-increment.
                        if !self.writing {
                            self.read.insert(dm);
                            if let Some((vn, _)) = value.as_versioned() {
                                if vn > self.data_vn {
                                    self.data_vn = vn;
                                }
                            } else {
                                return Err(format!(
                                    "{}: read access returned non-versioned {value}",
                                    self.base.label
                                ));
                            }
                        }
                        Ok(())
                    }
                    AccessKind::Write => {
                        self.write_phase.outstanding.remove(&dm);
                        self.write_phase.done.insert(dm);
                        // Postcondition: written ∪= {O(T')}.
                        self.written.insert(dm);
                        Ok(())
                    }
                }
            }
            TxnOp::Abort { tid } if tid.is_child_of(&self.base.tid) => {
                let (dm, kind) = self.base.child_target(tid)?;
                match kind {
                    AccessKind::Read => self.read_phase.outstanding.remove(&dm),
                    AccessKind::Write => self.write_phase.outstanding.remove(&dm),
                };
                Ok(())
            }
            TxnOp::RequestCommit { tid, value } if tid == &self.base.tid => {
                if !self.base.awake || self.base.committed {
                    return Err(format!(
                        "{}: REQUEST-COMMIT while not awake",
                        self.base.label
                    ));
                }
                if !value.is_nil() {
                    return Err(format!("{}: write-TM must return nil", self.base.label));
                }
                if !self.write_covered() {
                    return Err(format!("{}: no write-quorum covered", self.base.label));
                }
                self.base.committed = true;
                self.base.awake = false;
                Ok(())
            }
            other => Err(format!("{}: unexpected operation {other}", self.base.label)),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_boxed(&self) -> Box<dyn Component<TxnOp>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<ObjectId> {
        (0..n).map(ObjectId).collect()
    }

    fn majority_cfg(dms: &[ObjectId]) -> Configuration<ObjectId> {
        quorum::generators::majority(dms)
    }

    fn create(tid: &Tid, param: Option<Value>) -> TxnOp {
        TxnOp::Create {
            tid: tid.clone(),
            access: None,
            param,
        }
    }

    fn commit(tid: Tid, value: Value) -> TxnOp {
        TxnOp::Commit { tid, value }
    }

    #[test]
    fn read_tm_happy_path_majority() {
        let dms = ids(3);
        let tm_tid = Tid::root().child(0).child(0);
        let mut tm = ReadTm::new(
            tm_tid.clone(),
            ItemId(0),
            Value::Int(0),
            dms.clone(),
            majority_cfg(&dms),
            TmStrategy::Eager,
        );
        assert!(tm.enabled_outputs().is_empty());
        tm.apply(&create(&tm_tid, None)).unwrap();
        // Offers one read candidate per DM.
        let outs = tm.enabled_outputs();
        assert_eq!(outs.len(), 3);
        // Request accesses to DM0 and DM1.
        let to_dm = |outs: &[TxnOp], dm: ObjectId| {
            outs.iter()
                .find(|o| o.access().map(|s| s.object) == Some(dm))
                .unwrap()
                .clone()
        };
        let r0 = to_dm(&outs, ObjectId(0));
        tm.apply(&r0).unwrap();
        let outs = tm.enabled_outputs();
        let r1 = to_dm(&outs, ObjectId(1));
        tm.apply(&r1).unwrap();
        // Their commits arrive: DM0 has (2, 7), DM1 has (1, 5).
        tm.apply(&commit(
            r0.tid().clone(),
            Value::versioned(2, Value::Int(7)),
        ))
        .unwrap();
        // One DM is not a majority of 3.
        assert!(!tm
            .enabled_outputs()
            .iter()
            .any(|o| matches!(o, TxnOp::RequestCommit { .. })));
        tm.apply(&commit(
            r1.tid().clone(),
            Value::versioned(1, Value::Int(5)),
        ))
        .unwrap();
        // Quorum covered: returns value with the highest version number.
        let outs = tm.enabled_outputs();
        assert_eq!(
            outs,
            vec![TxnOp::RequestCommit {
                tid: tm_tid.clone(),
                value: Value::Int(7),
            }]
        );
        tm.apply(&outs[0]).unwrap();
        assert!(tm.enabled_outputs().is_empty());
    }

    #[test]
    fn read_tm_retries_aborted_access() {
        let dms = ids(2);
        // Config: both DMs required for a read quorum.
        let all: std::collections::BTreeSet<ObjectId> = dms.iter().copied().collect();
        let cfg = Configuration::new(vec![all.clone()], vec![all]);
        let tm_tid = Tid::root().child(0).child(0);
        let mut tm = ReadTm::new(
            tm_tid.clone(),
            ItemId(0),
            Value::Nil,
            dms,
            cfg,
            TmStrategy::Eager,
        );
        tm.apply(&create(&tm_tid, None)).unwrap();
        let outs = tm.enabled_outputs();
        let r0 = outs
            .iter()
            .find(|o| o.access().map(|s| s.object) == Some(ObjectId(0)))
            .unwrap()
            .clone();
        tm.apply(&r0).unwrap();
        // The access aborts; the DM becomes eligible again with a new name.
        tm.apply(&TxnOp::Abort {
            tid: r0.tid().clone(),
        })
        .unwrap();
        let outs = tm.enabled_outputs();
        let retry = outs
            .iter()
            .find(|o| o.access().map(|s| s.object) == Some(ObjectId(0)))
            .expect("aborted DM offered again");
        assert_ne!(retry.tid(), r0.tid(), "retry uses a fresh access name");
    }

    #[test]
    fn write_tm_two_phases() {
        let dms = ids(3);
        let tm_tid = Tid::root().child(0).child(1);
        let mut tm = WriteTm::new(
            tm_tid.clone(),
            ItemId(0),
            dms.clone(),
            majority_cfg(&dms),
            TmStrategy::Eager,
        );
        tm.apply(&create(&tm_tid, Some(Value::Int(42)))).unwrap();
        assert_eq!(tm.value(), Some(&Value::Int(42)));
        // Phase 1: only read candidates.
        let outs = tm.enabled_outputs();
        assert!(outs
            .iter()
            .all(|o| o.access().map(|s| s.kind) == Some(AccessKind::Read)));
        // Hear from a majority with vn 4 and 2.
        let mut reqs = Vec::new();
        for dm in [ObjectId(0), ObjectId(1)] {
            let outs = tm.enabled_outputs();
            let r = outs
                .iter()
                .find(|o| o.access().map(|s| s.object) == Some(dm))
                .unwrap()
                .clone();
            tm.apply(&r).unwrap();
            reqs.push(r);
        }
        tm.apply(&commit(
            reqs[0].tid().clone(),
            Value::versioned(4, Value::Int(0)),
        ))
        .unwrap();
        tm.apply(&commit(
            reqs[1].tid().clone(),
            Value::versioned(2, Value::Int(0)),
        ))
        .unwrap();
        // Phase 2: write candidates with (5, 42).
        let outs = tm.enabled_outputs();
        let w = outs
            .iter()
            .find(|o| o.access().map(|s| s.kind) == Some(AccessKind::Write))
            .expect("write phase begins");
        assert_eq!(
            w.access().unwrap().data,
            Value::versioned(5, Value::Int(42))
        );
        // Write to two DMs (a write quorum).
        let mut writes = Vec::new();
        for dm in [ObjectId(1), ObjectId(2)] {
            let outs = tm.enabled_outputs();
            let w = outs
                .iter()
                .find(|o| o.access().map(|s| (s.object, s.kind)) == Some((dm, AccessKind::Write)))
                .unwrap()
                .clone();
            tm.apply(&w).unwrap();
            writes.push(w);
        }
        // No REQUEST-COMMIT until write commits arrive.
        assert!(!tm
            .enabled_outputs()
            .iter()
            .any(|o| matches!(o, TxnOp::RequestCommit { .. })));
        for w in &writes {
            tm.apply(&commit(w.tid().clone(), Value::Nil)).unwrap();
        }
        let outs = tm.enabled_outputs();
        assert_eq!(
            outs,
            vec![TxnOp::RequestCommit {
                tid: tm_tid,
                value: Value::Nil,
            }]
        );
    }

    #[test]
    fn write_tm_ignores_late_reads_once_writing() {
        let dms = ids(3);
        let tm_tid = Tid::root().child(0).child(1);
        let mut tm = WriteTm::new(
            tm_tid.clone(),
            ItemId(0),
            dms.clone(),
            majority_cfg(&dms),
            TmStrategy::Eager,
        );
        tm.apply(&create(&tm_tid, Some(Value::Int(1)))).unwrap();
        // Request reads to all three DMs.
        let mut reqs = BTreeMap::new();
        for dm in ids(3) {
            let outs = tm.enabled_outputs();
            let r = outs
                .iter()
                .find(|o| o.access().map(|s| s.object) == Some(dm))
                .unwrap()
                .clone();
            tm.apply(&r).unwrap();
            reqs.insert(dm, r);
        }
        // Two commits arrive (vn 3): quorum covered.
        tm.apply(&commit(
            reqs[&ObjectId(0)].tid().clone(),
            Value::versioned(3, Value::Int(0)),
        ))
        .unwrap();
        tm.apply(&commit(
            reqs[&ObjectId(1)].tid().clone(),
            Value::versioned(3, Value::Int(0)),
        ))
        .unwrap();
        // Start writing to DM0: data is (4, 1).
        let outs = tm.enabled_outputs();
        let w = outs
            .iter()
            .find(|o| o.access().map(|s| s.kind) == Some(AccessKind::Write))
            .unwrap()
            .clone();
        tm.apply(&w).unwrap();
        // Now the stale read from DM2 returns our own write (vn 4): the
        // guarded postcondition must NOT bump the version number.
        tm.apply(&commit(
            reqs[&ObjectId(2)].tid().clone(),
            Value::versioned(4, Value::Int(1)),
        ))
        .unwrap();
        assert_eq!(tm.data_vn, 3, "own write must not be re-observed");
        // Subsequent write candidates still carry (4, 1).
        let outs = tm.enabled_outputs();
        let w2 = outs
            .iter()
            .find(|o| o.access().map(|s| s.kind) == Some(AccessKind::Write))
            .unwrap();
        assert_eq!(
            w2.access().unwrap().data,
            Value::versioned(4, Value::Int(1))
        );
    }

    #[test]
    fn write_tm_rejects_premature_write() {
        let dms = ids(3);
        let tm_tid = Tid::root().child(0).child(1);
        let mut tm = WriteTm::new(
            tm_tid.clone(),
            ItemId(0),
            dms.clone(),
            majority_cfg(&dms),
            TmStrategy::Eager,
        );
        tm.apply(&create(&tm_tid, Some(Value::Int(1)))).unwrap();
        let w = TxnOp::RequestCreate {
            tid: tm_tid.child(0),
            access: Some(AccessSpec::write(
                ObjectId(0),
                Value::versioned(1, Value::Int(1)),
            )),
            param: None,
        };
        assert!(tm.apply(&w).unwrap_err().contains("before read-quorum"));
    }

    #[test]
    fn rowa_read_commits_after_one_dm() {
        let dms = ids(3);
        let cfg = quorum::generators::rowa(&dms);
        let tm_tid = Tid::root().child(0).child(0);
        let mut tm = ReadTm::new(
            tm_tid.clone(),
            ItemId(0),
            Value::Int(0),
            dms,
            cfg,
            TmStrategy::Eager,
        );
        tm.apply(&create(&tm_tid, None)).unwrap();
        let outs = tm.enabled_outputs();
        let r = outs[0].clone();
        tm.apply(&r).unwrap();
        tm.apply(&commit(r.tid().clone(), Value::versioned(0, Value::Int(0))))
            .unwrap();
        assert!(tm
            .enabled_outputs()
            .iter()
            .any(|o| matches!(o, TxnOp::RequestCommit { .. })));
        // Eager strategy stops offering further reads once covered.
        assert_eq!(tm.enabled_outputs().len(), 1);
    }

    #[test]
    fn chaotic_strategy_keeps_reading() {
        let dms = ids(3);
        let cfg = quorum::generators::rowa(&dms);
        let tm_tid = Tid::root().child(0).child(0);
        let mut tm = ReadTm::new(
            tm_tid.clone(),
            ItemId(0),
            Value::Int(0),
            dms,
            cfg,
            TmStrategy::Chaotic { max_accesses: 5 },
        );
        tm.apply(&create(&tm_tid, None)).unwrap();
        let outs = tm.enabled_outputs();
        let r = outs[0].clone();
        tm.apply(&r).unwrap();
        tm.apply(&commit(r.tid().clone(), Value::versioned(0, Value::Int(0))))
            .unwrap();
        // Covered, but chaotic still offers more reads (to other DMs).
        let outs = tm.enabled_outputs();
        assert!(outs.len() > 1);
    }
}
