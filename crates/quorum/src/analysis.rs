//! Availability and cost analysis of quorum systems.
//!
//! Replication exists "to improve availability, reliability and performance"
//! (paper §1, first sentence). These functions quantify that claim for the
//! quorum systems in this crate and back experiments Q1, Q2 and Q5.

use rand::Rng;

use crate::replica_set::ReplicaSet;
use crate::spec::QuorumSpec;

/// Exact probability that the live replicas contain a read-quorum, when
/// each replica is independently up with probability `up`.
///
/// Enumerates all `2^n` replica states; intended for `n ≤ 20`.
///
/// # Panics
///
/// Panics if `spec.n() > 20` or `up` is not in `[0, 1]`.
pub fn exact_read_availability(spec: &dyn QuorumSpec, up: f64) -> f64 {
    exact_availability(spec, up, true)
}

/// Exact probability that the live replicas contain a write-quorum.
///
/// # Panics
///
/// Panics if `spec.n() > 20` or `up` is not in `[0, 1]`.
pub fn exact_write_availability(spec: &dyn QuorumSpec, up: f64) -> f64 {
    exact_availability(spec, up, false)
}

fn exact_availability(spec: &dyn QuorumSpec, up: f64, read: bool) -> f64 {
    let n = spec.n();
    assert!(n <= 20, "exact enumeration capped at n = 20");
    assert!((0.0..=1.0).contains(&up), "probability out of range");
    // Precompute P(exactly the replicas in `live` are up) per cardinality;
    // the sweep then touches no sets at all — one predicate call per mask.
    let p_by_count: Vec<f64> = (0..=n as i32)
        .map(|k| up.powi(k) * (1.0 - up).powi(n as i32 - k))
        .collect();
    let mut total = 0.0;
    for mask in 0u32..(1 << n) {
        let live = ReplicaSet::from_bits(mask as u128);
        let ok = if read {
            spec.is_read_quorum_bits(live)
        } else {
            spec.is_write_quorum_bits(live)
        };
        if ok {
            total += p_by_count[live.len()];
        }
    }
    total
}

/// Monte-Carlo estimate of read (and write) availability: returns
/// `(read_availability, write_availability)` over `trials` samples.
///
/// # Panics
///
/// Panics if `trials == 0` or `up` is not in `[0, 1]`.
pub fn monte_carlo_availability(
    spec: &dyn QuorumSpec,
    up: f64,
    trials: u32,
    rng: &mut dyn rand::RngCore,
) -> (f64, f64) {
    assert!(trials > 0);
    assert!((0.0..=1.0).contains(&up), "probability out of range");
    let n = spec.n();
    let mut r_ok = 0u32;
    let mut w_ok = 0u32;
    for _ in 0..trials {
        let live: ReplicaSet = (0..n).filter(|_| rng.gen_bool(up)).collect();
        if spec.is_read_quorum_bits(live) {
            r_ok += 1;
        }
        if spec.is_write_quorum_bits(live) {
            w_ok += 1;
        }
    }
    (f64::from(r_ok) / f64::from(trials), f64::from(w_ok) / f64::from(trials))
}

/// Sizes `(read, write)` of the smallest quorums when all replicas are up —
/// the per-operation message cost floor (one round-trip per quorum member,
/// plus one more write round for logical writes).
pub fn min_quorum_sizes(spec: &dyn QuorumSpec) -> (usize, usize) {
    let all = ReplicaSet::full(spec.n());
    let r = spec
        .find_read_quorum_bits(all)
        .map(|q| q.len())
        .unwrap_or(usize::MAX);
    let w = spec
        .find_write_quorum_bits(all)
        .map(|q| q.len())
        .unwrap_or(usize::MAX);
    (r, w)
}

/// Expected number of replica accesses per logical operation for a workload
/// with the given fraction of reads, using minimum quorums.
///
/// A logical read costs one read-quorum; a logical write costs a read-quorum
/// (version-number discovery) plus a write-quorum (paper §1).
pub fn expected_accesses_per_op(spec: &dyn QuorumSpec, read_fraction: f64) -> f64 {
    let (r, w) = min_quorum_sizes(spec);
    let (r, w) = (r as f64, w as f64);
    read_fraction * r + (1.0 - read_fraction) * (r + w)
}

/// System *load* in the sense of Naor & Wool, restricted to the uniform
/// strategy over the minimum quorums found by greedy shrinking from each
/// rotation of the universe: an upper-bound heuristic on the best load.
///
/// Returns the maximum, over replicas, of the fraction of sampled quorums
/// containing that replica.
pub fn uniform_load_estimate(spec: &dyn QuorumSpec, rng: &mut dyn rand::RngCore) -> f64 {
    let n = spec.n();
    let samples = 200.max(4 * n);
    let mut counts = vec![0u32; n];
    let mut total = 0u32;
    for _ in 0..samples {
        // Random availability order: shrink from a random permutation bias.
        let mut avail = ReplicaSet::full(n);
        // Randomly drop a few replicas to diversify the minimal quorums found.
        for i in 0..n {
            if rng.gen_bool(0.3) && avail.len() > 1 {
                let mut candidate = avail;
                candidate.remove(i);
                if spec.is_read_quorum_bits(candidate) {
                    avail = candidate;
                }
            }
        }
        if let Some(q) = spec.find_read_quorum_bits(avail) {
            for x in q {
                counts[x] += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        return 1.0;
    }
    counts
        .iter()
        .map(|&c| f64::from(c) / f64::from(total))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Majority, Rowa};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rowa_read_availability_dominates_write() {
        let q = Rowa::new(5);
        let r = exact_read_availability(&q, 0.9);
        let w = exact_write_availability(&q, 0.9);
        // Read available iff any replica up: 1 - 0.1^5.
        assert!((r - (1.0 - 0.1f64.powi(5))).abs() < 1e-12);
        // Write needs all: 0.9^5.
        assert!((w - 0.9f64.powi(5)).abs() < 1e-12);
        assert!(r > w);
    }

    #[test]
    fn majority_availability_closed_form() {
        let q = Majority::new(3);
        // P(at least 2 of 3 up) with p = 0.8: 3·0.8²·0.2 + 0.8³.
        let expect = 3.0 * 0.8f64.powi(2) * 0.2 + 0.8f64.powi(3);
        assert!((exact_read_availability(&q, 0.8) - expect).abs() < 1e-12);
        assert!((exact_write_availability(&q, 0.8) - expect).abs() < 1e-12);
    }

    #[test]
    fn degenerate_probabilities() {
        let q = Majority::new(5);
        assert_eq!(exact_read_availability(&q, 0.0), 0.0);
        assert!((exact_read_availability(&q, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_tracks_exact() {
        let q = Majority::new(5);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let (mc_r, mc_w) = monte_carlo_availability(&q, 0.8, 20_000, &mut rng);
        let exact = exact_read_availability(&q, 0.8);
        assert!((mc_r - exact).abs() < 0.02, "mc {mc_r} vs exact {exact}");
        assert!((mc_w - exact).abs() < 0.02);
    }

    #[test]
    fn min_quorum_sizes_rowa_vs_majority() {
        assert_eq!(min_quorum_sizes(&Rowa::new(5)), (1, 5));
        assert_eq!(min_quorum_sizes(&Majority::new(5)), (3, 3));
    }

    #[test]
    fn expected_accesses_crossover() {
        // Read-heavy favours ROWA on access count.
        let rowa = Rowa::new(5);
        let maj = Majority::new(5);
        assert!(expected_accesses_per_op(&rowa, 1.0) < expected_accesses_per_op(&maj, 1.0));
        // Classic identity: for odd n, the *write* access cost ties —
        // ROWA pays 1 + n, symmetric majority pays k + k with 2k = n + 1.
        assert_eq!(
            expected_accesses_per_op(&rowa, 0.0),
            expected_accesses_per_op(&maj, 0.0)
        );
        // Every legal threshold pair has read + write ≥ n + 1, so no vote
        // assignment can beat ROWA's write cost; structured (grid) systems
        // can: at n = 9 a grid write touches 3 + 5 replicas vs 5 + 5.
        let grid = crate::Grid::new(3, 3);
        let maj9 = Majority::new(9);
        assert!(expected_accesses_per_op(&grid, 0.0) < expected_accesses_per_op(&maj9, 0.0));
    }

    #[test]
    fn load_is_a_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let l = uniform_load_estimate(&Majority::new(5), &mut rng);
        assert!((0.0..=1.0).contains(&l));
        // Majority load is at least k/n = 3/5.
        assert!(l >= 0.6 - 1e-9);
    }
}
