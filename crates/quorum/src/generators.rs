//! Generators for standard explicit quorum configurations.
//!
//! Each generator returns a legal [`Configuration`] over a caller-supplied
//! universe of data-manager names. These are the configurations the paper's
//! introduction cites as special cases of quorum consensus:
//! read-one/write-all and read-majority/write-majority, plus weighted voting
//! (Gifford's original formulation) and two structured systems (grid, tree)
//! used by the evaluation.

use std::collections::BTreeSet;

use crate::config::Configuration;

/// Read-one / write-all: each singleton is a read-quorum; the unique
/// write-quorum is the full universe.
///
/// # Panics
///
/// Panics if `universe` is empty.
pub fn rowa<T: Ord + Clone>(universe: &[T]) -> Configuration<T> {
    assert!(!universe.is_empty(), "universe must be non-empty");
    let all: BTreeSet<T> = universe.iter().cloned().collect();
    let reads = universe
        .iter()
        .map(|x| [x.clone()].into_iter().collect::<BTreeSet<T>>());
    Configuration::new(reads, vec![all])
}

/// Read-all / write-one: the dual of [`rowa`] — cheap writes, expensive
/// reads. Legal because the single read-quorum (everything) meets every
/// singleton write-quorum.
///
/// # Panics
///
/// Panics if `universe` is empty.
pub fn raow<T: Ord + Clone>(universe: &[T]) -> Configuration<T> {
    assert!(!universe.is_empty(), "universe must be non-empty");
    let all: BTreeSet<T> = universe.iter().cloned().collect();
    let writes = universe
        .iter()
        .map(|x| [x.clone()].into_iter().collect::<BTreeSet<T>>());
    Configuration::new(vec![all], writes)
}

/// Read-majority / write-majority: every subset of size `⌊n/2⌋ + 1` is both
/// a read- and a write-quorum.
///
/// # Panics
///
/// Panics if `universe` is empty or larger than 20 names (the explicit
/// enumeration would be enormous; use [`crate::Majority`] instead).
pub fn majority<T: Ord + Clone>(universe: &[T]) -> Configuration<T> {
    assert!(!universe.is_empty(), "universe must be non-empty");
    assert!(
        universe.len() <= 20,
        "explicit majority enumeration capped at 20 names; use quorum::Majority"
    );
    let k = universe.len() / 2 + 1;
    let subsets = subsets_of_size(universe, k);
    Configuration::new(subsets.clone(), subsets)
}

/// Gifford weighted voting: each name carries a vote count; read-quorums are
/// the minimal subsets with vote total ≥ `read_threshold`, write-quorums
/// those ≥ `write_threshold`.
///
/// Legality requires `read_threshold + write_threshold > total_votes`
/// (Gifford's constraint), which this generator asserts.
///
/// # Panics
///
/// Panics if the threshold constraint is violated, if either threshold is
/// unreachable, or if `votes` is empty.
pub fn weighted<T: Ord + Clone>(
    votes: &[(T, u32)],
    read_threshold: u32,
    write_threshold: u32,
) -> Configuration<T> {
    assert!(!votes.is_empty(), "votes must be non-empty");
    let total: u32 = votes.iter().map(|(_, v)| v).sum();
    assert!(
        read_threshold + write_threshold > total,
        "read + write thresholds must exceed total votes ({total})"
    );
    assert!(
        read_threshold <= total && write_threshold <= total,
        "thresholds must be attainable"
    );
    let reads = minimal_vote_subsets(votes, read_threshold);
    let writes = minimal_vote_subsets(votes, write_threshold);
    Configuration::new(reads, writes)
}

/// Grid quorums over a `rows × cols` arrangement of the universe (row-major
/// order): a read-quorum is one name from each column; a write-quorum is a
/// full column plus one name from each other column.
///
/// Every read-quorum meets every write-quorum in the write's full column.
///
/// # Panics
///
/// Panics unless `universe.len() == rows * cols` with both dimensions
/// positive, or if the enumeration would exceed 100 000 quorums.
pub fn grid<T: Ord + Clone>(universe: &[T], rows: usize, cols: usize) -> Configuration<T> {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    assert_eq!(universe.len(), rows * cols, "universe must fill the grid");
    let column = |c: usize| -> Vec<T> {
        (0..rows).map(|r| universe[r * cols + c].clone()).collect()
    };
    let n_reads = rows.pow(cols as u32);
    assert!(n_reads <= 100_000, "grid enumeration too large");

    // All choices of one element per column.
    let mut reads: Vec<BTreeSet<T>> = vec![BTreeSet::new()];
    for c in 0..cols {
        let col = column(c);
        reads = reads
            .into_iter()
            .flat_map(|base| {
                col.iter().map(move |x| {
                    let mut q = base.clone();
                    q.insert(x.clone());
                    q
                })
            })
            .collect();
    }

    // Full column `c` + one element of each other column.
    let mut writes: Vec<BTreeSet<T>> = Vec::new();
    for c in 0..cols {
        let full: BTreeSet<T> = column(c).into_iter().collect();
        let mut partials: Vec<BTreeSet<T>> = vec![full];
        for c2 in 0..cols {
            if c2 == c {
                continue;
            }
            let col = column(c2);
            partials = partials
                .into_iter()
                .flat_map(|base| {
                    col.iter().map(move |x| {
                        let mut q = base.clone();
                        q.insert(x.clone());
                        q
                    })
                })
                .collect();
        }
        writes.extend(partials);
    }
    Configuration::new(reads, writes)
}

/// Hierarchical (tree) quorums after Agrawal & El Abbadi, specialised to a
/// complete ternary tree over `universe` (leaves only hold data): a quorum
/// is formed by recursively taking majorities of subtrees. Both read- and
/// write-quorums use the majority rule, so any two quorums intersect.
///
/// `universe.len()` must be a power of 3.
///
/// # Panics
///
/// Panics if `universe.len()` is not a positive power of 3.
pub fn tree_majority<T: Ord + Clone>(universe: &[T]) -> Configuration<T> {
    let n = universe.len();
    assert!(n > 0 && is_power_of_3(n), "universe size must be a power of 3");
    let quorums = tree_quorums(universe);
    Configuration::new(quorums.clone(), quorums)
}

fn is_power_of_3(mut n: usize) -> bool {
    while n.is_multiple_of(3) {
        n /= 3;
    }
    n == 1
}

fn tree_quorums<T: Ord + Clone>(leaves: &[T]) -> Vec<BTreeSet<T>> {
    if leaves.len() == 1 {
        return vec![[leaves[0].clone()].into_iter().collect()];
    }
    let third = leaves.len() / 3;
    let subs: Vec<Vec<BTreeSet<T>>> = (0..3)
        .map(|i| tree_quorums(&leaves[i * third..(i + 1) * third]))
        .collect();
    // Majority of children: any 2 of the 3 subtrees contribute a quorum.
    let mut out = Vec::new();
    for (i, j) in [(0, 1), (0, 2), (1, 2)] {
        for a in &subs[i] {
            for b in &subs[j] {
                let mut q = a.clone();
                q.extend(b.iter().cloned());
                out.push(q);
            }
        }
    }
    out
}

/// All subsets of `universe` of exactly `k` elements.
fn subsets_of_size<T: Ord + Clone>(universe: &[T], k: usize) -> Vec<BTreeSet<T>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    subsets_rec(universe, k, 0, &mut current, &mut out);
    out
}

fn subsets_rec<T: Ord + Clone>(
    universe: &[T],
    k: usize,
    start: usize,
    current: &mut Vec<T>,
    out: &mut Vec<BTreeSet<T>>,
) {
    if current.len() == k {
        out.push(current.iter().cloned().collect());
        return;
    }
    let needed = k - current.len();
    for i in start..=universe.len().saturating_sub(needed) {
        current.push(universe[i].clone());
        subsets_rec(universe, k, i + 1, current, out);
        current.pop();
    }
}

/// Minimal subsets whose vote total reaches `threshold`.
fn minimal_vote_subsets<T: Ord + Clone>(votes: &[(T, u32)], threshold: u32) -> Vec<BTreeSet<T>> {
    let mut raw: Vec<BTreeSet<T>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    vote_rec(votes, threshold, 0, 0, &mut current, &mut raw);
    // Keep only minimal sets.
    let mut out: Vec<BTreeSet<T>> = Vec::new();
    for q in &raw {
        if !raw.iter().any(|o| o != q && o.is_subset(q)) {
            out.push(q.clone());
        }
    }
    out.sort();
    out.dedup();
    out
}

fn vote_rec<T: Ord + Clone>(
    votes: &[(T, u32)],
    threshold: u32,
    start: usize,
    acc: u32,
    current: &mut Vec<usize>,
    out: &mut Vec<BTreeSet<T>>,
) {
    if acc >= threshold {
        out.push(current.iter().map(|&i| votes[i].0.clone()).collect());
        return; // any extension is non-minimal
    }
    for i in start..votes.len() {
        current.push(i);
        vote_rec(votes, threshold, i + 1, acc + votes[i].1, current, out);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rowa_structure() {
        let cfg = rowa(&[0u32, 1, 2]);
        assert_eq!(cfg.read_quorums().len(), 3);
        assert_eq!(cfg.write_quorums().len(), 1);
        assert_eq!(cfg.write_quorums()[0].len(), 3);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn raow_is_dual_of_rowa() {
        let cfg = raow(&[0u32, 1, 2]);
        assert_eq!(cfg.read_quorums().len(), 1);
        assert_eq!(cfg.write_quorums().len(), 3);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn majority_counts() {
        let cfg = majority(&[0u32, 1, 2, 3, 4]);
        // C(5,3) = 10 on each side.
        assert_eq!(cfg.read_quorums().len(), 10);
        assert_eq!(cfg.write_quorums().len(), 10);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn majority_single_replica() {
        let cfg = majority(&[7u32]);
        assert_eq!(cfg.read_quorums().len(), 1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn weighted_reduces_to_rowa() {
        // 1 vote each, read 1, write n  ==  read-one/write-all.
        let votes: Vec<(u32, u32)> = (0..4).map(|i| (i, 1)).collect();
        let cfg = weighted(&votes, 1, 4);
        let expected = rowa(&[0u32, 1, 2, 3]);
        assert_eq!(cfg.minimized(), expected.minimized());
    }

    #[test]
    fn weighted_heterogeneous_votes() {
        // Site 0 has 2 votes: total 4, read 2, write 3.
        let cfg = weighted(&[(0u32, 2), (1, 1), (2, 1)], 2, 3);
        assert!(cfg.validate().is_ok());
        // {0} alone reaches the read threshold.
        assert!(cfg
            .read_quorums()
            .contains(&[0u32].into_iter().collect()));
    }

    #[test]
    #[should_panic(expected = "thresholds must exceed")]
    fn weighted_rejects_illegal_thresholds() {
        weighted(&[(0u32, 1), (1, 1)], 1, 1);
    }

    #[test]
    fn grid_legal_and_sized() {
        let universe: Vec<u32> = (0..6).collect();
        let cfg = grid(&universe, 2, 3);
        assert!(cfg.validate().is_ok());
        // Reads: one per column = 2^3 = 8 choices.
        assert_eq!(cfg.read_quorums().len(), 8);
        // Read quorums have size 3 (one per column).
        assert!(cfg.read_quorums().iter().all(|q| q.len() == 3));
        // Write quorums: column (2) + one from each of 2 other columns.
        assert!(cfg.write_quorums().iter().all(|q| q.len() == 4));
    }

    #[test]
    fn tree_majority_legal() {
        let universe: Vec<u32> = (0..9).collect();
        let cfg = tree_majority(&universe);
        assert!(cfg.validate().is_ok());
        // Quorums of a 9-leaf ternary tree have 4 leaves (2 per chosen
        // subtree, 2 subtrees).
        assert!(cfg.read_quorums().iter().all(|q| q.len() == 4));
    }

    #[test]
    fn tree_majority_base_case() {
        let cfg = tree_majority(&[5u32]);
        assert_eq!(cfg.read_quorums().len(), 1);
    }

    #[test]
    fn all_generators_are_legal_for_various_sizes() {
        for n in 1..=7usize {
            let u: Vec<u32> = (0..n as u32).collect();
            assert!(rowa(&u).validate().is_ok(), "rowa n={n}");
            assert!(raow(&u).validate().is_ok(), "raow n={n}");
            assert!(majority(&u).validate().is_ok(), "majority n={n}");
        }
    }
}
