//! [`ReplicaSet`]: an allocation-free set of replica indices backed by a
//! `u128` bitset.
//!
//! The quorum-membership predicates are the hottest code in the workspace —
//! the simulator evaluates one per response message and the availability
//! sweeps evaluate 2^n of them per point — and `BTreeSet<usize>` costs a
//! heap allocation and pointer-chasing per probe. `ReplicaSet` represents
//! replicas `0..n` (n ≤ 128, see `DESIGN.md`) as bits, making membership,
//! union, intersection, subset, and cardinality single popcount/mask
//! instructions, and making set values `Copy`.
//!
//! `From`/`Into` conversions to `BTreeSet<usize>` keep the explicit-set API
//! available at the edges (tests, `Configuration` interop) while the hot
//! paths stay on bits.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, Sub};

/// The maximum replica index representable (`0..=127`).
pub const MAX_REPLICAS: usize = 128;

/// A set of replica indices in `0..128`, as a `u128` bitmask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ReplicaSet(u128);

impl ReplicaSet {
    /// The empty set.
    pub const EMPTY: ReplicaSet = ReplicaSet(0);

    /// The empty set.
    #[inline]
    pub const fn new() -> Self {
        ReplicaSet(0)
    }

    /// The set `{0, 1, …, n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 128`.
    #[inline]
    pub const fn full(n: usize) -> Self {
        assert!(n <= MAX_REPLICAS, "ReplicaSet caps replicas at 128");
        if n == MAX_REPLICAS {
            ReplicaSet(u128::MAX)
        } else {
            ReplicaSet((1u128 << n) - 1)
        }
    }

    /// The singleton `{i}`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 128`.
    #[inline]
    pub const fn singleton(i: usize) -> Self {
        assert!(i < MAX_REPLICAS, "replica index out of range");
        ReplicaSet(1u128 << i)
    }

    /// Construct directly from a bitmask (bit `i` ⇔ replica `i`).
    #[inline]
    pub const fn from_bits(bits: u128) -> Self {
        ReplicaSet(bits)
    }

    /// The underlying bitmask.
    #[inline]
    pub const fn bits(self) -> u128 {
        self.0
    }

    /// Whether `i` is in the set (`false` for `i >= 128`).
    #[inline]
    pub const fn contains(self, i: usize) -> bool {
        i < MAX_REPLICAS && self.0 & (1u128 << i) != 0
    }

    /// Insert `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 128`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < MAX_REPLICAS, "replica index out of range");
        self.0 |= 1u128 << i;
    }

    /// Remove `i` (no-op if absent or out of range).
    #[inline]
    pub fn remove(&mut self, i: usize) {
        if i < MAX_REPLICAS {
            self.0 &= !(1u128 << i);
        }
    }

    /// Number of replicas in the set (popcount).
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub const fn is_subset(self, other: ReplicaSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether `self ⊇ other`.
    #[inline]
    pub const fn is_superset(self, other: ReplicaSet) -> bool {
        other.is_subset(self)
    }

    /// Whether the sets share at least one replica.
    #[inline]
    pub const fn intersects(self, other: ReplicaSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: ReplicaSet) -> ReplicaSet {
        ReplicaSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: ReplicaSet) -> ReplicaSet {
        ReplicaSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub const fn difference(self, other: ReplicaSet) -> ReplicaSet {
        ReplicaSet(self.0 & !other.0)
    }

    /// Complement within the universe `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 128`.
    #[inline]
    pub const fn complement(self, n: usize) -> ReplicaSet {
        ReplicaSet(!self.0 & Self::full(n).0)
    }

    /// The smallest index in the set, if any.
    #[inline]
    pub const fn min(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// The largest index in the set, if any.
    #[inline]
    pub const fn max(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(127 - self.0.leading_zeros() as usize)
        }
    }

    /// The subset holding the `k` largest indices (the whole set when
    /// `k >= len`). This is exactly what greedy quorum shrinking leaves of
    /// a threshold system's availability set — shrinking drops indices in
    /// ascending order — so threshold specs can answer
    /// `find_*_quorum_bits` with one loop instead of `len` predicate
    /// probes.
    #[inline]
    pub fn keep_highest(self, k: usize) -> ReplicaSet {
        let mut bits = self.0;
        let mut excess = self.len().saturating_sub(k);
        while excess > 0 {
            bits &= bits - 1; // clear lowest set bit
            excess -= 1;
        }
        ReplicaSet(bits)
    }

    /// Iterate indices in ascending order.
    #[inline]
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }
}

/// Ascending-order iterator over a [`ReplicaSet`].
#[derive(Clone, Debug)]
pub struct Iter(u128);

impl Iterator for Iter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1; // clear lowest set bit
            Some(i)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for ReplicaSet {
    type Item = usize;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl FromIterator<usize> for ReplicaSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = ReplicaSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl From<&BTreeSet<usize>> for ReplicaSet {
    fn from(set: &BTreeSet<usize>) -> Self {
        set.iter().copied().collect()
    }
}

impl From<BTreeSet<usize>> for ReplicaSet {
    fn from(set: BTreeSet<usize>) -> Self {
        ReplicaSet::from(&set)
    }
}

impl From<ReplicaSet> for BTreeSet<usize> {
    fn from(set: ReplicaSet) -> Self {
        set.iter().collect()
    }
}

impl BitOr for ReplicaSet {
    type Output = ReplicaSet;
    fn bitor(self, rhs: ReplicaSet) -> ReplicaSet {
        self.union(rhs)
    }
}

impl BitOrAssign for ReplicaSet {
    fn bitor_assign(&mut self, rhs: ReplicaSet) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for ReplicaSet {
    type Output = ReplicaSet;
    fn bitand(self, rhs: ReplicaSet) -> ReplicaSet {
        self.intersection(rhs)
    }
}

impl BitAndAssign for ReplicaSet {
    fn bitand_assign(&mut self, rhs: ReplicaSet) {
        self.0 &= rhs.0;
    }
}

impl BitXor for ReplicaSet {
    type Output = ReplicaSet;
    fn bitxor(self, rhs: ReplicaSet) -> ReplicaSet {
        ReplicaSet(self.0 ^ rhs.0)
    }
}

impl Sub for ReplicaSet {
    type Output = ReplicaSet;
    fn sub(self, rhs: ReplicaSet) -> ReplicaSet {
        self.difference(rhs)
    }
}

impl fmt::Debug for ReplicaSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for ReplicaSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let s = ReplicaSet::full(5);
        assert_eq!(s.len(), 5);
        assert!(s.contains(0) && s.contains(4) && !s.contains(5));
        assert!(!s.contains(200));
        let t: ReplicaSet = [1usize, 3, 3, 7].into_iter().collect();
        assert_eq!(t.len(), 3);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![1, 3, 7]);
    }

    #[test]
    fn set_algebra() {
        let a: ReplicaSet = [0usize, 1, 2].into_iter().collect();
        let b: ReplicaSet = [2usize, 3].into_iter().collect();
        assert_eq!((a | b).len(), 4);
        assert_eq!((a & b).iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!((a - b).iter().collect::<Vec<_>>(), vec![0, 1]);
        assert!(a.intersects(b));
        assert!((a & b).is_subset(a));
        assert!(a.is_superset(a & b));
        assert_eq!(a.complement(4).iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn btreeset_round_trip() {
        let orig: BTreeSet<usize> = [5usize, 9, 127].into_iter().collect();
        let rs = ReplicaSet::from(&orig);
        let back: BTreeSet<usize> = rs.into();
        assert_eq!(orig, back);
    }

    #[test]
    fn boundary_128() {
        let full = ReplicaSet::full(128);
        assert_eq!(full.len(), 128);
        assert!(full.contains(127));
        let s = ReplicaSet::singleton(127);
        assert_eq!(s.min(), Some(127));
        assert_eq!(s.complement(128).len(), 127);
    }

    #[test]
    #[should_panic(expected = "caps replicas")]
    fn full_beyond_cap_panics() {
        let _ = ReplicaSet::full(129);
    }

    #[test]
    fn keep_highest_retains_largest_indices() {
        let s: ReplicaSet = [0usize, 2, 5, 9, 11].into_iter().collect();
        assert_eq!(s.keep_highest(2).iter().collect::<Vec<_>>(), vec![9, 11]);
        assert_eq!(s.keep_highest(5), s);
        assert_eq!(s.keep_highest(100), s);
        assert_eq!(s.keep_highest(0), ReplicaSet::EMPTY);
        assert_eq!(ReplicaSet::EMPTY.keep_highest(3), ReplicaSet::EMPTY);
        assert_eq!(s.max(), Some(11));
        assert_eq!(ReplicaSet::EMPTY.max(), None);
        assert_eq!(ReplicaSet::singleton(127).max(), Some(127));
    }

    #[test]
    fn iteration_is_ascending_and_exact() {
        let s: ReplicaSet = [64usize, 2, 100, 31].into_iter().collect();
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![2, 31, 64, 100]);
        assert_eq!(s.iter().len(), 4);
        assert_eq!(s.min(), Some(2));
        assert_eq!(ReplicaSet::EMPTY.min(), None);
    }
}
