//! Predicate-form quorum systems over replica indices.
//!
//! Explicit [`Configuration`]s enumerate their quorums, which is faithful to
//! the paper but infeasible for, say, majorities over 25 replicas. A
//! [`QuorumSpec`] answers quorum questions by predicate instead, and is what
//! the evaluation substrate (`qc-sim`) uses. Replicas are identified by
//! indices `0..n`.

use std::collections::BTreeSet;

use crate::config::Configuration;
use crate::replica_set::{ReplicaSet, MAX_REPLICAS};

/// What a quorum system can still do given a set of live replicas.
///
/// Computed by [`QuorumSpec::quorum_health`]; coordinators use it to fail
/// fast ("quorum unavailable") instead of timing out against a site set
/// that can never assemble the required quorum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuorumHealth {
    /// Both a read-quorum and a write-quorum are available.
    ReadWrite,
    /// Only a read-quorum is available.
    ReadOnly,
    /// Only a write-quorum is available (possible under asymmetric
    /// thresholds where read-quorums are larger than write-quorums).
    WriteOnly,
    /// Neither quorum is available.
    Unavailable,
}

impl QuorumHealth {
    /// Whether a read-quorum can be assembled.
    #[must_use]
    pub fn can_read(self) -> bool {
        matches!(self, QuorumHealth::ReadWrite | QuorumHealth::ReadOnly)
    }

    /// Whether a write-quorum can be assembled.
    #[must_use]
    pub fn can_write(self) -> bool {
        matches!(self, QuorumHealth::ReadWrite | QuorumHealth::WriteOnly)
    }
}

/// The pure-threshold form of a quorum system: a set is a read-quorum iff
/// it contains at least `read_size` of replicas `0..n`, and a write-quorum
/// iff it contains at least `write_size`.
///
/// Returned by [`QuorumSpec::thresholds`] for systems whose predicates are
/// exactly counts (ROWA is `read_size = 1`, `write_size = n`; [`Majority`]
/// is its configured sizes). Hot loops use it to answer quorum questions
/// as one mask-and-popcount with no virtual call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Thresholds {
    /// Number of replicas.
    pub n: usize,
    /// Minimum in-range members of a read-quorum.
    pub read_size: usize,
    /// Minimum in-range members of a write-quorum.
    pub write_size: usize,
}

/// The recognized *resizable* quorum families, for dynamic
/// reconfiguration (Goldman & Lynch §4).
///
/// A reconfiguration replaces a configuration's member set while keeping
/// its quorum *rule*: ROWA stays read-one/write-all over the new members,
/// majority stays simple majorities. [`QuorumFamily::of`] classifies a
/// [`QuorumSpec`] by its threshold form; systems without a pure threshold
/// form (grids, trees, weighted votes) have no canonical resizing and are
/// not dynamically reconfigurable here.
///
/// The *configuration sub-object* — the `(generation, members)` pair each
/// replica carries next to its data — is always majority-governed
/// ([`QuorumFamily::config_quorum_size`]), independent of the data
/// family. Pure ROWA could otherwise never reconfigure away from a dead
/// site: installing the new configuration requires a write-quorum of the
/// *old* configuration, and an old ROWA data-write-quorum includes the
/// dead site by definition. A majority of the old members both satisfies
/// the Goldman–Lynch old-quorum rule (config-read and config-write
/// majorities over the same member set intersect) and stays available
/// under minority failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuorumFamily {
    /// Read-one / write-all over the current members.
    Rowa,
    /// Simple majorities (`⌊m/2⌋ + 1` both sides) over the current members.
    Majority,
}

impl QuorumFamily {
    /// Classify `spec`, or `None` when it is not a resizable threshold
    /// system.
    #[must_use]
    pub fn of(spec: &dyn QuorumSpec) -> Option<Self> {
        let t = spec.thresholds()?;
        if t.read_size == 1 && t.write_size == t.n {
            Some(QuorumFamily::Rowa)
        } else if t.read_size == t.n / 2 + 1 && t.write_size == t.read_size {
            Some(QuorumFamily::Majority)
        } else {
            None
        }
    }

    /// Data read-quorum size over `m` members.
    #[must_use]
    pub fn read_size(self, m: usize) -> usize {
        match self {
            QuorumFamily::Rowa => 1,
            QuorumFamily::Majority => m / 2 + 1,
        }
    }

    /// Data write-quorum size over `m` members.
    #[must_use]
    pub fn write_size(self, m: usize) -> usize {
        match self {
            QuorumFamily::Rowa => m,
            QuorumFamily::Majority => m / 2 + 1,
        }
    }

    /// Configuration-quorum size over `m` members (majority, both for
    /// reading and writing the configuration sub-object).
    #[must_use]
    pub fn config_quorum_size(m: usize) -> usize {
        m / 2 + 1
    }
}

/// A quorum system over replicas `0..n`, in predicate form.
///
/// The required predicates operate on [`ReplicaSet`] bitsets — the form the
/// simulator and availability sweeps use on their hot paths. The
/// `BTreeSet`-based methods are provided conversions for callers that hold
/// explicit sets; they give identical answers.
pub trait QuorumSpec: std::fmt::Debug {
    /// Number of replicas.
    fn n(&self) -> usize;

    /// Whether `set` includes a read-quorum.
    fn is_read_quorum_bits(&self, set: ReplicaSet) -> bool;

    /// Whether `set` includes a write-quorum.
    fn is_write_quorum_bits(&self, set: ReplicaSet) -> bool;

    /// A (small) read-quorum contained in `available`, if any.
    ///
    /// The default implementation greedily drops replicas from `available`
    /// in ascending index order while the remainder still covers a
    /// read-quorum, yielding a minimal (though not necessarily minimum)
    /// quorum.
    fn find_read_quorum_bits(&self, available: ReplicaSet) -> Option<ReplicaSet> {
        if !self.is_read_quorum_bits(available) {
            return None;
        }
        Some(shrink(available, |s| self.is_read_quorum_bits(s)))
    }

    /// A (small) write-quorum contained in `available`, if any.
    fn find_write_quorum_bits(&self, available: ReplicaSet) -> Option<ReplicaSet> {
        if !self.is_write_quorum_bits(available) {
            return None;
        }
        Some(shrink(available, |s| self.is_write_quorum_bits(s)))
    }

    /// Whether `set` includes a read-quorum (explicit-set form).
    fn is_read_quorum(&self, set: &BTreeSet<usize>) -> bool {
        self.is_read_quorum_bits(to_bits(set))
    }

    /// Whether `set` includes a write-quorum (explicit-set form).
    fn is_write_quorum(&self, set: &BTreeSet<usize>) -> bool {
        self.is_write_quorum_bits(to_bits(set))
    }

    /// A (small) read-quorum contained in `available`, if any
    /// (explicit-set form; same greedy drop order as the bitset form).
    fn find_read_quorum(&self, available: &BTreeSet<usize>) -> Option<BTreeSet<usize>> {
        self.find_read_quorum_bits(to_bits(available)).map(Into::into)
    }

    /// A (small) write-quorum contained in `available`, if any.
    fn find_write_quorum(&self, available: &BTreeSet<usize>) -> Option<BTreeSet<usize>> {
        self.find_write_quorum_bits(to_bits(available)).map(Into::into)
    }

    /// The threshold form of this system, when its quorum predicates are
    /// exactly "at least `k` members of `0..n`" counts: a set is a
    /// read-(write-)quorum iff it contains at least `read_size`
    /// (`write_size`) of the replicas. Hot loops (the simulators' phase
    /// assembly, contact selection, and feasibility probes) use this to
    /// evaluate membership as an inline mask-and-popcount instead of a
    /// virtual call per probe.
    ///
    /// Returning `Some` is a contract: the thresholds must agree *exactly*
    /// with `is_read_quorum_bits` / `is_write_quorum_bits`, and the greedy
    /// ascending-drop shrink of `find_*_quorum_bits` must equal
    /// `keep_highest(k)` of the in-range members (true for any pure
    /// threshold predicate). The default is `None`: callers fall back to
    /// the predicate methods.
    fn thresholds(&self) -> Option<Thresholds> {
        None
    }

    /// Quorum-loss detection: what this system can still do when only
    /// `live` replicas are reachable.
    ///
    /// The answer depends only on quorum membership over indices, so it is
    /// exact (not a heuristic): [`QuorumHealth::Unavailable`] means *no*
    /// subset of `live` is a quorum, and the operation is doomed before a
    /// single message is sent.
    fn quorum_health(&self, live: ReplicaSet) -> QuorumHealth {
        match (
            self.is_read_quorum_bits(live),
            self.is_write_quorum_bits(live),
        ) {
            (true, true) => QuorumHealth::ReadWrite,
            (true, false) => QuorumHealth::ReadOnly,
            (false, true) => QuorumHealth::WriteOnly,
            (false, false) => QuorumHealth::Unavailable,
        }
    }

    /// A short human-readable label ("rowa", "majority", …) for reports.
    fn label(&self) -> String;
}

/// Convert an explicit set to bits, ignoring indices beyond the 128-replica
/// cap (they can never be in `0..n`, so every predicate ignores them).
fn to_bits(set: &BTreeSet<usize>) -> ReplicaSet {
    set.iter().copied().filter(|&x| x < MAX_REPLICAS).collect()
}

/// Greedily drop bits in ascending index order while `pred` stays true.
fn shrink(set: ReplicaSet, pred: impl Fn(ReplicaSet) -> bool) -> ReplicaSet {
    let mut s = set;
    for x in set.iter() {
        let mut t = s;
        t.remove(x);
        if pred(t) {
            s = t;
        }
    }
    s
}

/// Read-one / write-all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rowa {
    n: usize,
}

impl Rowa {
    /// ROWA over `n` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 128` (the [`ReplicaSet`] cap).
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        assert!(n <= MAX_REPLICAS, "ReplicaSet caps replicas at 128");
        Rowa { n }
    }
}

impl QuorumSpec for Rowa {
    fn n(&self) -> usize {
        self.n
    }

    fn is_read_quorum_bits(&self, set: ReplicaSet) -> bool {
        set.intersects(ReplicaSet::full(self.n))
    }

    fn is_write_quorum_bits(&self, set: ReplicaSet) -> bool {
        set.is_superset(ReplicaSet::full(self.n))
    }

    // O(1) fast paths, bit-identical to the default greedy shrink (which
    // drops indices ascending): a ROWA read-quorum shrinks to the highest
    // live replica, a write-quorum to exactly the full replica set.
    fn find_read_quorum_bits(&self, available: ReplicaSet) -> Option<ReplicaSet> {
        available
            .intersection(ReplicaSet::full(self.n))
            .max()
            .map(ReplicaSet::singleton)
    }

    fn find_write_quorum_bits(&self, available: ReplicaSet) -> Option<ReplicaSet> {
        let full = ReplicaSet::full(self.n);
        available.is_superset(full).then_some(full)
    }

    // Read-one / write-all is the degenerate threshold pair (1, n).
    fn thresholds(&self) -> Option<Thresholds> {
        Some(Thresholds {
            n: self.n,
            read_size: 1,
            write_size: self.n,
        })
    }

    fn label(&self) -> String {
        "rowa".into()
    }
}

/// Majority (or general threshold) quorums: a read-quorum is any
/// `read_size` replicas, a write-quorum any `write_size` replicas, with
/// `read_size + write_size > n` (Gifford's constraint with unit votes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Majority {
    n: usize,
    read_size: usize,
    write_size: usize,
}

impl Majority {
    /// Simple majorities on both sides: `⌊n/2⌋ + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 128` (the [`ReplicaSet`] cap).
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        assert!(n <= MAX_REPLICAS, "ReplicaSet caps replicas at 128");
        let k = n / 2 + 1;
        Majority {
            n,
            read_size: k,
            write_size: k,
        }
    }

    /// Asymmetric thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < read_size, write_size ≤ n` and
    /// `read_size + write_size > n`.
    pub fn with_sizes(n: usize, read_size: usize, write_size: usize) -> Self {
        assert!(n > 0 && read_size > 0 && write_size > 0);
        assert!(n <= MAX_REPLICAS, "ReplicaSet caps replicas at 128");
        assert!(read_size <= n && write_size <= n);
        assert!(read_size + write_size > n, "quorum sizes must overlap");
        Majority {
            n,
            read_size,
            write_size,
        }
    }

    /// The read threshold.
    pub fn read_size(&self) -> usize {
        self.read_size
    }

    /// The write threshold.
    pub fn write_size(&self) -> usize {
        self.write_size
    }
}

impl QuorumSpec for Majority {
    fn n(&self) -> usize {
        self.n
    }

    fn is_read_quorum_bits(&self, set: ReplicaSet) -> bool {
        set.intersection(ReplicaSet::full(self.n)).len() >= self.read_size
    }

    fn is_write_quorum_bits(&self, set: ReplicaSet) -> bool {
        set.intersection(ReplicaSet::full(self.n)).len() >= self.write_size
    }

    // Threshold systems shrink greedily to the highest `size` in-range
    // indices (ascending drop order removes the lowest first), so the
    // minimal quorum is one mask-and-popcount instead of `len` predicate
    // probes — this is the per-operation path of the simulator's
    // MinimalQuorum contact policy.
    fn find_read_quorum_bits(&self, available: ReplicaSet) -> Option<ReplicaSet> {
        let live = available.intersection(ReplicaSet::full(self.n));
        (live.len() >= self.read_size).then(|| live.keep_highest(self.read_size))
    }

    fn find_write_quorum_bits(&self, available: ReplicaSet) -> Option<ReplicaSet> {
        let live = available.intersection(ReplicaSet::full(self.n));
        (live.len() >= self.write_size).then(|| live.keep_highest(self.write_size))
    }

    fn thresholds(&self) -> Option<Thresholds> {
        Some(Thresholds {
            n: self.n,
            read_size: self.read_size,
            write_size: self.write_size,
        })
    }

    fn label(&self) -> String {
        if self.read_size == self.write_size {
            format!("majority({}/{})", self.read_size, self.n)
        } else {
            format!("threshold(r{},w{}/{})", self.read_size, self.write_size, self.n)
        }
    }
}

/// Gifford weighted voting in predicate form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Weighted {
    votes: Vec<u32>,
    read_threshold: u32,
    write_threshold: u32,
}

impl Weighted {
    /// Weighted voting with per-replica votes and thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `read_threshold + write_threshold > total votes > 0`
    /// and both thresholds are attainable.
    pub fn new(votes: Vec<u32>, read_threshold: u32, write_threshold: u32) -> Self {
        let total: u32 = votes.iter().sum();
        assert!(total > 0, "total votes must be positive");
        assert!(votes.len() <= MAX_REPLICAS, "ReplicaSet caps replicas at 128");
        assert!(
            read_threshold + write_threshold > total,
            "thresholds must overlap"
        );
        assert!(read_threshold <= total && write_threshold <= total);
        Weighted {
            votes,
            read_threshold,
            write_threshold,
        }
    }

    fn tally(&self, set: ReplicaSet) -> u32 {
        set.iter()
            .filter_map(|x| self.votes.get(x))
            .copied()
            .sum()
    }
}

impl QuorumSpec for Weighted {
    fn n(&self) -> usize {
        self.votes.len()
    }

    fn is_read_quorum_bits(&self, set: ReplicaSet) -> bool {
        self.tally(set) >= self.read_threshold
    }

    fn is_write_quorum_bits(&self, set: ReplicaSet) -> bool {
        self.tally(set) >= self.write_threshold
    }

    fn label(&self) -> String {
        format!(
            "weighted(r{},w{}/{})",
            self.read_threshold,
            self.write_threshold,
            self.votes.iter().sum::<u32>()
        )
    }
}

/// Grid quorums (see [`crate::generators::grid`]) in predicate form: replicas are
/// arranged row-major in a `rows × cols` grid; a read-quorum covers every
/// column; a write-quorum covers every column and fully covers some column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid {
    rows: usize,
    cols: usize,
}

impl Grid {
    /// A grid of the given dimensions; `n = rows * cols`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `rows * cols > 128` (the
    /// [`ReplicaSet`] cap).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0);
        assert!(rows * cols <= MAX_REPLICAS, "ReplicaSet caps replicas at 128");
        Grid { rows, cols }
    }

    /// Bitmask of column 0 (replicas `r * cols` for each row `r`); column
    /// `c`'s mask is this shifted left by `c`.
    fn column_zero_mask(&self) -> u128 {
        let mut m = 0u128;
        for r in 0..self.rows {
            m |= 1u128 << (r * self.cols);
        }
        m
    }

    fn covers_every_column(&self, set: ReplicaSet) -> bool {
        let col0 = self.column_zero_mask();
        (0..self.cols).all(|c| set.bits() & (col0 << c) != 0)
    }

    fn covers_full_column(&self, set: ReplicaSet) -> bool {
        let col0 = self.column_zero_mask();
        (0..self.cols).any(|c| {
            let col = col0 << c;
            set.bits() & col == col
        })
    }
}

impl QuorumSpec for Grid {
    fn n(&self) -> usize {
        self.rows * self.cols
    }

    fn is_read_quorum_bits(&self, set: ReplicaSet) -> bool {
        self.covers_every_column(set)
    }

    fn is_write_quorum_bits(&self, set: ReplicaSet) -> bool {
        self.covers_every_column(set) && self.covers_full_column(set)
    }

    fn label(&self) -> String {
        format!("grid({}x{})", self.rows, self.cols)
    }
}

/// Hierarchical ternary-tree majority quorums (see
/// [`crate::generators::tree_majority`]) in predicate form. `n` must be a power
/// of 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeQuorum {
    n: usize,
}

impl TreeQuorum {
    /// A ternary-tree quorum system over `n` replicas.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive power of 3.
    pub fn new(n: usize) -> Self {
        let mut m = n;
        while m > 1 && m.is_multiple_of(3) {
            m /= 3;
        }
        assert!(n > 0 && m == 1, "n must be a power of 3");
        assert!(n <= MAX_REPLICAS, "ReplicaSet caps replicas at 128");
        TreeQuorum { n }
    }

    fn covers(&self, set: ReplicaSet, lo: usize, len: usize) -> bool {
        if len == 1 {
            return set.contains(lo);
        }
        let third = len / 3;
        let hit = (0..3)
            .filter(|i| self.covers(set, lo + i * third, third))
            .count();
        hit >= 2
    }
}

impl QuorumSpec for TreeQuorum {
    fn n(&self) -> usize {
        self.n
    }

    fn is_read_quorum_bits(&self, set: ReplicaSet) -> bool {
        self.covers(set, 0, self.n)
    }

    fn is_write_quorum_bits(&self, set: ReplicaSet) -> bool {
        self.covers(set, 0, self.n)
    }

    fn label(&self) -> String {
        format!("tree({})", self.n)
    }
}

/// An explicit [`Configuration`] over replica indices *is* a quorum system
/// in predicate form: membership is "some enumerated quorum is contained in
/// the set". This is the inverse direction of [`to_configuration`], and
/// lets paper-style explicit configurations (including deliberately illegal
/// ones, in tests) drive every consumer of `QuorumSpec` — the simulator,
/// the availability sweeps, and the conformance checker.
impl QuorumSpec for Configuration<usize> {
    fn n(&self) -> usize {
        self.universe().iter().max().map_or(0, |&m| m + 1)
    }

    fn is_read_quorum_bits(&self, set: ReplicaSet) -> bool {
        self.read_quorums()
            .iter()
            .any(|q| q.iter().all(|&x| x < MAX_REPLICAS && set.contains(x)))
    }

    fn is_write_quorum_bits(&self, set: ReplicaSet) -> bool {
        self.write_quorums()
            .iter()
            .any(|q| q.iter().all(|&x| x < MAX_REPLICAS && set.contains(x)))
    }

    fn label(&self) -> String {
        format!(
            "explicit(r{},w{}/{})",
            self.read_quorums().len(),
            self.write_quorums().len(),
            self.n()
        )
    }
}

/// Convert a spec into an explicit configuration by exhaustive enumeration
/// (practical only for small `n`; capped at `n ≤ 12`).
///
/// # Panics
///
/// Panics if `spec.n() > 12`.
pub fn to_configuration(spec: &dyn QuorumSpec) -> Configuration<usize> {
    let n = spec.n();
    assert!(n <= 12, "enumeration capped at n = 12");
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for mask in 1u32..(1 << n) {
        let set = ReplicaSet::from_bits(mask as u128);
        let r = spec.is_read_quorum_bits(set);
        let w = spec.is_write_quorum_bits(set);
        if r || w {
            let explicit: BTreeSet<usize> = set.into();
            if r {
                reads.push(explicit.clone());
            }
            if w {
                writes.push(explicit);
            }
        }
    }
    Configuration::new(reads, writes).minimized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn set(items: &[usize]) -> BTreeSet<usize> {
        items.iter().copied().collect()
    }

    #[test]
    fn rowa_predicates() {
        let q = Rowa::new(3);
        assert!(q.is_read_quorum(&set(&[2])));
        assert!(!q.is_read_quorum(&set(&[])));
        assert!(q.is_write_quorum(&set(&[0, 1, 2])));
        assert!(!q.is_write_quorum(&set(&[0, 1])));
    }

    #[test]
    fn majority_predicates() {
        let q = Majority::new(5);
        assert!(q.is_read_quorum(&set(&[0, 2, 4])));
        assert!(!q.is_read_quorum(&set(&[0, 2])));
        // Out-of-range indices don't count.
        assert!(!q.is_read_quorum(&set(&[5, 6, 7])));
    }

    #[test]
    fn asymmetric_majority() {
        let q = Majority::with_sizes(5, 2, 4);
        assert!(q.is_read_quorum(&set(&[0, 1])));
        assert!(q.is_write_quorum(&set(&[0, 1, 2, 3])));
        assert!(!q.is_write_quorum(&set(&[0, 1, 2])));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn majority_rejects_non_overlapping() {
        Majority::with_sizes(5, 2, 3);
    }

    #[test]
    fn weighted_predicates() {
        let q = Weighted::new(vec![2, 1, 1], 2, 3);
        assert!(q.is_read_quorum(&set(&[0])));
        assert!(q.is_read_quorum(&set(&[1, 2])));
        assert!(q.is_write_quorum(&set(&[0, 1])));
        assert!(!q.is_write_quorum(&set(&[1, 2])));
    }

    #[test]
    fn grid_predicates() {
        let q = Grid::new(2, 3); // replicas 0..6, rows {0,1,2},{3,4,5}
        assert!(q.is_read_quorum(&set(&[0, 4, 5])));
        // Indices 0,1,2 form row 0, which covers every column.
        assert!(q.is_read_quorum(&set(&[0, 1, 2])));
        // Full column 0 is {0, 3}; plus one from each other column.
        assert!(q.is_write_quorum(&set(&[0, 3, 1, 5])));
        assert!(!q.is_write_quorum(&set(&[0, 1, 2])));
    }

    #[test]
    fn tree_predicates() {
        let q = TreeQuorum::new(9);
        // Two leaves from each of two subtrees.
        assert!(q.is_read_quorum(&set(&[0, 1, 3, 4])));
        assert!(!q.is_read_quorum(&set(&[0, 1, 2])));
    }

    #[test]
    fn bits_and_explicit_forms_agree() {
        let specs: Vec<Box<dyn QuorumSpec>> = vec![
            Box::new(Rowa::new(5)),
            Box::new(Majority::new(5)),
            Box::new(Weighted::new(vec![2, 1, 1, 1], 3, 3)),
            Box::new(Grid::new(2, 3)),
            Box::new(TreeQuorum::new(9)),
        ];
        for s in &specs {
            let n = s.n();
            for mask in 0u32..(1 << n) {
                let bits = ReplicaSet::from_bits(mask as u128);
                let explicit: BTreeSet<usize> = bits.into();
                assert_eq!(
                    s.is_read_quorum_bits(bits),
                    s.is_read_quorum(&explicit),
                    "{} read mismatch on {:?}",
                    s.label(),
                    explicit
                );
                assert_eq!(
                    s.is_write_quorum_bits(bits),
                    s.is_write_quorum(&explicit),
                    "{} write mismatch on {:?}",
                    s.label(),
                    explicit
                );
                assert_eq!(
                    s.find_read_quorum_bits(bits).map(BTreeSet::from),
                    s.find_read_quorum(&explicit),
                    "{} find mismatch on {:?}",
                    s.label(),
                    explicit
                );
            }
        }
    }

    /// Delegate that exposes only the membership predicates, so the
    /// trait's *default* greedy shrink answers the find queries — the
    /// oracle the fast-path overrides must match bit for bit.
    #[derive(Debug)]
    struct DefaultShrink<'a>(&'a dyn QuorumSpec);

    impl QuorumSpec for DefaultShrink<'_> {
        fn n(&self) -> usize {
            self.0.n()
        }
        fn is_read_quorum_bits(&self, set: ReplicaSet) -> bool {
            self.0.is_read_quorum_bits(set)
        }
        fn is_write_quorum_bits(&self, set: ReplicaSet) -> bool {
            self.0.is_write_quorum_bits(set)
        }
        fn label(&self) -> String {
            "default-shrink".into()
        }
    }

    #[test]
    fn fast_path_find_matches_default_shrink_exhaustively() {
        let specs: Vec<Box<dyn QuorumSpec>> = vec![
            Box::new(Rowa::new(4)),
            Box::new(Rowa::new(1)),
            Box::new(Majority::new(5)),
            Box::new(Majority::new(1)),
            Box::new(Majority::with_sizes(5, 2, 4)),
            Box::new(Majority::with_sizes(5, 4, 2)),
        ];
        for s in &specs {
            let oracle = DefaultShrink(s.as_ref());
            // Sweep two extra bits beyond n to cover out-of-range indices,
            // which the greedy shrink silently drops.
            for mask in 0u32..(1 << (s.n() + 2)) {
                let set = ReplicaSet::from_bits(mask as u128);
                assert_eq!(
                    s.find_read_quorum_bits(set),
                    oracle.find_read_quorum_bits(set),
                    "{} read fast path diverges on {set:?}",
                    s.label()
                );
                assert_eq!(
                    s.find_write_quorum_bits(set),
                    oracle.find_write_quorum_bits(set),
                    "{} write fast path diverges on {set:?}",
                    s.label()
                );
            }
        }
    }

    #[test]
    fn find_quorum_bits_shrinks_to_minimal() {
        let q = Majority::new(5);
        let rq = q.find_read_quorum_bits(ReplicaSet::full(5)).unwrap();
        assert_eq!(rq.len(), 3);
        assert!(q.is_read_quorum_bits(rq));
        assert!(q.find_write_quorum_bits(ReplicaSet::full(2)).is_none());
    }

    #[test]
    fn find_quorum_shrinks_to_minimal() {
        let q = Majority::new(5);
        let avail = set(&[0, 1, 2, 3, 4]);
        let rq = q.find_read_quorum(&avail).unwrap();
        assert_eq!(rq.len(), 3);
        assert!(q.is_read_quorum(&rq));
    }

    #[test]
    fn find_quorum_none_when_unavailable() {
        let q = Majority::new(5);
        assert!(q.find_read_quorum(&set(&[0, 1])).is_none());
    }

    #[test]
    fn quorum_health_tracks_live_set() {
        let q = Majority::new(5);
        assert_eq!(q.quorum_health(ReplicaSet::full(5)), QuorumHealth::ReadWrite);
        let three: ReplicaSet = [0usize, 2, 4].into_iter().collect();
        assert_eq!(q.quorum_health(three), QuorumHealth::ReadWrite);
        let two: ReplicaSet = [1usize, 3].into_iter().collect();
        assert_eq!(q.quorum_health(two), QuorumHealth::Unavailable);
        assert!(!q.quorum_health(two).can_read());
        assert!(!q.quorum_health(two).can_write());
    }

    #[test]
    fn quorum_health_rowa_degrades_to_read_only() {
        let q = Rowa::new(3);
        assert_eq!(q.quorum_health(ReplicaSet::full(3)), QuorumHealth::ReadWrite);
        let partial: ReplicaSet = [0usize, 2].into_iter().collect();
        assert_eq!(q.quorum_health(partial), QuorumHealth::ReadOnly);
        assert!(q.quorum_health(partial).can_read());
        assert!(!q.quorum_health(partial).can_write());
        assert_eq!(q.quorum_health(ReplicaSet::EMPTY), QuorumHealth::Unavailable);
    }

    #[test]
    fn quorum_health_write_only_under_asymmetric_thresholds() {
        // Read-quorums larger than write-quorums: r=4, w=2 over n=5.
        let q = Majority::with_sizes(5, 4, 2);
        let three: ReplicaSet = [0usize, 1, 2].into_iter().collect();
        assert_eq!(q.quorum_health(three), QuorumHealth::WriteOnly);
        assert!(q.quorum_health(three).can_write());
        assert!(!q.quorum_health(three).can_read());
    }

    #[test]
    fn quorum_health_agrees_with_predicates_exhaustively() {
        let specs: Vec<Box<dyn QuorumSpec>> = vec![
            Box::new(Rowa::new(5)),
            Box::new(Majority::new(5)),
            Box::new(Weighted::new(vec![2, 1, 1, 1], 3, 3)),
            Box::new(Grid::new(2, 3)),
            Box::new(TreeQuorum::new(9)),
        ];
        for s in &specs {
            for mask in 0u32..(1 << s.n()) {
                let live = ReplicaSet::from_bits(mask as u128);
                let h = s.quorum_health(live);
                assert_eq!(h.can_read(), s.is_read_quorum_bits(live), "{}", s.label());
                assert_eq!(h.can_write(), s.is_write_quorum_bits(live), "{}", s.label());
            }
        }
    }

    #[test]
    fn thresholds_agree_with_predicates_and_finds_exhaustively() {
        // The `thresholds()` contract: counting in-range members must give
        // the same membership answers as the predicate methods, and
        // `keep_highest(k)` of the in-range members must equal the greedy
        // shrink behind `find_*_quorum_bits`, over every subset of 0..n
        // (plus out-of-range bits, which must be ignored).
        let specs: Vec<Box<dyn QuorumSpec>> = vec![
            Box::new(Rowa::new(1)),
            Box::new(Rowa::new(5)),
            Box::new(Majority::new(5)),
            Box::new(Majority::with_sizes(6, 2, 5)),
        ];
        for s in &specs {
            let t = s.thresholds().expect("threshold systems expose thresholds");
            assert_eq!(t.n, s.n(), "{}", s.label());
            for mask in 0u32..(1 << (s.n() + 2)) {
                let set = ReplicaSet::from_bits(mask as u128);
                let live = set.intersection(ReplicaSet::full(t.n));
                let k = live.len();
                assert_eq!(k >= t.read_size, s.is_read_quorum_bits(set), "{}", s.label());
                assert_eq!(k >= t.write_size, s.is_write_quorum_bits(set), "{}", s.label());
                assert_eq!(
                    (k >= t.read_size).then(|| live.keep_highest(t.read_size)),
                    s.find_read_quorum_bits(set),
                    "{}",
                    s.label()
                );
                assert_eq!(
                    (k >= t.write_size).then(|| live.keep_highest(t.write_size)),
                    s.find_write_quorum_bits(set),
                    "{}",
                    s.label()
                );
            }
        }
        // Non-threshold systems must decline rather than approximate.
        assert!(Grid::new(2, 3).thresholds().is_none());
        assert!(TreeQuorum::new(9).thresholds().is_none());
        assert!(Weighted::new(vec![2, 1, 1, 1], 3, 3).thresholds().is_none());
    }

    #[test]
    fn quorum_family_classifies_threshold_systems() {
        assert_eq!(QuorumFamily::of(&Rowa::new(5)), Some(QuorumFamily::Rowa));
        assert_eq!(QuorumFamily::of(&Rowa::new(1)), Some(QuorumFamily::Rowa));
        assert_eq!(
            QuorumFamily::of(&Majority::new(5)),
            Some(QuorumFamily::Majority)
        );
        assert_eq!(
            QuorumFamily::of(&Majority::new(6)),
            Some(QuorumFamily::Majority)
        );
        // Asymmetric thresholds, grids, trees and weighted votes have no
        // canonical resizing.
        assert_eq!(QuorumFamily::of(&Majority::with_sizes(5, 4, 2)), None);
        assert_eq!(QuorumFamily::of(&Grid::new(2, 3)), None);
        assert_eq!(QuorumFamily::of(&TreeQuorum::new(9)), None);
        assert_eq!(QuorumFamily::of(&Weighted::new(vec![2, 1, 1, 1], 3, 3)), None);
    }

    #[test]
    fn quorum_family_sizes_match_the_rule_over_any_membership() {
        for m in 1..=9usize {
            assert_eq!(QuorumFamily::Rowa.read_size(m), 1);
            assert_eq!(QuorumFamily::Rowa.write_size(m), m);
            assert_eq!(QuorumFamily::Majority.read_size(m), m / 2 + 1);
            assert_eq!(QuorumFamily::Majority.write_size(m), m / 2 + 1);
            assert_eq!(QuorumFamily::config_quorum_size(m), m / 2 + 1);
            // Gifford's constraint holds at every size.
            for f in [QuorumFamily::Rowa, QuorumFamily::Majority] {
                assert!(f.read_size(m) + f.write_size(m) > m);
            }
        }
    }

    #[test]
    fn spec_configuration_roundtrip_matches_generator() {
        let q = Majority::new(5);
        let from_spec = to_configuration(&q);
        let explicit = generators::majority(&[0usize, 1, 2, 3, 4]).minimized();
        assert_eq!(from_spec, explicit);
    }

    #[test]
    fn grid_spec_matches_grid_generator() {
        let q = Grid::new(2, 3);
        let from_spec = to_configuration(&q);
        let universe: Vec<usize> = (0..6).collect();
        let explicit = generators::grid(&universe, 2, 3).minimized();
        assert_eq!(from_spec, explicit);
    }

    #[test]
    fn rowa_spec_matches_rowa_generator() {
        let q = Rowa::new(4);
        let from_spec = to_configuration(&q);
        let universe: Vec<usize> = (0..4).collect();
        assert_eq!(from_spec, generators::rowa(&universe).minimized());
    }

    #[test]
    fn every_read_quorum_meets_every_write_quorum() {
        // Cross-check the legality property on the enumerated form.
        let specs: Vec<Box<dyn QuorumSpec>> = vec![
            Box::new(Rowa::new(5)),
            Box::new(Majority::new(5)),
            Box::new(Weighted::new(vec![2, 1, 1, 1], 3, 3)),
            Box::new(Grid::new(2, 3)),
            Box::new(TreeQuorum::new(9)),
        ];
        for s in &specs {
            if s.n() <= 12 {
                let cfg = to_configuration(s.as_ref());
                assert!(cfg.validate().is_ok(), "{} illegal", s.label());
            }
        }
    }

    #[test]
    fn explicit_configuration_is_a_quorum_spec() {
        // Round-trip: enumerating a spec and using the enumeration as a
        // spec must answer every membership question identically.
        let m = Majority::new(5);
        let cfg = to_configuration(&m);
        assert_eq!(cfg.n(), 5);
        for mask in 0u32..(1 << 5) {
            let set = ReplicaSet::from_bits(mask as u128);
            assert_eq!(cfg.is_read_quorum_bits(set), m.is_read_quorum_bits(set));
            assert_eq!(cfg.is_write_quorum_bits(set), m.is_write_quorum_bits(set));
        }
        assert_eq!(
            cfg.quorum_health([0, 1].into_iter().collect()),
            QuorumHealth::Unavailable
        );
        assert_eq!(
            cfg.quorum_health([0, 1, 3].into_iter().collect()),
            QuorumHealth::ReadWrite
        );
    }

    #[test]
    fn explicit_configuration_handles_asymmetric_and_empty_cases() {
        // Asymmetric: read {0}, write {0,1,2} (ROWA over 3).
        let universe: Vec<usize> = (0..3).collect();
        let rowa = generators::rowa(&universe);
        assert_eq!(rowa.n(), 3);
        assert!(rowa.is_read_quorum_bits([2].into_iter().collect()));
        assert!(!rowa.is_write_quorum_bits([0, 1].into_iter().collect()));
        assert!(rowa.is_write_quorum_bits([0, 1, 2].into_iter().collect()));
        // The empty configuration has no quorums and an empty universe.
        let empty: Configuration<usize> = Configuration::new(vec![], vec![]);
        assert_eq!(empty.n(), 0);
        assert!(!empty.is_read_quorum_bits(ReplicaSet::full(3)));
        assert_eq!(empty.label(), "explicit(r0,w0/0)");
    }
}
