//! Explicit quorum configurations.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use crate::replica_set::{ReplicaSet, MAX_REPLICAS};

/// Error constructing or validating a [`Configuration`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigurationError {
    /// Some read-quorum fails to intersect some write-quorum.
    Illegal {
        /// Index of the offending read-quorum.
        read_index: usize,
        /// Index of the offending write-quorum.
        write_index: usize,
    },
    /// A quorum is the empty set (never useful: an empty read-quorum would
    /// let a reader return without consulting any replica).
    EmptyQuorum,
}

impl fmt::Display for ConfigurationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigurationError::Illegal {
                read_index,
                write_index,
            } => write!(
                f,
                "read-quorum #{read_index} does not intersect write-quorum #{write_index}"
            ),
            ConfigurationError::EmptyQuorum => write!(f, "configuration contains an empty quorum"),
        }
    }
}

impl Error for ConfigurationError {}

/// A configuration: a set of read-quorums and a set of write-quorums over
/// data-manager names of type `T` (paper §2.3, "Configurations").
///
/// Formally, for a set `S`, `configurations(S)` is the set of pairs `(r, w)`
/// with `r, w ⊆ 2^S`; the configuration is *legal* when every element of `r`
/// has non-empty intersection with every element of `w`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Configuration<T: Ord + Clone> {
    read_quorums: Vec<BTreeSet<T>>,
    write_quorums: Vec<BTreeSet<T>>,
}

impl<T: Ord + Clone> Configuration<T> {
    /// Build a configuration from explicit quorum collections.
    ///
    /// Quorums are deduplicated and sorted, giving a canonical form so that
    /// equal configurations compare equal regardless of construction order.
    pub fn new(
        read_quorums: impl IntoIterator<Item = BTreeSet<T>>,
        write_quorums: impl IntoIterator<Item = BTreeSet<T>>,
    ) -> Self {
        let mut r: Vec<BTreeSet<T>> = read_quorums.into_iter().collect();
        let mut w: Vec<BTreeSet<T>> = write_quorums.into_iter().collect();
        r.sort();
        r.dedup();
        w.sort();
        w.dedup();
        Configuration {
            read_quorums: r,
            write_quorums: w,
        }
    }

    /// Build a configuration, validating legality and non-emptiness.
    ///
    /// # Errors
    ///
    /// [`ConfigurationError`] if any quorum is empty or any read/write pair
    /// fails to intersect.
    pub fn new_legal(
        read_quorums: impl IntoIterator<Item = BTreeSet<T>>,
        write_quorums: impl IntoIterator<Item = BTreeSet<T>>,
    ) -> Result<Self, ConfigurationError> {
        let cfg = Self::new(read_quorums, write_quorums);
        cfg.validate()?;
        Ok(cfg)
    }

    /// The read-quorums.
    pub fn read_quorums(&self) -> &[BTreeSet<T>] {
        &self.read_quorums
    }

    /// The write-quorums.
    pub fn write_quorums(&self) -> &[BTreeSet<T>] {
        &self.write_quorums
    }

    /// Whether every read-quorum intersects every write-quorum — the
    /// paper's `legal(S)` condition. Vacuously true if either side is empty.
    pub fn is_legal(&self) -> bool {
        let c = self.compiled();
        c.read_masks()
            .iter()
            .all(|&r| c.write_masks().iter().all(|&w| r.intersects(w)))
    }

    /// Whether the configuration can actually serve both reads and writes:
    /// legal *and* at least one read-quorum and one write-quorum exist.
    pub fn is_usable(&self) -> bool {
        !self.read_quorums.is_empty() && !self.write_quorums.is_empty() && self.is_legal()
    }

    /// Check legality and non-emptiness, reporting the first offence.
    ///
    /// # Errors
    ///
    /// [`ConfigurationError::EmptyQuorum`] or [`ConfigurationError::Illegal`].
    pub fn validate(&self) -> Result<(), ConfigurationError> {
        let c = self.compiled();
        if c.read_masks()
            .iter()
            .chain(c.write_masks())
            .any(|m| m.is_empty())
        {
            return Err(ConfigurationError::EmptyQuorum);
        }
        for (ri, &r) in c.read_masks().iter().enumerate() {
            for (wi, &w) in c.write_masks().iter().enumerate() {
                if !r.intersects(w) {
                    return Err(ConfigurationError::Illegal {
                        read_index: ri,
                        write_index: wi,
                    });
                }
            }
        }
        Ok(())
    }

    /// All data-manager names mentioned by any quorum.
    pub fn universe(&self) -> BTreeSet<T> {
        self.read_quorums
            .iter()
            .chain(&self.write_quorums)
            .flat_map(|q| q.iter().cloned())
            .collect()
    }

    /// Find a read-quorum wholly contained in `available`, preferring the
    /// smallest.
    pub fn find_read_quorum(&self, available: &BTreeSet<T>) -> Option<&BTreeSet<T>> {
        Self::find_quorum(&self.read_quorums, available)
    }

    /// Find a write-quorum wholly contained in `available`, preferring the
    /// smallest.
    pub fn find_write_quorum(&self, available: &BTreeSet<T>) -> Option<&BTreeSet<T>> {
        Self::find_quorum(&self.write_quorums, available)
    }

    /// Whether `set` includes some read-quorum.
    pub fn covers_read_quorum(&self, set: &BTreeSet<T>) -> bool {
        self.read_quorums.iter().any(|q| q.is_subset(set))
    }

    /// Whether `set` includes some write-quorum.
    pub fn covers_write_quorum(&self, set: &BTreeSet<T>) -> bool {
        self.write_quorums.iter().any(|q| q.is_subset(set))
    }

    /// Remove non-minimal quorums (supersets of other quorums on the same
    /// side). Coverage predicates are unaffected.
    pub fn minimized(&self) -> Self {
        let c = self.compiled();
        Configuration {
            read_quorums: Self::minimal(&self.read_quorums, c.read_masks()),
            write_quorums: Self::minimal(&self.write_quorums, c.write_masks()),
        }
    }

    /// Keep `quorums[i]` only if no *other* quorum is a subset of it;
    /// `masks[i]` is the bitset form of `quorums[i]`.
    fn minimal(quorums: &[BTreeSet<T>], masks: &[ReplicaSet]) -> Vec<BTreeSet<T>> {
        let mut kept_masks: Vec<ReplicaSet> = Vec::new();
        let mut out: Vec<BTreeSet<T>> = Vec::new();
        for (i, &q) in masks.iter().enumerate() {
            if masks
                .iter()
                .enumerate()
                .any(|(j, &o)| j != i && o != q && o.is_subset(q))
            {
                continue;
            }
            if !kept_masks.contains(&q) {
                kept_masks.push(q);
                out.push(quorums[i].clone());
            }
        }
        out
    }

    fn find_quorum<'a>(
        quorums: &'a [BTreeSet<T>],
        available: &BTreeSet<T>,
    ) -> Option<&'a BTreeSet<T>> {
        quorums
            .iter()
            .filter(|q| q.is_subset(available))
            .min_by_key(|q| q.len())
    }

    /// Compile to a bitset form: the universe is indexed in sorted order and
    /// every quorum becomes a [`ReplicaSet`] mask. Coverage checks against
    /// the compiled form are single AND/compare operations per quorum, with
    /// no allocation; build it once and reuse it on hot paths.
    ///
    /// # Panics
    ///
    /// Panics if the universe exceeds 128 names (the [`ReplicaSet`] cap).
    pub fn compiled(&self) -> CompiledConfiguration<T> {
        let members: Vec<T> = self.universe().into_iter().collect();
        assert!(
            members.len() <= MAX_REPLICAS,
            "ReplicaSet caps replicas at 128"
        );
        let mask = |q: &BTreeSet<T>| -> ReplicaSet {
            q.iter()
                .map(|x| members.binary_search(x).expect("member in universe"))
                .collect()
        };
        CompiledConfiguration {
            read_masks: self.read_quorums.iter().map(mask).collect(),
            write_masks: self.write_quorums.iter().map(mask).collect(),
            members,
        }
    }

    /// Map data-manager names through `f`, preserving quorum structure.
    ///
    /// Used to re-home a configuration onto concrete object identifiers
    /// (e.g. from replica indices `0..n` to allocated `ObjectId`s).
    pub fn map<U: Ord + Clone>(&self, mut f: impl FnMut(&T) -> U) -> Configuration<U> {
        Configuration {
            read_quorums: self
                .read_quorums
                .iter()
                .map(|q| q.iter().map(&mut f).collect())
                .collect(),
            write_quorums: self
                .write_quorums
                .iter()
                .map(|q| q.iter().map(&mut f).collect())
                .collect(),
        }
    }
}

/// The bitset form of a [`Configuration`], built by
/// [`Configuration::compiled`]: quorums as [`ReplicaSet`] masks over indices
/// into a sorted member list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledConfiguration<T: Ord + Clone> {
    members: Vec<T>,
    read_masks: Vec<ReplicaSet>,
    write_masks: Vec<ReplicaSet>,
}

impl<T: Ord + Clone> CompiledConfiguration<T> {
    /// The universe, sorted; a name's position is its bit index.
    pub fn members(&self) -> &[T] {
        &self.members
    }

    /// The bit index of `name`, if it is in the universe.
    pub fn index_of(&self, name: &T) -> Option<usize> {
        self.members.binary_search(name).ok()
    }

    /// The read-quorum masks, in the same order as
    /// [`Configuration::read_quorums`].
    pub fn read_masks(&self) -> &[ReplicaSet] {
        &self.read_masks
    }

    /// The write-quorum masks, in the same order as
    /// [`Configuration::write_quorums`].
    pub fn write_masks(&self) -> &[ReplicaSet] {
        &self.write_masks
    }

    /// Convert an explicit set of names to a mask, ignoring names outside
    /// the universe (they cannot affect any coverage check).
    pub fn bits_of<'a>(&self, set: impl IntoIterator<Item = &'a T>) -> ReplicaSet
    where
        T: 'a,
    {
        set.into_iter().filter_map(|x| self.index_of(x)).collect()
    }

    /// Whether `set` includes some read-quorum.
    pub fn covers_read_quorum(&self, set: ReplicaSet) -> bool {
        self.read_masks.iter().any(|q| q.is_subset(set))
    }

    /// Whether `set` includes some write-quorum.
    pub fn covers_write_quorum(&self, set: ReplicaSet) -> bool {
        self.write_masks.iter().any(|q| q.is_subset(set))
    }

    /// The mask of a read-quorum wholly contained in `available`,
    /// preferring the smallest — mirrors [`Configuration::find_read_quorum`].
    pub fn find_read_quorum(&self, available: ReplicaSet) -> Option<ReplicaSet> {
        Self::find_quorum(&self.read_masks, available)
    }

    /// The mask of a write-quorum wholly contained in `available`,
    /// preferring the smallest.
    pub fn find_write_quorum(&self, available: ReplicaSet) -> Option<ReplicaSet> {
        Self::find_quorum(&self.write_masks, available)
    }

    fn find_quorum(masks: &[ReplicaSet], available: ReplicaSet) -> Option<ReplicaSet> {
        masks
            .iter()
            .copied()
            .filter(|q| q.is_subset(available))
            .min_by_key(|q| q.len())
    }
}

impl<T: Ord + Clone + fmt::Debug> fmt::Display for Configuration<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config(r: {:?}, w: {:?})",
            self.read_quorums, self.write_quorums
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[u32]) -> BTreeSet<u32> {
        items.iter().copied().collect()
    }

    #[test]
    fn majority_pair_is_legal() {
        let cfg = Configuration::new(vec![set(&[0, 1])], vec![set(&[1, 2])]);
        assert!(cfg.is_legal());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn disjoint_quorums_are_illegal() {
        let cfg = Configuration::new(vec![set(&[0])], vec![set(&[1, 2])]);
        assert!(!cfg.is_legal());
        assert_eq!(
            cfg.validate(),
            Err(ConfigurationError::Illegal {
                read_index: 0,
                write_index: 0
            })
        );
    }

    #[test]
    fn empty_quorum_rejected() {
        let cfg = Configuration::new(vec![BTreeSet::new()], vec![set(&[0])]);
        assert_eq!(cfg.validate(), Err(ConfigurationError::EmptyQuorum));
        // Legality is vacuous/odd for empty sets; usability is not.
        assert!(!Configuration::<u32>::new(vec![], vec![]).is_usable());
    }

    #[test]
    fn find_quorum_prefers_smallest() {
        let cfg = Configuration::new(
            vec![set(&[0]), set(&[0, 1, 2])],
            vec![set(&[0, 1, 2])],
        );
        let avail = set(&[0, 1, 2]);
        assert_eq!(cfg.find_read_quorum(&avail), Some(&set(&[0])));
    }

    #[test]
    fn find_quorum_respects_availability() {
        let cfg = Configuration::new(vec![set(&[0, 1]), set(&[1, 2])], vec![set(&[0, 1, 2])]);
        assert_eq!(cfg.find_read_quorum(&set(&[1, 2])), Some(&set(&[1, 2])));
        assert_eq!(cfg.find_read_quorum(&set(&[0, 2])), None);
        assert!(cfg.find_write_quorum(&set(&[0, 1])).is_none());
    }

    #[test]
    fn canonical_form_deduplicates() {
        let a = Configuration::new(vec![set(&[0, 1]), set(&[0, 1])], vec![set(&[1])]);
        let b = Configuration::new(vec![set(&[0, 1])], vec![set(&[1])]);
        assert_eq!(a, b);
    }

    #[test]
    fn minimized_removes_supersets() {
        let cfg = Configuration::new(
            vec![set(&[0]), set(&[0, 1]), set(&[2])],
            vec![set(&[0, 2])],
        );
        let min = cfg.minimized();
        assert_eq!(min.read_quorums(), &[set(&[0]), set(&[2])]);
    }

    #[test]
    fn universe_collects_all_names() {
        let cfg = Configuration::new(vec![set(&[0, 1])], vec![set(&[2])]);
        assert_eq!(cfg.universe(), set(&[0, 1, 2]));
    }

    #[test]
    fn map_preserves_structure() {
        let cfg = Configuration::new(vec![set(&[0, 1])], vec![set(&[1, 2])]);
        let mapped = cfg.map(|x| x + 100);
        assert!(mapped.is_legal());
        assert_eq!(
            mapped.universe(),
            [100u32, 101, 102].into_iter().collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn covers_predicates() {
        let cfg = Configuration::new(vec![set(&[0, 1])], vec![set(&[1, 2])]);
        assert!(cfg.covers_read_quorum(&set(&[0, 1, 5])));
        assert!(!cfg.covers_read_quorum(&set(&[1, 5])));
        assert!(cfg.covers_write_quorum(&set(&[1, 2])));
    }

    #[test]
    fn compiled_agrees_with_explicit() {
        // Non-contiguous names exercise the universe indexing.
        let cfg = Configuration::new(
            vec![set(&[10, 30]), set(&[30, 50])],
            vec![set(&[10, 30, 50])],
        );
        let c = cfg.compiled();
        assert_eq!(c.members(), &[10, 30, 50]);
        assert_eq!(c.index_of(&30), Some(1));
        assert_eq!(c.index_of(&99), None);
        for mask in 0u32..8 {
            let bits = crate::ReplicaSet::from_bits(mask as u128);
            let explicit: BTreeSet<u32> =
                bits.iter().map(|i| c.members()[i]).collect();
            assert_eq!(
                c.covers_read_quorum(bits),
                cfg.covers_read_quorum(&explicit)
            );
            assert_eq!(
                c.covers_write_quorum(bits),
                cfg.covers_write_quorum(&explicit)
            );
            assert_eq!(
                c.find_read_quorum(bits)
                    .map(|q| q.iter().map(|i| c.members()[i]).collect::<BTreeSet<_>>()),
                cfg.find_read_quorum(&explicit).cloned()
            );
        }
        // Names outside the universe are ignored by bits_of.
        let with_stranger: BTreeSet<u32> = [10u32, 30, 99].into_iter().collect();
        assert!(c.covers_read_quorum(c.bits_of(&with_stranger)));
    }
}
