//! Explicit quorum configurations.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Error constructing or validating a [`Configuration`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigurationError {
    /// Some read-quorum fails to intersect some write-quorum.
    Illegal {
        /// Index of the offending read-quorum.
        read_index: usize,
        /// Index of the offending write-quorum.
        write_index: usize,
    },
    /// A quorum is the empty set (never useful: an empty read-quorum would
    /// let a reader return without consulting any replica).
    EmptyQuorum,
}

impl fmt::Display for ConfigurationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigurationError::Illegal {
                read_index,
                write_index,
            } => write!(
                f,
                "read-quorum #{read_index} does not intersect write-quorum #{write_index}"
            ),
            ConfigurationError::EmptyQuorum => write!(f, "configuration contains an empty quorum"),
        }
    }
}

impl Error for ConfigurationError {}

/// A configuration: a set of read-quorums and a set of write-quorums over
/// data-manager names of type `T` (paper §2.3, "Configurations").
///
/// Formally, for a set `S`, `configurations(S)` is the set of pairs `(r, w)`
/// with `r, w ⊆ 2^S`; the configuration is *legal* when every element of `r`
/// has non-empty intersection with every element of `w`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Configuration<T: Ord + Clone> {
    read_quorums: Vec<BTreeSet<T>>,
    write_quorums: Vec<BTreeSet<T>>,
}

impl<T: Ord + Clone> Configuration<T> {
    /// Build a configuration from explicit quorum collections.
    ///
    /// Quorums are deduplicated and sorted, giving a canonical form so that
    /// equal configurations compare equal regardless of construction order.
    pub fn new(
        read_quorums: impl IntoIterator<Item = BTreeSet<T>>,
        write_quorums: impl IntoIterator<Item = BTreeSet<T>>,
    ) -> Self {
        let mut r: Vec<BTreeSet<T>> = read_quorums.into_iter().collect();
        let mut w: Vec<BTreeSet<T>> = write_quorums.into_iter().collect();
        r.sort();
        r.dedup();
        w.sort();
        w.dedup();
        Configuration {
            read_quorums: r,
            write_quorums: w,
        }
    }

    /// Build a configuration, validating legality and non-emptiness.
    ///
    /// # Errors
    ///
    /// [`ConfigurationError`] if any quorum is empty or any read/write pair
    /// fails to intersect.
    pub fn new_legal(
        read_quorums: impl IntoIterator<Item = BTreeSet<T>>,
        write_quorums: impl IntoIterator<Item = BTreeSet<T>>,
    ) -> Result<Self, ConfigurationError> {
        let cfg = Self::new(read_quorums, write_quorums);
        cfg.validate()?;
        Ok(cfg)
    }

    /// The read-quorums.
    pub fn read_quorums(&self) -> &[BTreeSet<T>] {
        &self.read_quorums
    }

    /// The write-quorums.
    pub fn write_quorums(&self) -> &[BTreeSet<T>] {
        &self.write_quorums
    }

    /// Whether every read-quorum intersects every write-quorum — the
    /// paper's `legal(S)` condition. Vacuously true if either side is empty.
    pub fn is_legal(&self) -> bool {
        self.read_quorums.iter().all(|r| {
            self.write_quorums
                .iter()
                .all(|w| r.iter().any(|x| w.contains(x)))
        })
    }

    /// Whether the configuration can actually serve both reads and writes:
    /// legal *and* at least one read-quorum and one write-quorum exist.
    pub fn is_usable(&self) -> bool {
        !self.read_quorums.is_empty() && !self.write_quorums.is_empty() && self.is_legal()
    }

    /// Check legality and non-emptiness, reporting the first offence.
    ///
    /// # Errors
    ///
    /// [`ConfigurationError::EmptyQuorum`] or [`ConfigurationError::Illegal`].
    pub fn validate(&self) -> Result<(), ConfigurationError> {
        if self
            .read_quorums
            .iter()
            .chain(&self.write_quorums)
            .any(BTreeSet::is_empty)
        {
            return Err(ConfigurationError::EmptyQuorum);
        }
        for (ri, r) in self.read_quorums.iter().enumerate() {
            for (wi, w) in self.write_quorums.iter().enumerate() {
                if !r.iter().any(|x| w.contains(x)) {
                    return Err(ConfigurationError::Illegal {
                        read_index: ri,
                        write_index: wi,
                    });
                }
            }
        }
        Ok(())
    }

    /// All data-manager names mentioned by any quorum.
    pub fn universe(&self) -> BTreeSet<T> {
        self.read_quorums
            .iter()
            .chain(&self.write_quorums)
            .flat_map(|q| q.iter().cloned())
            .collect()
    }

    /// Find a read-quorum wholly contained in `available`, preferring the
    /// smallest.
    pub fn find_read_quorum(&self, available: &BTreeSet<T>) -> Option<&BTreeSet<T>> {
        Self::find_quorum(&self.read_quorums, available)
    }

    /// Find a write-quorum wholly contained in `available`, preferring the
    /// smallest.
    pub fn find_write_quorum(&self, available: &BTreeSet<T>) -> Option<&BTreeSet<T>> {
        Self::find_quorum(&self.write_quorums, available)
    }

    /// Whether `set` includes some read-quorum.
    pub fn covers_read_quorum(&self, set: &BTreeSet<T>) -> bool {
        self.read_quorums.iter().any(|q| q.is_subset(set))
    }

    /// Whether `set` includes some write-quorum.
    pub fn covers_write_quorum(&self, set: &BTreeSet<T>) -> bool {
        self.write_quorums.iter().any(|q| q.is_subset(set))
    }

    /// Remove non-minimal quorums (supersets of other quorums on the same
    /// side). Coverage predicates are unaffected.
    pub fn minimized(&self) -> Self {
        Configuration {
            read_quorums: Self::minimal(&self.read_quorums),
            write_quorums: Self::minimal(&self.write_quorums),
        }
    }

    fn minimal(quorums: &[BTreeSet<T>]) -> Vec<BTreeSet<T>> {
        let mut out: Vec<BTreeSet<T>> = Vec::new();
        for q in quorums {
            if quorums.iter().any(|o| o != q && o.is_subset(q)) {
                continue;
            }
            if !out.contains(q) {
                out.push(q.clone());
            }
        }
        out
    }

    fn find_quorum<'a>(
        quorums: &'a [BTreeSet<T>],
        available: &BTreeSet<T>,
    ) -> Option<&'a BTreeSet<T>> {
        quorums
            .iter()
            .filter(|q| q.is_subset(available))
            .min_by_key(|q| q.len())
    }

    /// Map data-manager names through `f`, preserving quorum structure.
    ///
    /// Used to re-home a configuration onto concrete object identifiers
    /// (e.g. from replica indices `0..n` to allocated `ObjectId`s).
    pub fn map<U: Ord + Clone>(&self, mut f: impl FnMut(&T) -> U) -> Configuration<U> {
        Configuration {
            read_quorums: self
                .read_quorums
                .iter()
                .map(|q| q.iter().map(&mut f).collect())
                .collect(),
            write_quorums: self
                .write_quorums
                .iter()
                .map(|q| q.iter().map(&mut f).collect())
                .collect(),
        }
    }
}

impl<T: Ord + Clone + fmt::Debug> fmt::Display for Configuration<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config(r: {:?}, w: {:?})",
            self.read_quorums, self.write_quorums
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[u32]) -> BTreeSet<u32> {
        items.iter().copied().collect()
    }

    #[test]
    fn majority_pair_is_legal() {
        let cfg = Configuration::new(vec![set(&[0, 1])], vec![set(&[1, 2])]);
        assert!(cfg.is_legal());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn disjoint_quorums_are_illegal() {
        let cfg = Configuration::new(vec![set(&[0])], vec![set(&[1, 2])]);
        assert!(!cfg.is_legal());
        assert_eq!(
            cfg.validate(),
            Err(ConfigurationError::Illegal {
                read_index: 0,
                write_index: 0
            })
        );
    }

    #[test]
    fn empty_quorum_rejected() {
        let cfg = Configuration::new(vec![BTreeSet::new()], vec![set(&[0])]);
        assert_eq!(cfg.validate(), Err(ConfigurationError::EmptyQuorum));
        // Legality is vacuous/odd for empty sets; usability is not.
        assert!(!Configuration::<u32>::new(vec![], vec![]).is_usable());
    }

    #[test]
    fn find_quorum_prefers_smallest() {
        let cfg = Configuration::new(
            vec![set(&[0]), set(&[0, 1, 2])],
            vec![set(&[0, 1, 2])],
        );
        let avail = set(&[0, 1, 2]);
        assert_eq!(cfg.find_read_quorum(&avail), Some(&set(&[0])));
    }

    #[test]
    fn find_quorum_respects_availability() {
        let cfg = Configuration::new(vec![set(&[0, 1]), set(&[1, 2])], vec![set(&[0, 1, 2])]);
        assert_eq!(cfg.find_read_quorum(&set(&[1, 2])), Some(&set(&[1, 2])));
        assert_eq!(cfg.find_read_quorum(&set(&[0, 2])), None);
        assert!(cfg.find_write_quorum(&set(&[0, 1])).is_none());
    }

    #[test]
    fn canonical_form_deduplicates() {
        let a = Configuration::new(vec![set(&[0, 1]), set(&[0, 1])], vec![set(&[1])]);
        let b = Configuration::new(vec![set(&[0, 1])], vec![set(&[1])]);
        assert_eq!(a, b);
    }

    #[test]
    fn minimized_removes_supersets() {
        let cfg = Configuration::new(
            vec![set(&[0]), set(&[0, 1]), set(&[2])],
            vec![set(&[0, 2])],
        );
        let min = cfg.minimized();
        assert_eq!(min.read_quorums(), &[set(&[0]), set(&[2])]);
    }

    #[test]
    fn universe_collects_all_names() {
        let cfg = Configuration::new(vec![set(&[0, 1])], vec![set(&[2])]);
        assert_eq!(cfg.universe(), set(&[0, 1, 2]));
    }

    #[test]
    fn map_preserves_structure() {
        let cfg = Configuration::new(vec![set(&[0, 1])], vec![set(&[1, 2])]);
        let mapped = cfg.map(|x| x + 100);
        assert!(mapped.is_legal());
        assert_eq!(
            mapped.universe(),
            [100u32, 101, 102].into_iter().collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn covers_predicates() {
        let cfg = Configuration::new(vec![set(&[0, 1])], vec![set(&[1, 2])]);
        assert!(cfg.covers_read_quorum(&set(&[0, 1, 5])));
        assert!(!cfg.covers_read_quorum(&set(&[1, 5])));
        assert!(cfg.covers_write_quorum(&set(&[1, 2])));
    }
}
