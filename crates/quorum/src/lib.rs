//! Quorum systems for replicated data.
//!
//! Goldman & Lynch (PODC 1987) adopt the configuration strategy of Barbara &
//! Garcia-Molina: a *configuration* for a logical data item is a pair of a
//! set of *read-quorums* and a set of *write-quorums* — each quorum a set of
//! data-manager names — and a configuration is *legal* when every read-quorum
//! intersects every write-quorum. (Note: read/write intersection is the
//! *only* requirement; write-quorums need not intersect each other, because
//! a writer first consults a read-quorum to learn the current version
//! number.)
//!
//! This crate provides:
//!
//! * [`Configuration`]: explicit quorum sets with legality checking — the
//!   form used by the paper's transaction-manager automata;
//! * [`QuorumSpec`] and implementations ([`Rowa`], [`Majority`],
//!   [`Weighted`], [`Grid`], [`TreeQuorum`]): predicate-form quorum systems
//!   that scale to replica counts where explicit enumeration is infeasible
//!   — used by the evaluation substrate;
//! * [`analysis`]: exact and Monte-Carlo availability, quorum sizes, and
//!   load, reproducing the classic quorum trade-off studies (experiments
//!   Q1–Q5 in `EXPERIMENTS.md`).
//!
//! # Example
//!
//! ```
//! use quorum::{Configuration, generators};
//!
//! // Majority quorums over five replicas.
//! let cfg: Configuration<u32> = generators::majority(&[0, 1, 2, 3, 4]);
//! assert!(cfg.is_legal());
//! assert!(cfg.is_usable());
//!
//! // Any three replicas contain a read quorum.
//! let avail: std::collections::BTreeSet<u32> = [1, 3, 4].into_iter().collect();
//! assert!(cfg.find_read_quorum(&avail).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod config;
pub mod generators;
pub mod replica_set;
mod spec;

pub use config::{CompiledConfiguration, Configuration, ConfigurationError};
pub use replica_set::ReplicaSet;
pub use spec::{
    to_configuration, Grid, Majority, QuorumFamily, QuorumHealth, QuorumSpec, Rowa, Thresholds,
    TreeQuorum, Weighted,
};
