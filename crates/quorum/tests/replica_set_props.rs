//! Property tests: every [`ReplicaSet`] operation agrees with the obvious
//! `BTreeSet<usize>` reference implementation on random sets over the full
//! supported universe `0..128`.

use std::collections::BTreeSet;

use proptest::prelude::*;
use quorum::ReplicaSet;

fn bits(set: &BTreeSet<usize>) -> ReplicaSet {
    set.iter().copied().collect()
}

proptest! {
    #[test]
    fn roundtrip_through_btreeset(a in prop::collection::btree_set(0usize..128, 0..=50)) {
        let rs = bits(&a);
        let back: BTreeSet<usize> = rs.into();
        prop_assert_eq!(&back, &a);
        prop_assert_eq!(rs.len(), a.len());
        prop_assert_eq!(rs.is_empty(), a.is_empty());
        prop_assert_eq!(rs.min(), a.first().copied());
    }

    #[test]
    fn iteration_is_ascending_and_complete(a in prop::collection::btree_set(0usize..128, 0..=50)) {
        let collected: Vec<usize> = bits(&a).iter().collect();
        let reference: Vec<usize> = a.iter().copied().collect();
        prop_assert_eq!(collected, reference);
    }

    #[test]
    fn membership_agrees(
        a in prop::collection::btree_set(0usize..128, 0..=50),
        probe in 0usize..128,
    ) {
        prop_assert_eq!(bits(&a).contains(probe), a.contains(&probe));
    }

    #[test]
    fn set_algebra_agrees(
        a in prop::collection::btree_set(0usize..128, 0..=50),
        b in prop::collection::btree_set(0usize..128, 0..=50),
    ) {
        let (ra, rb) = (bits(&a), bits(&b));
        let union: BTreeSet<usize> = a.union(&b).copied().collect();
        let inter: BTreeSet<usize> = a.intersection(&b).copied().collect();
        let diff: BTreeSet<usize> = a.difference(&b).copied().collect();
        prop_assert_eq!(ra.union(rb), bits(&union));
        prop_assert_eq!(ra | rb, bits(&union));
        prop_assert_eq!(ra.intersection(rb), bits(&inter));
        prop_assert_eq!(ra & rb, bits(&inter));
        prop_assert_eq!(ra.difference(rb), bits(&diff));
        prop_assert_eq!(ra - rb, bits(&diff));
        prop_assert_eq!(ra.is_subset(rb), a.is_subset(&b));
        prop_assert_eq!(ra.is_superset(rb), a.is_superset(&b));
        prop_assert_eq!(ra.intersects(rb), !inter.is_empty());
    }

    #[test]
    fn insert_remove_agree(
        a in prop::collection::btree_set(0usize..128, 0..=50),
        x in 0usize..128,
    ) {
        let mut rs = bits(&a);
        let mut reference = a.clone();
        rs.insert(x);
        reference.insert(x);
        prop_assert_eq!(rs, bits(&reference));
        rs.remove(x);
        reference.remove(&x);
        prop_assert_eq!(rs, bits(&reference));
    }

    #[test]
    fn complement_within_universe(
        a in prop::collection::btree_set(0usize..64, 0..=30),
        n in 64usize..=128,
    ) {
        let reference: BTreeSet<usize> = (0..n).filter(|x| !a.contains(x)).collect();
        prop_assert_eq!(bits(&a).complement(n), bits(&reference));
    }
}
