//! Checkpointed exploration must be observationally identical to the
//! full-replay explorer on the paper's Figure-1 system — same
//! `ExploreStats`, same projections checked — differing only in the
//! state-reconstruction work counters.

use ioa::{ExploreLimits, ReplayStrategy};
use qc_bench::figure1_spec;
use qc_replication::verify_exhaustive_with;

#[test]
fn figure1_stats_identical_across_strategies() {
    // The full Figure-1 behaviour is far too large to enumerate; a depth
    // bound keeps the subtree small while still forcing thousands of
    // backtracks through nested TMs, DMs, and plain objects.
    let limits = ExploreLimits {
        max_depth: 6,
        max_schedules: 5_000_000,
    };
    let spec = figure1_spec();
    let oracle = verify_exhaustive_with(&spec, limits, ReplayStrategy::FullReplay)
        .expect("full replay verifies");
    assert!(oracle.stats.truncated, "depth bound must bite");
    for every in [1usize, 3, 4, 8] {
        let report =
            verify_exhaustive_with(&spec, limits, ReplayStrategy::Checkpoint { every })
                .expect("checkpointed run verifies");
        assert_eq!(report.stats, oracle.stats, "every={every}");
        assert_eq!(
            report.projections_checked, oracle.projections_checked,
            "every={every}"
        );
        // Strictly less replay whenever a snapshot can land inside the
        // bounded tree; with `every` beyond the depth bound only the base
        // snapshot exists and the work matches full replay.
        if every < limits.max_depth {
            assert!(
                report.profile.replayed_steps < oracle.profile.replayed_steps,
                "every={every}: checkpointing must replay strictly less"
            );
        } else {
            assert!(report.profile.replayed_steps <= oracle.profile.replayed_steps);
        }
    }
}
