//! Criterion benches for the event-queue implementations: the calendar
//! queue (the simulators' default) against the binary-heap oracle, under
//! the classic *hold* model — a steady-state queue of N pending events
//! where each iteration pops the minimum and schedules a successor at
//! `popped time + delay`. That is exactly the simulators' traffic
//! pattern, and the delay distribution is the variable that separates the
//! two implementations:
//!
//! * **near-future** — uniform 200–600 µs, the LAN round-trip band: every
//!   event lands within a bucket-day or two of the virtual clock, the
//!   calendar's O(1) enqueue/dequeue sweet spot.
//! * **wan-tail** — a 90/10 mix of 0.5–2 ms body and 100 ms–5 s tail,
//!   modelling WAN retries and repair timers: events spread over a long
//!   horizon, stressing bucket-day scanning and width adaptation.
//! * **same-instant** — delays of 0/1 µs, the batched-delivery flood case
//!   ordered almost entirely by `seq`.
//!
//! The recorded ops/s land in `results/BENCH_hotpath.json` (`event_queue`
//! section) via `exp_throughput`; this bench is the interactive view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qc_sim::{CalendarQueue, EventQueue, HeapQueue, SimTime};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One sampled inter-event delay (µs) for the named distribution.
fn delay(dist: &str, rng: &mut ChaCha8Rng) -> u64 {
    match dist {
        "near-future" => rng.gen_range(200..600),
        "wan-tail" => {
            if rng.gen_range(0u32..10) == 0 {
                rng.gen_range(100_000..5_000_000)
            } else {
                rng.gen_range(500..2_000)
            }
        }
        _ => rng.gen_range(0..2), // same-instant floods
    }
}

/// Run the hold loop: pop the minimum, reschedule at `t + delay`.
fn hold<Q: EventQueue<u64>>(q: &mut Q, seq: &mut u64, dist: &str, rng: &mut ChaCha8Rng) -> u64 {
    let (t, _, payload) = q.pop().expect("hold queue never drains");
    *seq += 1;
    q.push(t + SimTime(delay(dist, rng)), *seq, payload);
    payload
}

fn prefill<Q: EventQueue<u64>>(q: &mut Q, n: u64, dist: &str, rng: &mut ChaCha8Rng) -> u64 {
    for seq in 0..n {
        q.push(SimTime(delay(dist, rng)), seq, seq);
    }
    n
}

fn bench_hold(c: &mut Criterion) {
    for dist in ["near-future", "wan-tail", "same-instant"] {
        let mut g = c.benchmark_group(format!("queue_hold/{dist}"));
        // 16 pending events is the simulators' own load (clients + site
        // timers); the larger sizes show how the structures scale.
        for size in [16u64, 256, 4096] {
            g.bench_with_input(BenchmarkId::new("calendar", size), &size, |b, &size| {
                let mut rng = ChaCha8Rng::seed_from_u64(7);
                let mut q = CalendarQueue::new();
                let mut seq = prefill(&mut q, size, dist, &mut rng);
                b.iter(|| hold(&mut q, &mut seq, dist, &mut rng));
            });
            g.bench_with_input(BenchmarkId::new("heap", size), &size, |b, &size| {
                let mut rng = ChaCha8Rng::seed_from_u64(7);
                let mut q = HeapQueue::new();
                let mut seq = prefill(&mut q, size, dist, &mut rng);
                b.iter(|| hold(&mut q, &mut seq, dist, &mut rng));
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_hold);
criterion_main!(benches);
