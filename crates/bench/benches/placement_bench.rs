//! Criterion bench for the placement directory's routing hot path: every
//! operation arrival resolves `item -> shard` through
//! [`PlacementDirectory::owner_of`], which replaced the hardwired
//! `g % shards` of the static layout. The directory is a flat `Vec<u32>`
//! indexed by global item, so the lookup should price out as one L1/L2
//! load — this bench pins that the elastic control plane's per-op routing
//! tax over the modulo it displaced stays under ~5 ns (the measured gap
//! on the reference host is well under 1 ns; see DESIGN.md §5.8).
//!
//! Both arms walk the same pseudo-random item sequence (an LCG, no RNG in
//! the measured loop) over a 100k-item keyspace at 8 shards — the Q12
//! experiment's full-scale shape — so cache behaviour is comparable: the
//! directory arm touches the 400 KB owner table, the modulo arm only the
//! index stream.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qc_sim::{PlacementDirectory, SeedPlacement};

const ITEMS: usize = 100_000;
const SHARDS: usize = 8;

/// The next item index from a splitmix-style walk (multiplicative LCG
/// keeps the measured loop branch- and allocation-free).
#[inline]
fn next_item(state: &mut u64) -> usize {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((*state >> 33) as usize) % ITEMS
}

fn bench_lookup(c: &mut Criterion) {
    let dir = PlacementDirectory::seed(ITEMS, SHARDS, SeedPlacement::RoundRobin);
    let mut group = c.benchmark_group("placement_lookup");
    group.bench_function(BenchmarkId::new("modulo", "100k items / 8 shards"), |b| {
        let mut state = 0x9E3779B97F4A7C15u64;
        b.iter(|| {
            let g = next_item(&mut state);
            black_box(black_box(g) % SHARDS)
        })
    });
    group.bench_function(BenchmarkId::new("directory", "100k items / 8 shards"), |b| {
        let mut state = 0x9E3779B97F4A7C15u64;
        b.iter(|| {
            let g = next_item(&mut state);
            black_box(dir.owner_of(black_box(g)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
