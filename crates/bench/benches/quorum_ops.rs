//! Criterion benches for quorum-system primitives: quorum finding across
//! system families and sizes, legality validation, and availability
//! analysis. These are the hot paths behind experiments Q1, Q2 and Q5.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quorum::{
    analysis, generators, Grid, Majority, QuorumSpec, ReplicaSet, Rowa, TreeQuorum, Weighted,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The pre-bitset greedy shrink, kept here as the before/after baseline:
/// clone the candidate `BTreeSet` and re-test the whole set for every
/// dropped element — O(n²·log n) with an allocation per probe, versus the
/// allocation-free bit shrink behind [`QuorumSpec::find_read_quorum_bits`].
fn find_read_quorum_btree_reference(
    q: &dyn QuorumSpec,
    available: &BTreeSet<usize>,
) -> Option<BTreeSet<usize>> {
    if !q.is_read_quorum(available) {
        return None;
    }
    let mut current = available.clone();
    for x in available {
        let mut trial = current.clone();
        trial.remove(x);
        if q.is_read_quorum(&trial) {
            current = trial;
        }
    }
    Some(current)
}

fn bench_find_quorum(c: &mut Criterion) {
    let mut g = c.benchmark_group("find_read_quorum");
    for n in [5usize, 9, 25] {
        let avail: BTreeSet<usize> = (0..n).collect();
        let systems: Vec<Box<dyn QuorumSpec>> = vec![
            Box::new(Rowa::new(n)),
            Box::new(Majority::new(n)),
            Box::new(Weighted::new(vec![1; n], (n / 2 + 1) as u32, (n / 2 + 1) as u32)),
        ];
        for q in systems {
            g.bench_with_input(
                BenchmarkId::new(q.label(), n),
                &avail,
                |b, avail| b.iter(|| q.find_read_quorum(std::hint::black_box(avail))),
            );
        }
    }
    // Structured systems at their natural sizes.
    let grid = Grid::new(5, 5);
    let avail: BTreeSet<usize> = (0..25).collect();
    g.bench_function("grid(5x5)/25", |b| {
        b.iter(|| grid.find_read_quorum(std::hint::black_box(&avail)))
    });
    let tree = TreeQuorum::new(27);
    let avail: BTreeSet<usize> = (0..27).collect();
    g.bench_function("tree(27)/27", |b| {
        b.iter(|| tree.find_read_quorum(std::hint::black_box(&avail)))
    });
    g.finish();
}

/// Before/after for the bitset migration: the old clone-based `BTreeSet`
/// shrink versus the `ReplicaSet` hot path, plus raw membership tests.
fn bench_bitset_vs_btreeset(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitset_vs_btreeset");
    for n in [5usize, 25, 101] {
        let q = Majority::new(n);
        let avail_btree: BTreeSet<usize> = (0..n).collect();
        let avail_bits = ReplicaSet::full(n);
        g.bench_with_input(
            BenchmarkId::new("find_btreeset_reference", n),
            &avail_btree,
            |b, avail| {
                b.iter(|| find_read_quorum_btree_reference(&q, std::hint::black_box(avail)))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("find_bits", n),
            &avail_bits,
            |b, &avail| b.iter(|| q.find_read_quorum_bits(std::hint::black_box(avail))),
        );
        g.bench_with_input(
            BenchmarkId::new("is_quorum_btreeset", n),
            &avail_btree,
            |b, avail| b.iter(|| q.is_read_quorum(std::hint::black_box(avail))),
        );
        g.bench_with_input(
            BenchmarkId::new("is_quorum_bits", n),
            &avail_bits,
            |b, &avail| b.iter(|| q.is_read_quorum_bits(std::hint::black_box(avail))),
        );
    }
    g.finish();
}

fn bench_configuration(c: &mut Criterion) {
    let mut g = c.benchmark_group("configuration");
    let universe: Vec<u32> = (0..9).collect();
    g.bench_function("majority_generate/9", |b| {
        b.iter(|| generators::majority(std::hint::black_box(&universe)))
    });
    let cfg = generators::majority(&universe);
    g.bench_function("validate/9", |b| b.iter(|| cfg.validate()));
    let avail: BTreeSet<u32> = (0..9).collect();
    g.bench_function("covers_read_quorum/9", |b| {
        b.iter(|| cfg.covers_read_quorum(std::hint::black_box(&avail)))
    });
    g.bench_function("minimized/9", |b| b.iter(|| cfg.minimized()));
    g.finish();
}

fn bench_availability(c: &mut Criterion) {
    let mut g = c.benchmark_group("availability");
    let maj9 = Majority::new(9);
    g.bench_function("exact/9", |b| {
        b.iter(|| analysis::exact_read_availability(&maj9, std::hint::black_box(0.9)))
    });
    let maj15 = Majority::new(15);
    g.bench_function("exact/15", |b| {
        b.iter(|| analysis::exact_read_availability(&maj15, std::hint::black_box(0.9)))
    });
    g.bench_function("monte_carlo_1k/15", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| analysis::monte_carlo_availability(&maj15, 0.9, 1_000, &mut rng))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_find_quorum,
    bench_bitset_vs_btreeset,
    bench_configuration,
    bench_availability
);
criterion_main!(benches);
