//! Criterion benches for the discrete-event simulator: event-loop
//! throughput with and without failure processes, across quorum systems.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qc_sim::{default_threads, run, run_batch, ContactPolicy, SimConfig, SimTime};
use quorum::{Grid, Majority, QuorumSpec, Rowa};

fn config(q: Arc<dyn QuorumSpec + Send + Sync>, failures: bool, seed: u64) -> SimConfig {
    let mut c = SimConfig::new(q);
    c.clients = 8;
    c.read_fraction = 0.9;
    c.contact = ContactPolicy::MinimalQuorum;
    c.think_time = SimTime::from_millis(0);
    c.duration = SimTime::from_secs(2);
    if failures {
        c.mttf = Some(SimTime::from_secs(5));
        c.mttr = SimTime::from_millis(500);
    }
    c.seed = seed;
    c
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_2s_run");
    g.sample_size(20);
    let systems: Vec<Arc<dyn QuorumSpec + Send + Sync>> = vec![
        Arc::new(Rowa::new(5)),
        Arc::new(Majority::new(5)),
        Arc::new(Majority::new(25)),
        Arc::new(Grid::new(5, 5)),
    ];
    for q in &systems {
        g.bench_with_input(
            BenchmarkId::new("healthy", q.label()),
            q,
            |b, q| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run(config(Arc::clone(q), false, seed))
                })
            },
        );
    }
    let maj = Arc::new(Majority::new(5)) as Arc<dyn QuorumSpec + Send + Sync>;
    g.bench_function("with_failures/majority(3of5)", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run(config(Arc::clone(&maj), true, seed))
        })
    });
    g.finish();
}

/// The parallel sweep runner on an 8-cell grid, serial vs all cores. On a
/// multi-core host the batch time should shrink toward
/// `serial / default_threads()`; the per-cell metrics are identical either
/// way.
fn bench_sweep_runner(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_runner_8x2s");
    g.sample_size(10);
    let grid = |seed0: u64| -> Vec<SimConfig> {
        (0..8)
            .map(|i| {
                config(
                    Arc::new(Majority::new(5)) as Arc<dyn QuorumSpec + Send + Sync>,
                    false,
                    seed0 + i,
                )
            })
            .collect()
    };
    for threads in [1, default_threads()] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let mut seed0 = 0u64;
                b.iter(|| {
                    seed0 += 100;
                    run_batch(grid(seed0), threads)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_simulator, bench_sweep_runner);
criterion_main!(benches);
