//! Criterion benches for the formal-model machinery: serial-system
//! execution, Theorem 10 projection and replay, return-order
//! serialization, and the Moss lock manager. These bound the cost of the
//! randomized checking behind experiments E1–E3.

use criterion::{criterion_group, criterion_main, Criterion};
use nested_txn::{AccessKind, AccessSpec, ObjectId, Tid, TxnOp, Value};
use qc_bench::{contention_spec, figure1_spec};
use qc_cc::{run_concurrent, serialize_return_order, CcRunOptions, LockingObject};
use qc_replication::{
    build_system_a, check_projection, project_to_a, run_system_b, RunOptions,
};

fn bench_serial_execution(c: &mut Criterion) {
    let spec = figure1_spec();
    let mut g = c.benchmark_group("serial_system_b");
    g.bench_function("run_figure1_spec", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_system_b(
                &spec,
                RunOptions {
                    seed,
                    check_wf: false,
                    check_lemmas: false,
                    ..RunOptions::default()
                },
            )
            .unwrap()
        })
    });
    g.bench_function("run_with_monitors", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_system_b(
                &spec,
                RunOptions {
                    seed,
                    ..RunOptions::default()
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_theorem10(c: &mut Criterion) {
    let spec = figure1_spec();
    let (beta, layout) = run_system_b(
        &spec,
        RunOptions {
            seed: 3,
            ..RunOptions::default()
        },
    )
    .unwrap();
    let mut g = c.benchmark_group("theorem10");
    g.bench_function("project", |b| {
        b.iter(|| project_to_a(&layout, std::hint::black_box(&beta)))
    });
    let alpha = project_to_a(&layout, &beta);
    g.bench_function("replay_alpha_on_a", |b| {
        let mut a = build_system_a(&spec, &layout);
        b.iter(|| a.system.replay(std::hint::black_box(&alpha)).unwrap())
    });
    g.bench_function("full_check", |b| {
        b.iter(|| check_projection(&spec, &layout, std::hint::black_box(&beta)).unwrap())
    });
    g.finish();
}

fn bench_theorem11_pipeline(c: &mut Criterion) {
    let spec = contention_spec(2, 3);
    let (gamma, ..) = run_concurrent(
        &spec,
        CcRunOptions {
            seed: 5,
            ..CcRunOptions::default()
        },
    )
    .unwrap();
    let mut g = c.benchmark_group("theorem11");
    g.bench_function("serialize_return_order", |b| {
        b.iter(|| serialize_return_order(std::hint::black_box(&gamma)).unwrap())
    });
    g.bench_function("run_concurrent", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_concurrent(
                &spec,
                CcRunOptions {
                    seed,
                    ..CcRunOptions::default()
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_lock_manager(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_manager");
    g.bench_function("grant_inherit_release_cycle", |b| {
        use ioa::Component as _;
        b.iter(|| {
            let mut o = LockingObject::new(ObjectId(0), "x", Value::Int(0));
            for user in 0..4u32 {
                let access = Tid::root().child(user).child(0).child(0);
                o.apply(&TxnOp::Create {
                    tid: access.clone(),
                    access: Some(AccessSpec {
                        object: ObjectId(0),
                        kind: AccessKind::Write,
                        data: Value::Int(i64::from(user)),
                    }),
                    param: None,
                })
                .unwrap();
                let grant = o.enabled_outputs().pop().unwrap();
                o.apply(&grant).unwrap();
                // Commit the chain up to the top level.
                let mut t = access;
                while !t.is_root() {
                    o.apply(&TxnOp::Commit {
                        tid: t.clone(),
                        value: Value::Nil,
                    })
                    .unwrap();
                    t = t.parent().unwrap();
                }
            }
            o
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_serial_execution,
    bench_theorem10,
    bench_theorem11_pipeline,
    bench_lock_manager
);
criterion_main!(benches);
