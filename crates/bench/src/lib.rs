//! Shared helpers for the experiment binaries (`exp_*`, `fig_*`) and
//! criterion benches that regenerate the evaluation in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nested_txn::Value;
use qc_replication::{ConfigChoice, ItemSpec, SystemSpec, UserSpec, UserStep};

/// The value following `flag` in this process's argument list, if present
/// (`--flag value` form). The experiment binaries use this for the fault
/// and seed overrides; anything fancier would not earn its keep here.
pub fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == flag)
        .map(|w| w[1].clone())
}

/// Parse a `--faults "<plan text>"` argument into a [`qc_sim::FaultPlan`];
/// `None` when the flag is absent. Exits with a message on a malformed
/// plan, since silently running a different experiment than the user asked
/// for would be worse than stopping.
pub fn faults_flag() -> Option<qc_sim::FaultPlan> {
    flag_value("--faults").map(|spec| match qc_sim::FaultPlan::parse(&spec) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("invalid --faults plan: {e}");
            std::process::exit(2);
        }
    })
}

/// Parsed observability flags shared by the experiment binaries:
/// `--obs-dir DIR` turns on the full instrumentation (per-phase spans +
/// structured event log + periodic snapshots) and dumps the recordings
/// under DIR; `--snapshot-every SECS` sets the snapshot period in
/// *simulated* seconds (implies instrumentation even without a dir).
pub struct ObsFlags {
    /// Dump directory (`--obs-dir`), created eagerly when given.
    pub dir: Option<std::path::PathBuf>,
    /// Snapshot period in simulated seconds (`--snapshot-every`).
    pub every_secs: Option<f64>,
}

/// Parse `--obs-dir` / `--snapshot-every` from this process's arguments.
pub fn obs_flags() -> ObsFlags {
    let dir = flag_value("--obs-dir").map(std::path::PathBuf::from);
    let every_secs = flag_value("--snapshot-every").map(|s| {
        let v: f64 = s.parse().expect("--snapshot-every takes seconds");
        assert!(v > 0.0, "--snapshot-every must be positive");
        v
    });
    if let Some(d) = &dir {
        std::fs::create_dir_all(d).expect("create --obs-dir");
    }
    ObsFlags { dir, every_secs }
}

impl ObsFlags {
    /// Whether any observability output was requested.
    pub fn enabled(&self) -> bool {
        self.dir.is_some() || self.every_secs.is_some()
    }

    /// The [`qc_sim::ObsOptions`] these flags imply: disabled when neither
    /// flag was given, otherwise spans + full event log + snapshots every
    /// `--snapshot-every` (default 1) simulated seconds.
    pub fn options(&self) -> qc_sim::ObsOptions {
        if !self.enabled() {
            return qc_sim::ObsOptions::disabled();
        }
        let mut o = qc_sim::ObsOptions::full();
        if let Some(secs) = self.every_secs {
            o.snapshot_every_us = Some((secs * 1e6) as u64);
        }
        o
    }

    /// Write `obs` under `--obs-dir` as `<stem>.events.jsonl` and
    /// `<stem>.snapshots.json`; no-op when the flag is absent.
    pub fn dump(&self, stem: &str, obs: &qc_sim::ObsReport) {
        let Some(dir) = &self.dir else { return };
        let events = dir.join(format!("{stem}.events.jsonl"));
        std::fs::write(&events, obs.events_jsonl()).expect("write events jsonl");
        let snaps = dir.join(format!("{stem}.snapshots.json"));
        std::fs::write(&snaps, obs.snapshots_json()).expect("write snapshots json");
        println!(
            "obs: {} ({} events, {} snapshots) + {}",
            events.display(),
            obs.events.len(),
            obs.snapshots.len(),
            snaps.display()
        );
    }
}

/// Parse a `--trace-dir DIR` argument: the directory into which an
/// experiment binary dumps one JSON schedule trace per simulator cell and
/// replays each through the Theorem 10 conformance checker. `None` (the
/// flag absent) keeps the default parallel, untraced sweep.
pub fn trace_dir_flag() -> Option<std::path::PathBuf> {
    flag_value("--trace-dir").map(std::path::PathBuf::from)
}

/// Reduce a quorum label (or any cell tag) to a filename fragment: quorum
/// labels contain `(`, `/` and spaces that have no business in file names.
pub fn trace_file_stem(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Write a recorded trace as `<dir>/<name>` and return its path.
pub fn dump_trace(
    dir: &std::path::Path,
    name: &str,
    trace: &qc_sim::ScheduleTrace,
) -> std::path::PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, qc_sim::trace_to_json(trace)).expect("write trace file");
    path
}

/// Print a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Print a rule matching the given widths.
pub fn rule(widths: &[usize]) {
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// The paper's running example (Figure 1 shape): two logical items `x`
/// (3 replicas) and `y` (2 replicas), one plain object, two user
/// transactions with nested structure.
pub fn figure1_spec() -> SystemSpec {
    SystemSpec {
        items: vec![
            ItemSpec {
                name: "x".into(),
                init: Value::Int(0),
                replicas: 3,
                config: ConfigChoice::Majority,
            },
            ItemSpec {
                name: "y".into(),
                init: Value::Int(0),
                replicas: 2,
                config: ConfigChoice::Rowa,
            },
        ],
        plain: vec![
            qc_replication::PlainObjectSpec {
                name: "a".into(),
                init: Value::Int(0),
            },
            qc_replication::PlainObjectSpec {
                name: "b".into(),
                init: Value::Int(0),
            },
        ],
        users: vec![
            UserSpec::new(vec![
                UserStep::ReadPlain(0),
                UserStep::Write(0, Value::Int(1)),
                UserStep::Read(0),
            ]),
            UserSpec::new(vec![
                UserStep::Read(1),
                UserStep::Sub(UserSpec::new(vec![
                    UserStep::WritePlain(1, Value::Int(2)),
                    UserStep::Write(1, Value::Int(3)),
                ])),
            ]),
        ],
        strategy: Default::default(),
    }
}

/// A contention-heavy spec for the Theorem 11 experiments: `users` user
/// transactions all touching the same two items.
pub fn contention_spec(users: usize, replicas: usize) -> SystemSpec {
    let mk_user = |k: usize| {
        UserSpec::new(vec![
            UserStep::Write(0, Value::Int(10 + k as i64)),
            UserStep::Read(0),
            UserStep::Write(1, Value::Int(100 + k as i64)),
            UserStep::Read(1),
        ])
    };
    SystemSpec {
        items: vec![
            ItemSpec {
                name: "x".into(),
                init: Value::Int(0),
                replicas,
                config: ConfigChoice::Majority,
            },
            ItemSpec {
                name: "y".into(),
                init: Value::Int(0),
                replicas,
                config: ConfigChoice::Majority,
            },
        ],
        plain: vec![],
        users: (0..users).map(mk_user).collect(),
        strategy: Default::default(),
    }
}
