//! Q1 — message and latency cost per logical operation, by quorum system
//! and replica count, on the discrete-event simulator (LAN latencies, no
//! failures, minimal-quorum contact).

use std::sync::Arc;

use qc_bench::{row, rule};
use qc_sim::{run, ContactPolicy, LatencyModel, SimConfig, SimTime};
use quorum::{Grid, Majority, QuorumSpec, Rowa, TreeQuorum, Weighted};

fn systems_for(n: usize) -> Vec<Arc<dyn QuorumSpec + Send + Sync>> {
    let mut v: Vec<Arc<dyn QuorumSpec + Send + Sync>> =
        vec![Arc::new(Rowa::new(n)), Arc::new(Majority::new(n))];
    match n {
        9 => {
            v.push(Arc::new(Grid::new(3, 3)));
            v.push(Arc::new(TreeQuorum::new(9)));
        }
        25 => v.push(Arc::new(Grid::new(5, 5))),
        _ => {}
    }
    if n == 5 {
        // Gifford's weighted-voting example: a strong site with 3 votes.
        v.push(Arc::new(Weighted::new(vec![3, 1, 1, 1, 1], 4, 4)));
    }
    v
}

fn main() {
    println!("Q1 — per-operation cost by quorum system (LAN, minimal contact, 50% reads)\n");
    let widths = [4, 18, 11, 11, 10, 10, 10];
    row(
        &[
            "n".into(),
            "quorum".into(),
            "msgs/read".into(),
            "msgs/write".into(),
            "read p50".into(),
            "write p50".into(),
            "write p95".into(),
        ],
        &widths,
    );
    rule(&widths);

    for n in [3usize, 5, 9, 15, 25] {
        for q in systems_for(n) {
            let mut c = SimConfig::new(Arc::clone(&q));
            c.read_fraction = 0.5;
            c.latency = LatencyModel::lan();
            c.contact = ContactPolicy::MinimalQuorum;
            c.duration = SimTime::from_secs(20);
            c.seed = 11;
            let m = run(c);
            row(
                &[
                    format!("{n}"),
                    q.label(),
                    format!("{:.1}", m.reads.messages_per_op()),
                    format!("{:.1}", m.writes.messages_per_op()),
                    format!("{:.2}ms", m.reads.percentile_ms(50.0)),
                    format!("{:.2}ms", m.writes.percentile_ms(50.0)),
                    format!("{:.2}ms", m.writes.percentile_ms(95.0)),
                ],
                &widths,
            );
        }
        rule(&widths);
    }

    println!(
        "Expected shape: ROWA reads cost 2 messages at every n; threshold systems \
         scale like n; grid/tree scale like √n — with corresponding latency ordering."
    );
}
