//! E6 — exhaustive small-scope verification: enumerate *every* abort-free
//! schedule of small replicated systems and check Lemmas 7–8 in every
//! reachable state and Theorem 10 on every maximal schedule.
//!
//! Unlike the randomized experiments (E1–E2), a clean row here is a
//! *complete* verification of the bounded behaviour: `covered = yes` means
//! the enumeration hit the system's entire (abort-free) schedule space,
//! not a sample of it.

use ioa::{ExploreLimits, ReplayStrategy};
use nested_txn::Value;
use qc_bench::{row, rule};
use qc_replication::{
    verify_exhaustive, verify_exhaustive_with, ConfigChoice, ItemSpec, SystemSpec, UserSpec,
    UserStep,
};

fn tiny(steps: Vec<UserStep>, replicas: usize, config: ConfigChoice) -> SystemSpec {
    SystemSpec {
        items: vec![ItemSpec {
            name: "x".into(),
            init: Value::Int(0),
            replicas,
            config,
        }],
        plain: vec![],
        users: vec![UserSpec::new(steps)],
        strategy: Default::default(),
    }
}

fn two_users(a: Vec<UserStep>, b: Vec<UserStep>, replicas: usize) -> SystemSpec {
    SystemSpec {
        items: vec![ItemSpec {
            name: "x".into(),
            init: Value::Int(0),
            replicas,
            config: ConfigChoice::Majority,
        }],
        plain: vec![],
        users: vec![UserSpec::new(a), UserSpec::new(b)],
        strategy: Default::default(),
    }
}

fn main() {
    println!("E6 — exhaustive verification of small scopes (abort-free behaviour)\n");
    println!(
        "replay columns: operations re-executed to rebuild state on backtrack —\n\
         full-replay baseline vs the default checkpointed explorer.\n"
    );
    let widths = [30, 12, 10, 11, 12, 12, 9, 8];
    row(
        &[
            "scope".into(),
            "schedules".into(),
            "maximal".into(),
            "projections".into(),
            "replay full".into(),
            "replay ckpt".into(),
            "covered".into(),
            "result".into(),
        ],
        &widths,
    );
    rule(&widths);

    let scopes: Vec<(&str, SystemSpec, usize)> = vec![
        (
            "read, rowa, 2 replicas",
            tiny(vec![UserStep::Read(0)], 2, ConfigChoice::Rowa),
            40,
        ),
        (
            "read, majority, 3 replicas",
            tiny(vec![UserStep::Read(0)], 3, ConfigChoice::Majority),
            40,
        ),
        (
            "write, majority, 2 replicas",
            tiny(vec![UserStep::Write(0, Value::Int(1))], 2, ConfigChoice::Majority),
            60,
        ),
        (
            "write;read, rowa, 2 replicas",
            tiny(
                vec![UserStep::Write(0, Value::Int(1)), UserStep::Read(0)],
                2,
                ConfigChoice::Rowa,
            ),
            80,
        ),
        (
            "2 users r/w, majority, 2",
            two_users(
                vec![UserStep::Write(0, Value::Int(1))],
                vec![UserStep::Read(0)],
                2,
            ),
            80,
        ),
    ];

    for (name, spec, depth) in scopes {
        let limits = ExploreLimits {
            max_depth: depth,
            max_schedules: 5_000_000,
        };
        let baseline = verify_exhaustive_with(&spec, limits, ReplayStrategy::FullReplay);
        match verify_exhaustive(&spec, limits) {
            Ok(r) => {
                let full_replayed = baseline
                    .as_ref()
                    .map_or("-".into(), |b| format!("{}", b.profile.replayed_steps));
                if let Ok(b) = &baseline {
                    assert_eq!(
                        b.stats, r.stats,
                        "{name}: stats must be strategy-independent"
                    );
                }
                row(
                    &[
                        name.into(),
                        format!("{}", r.stats.schedules),
                        format!("{}", r.stats.maximal),
                        format!("{}", r.projections_checked),
                        full_replayed,
                        format!("{}", r.profile.replayed_steps),
                        if r.stats.truncated { "partial" } else { "yes" }.into(),
                        "ok".into(),
                    ],
                    &widths,
                );
            }
            Err(e) => {
                row(
                    &[
                        name.into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "FAIL".into(),
                    ],
                    &widths,
                );
                eprintln!("{e}");
            }
        }
    }

    println!(
        "\nExpected: result = ok with covered = yes — Theorem 10 and Lemmas 7–8 \
         verified over the complete abort-free behaviour of each scope — and \
         'replay ckpt' well below 'replay full' on every row."
    );
}
