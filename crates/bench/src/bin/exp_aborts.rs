//! E5 — abort tolerance: the paper's second generalization of Gifford.
//!
//! "An operation to access a logical data item can complete even if some of
//! its accesses to DMs abort." We sweep the serial scheduler's spontaneous
//! abort weight and measure how many logical operations (TMs) still manage
//! to commit, while Theorem 10 continues to hold.

use nested_txn::{TxnOp, Value};
use qc_bench::{row, rule};
use qc_replication::{
    check_projection, run_system_b, ConfigChoice, ItemSpec, RunOptions, SystemSpec, UserSpec,
    UserStep,
};

fn spec() -> SystemSpec {
    SystemSpec {
        items: vec![ItemSpec {
            name: "x".into(),
            init: Value::Int(0),
            replicas: 5,
            config: ConfigChoice::Majority,
        }],
        plain: vec![],
        users: vec![
            UserSpec::new(vec![
                UserStep::Write(0, Value::Int(1)),
                UserStep::Read(0),
            ]),
            UserSpec::new(vec![UserStep::Read(0), UserStep::Write(0, Value::Int(2))]),
        ],
        strategy: Default::default(),
    }
}

fn main() {
    println!("E5 — abort tolerance: logical operations complete despite access aborts\n");
    let widths = [14, 6, 12, 14, 14, 9];
    row(
        &[
            "abort weight".into(),
            "runs".into(),
            "Σ aborts".into(),
            "TMs committed".into(),
            "TMs created".into(),
            "refuted".into(),
        ],
        &widths,
    );
    rule(&widths);

    let s = spec();
    for abort_weight in [0u32, 2, 5, 10, 20, 40, 80] {
        let runs = 30u64;
        let mut aborts = 0usize;
        let mut tm_commits = 0usize;
        let mut tm_creates = 0usize;
        let mut refuted = 0u64;
        for seed in 0..runs {
            match run_system_b(
                &s,
                RunOptions {
                    seed,
                    abort_weight,
                    max_steps: 20_000,
                    ..RunOptions::default()
                },
            ) {
                Ok((beta, layout)) => {
                    aborts += beta
                        .iter()
                        .filter(|op| matches!(op, TxnOp::Abort { .. }))
                        .count();
                    for tm in layout.tm_roles.keys() {
                        if beta
                            .iter()
                            .any(|op| matches!(op, TxnOp::Create { tid, .. } if tid == tm))
                        {
                            tm_creates += 1;
                        }
                        if beta
                            .iter()
                            .any(|op| matches!(op, TxnOp::Commit { tid, .. } if tid == tm))
                        {
                            tm_commits += 1;
                        }
                    }
                    if check_projection(&s, &layout, &beta).is_err() {
                        refuted += 1;
                    }
                }
                Err(e) => {
                    refuted += 1;
                    eprintln!("run failed (weight {abort_weight}, seed {seed}): {e}");
                }
            }
        }
        row(
            &[
                format!("{abort_weight}"),
                format!("{runs}"),
                format!("{aborts}"),
                format!("{tm_commits}"),
                format!("{tm_creates}"),
                format!("{refuted}"),
            ],
            &widths,
        );
    }

    println!(
        "\nExpected: created TMs almost always still commit (they retry aborted \
         accesses with fresh names); refuted = 0 at every abort rate."
    );
}
