//! E2 — Lemma 7 and Lemma 8 as runtime invariants: monitored after every
//! step of random executions of system **B**, across quorum-configuration
//! regimes.
//!
//! The monitors check, per step: (Lemma 7) the highest DM version number
//! equals `current-vn(x, β)`; and at even points of `access(x, β)`:
//! (8.1a) some write-quorum holds the current version number, (8.1b) every
//! DM at the current version holds the logical state, and (8.2) each
//! read-TM returns the logical state.

use nested_txn::Value;
use qc_bench::{row, rule};
use qc_replication::{
    run_system_b, ConfigChoice, ItemSpec, RunOptions, SystemSpec, TmStrategy, UserSpec, UserStep,
};

fn workload(config: ConfigChoice, replicas: usize, strategy: TmStrategy) -> SystemSpec {
    SystemSpec {
        items: vec![ItemSpec {
            name: "x".into(),
            init: Value::Int(0),
            replicas,
            config,
        }],
        plain: vec![],
        users: vec![
            UserSpec::new(vec![
                UserStep::Write(0, Value::Int(1)),
                UserStep::Read(0),
                UserStep::Write(0, Value::Int(2)),
            ]),
            UserSpec::new(vec![
                UserStep::Read(0),
                UserStep::Write(0, Value::Int(3)),
                UserStep::Read(0),
            ]),
        ],
        strategy,
    }
}

fn main() {
    println!("E2 — Lemma 7 / Lemma 8 invariant monitoring on random executions of B\n");
    let widths = [26, 8, 12, 12, 9];
    row(
        &[
            "configuration".into(),
            "runs".into(),
            "steps checked".into(),
            "reads checked".into(),
            "violations".into(),
        ],
        &widths,
    );
    rule(&widths);

    let regimes: Vec<(&str, ConfigChoice, usize, TmStrategy)> = vec![
        ("majority, 3 replicas", ConfigChoice::Majority, 3, TmStrategy::Eager),
        ("majority, 5 replicas", ConfigChoice::Majority, 5, TmStrategy::Eager),
        ("rowa, 4 replicas", ConfigChoice::Rowa, 4, TmStrategy::Eager),
        (
            "majority, 3, chaotic TMs",
            ConfigChoice::Majority,
            3,
            TmStrategy::Chaotic { max_accesses: 8 },
        ),
    ];

    for (name, cfg, n, strat) in regimes {
        let spec = workload(cfg, n, strat);
        let mut steps = 0usize;
        let mut reads = 0usize;
        let mut violations = 0usize;
        let runs = 60u64;
        for seed in 0..runs {
            // Lemma monitors are attached inside run_system_b; a violation
            // surfaces as an executor error.
            match run_system_b(
                &spec,
                RunOptions {
                    seed,
                    abort_weight: 4,
                    max_steps: 15_000,
                    ..RunOptions::default()
                },
            ) {
                Ok((beta, layout)) => {
                    steps += beta.len();
                    reads += layout
                        .tm_roles
                        .iter()
                        .filter(|(t, r)| {
                            matches!(r, qc_replication::TmRole::Read(_))
                                && beta.iter().any(|op| {
                                    matches!(op, nested_txn::TxnOp::RequestCommit { tid, .. } if tid == *t)
                                })
                        })
                        .count();
                }
                Err(e) => {
                    violations += 1;
                    eprintln!("VIOLATION ({name}, seed {seed}): {e}");
                }
            }
        }
        row(
            &[
                name.into(),
                format!("{runs}"),
                format!("{steps}"),
                format!("{reads}"),
                format!("{violations}"),
            ],
            &widths,
        );
    }
    println!("\nExpected: violations = 0 (Lemmas 7 and 8 hold in every reachable state).");
}
