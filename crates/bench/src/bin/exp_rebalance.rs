//! Q12 — elastic rebalancing: aggregate wall-clock throughput of the
//! sharded simulator under zipfian skew, with and without the
//! deterministic hot-item rebalancer.
//!
//! A *routed* open workload over a *range* seed placement concentrates
//! the zipf head on one shard; that shard's event loop becomes the
//! critical path of every parallel epoch and aggregate wall-clock
//! throughput collapses toward single-shard speed. The elastic control
//! plane migrates hot items off the loaded shard at simulated-time epoch
//! barriers — each move a §4 generation bump over unchanged members, so
//! the whole run stays deterministic and Theorem 10-conformant.
//!
//! Three sections, all written to `results/BENCH_rebalance.json`:
//!
//! 1. **Determinism** — `ShardReport` and `PlacementReport` digests of an
//!    elastic zipfian run on 1/2/4 threads × calendar/heap queues; the
//!    binary *asserts* all six agree and that migrations happened.
//! 2. **Conformance** — the same run traced; every per-item schedule
//!    (including items whose history spans two shards) must replay
//!    through the generation-aware Theorem 10 checker (asserted).
//! 3. **Skew sweep** — for θ ∈ {0, 0.9, 0.99}: the range-seeded
//!    *collapsed* control (epoch barriers present, rebalancing disabled)
//!    vs the *elastic* run. Reports committed ops, wall seconds,
//!    migrations, and the final-epoch shard-load ratio (max/mean, a
//!    deterministic flatness signal). Full mode asserts the elastic
//!    zipfian arms recover ≥ 0.8× the uniform arm's wall-clock
//!    throughput and end ≥ 2× flatter than their collapsed controls.
//!
//! Flags: `--items N` (default 100000), `--shards S` (default 8),
//! `--secs N` (default 10), `--seed N` (default 29), `--threads T`
//! (default: all cores), `--smoke` (CI leg: shrink everything, assert
//! only the deterministic sections).

use std::sync::Arc;
use std::time::Instant;

use qc_bench::{flag_value, row, rule};
use qc_sim::{
    check_trace, default_threads, run_sharded_elastic, run_sharded_elastic_traced,
    ContactPolicy, ElasticPolicy, ItemDist, MultiConfig, PlacementPolicy, PlacementReport,
    QueueKind, ReconfigPolicy, SimTime, Workload,
};
use quorum::Majority;
use serde_json::JsonObject;

fn config(items: usize, shards: usize, secs: u64, seed: u64, theta: f64) -> MultiConfig {
    let mut c = MultiConfig::new(Arc::new(Majority::new(5)));
    c.contact = ContactPolicy::MinimalQuorum;
    c.items = items;
    c.shards = shards;
    // One aggregate arrival per 50 µs across the keyspace, split by item
    // weight — the same offered load at every θ.
    c.workload = Workload::Routed {
        interarrival: SimTime(50),
    };
    c.dist = if theta > 0.0 {
        ItemDist::Zipfian { theta }
    } else {
        ItemDist::Uniform
    };
    c.duration = SimTime::from_secs(secs);
    c.seed = seed;
    c.reconfig = ReconfigPolicy::scripted_only();
    c.placement = PlacementPolicy::Elastic(ElasticPolicy::new());
    c
}

fn with_moves(mut c: MultiConfig, max_moves: usize) -> MultiConfig {
    c.placement = PlacementPolicy::Elastic(ElasticPolicy {
        max_moves_per_epoch: max_moves,
        ..ElasticPolicy::new()
    });
    c
}

/// Max/mean shard-commit ratio of the run's last full epoch (1.0 = flat).
fn final_load_ratio(p: &PlacementReport) -> f64 {
    let last = p.epochs.last().expect("at least the final sample");
    let max = *last.shard_commits.iter().max().unwrap() as f64;
    let total: u64 = last.shard_commits.iter().sum();
    if total == 0 {
        return 1.0;
    }
    max * last.shard_commits.len() as f64 / total as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let items: usize = flag_value("--items")
        .map(|s| s.parse().expect("--items takes an integer"))
        .unwrap_or(if smoke { 512 } else { 100_000 });
    let shards: usize = flag_value("--shards")
        .map(|s| s.parse().expect("--shards takes an integer"))
        .unwrap_or(if smoke { 4 } else { 8 });
    let secs: u64 = flag_value("--secs")
        .map(|s| s.parse().expect("--secs takes an integer"))
        .unwrap_or(if smoke { 2 } else { 10 });
    let seed: u64 = flag_value("--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(29);
    let threads: usize = flag_value("--threads")
        .map(|s| s.parse().expect("--threads takes an integer"))
        .unwrap_or_else(default_threads)
        .min(shards);

    println!(
        "Q12 — elastic rebalancing (n = 5 majority, {items} items, {shards} shards, \
         routed 20k ops/s, {secs} s simulated, {threads} threads{})\n",
        if smoke { ", smoke" } else { "" }
    );

    // 1. Determinism: both digests identical across thread counts and
    // queue implementations, with real migrations in the run.
    let det_cfg = config(items.min(4096), shards, secs.min(2), seed, 0.99);
    let mut results = Vec::new();
    for kind in [QueueKind::Calendar, QueueKind::Heap] {
        let mut c = det_cfg.clone();
        c.queue = kind;
        for t in [1usize, 2, 4] {
            let (r, p) = run_sharded_elastic(&c, t);
            results.push((kind, t, r.digest(), p.digest(), p.migrations));
        }
    }
    let (_, _, digest0, pdigest0, migrations0) = results[0];
    for &(kind, t, d, pd, m) in &results {
        assert_eq!(d, digest0, "ShardReport digest diverged at {kind:?}/{t} threads");
        assert_eq!(pd, pdigest0, "PlacementReport digest diverged at {kind:?}/{t} threads");
        assert_eq!(m, migrations0);
    }
    assert!(migrations0 > 0, "the determinism scenario must migrate");
    println!(
        "determinism: digest {digest0:#018x} / placement {pdigest0:#018x} identical on \
         1/2/4 threads x calendar/heap ({migrations0} migrations)"
    );

    // 2. Conformance: every per-item schedule — including migrated items
    // whose history spans two shards — replays through Theorem 10.
    let (traced_report, traces, traced_placement) = run_sharded_elastic_traced(&det_cfg, threads);
    assert_eq!(traced_report.digest(), digest0, "tracing perturbed the run");
    assert_eq!(traced_placement.digest(), pdigest0);
    let mut traced_events = 0usize;
    for (g, trace) in traces.iter().enumerate() {
        let conf = check_trace(trace, &*det_cfg.quorum)
            .unwrap_or_else(|d| panic!("item {g} diverged from the serial system: {d}"));
        traced_events += conf.events;
    }
    assert_eq!(
        traced_report.metrics.lemma_violations, 0,
        "violations: {:?}",
        traced_report.metrics.violations
    );
    println!(
        "conformance: {} items, {traced_events} trace events, all conformant \
         (incl. {} migrations)\n",
        traces.len(),
        traced_placement.migrations
    );

    // 3. Skew sweep: collapsed control vs elastic, per θ.
    let widths = [6, 11, 10, 12, 11, 11, 11];
    row(
        &[
            "theta".into(),
            "arm".into(),
            "commits".into(),
            "wall secs".into(),
            "ops/wall-s".into(),
            "moves".into(),
            "load ratio".into(),
        ],
        &widths,
    );
    rule(&widths);
    let mut sweep_rows = Vec::new();
    let mut uniform_wall_tp = None;
    let mut checks = Vec::new();
    for theta in [0.0, 0.9, 0.99] {
        let mut per_theta = Vec::new();
        for (arm, max_moves) in [("collapsed", 0usize), ("elastic", 64)] {
            if theta == 0.0 && arm == "collapsed" {
                // Uniform load does not collapse; one reference arm.
                continue;
            }
            let c = with_moves(config(items, shards, secs, seed, theta), max_moves);
            let start = Instant::now();
            let (report, placement) = run_sharded_elastic(&c, threads);
            let wall = start.elapsed().as_secs_f64();
            assert_eq!(
                report.metrics.lemma_violations, 0,
                "violations: {:?}",
                report.metrics.violations
            );
            let commits = report.metrics.reads.successes + report.metrics.writes.successes;
            let wall_tp = commits as f64 / wall.max(1e-9);
            let ratio = final_load_ratio(&placement);
            if theta == 0.0 {
                uniform_wall_tp = Some(wall_tp);
            }
            row(
                &[
                    format!("{theta}"),
                    arm.into(),
                    format!("{commits}"),
                    format!("{wall:.3}"),
                    format!("{wall_tp:.0}"),
                    format!("{}", placement.migrations),
                    format!("{ratio:.2}"),
                ],
                &widths,
            );
            per_theta.push((arm, wall_tp, ratio));
            sweep_rows.push(
                JsonObject::new()
                    .field("theta", &theta)
                    .field("arm", arm)
                    .field("commits", &commits)
                    .field("wall_secs", &wall)
                    .field("ops_per_wall_sec", &wall_tp)
                    .field("migrations", &placement.migrations)
                    .field("migration_failures", &placement.migration_failures)
                    .field("final_load_ratio", &ratio)
                    .field("epochs", &placement.epochs.len())
                    .build(),
            );
        }
        if theta > 0.0 {
            let collapsed = per_theta[0];
            let elastic = per_theta[1];
            checks.push((theta, collapsed, elastic));
        }
    }
    rule(&widths);

    let uniform = uniform_wall_tp.expect("the uniform arm ran");
    let mut recoveries = Vec::new();
    for (theta, (_, collapsed_tp, collapsed_ratio), (_, elastic_tp, elastic_ratio)) in checks {
        let recovery = elastic_tp / uniform.max(1e-9);
        let collapse = collapsed_tp / uniform.max(1e-9);
        println!(
            "theta {theta}: collapsed {collapse:.2}x uniform -> elastic {recovery:.2}x \
             (load ratio {collapsed_ratio:.2} -> {elastic_ratio:.2})"
        );
        // The deterministic signal holds at every scale: the rebalancer
        // must leave the final epoch meaningfully flatter than the
        // collapsed control left it.
        assert!(
            elastic_ratio * 2.0 <= collapsed_ratio,
            "theta {theta}: final load ratio {elastic_ratio:.2} not >= 2x flatter \
             than collapsed {collapsed_ratio:.2}"
        );
        if !smoke && default_threads() >= shards {
            // Wall-clock success criterion: only meaningful where the
            // shards can actually run in parallel (smoke boxes and
            // single-core hosts have no collapse to recover from).
            assert!(
                recovery >= 0.8,
                "theta {theta}: elastic recovered only {recovery:.2}x of uniform \
                 wall-clock throughput"
            );
        }
        recoveries.push(
            JsonObject::new()
                .field("theta", &theta)
                .field("collapsed_vs_uniform", &collapse)
                .field("elastic_vs_uniform", &recovery)
                .field("collapsed_load_ratio", &collapsed_ratio)
                .field("elastic_load_ratio", &elastic_ratio)
                .build(),
        );
    }

    let json = JsonObject::new()
        .field("cores", &default_threads())
        .field("threads", &threads)
        .field("items", &items)
        .field("shards", &shards)
        .field("sim_duration_secs", &secs)
        .field("smoke", &smoke)
        .field("determinism_digest", &format!("{digest0:#018x}"))
        .field("placement_digest", &format!("{pdigest0:#018x}"))
        .field("determinism_grid", "1/2/4 threads x calendar/heap identical")
        .field("conformant_items", &traces.len())
        .field_raw("skew_sweep", &serde_json::array_raw(sweep_rows))
        .field_raw("recovery", &serde_json::array_raw(recoveries))
        .build();
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_rebalance.json", json).expect("write BENCH_rebalance.json");
    println!("\nwrote results/BENCH_rebalance.json");

    println!(
        "\nExpected shape: under a range seed the zipf head lands on one shard and the \
         collapsed arm's wall-clock throughput sinks toward single-shard speed; the \
         elastic arm migrates the head across shards within a few epochs and recovers \
         near-uniform aggregate throughput, with every move a checked reconfiguration."
    );
}
