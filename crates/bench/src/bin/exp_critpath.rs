//! Q13 — causal span trees and the critical-path flight recorder.
//!
//! Runs the nested-transaction harness with the causal recorder on and
//! answers: *where does the latency of a nested quorum transaction
//! actually go?* Four sections, all written to
//! `results/BENCH_critpath.json`:
//!
//! 1. **Invisibility + invariance** — the observed run's report digest
//!    equals the unobserved one (recording is pure observation), and the
//!    causal digest is bit-identical across 1/2/4 OS threads × the
//!    calendar/heap event queues; both *asserted*.
//! 2. **Scale** — a run of at least 10⁵ nested transactions with the
//!    profile on: every critical path must reconcile *exactly* with its
//!    transaction's end-to-end latency (`reconciled == txns`, asserted).
//! 3. **Critical-path attribution** — per-edge-kind histograms of
//!    critical-path time (read_gather / write_install / lock_wait /
//!    retry_backoff / stale_retry / fence) and the abort-cause
//!    breakdown, contended vs faulted.
//! 4. **Top-K slowest** — the slowest transactions' span trees rendered
//!    as indented critical paths, and their JSONL written to
//!    `results/critpath_slowest.jsonl` (`qc-trace` input).
//!
//! Flags: `--secs N` (default 120, scale-section simulated seconds),
//! `--seed N` (default 17), `--threads T` (default: all cores),
//! `--smoke` (CI leg: shrink every section, skip the 10⁵ floor).

use std::sync::Arc;
use std::time::Instant;

use nested_txn::{BankingGen, InventoryGen, WorkloadKind};
use qc_bench::{flag_value, row, rule};
use qc_sim::{
    default_threads, run_txn, run_txn_causal, FaultPlan, QueueKind, SimTime, TxnConfig,
    ABORT_CAUSES, EDGE_KINDS,
};
use quorum::Majority;
use serde_json::JsonObject;

fn banking(seed: u64, secs: u64) -> TxnConfig {
    let mut c = TxnConfig::new(
        Arc::new(Majority::new(3)),
        WorkloadKind::Banking(BankingGen::new(4)),
    );
    c.items = 8;
    c.domains = 2;
    c.clients_per_domain = 2;
    c.duration = SimTime::from_secs(secs);
    c.seed = seed;
    c
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let secs: u64 = flag_value("--secs")
        .map(|s| s.parse().expect("--secs takes an integer"))
        .unwrap_or(if smoke { 2 } else { 120 });
    let seed: u64 = flag_value("--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(17);
    let threads: usize = flag_value("--threads")
        .map(|s| s.parse().expect("--threads takes an integer"))
        .unwrap_or_else(default_threads);

    println!(
        "Q13 — causal span trees & critical-path attribution (n = 3 majority, \
         seed {seed}, {threads} threads{})\n",
        if smoke { ", smoke" } else { "" }
    );

    // 1. Invisibility + thread/queue invariance of the recording.
    let inv_cfg = banking(seed, secs.min(2));
    let plain_digest = run_txn(&inv_cfg, 1).digest();
    let mut causal_digests = Vec::new();
    for queue in [QueueKind::Calendar, QueueKind::Heap] {
        for t in [1usize, 2, 4] {
            let mut c = banking(seed, secs.min(2));
            c.queue = queue;
            let (report, causal) = run_txn_causal(&c, t);
            assert_eq!(
                report.digest(),
                plain_digest,
                "causal recording perturbed the run ({queue:?} x {t} threads)"
            );
            causal_digests.push(causal.digest());
        }
    }
    assert!(
        causal_digests.windows(2).all(|w| w[0] == w[1]),
        "causal digest diverged across threads/queues: {causal_digests:x?}"
    );
    println!(
        "invariance: report digest {plain_digest:#018x} unperturbed; causal digest \
         {:#018x} identical on 1/2/4 threads x calendar/heap",
        causal_digests[0]
    );

    // 2. Scale: >= 1e5 nested transactions, every critical path exact.
    let mut scale_cfg = banking(seed, secs);
    scale_cfg.items = 64;
    scale_cfg.domains = 16;
    scale_cfg.clients_per_domain = 4;
    let start = Instant::now();
    let (scale_report, scale_causal) = run_txn_causal(&scale_cfg, threads);
    let scale_wall = start.elapsed().as_secs_f64();
    let sp = scale_causal.profile();
    assert_eq!(
        sp.txns(),
        scale_report.stats.txns_committed + scale_report.stats.txns_aborted,
        "one critical path per finished transaction"
    );
    assert_eq!(
        sp.reconciled(),
        sp.txns(),
        "critical paths drifted from end-to-end latency at scale"
    );
    if !smoke {
        assert!(
            sp.txns() >= 100_000,
            "scale section recorded only {} txns (raise --secs)",
            sp.txns()
        );
    }
    println!(
        "scale: {} txns recorded, {} committed, reconciled {}/{} (exact), \
         e2e p50 {} us / p99 {} us, {:.2} s wall",
        sp.txns(),
        sp.committed(),
        sp.reconciled(),
        sp.txns(),
        sp.e2e().p50(),
        sp.e2e().quantile(0.99),
        scale_wall,
    );

    // 3. Attribution: where critical-path time goes, contended vs faulted.
    println!();
    let widths = [12, 10, 12, 12, 12, 12];
    row(
        &[
            "scenario".into(),
            "edge".into(),
            "paths".into(),
            "total ms".into(),
            "mean us".into(),
            "share".into(),
        ],
        &widths,
    );
    rule(&widths);
    let sweep_secs = if smoke { 1 } else { secs.min(10) };
    let mut contended = banking(seed, sweep_secs);
    contended.workload = WorkloadKind::Inventory(InventoryGen::new(3));
    contended.clients_per_domain = 8;
    let mut faulted = banking(seed, sweep_secs.max(2));
    faulted.quorum = Arc::new(Majority::new(5));
    // Three of five sites down from 400 ms to 900 ms: no majority can
    // assemble, so live ops burn attempts and back off — the window is
    // what puts retry_backoff and quorum_unavailable on critical paths.
    faulted.retry = qc_sim::RetryPolicy::retries(3, SimTime::from_millis(5));
    faulted.faults = FaultPlan::new()
        .crash_at(SimTime::from_millis(200), 1)
        .crash_at(SimTime::from_millis(400), 4)
        .crash_at(SimTime::from_millis(450), 2)
        .recover_at(SimTime::from_millis(900), 1)
        .recover_at(SimTime::from_millis(1_000), 2)
        .recover_at(SimTime::from_millis(1_100), 4)
        .drop_window(SimTime::from_millis(600), SimTime::from_millis(200), 150)
        .abort_at(SimTime::from_millis(300), 0)
        .abort_at(SimTime::from_millis(700), 3);
    let mut scenario_rows = Vec::new();
    for (name, cfg) in [("contended", &contended), ("faulted", &faulted)] {
        let (report, causal) = run_txn_causal(cfg, threads);
        let p = causal.profile();
        assert_eq!(p.reconciled(), p.txns(), "{name}: paths must reconcile");
        let path_total: u64 = EDGE_KINDS.iter().map(|&k| p.edge(k).sum()).sum();
        for &kind in &EDGE_KINDS {
            let h = p.edge(kind);
            if h.count() == 0 {
                continue;
            }
            row(
                &[
                    name.into(),
                    kind.name().into(),
                    format!("{}", h.count()),
                    format!("{:.1}", h.sum() as f64 / 1e3),
                    format!("{:.0}", h.mean()),
                    format!("{:.3}", h.sum() as f64 / path_total.max(1) as f64),
                ],
                &widths,
            );
        }
        let mut aborts = JsonObject::new();
        for &cause in &ABORT_CAUSES {
            if p.aborts(cause) > 0 {
                aborts = aborts.field(cause.name(), &p.aborts(cause));
            }
        }
        let mut edges = JsonObject::new();
        for &kind in &EDGE_KINDS {
            if p.edge(kind).count() > 0 {
                edges = edges.field_raw(kind.name(), &p.edge(kind).summary_json());
            }
        }
        scenario_rows.push(
            JsonObject::new()
                .field("scenario", name)
                .field("txns", &p.txns())
                .field("committed", &p.committed())
                .field("reconciled", &p.reconciled())
                .field_raw("e2e", &p.e2e().summary_json())
                .field_raw("edges", &edges.build())
                .field_raw("abort_causes", &aborts.build())
                .build(),
        );
        let _ = report;
    }
    rule(&widths);

    // 4. Top-K slowest transactions, rendered and exported for qc-trace.
    let (_, top_causal) = run_txn_causal(&faulted, threads);
    let shown = if smoke { 2 } else { 4 };
    println!("\nslowest transactions (critical paths):");
    for t in top_causal.slowest().iter().take(shown) {
        print!("{}", t.render_critical_path());
    }
    std::fs::create_dir_all("results").expect("create results/");
    let jsonl_path = "results/critpath_slowest.jsonl";
    let mut jsonl = String::new();
    for t in top_causal.slowest() {
        jsonl.push_str(&t.to_json_line());
        jsonl.push('\n');
    }
    std::fs::write(jsonl_path, &jsonl).expect("write critpath_slowest.jsonl");

    let json = JsonObject::new()
        .field("cores", &default_threads())
        .field("threads", &threads)
        .field("seed", &seed)
        .field("sim_duration_secs", &secs)
        .field("smoke", &smoke)
        .field("report_digest", &format!("{plain_digest:#018x}"))
        .field("causal_digest", &format!("{:#018x}", causal_digests[0]))
        .field(
            "invariance",
            "1/2/4 threads x calendar/heap identical; observed == unobserved",
        )
        .field("scale_txns", &sp.txns())
        .field("scale_committed", &sp.committed())
        .field("scale_reconciled", &sp.reconciled())
        .field_raw("scale_e2e", &sp.e2e().summary_json())
        .field("scale_wall_secs", &scale_wall)
        .field_raw("scenarios", &serde_json::array_raw(scenario_rows))
        .field("slowest_jsonl", jsonl_path)
        .field("slowest_kept", &top_causal.slowest().len())
        .build();
    std::fs::write("results/BENCH_critpath.json", json).expect("write BENCH_critpath.json");
    println!("\nwrote results/BENCH_critpath.json and {jsonl_path}");

    println!(
        "\nExpected shape: committed-path time is dominated by read_gather and \
         write_install (the two Gifford phases); contention moves time into \
         lock_wait, faults move it into retry_backoff, and reconfiguration \
         surfaces as stale_retry — with every critical path tiling its \
         transaction's latency exactly, at any thread count, on either event \
         queue."
    );
}
