//! Q4 — why reconfiguration matters: surviving *sequential* permanent site
//! failures.
//!
//! Sites die one at a time and stay dead. A static configuration keeps
//! requiring quorums of the original universe; a reconfiguring system
//! installs a majority over the survivors after each failure — but only
//! when the §4 protocol permits it: reconfiguration itself needs a
//! read-quorum *and* a write-quorum of the old configuration (the
//! Goldman–Lynch rule — the new configuration is written to an old
//! write-quorum).
//!
//! The table reports, after each failure, whether reads and writes are
//! still available under each policy, plus simulated operation latency
//! over the survivors.

use std::collections::BTreeSet;
use std::sync::Arc;

use qc_bench::{row, rule};
use qc_sim::{run, ContactPolicy, SimConfig, SimTime};
use quorum::{Majority, QuorumSpec};

/// Availability of reads/writes for spec `q` when exactly `live` sites are
/// up.
fn avail(q: &dyn QuorumSpec, live: &BTreeSet<usize>) -> (bool, bool) {
    (q.is_read_quorum(live), q.is_write_quorum(live))
}

fn latency_with(q: Arc<dyn QuorumSpec + Send + Sync>, dead: usize) -> Option<f64> {
    let mut c = SimConfig::new(q);
    c.read_fraction = 0.5;
    c.contact = ContactPolicy::AllLive;
    c.duration = SimTime::from_secs(10);
    c.seed = 31;
    // Model permanent deaths: sites 0..dead never respond. The simulator's
    // failure process is stochastic, so emulate permanence with an
    // effectively infinite repair time.
    if dead > 0 {
        c.mttf = Some(SimTime(1)); // fail immediately…
        c.mttr = SimTime::from_secs(1_000_000); // …and never recover
    }
    let m = run(c);
    // With the crude permanence model every site eventually dies; instead
    // compute analytically-guided latency only while writes are available.
    if m.writes.successes == 0 {
        None
    } else {
        Some(m.writes.percentile_ms(50.0))
    }
}

fn main() {
    let n = 5usize;
    println!("Q4 — sequential permanent failures, n = {n}: static vs reconfiguring\n");
    let widths = [10, 12, 12, 14, 14, 16];
    row(
        &[
            "sites up".into(),
            "static R".into(),
            "static W".into(),
            "dynamic R".into(),
            "dynamic W".into(),
            "reconfig legal?".into(),
        ],
        &widths,
    );
    rule(&widths);

    let static_q = Majority::new(n);
    // The dynamic system's current configuration: starts as majority(5)
    // over sites 0..5; after each failure, if the *old* configuration still
    // has a read- and a write-quorum among the survivors, reinstall as a
    // majority over the survivors.
    let mut current: (BTreeSet<usize>, Majority) = ((0..n).collect(), Majority::new(n));

    for dead in 0..n {
        let live: BTreeSet<usize> = (dead..n).collect();

        let (sr, sw) = avail(&static_q, &live);

        // Attempt reconfiguration with the *old* configuration's quorums.
        let (old_members, old_q) = &current;
        let old_live: BTreeSet<usize> = old_members
            .iter()
            .filter(|s| live.contains(s))
            .map(|&s| {
                // Map to the old configuration's index space: old_q was
                // built over `old_members` enumerated in order.
                old_members.iter().position(|&m| m == s).unwrap()
            })
            .collect();
        let can_reconfigure =
            old_q.is_read_quorum(&old_live) && old_q.is_write_quorum(&old_live);
        if can_reconfigure && live.len() < old_members.len() && !live.is_empty() {
            current = (live.clone(), Majority::new(live.len()));
        }
        let (members, q) = &current;
        let mapped: BTreeSet<usize> = members
            .iter()
            .filter(|s| live.contains(s))
            .map(|&s| members.iter().position(|&m| m == s).unwrap())
            .collect();
        let (dr, dw) = (q.is_read_quorum(&mapped), q.is_write_quorum(&mapped));

        row(
            &[
                format!("{}", live.len()),
                if sr { "yes" } else { "NO" }.into(),
                if sw { "yes" } else { "NO" }.into(),
                if dr { "yes" } else { "NO" }.into(),
                if dw { "yes" } else { "NO" }.into(),
                if dead == 0 {
                    "-".into()
                } else if can_reconfigure {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ],
            &widths,
        );
    }

    // A small latency check on the healthy cluster for context.
    if let Some(ms) = latency_with(Arc::new(Majority::new(n)), 0) {
        println!("\nhealthy-cluster write p50 (majority({n})): {ms:.2} ms");
    }

    println!(
        "\nExpected shape: static majority({n}) dies once fewer than ⌈(n+1)/2⌉ = 3 \
         sites remain; the reconfiguring system re-majorities after every failure \
         and keeps both reads and writes available down to a single survivor."
    );
}
