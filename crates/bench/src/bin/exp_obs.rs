//! Q8 — observability: where does a quorum operation spend its time?
//!
//! Runs the instrumented simulator under LAN and WAN latency models and
//! prints a per-phase breakdown (read_gather / vn_resolve / write_install
//! / commit_round / retry_backoff) with p50/p99/p999/max from the
//! log-bucketed HDR histograms. Three properties are *asserted*, not just
//! reported:
//!
//! 1. **Reconciliation** — the per-phase span sums must add up to the
//!    end-to-end committed latency within 0.1% (they are exact by
//!    construction; the tolerance only guards the arithmetic here).
//! 2. **Determinism** — the merged sharded `ObsReport` (histograms,
//!    event-log digest, snapshots) is bit-identical on 1, 2 and 4 OS
//!    threads.
//! 3. **Snapshots** — the periodic exporter fired on every simulated
//!    boundary of the run.
//!
//! The null-sink overhead (observed run vs plain run, wall-clock) is
//! measured and recorded. Everything lands in `results/BENCH_obs.json`.
//!
//! Flags: `--secs N` (default 10), `--seed N` (default 23), `--smoke`
//! (1-second run for CI; same assertions), `--obs-dir DIR` /
//! `--snapshot-every SECS` (dump recordings).
//!
//! Reproduce with:
//!   cargo run --release -p qc-bench --bin exp_obs > results/exp_obs.txt

use std::sync::Arc;
use std::time::Instant;

use qc_bench::{flag_value, obs_flags, row, rule};
use qc_sim::{
    run, run_batch, run_observed, run_sharded, ContactPolicy, FaultPlan, LatencyModel,
    Metrics, MultiConfig, ObsOptions, ObsReport, Phase, RetryPolicy, SimConfig, SimTime,
    PHASES,
};
use quorum::{Majority, QuorumSpec, Rowa};
use serde_json::JsonObject;

fn base(latency: LatencyModel, secs: u64, seed: u64) -> SimConfig {
    let mut c = SimConfig::new(Arc::new(Majority::new(5)));
    c.clients = 8;
    c.read_fraction = 0.7;
    c.contact = ContactPolicy::MinimalQuorum;
    c.latency = latency;
    c.think_time = SimTime::from_millis(1);
    c.duration = SimTime::from_secs(secs);
    c.seed = seed;
    // A mid-run outage so the retry_backoff phase has real mass.
    c.faults = FaultPlan::new()
        .crash_at(SimTime(secs * 250_000), 0)
        .crash_at(SimTime(secs * 250_000), 1)
        .crash_at(SimTime(secs * 250_000), 2)
        .recover_at(SimTime(secs * 400_000), 0)
        .recover_at(SimTime(secs * 400_000), 1)
        .recover_at(SimTime(secs * 400_000), 2);
    c.retry = RetryPolicy::retries(8, SimTime::from_millis(20));
    c
}

/// Print the phase table for one model and return its JSON rows, after
/// asserting the phase sums reconcile with end-to-end latency.
fn phase_section(label: &str, m: &Metrics, obs: &ObsReport) -> Vec<String> {
    let committed = m.reads.successes + m.writes.successes;
    let e2e_sum = m.reads.latency_hist().sum() + m.writes.latency_hist().sum();
    let span_sum = obs.spans.total_us();
    assert!(committed > 0, "{label}: nothing committed");
    let err = (span_sum as f64 - e2e_sum as f64).abs() / (e2e_sum as f64).max(1.0);
    assert!(
        err <= 0.001,
        "{label}: phase spans ({span_sum} µs) fail to reconcile with \
         end-to-end latency ({e2e_sum} µs): {:.4}% off",
        err * 100.0
    );

    println!(
        "{label}: {committed} committed ops, end-to-end Σ {e2e_sum} µs, \
         phase Σ {span_sum} µs (exact match: {})",
        span_sum == e2e_sum
    );
    let widths = [14, 10, 10, 10, 10, 10, 8];
    row(
        &[
            "phase".into(),
            "spans".into(),
            "p50 µs".into(),
            "p99 µs".into(),
            "p999 µs".into(),
            "max µs".into(),
            "share".into(),
        ],
        &widths,
    );
    rule(&widths);
    let mut rows = Vec::new();
    for phase in PHASES {
        let h = obs.spans.hist(phase);
        let share = h.sum() as f64 / (span_sum as f64).max(1.0);
        row(
            &[
                phase.name().into(),
                format!("{}", h.count()),
                format!("{}", h.p50()),
                format!("{}", h.p99()),
                format!("{}", h.p999()),
                format!("{}", h.max()),
                format!("{:.1}%", share * 100.0),
            ],
            &widths,
        );
        rows.push(
            JsonObject::new()
                .field("phase", phase.name())
                .field("count", &h.count())
                .field("sum_us", &h.sum())
                .field("p50_us", &h.p50())
                .field("p99_us", &h.p99())
                .field("p999_us", &h.p999())
                .field("max_us", &h.max())
                .field("share", &share)
                .build(),
        );
    }
    rule(&widths);
    println!();
    rows
}

/// The 24-cell 1-thread batch whose wall time `exp_throughput` records as
/// `thread_scaling[0].wall_secs` in `results/BENCH_hotpath.json` — rebuilt
/// here verbatim so the *null-sink* path (observability compiled in but
/// disabled) can be timed against that committed pre-instrumentation
/// baseline.
fn hotpath_batch() -> Vec<SimConfig> {
    let systems: Vec<Arc<dyn QuorumSpec + Send + Sync>> =
        vec![Arc::new(Rowa::new(5)), Arc::new(Majority::new(5))];
    let mut batch = Vec::new();
    for k in 0..4u64 {
        for q in &systems {
            for rf in [0.5, 0.9, 0.99] {
                let mut c = SimConfig::new(Arc::clone(q));
                c.clients = 8;
                c.read_fraction = rf;
                c.contact = ContactPolicy::MinimalQuorum;
                c.think_time = SimTime::from_millis(0);
                // Must track exp_throughput's SIM_SECS: the batch is only a
                // valid comparison against thread_scaling[0].wall_secs if
                // the cells simulate the same duration.
                c.duration = SimTime::from_secs(60);
                c.seed = 23 + 1_000 * (k + 1);
                batch.push(c);
            }
        }
    }
    batch
}

/// `thread_scaling[0].wall_secs` from the committed
/// `results/BENCH_hotpath.json`, extracted with a targeted scan (the
/// vendored serde_json is a writer, not a parser).
fn prepr_baseline_wall() -> Option<f64> {
    let text = std::fs::read_to_string("results/BENCH_hotpath.json").ok()?;
    let scaling = text.split("\"thread_scaling\"").nth(1)?;
    let wall = scaling.split("\"wall_secs\":").nth(1)?;
    let num: String = wall
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let secs: u64 = flag_value("--secs")
        .map(|s| s.parse().expect("--secs takes an integer"))
        .unwrap_or(if smoke { 1 } else { 10 });
    let seed: u64 = flag_value("--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(23);
    let dump = obs_flags();

    println!(
        "Q8 — per-phase latency breakdown (n = 5 majority, minimal-quorum \
         contact, mid-run outage + retries, {secs} s simulated, seed {seed})\n"
    );

    // Per-phase breakdown under LAN and WAN, with full instrumentation.
    let mut sections = Vec::new();
    for (label, latency) in [("LAN", LatencyModel::lan()), ("WAN", LatencyModel::wan())] {
        let mut c = base(latency, secs, seed);
        c.obs = ObsOptions::full();
        // One snapshot per simulated 500 ms so even the smoke run fires.
        c.obs.snapshot_every_us = Some(500_000);
        let (m, obs) = run_observed(c);
        let expected_snapshots = (secs * 1_000_000 / 500_000) as usize;
        assert_eq!(
            obs.snapshots.len(),
            expected_snapshots,
            "{label}: snapshot exporter must fire on every boundary"
        );
        let rows = phase_section(label, &m, &obs);
        dump.dump(&format!("obs_{}", label.to_lowercase()), &obs);
        sections.push((label, m, obs, rows));
    }

    // Null-sink overhead: the same LAN workload with observability fully
    // disabled must cost (wall-clock) about the same as before this layer
    // existed — the no-op sinks compile away. Take the best of a few
    // rounds to tame scheduler noise; in smoke mode only report it.
    let rounds = if smoke { 2 } else { 5 };
    let mut plain_best = f64::INFINITY;
    let mut observed_best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        let m = run(base(LatencyModel::lan(), secs, seed));
        plain_best = plain_best.min(start.elapsed().as_secs_f64());
        let mut c = base(LatencyModel::lan(), secs, seed);
        c.obs = ObsOptions::full();
        let start = Instant::now();
        let (mo, _) = run_observed(c);
        observed_best = observed_best.min(start.elapsed().as_secs_f64());
        assert_eq!(m.digest(), mo.digest(), "observation must be invisible");
    }
    let overhead = observed_best / plain_best.max(1e-9) - 1.0;
    println!(
        "instrumentation wall overhead (full recording vs disabled): \
         {:.1}% ({observed_best:.4}s vs {plain_best:.4}s, best of {rounds})",
        overhead * 100.0
    );

    // Null-sink overhead vs the committed pre-instrumentation baseline:
    // re-time the exact 24-cell batch whose 1-thread wall the pre-PR
    // `exp_throughput` recorded in BENCH_hotpath.json, with observability
    // disabled (the default). Skipped in smoke mode (it simulates 8
    // minutes of traffic) and when no baseline file is present.
    let mut null_vs_baseline = None;
    if !smoke {
        if let Some(baseline) = prepr_baseline_wall() {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let batch = hotpath_batch();
                let cells = batch.len();
                let start = Instant::now();
                let out = run_batch(batch, 1);
                best = best.min(start.elapsed().as_secs_f64());
                assert_eq!(out.len(), cells);
            }
            let vs = best / baseline.max(1e-9) - 1.0;
            println!(
                "null-sink batch wall: {best:.4}s vs committed pre-PR baseline \
                 {baseline:.4}s ({:+.1}%)",
                vs * 100.0
            );
            null_vs_baseline = Some((best, baseline, vs));
        }
    }

    // Cross-thread-count identity of the merged sharded recordings: the
    // histogram merge (and event/snapshot concatenation) is performed in
    // shard-index order, so 1-, 2- and 4-thread runs agree bit for bit.
    let mut mc = MultiConfig::new(Arc::new(Majority::new(5)));
    mc.contact = ContactPolicy::MinimalQuorum;
    mc.items = 8;
    mc.shards = 4;
    mc.clients_per_shard = 2;
    mc.duration = SimTime::from_millis(if smoke { 500 } else { 2_000 });
    mc.seed = seed;
    mc.obs = ObsOptions::full();
    mc.obs.snapshot_every_us = Some(100_000);
    let reports: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&t| run_sharded(&mc, t))
        .collect();
    for (r, t) in reports.iter().zip([1usize, 2, 4]).skip(1) {
        assert_eq!(
            r.obs.spans.digest(),
            reports[0].obs.spans.digest(),
            "{t}-thread histogram merge diverged from 1-thread"
        );
        assert_eq!(
            r.obs.digest(),
            reports[0].obs.digest(),
            "{t}-thread obs recordings diverged from 1-thread"
        );
    }
    assert!(
        !reports[0].obs.snapshots.is_empty(),
        "sharded snapshot exporter must fire"
    );
    println!(
        "sharded determinism: obs digest {:#018x} (spans {:#018x}) identical \
         on 1/2/4 threads; {} snapshots, {} events",
        reports[0].obs.digest(),
        reports[0].obs.spans.digest(),
        reports[0].obs.snapshots.len(),
        reports[0].obs.events.len(),
    );
    dump.dump("obs_sharded", &reports[0].obs);

    let mut json = JsonObject::new()
        .field("sim_duration_secs", &secs)
        .field("seed", &seed)
        .field("smoke", &smoke)
        .field("null_sink_overhead_pct", &(overhead * 100.0))
        .field("plain_wall_secs", &plain_best)
        .field("observed_wall_secs", &observed_best)
        .field(
            "sharded_obs_digest",
            &format!("{:#018x}", reports[0].obs.digest()),
        )
        .field("sharded_obs_thread_counts", "1/2/4 identical");
    if let Some((wall, baseline, vs)) = null_vs_baseline {
        json = json.field_raw(
            "null_sink_vs_prepr_baseline",
            &JsonObject::new()
                .field("batch_wall_secs", &wall)
                .field("prepr_wall_secs", &baseline)
                .field("overhead_pct", &(vs * 100.0))
                .build(),
        );
    }
    for (label, m, obs, rows) in &sections {
        let e2e = m.reads.latency_hist().sum() + m.writes.latency_hist().sum();
        json = json.field_raw(
            &format!("phases_{}", label.to_lowercase()),
            &JsonObject::new()
                .field("committed", &(m.reads.successes + m.writes.successes))
                .field("e2e_sum_us", &e2e)
                .field("span_sum_us", &obs.spans.total_us())
                .field("exact_reconciliation", &(obs.spans.total_us() == e2e))
                .field(
                    "retry_share",
                    &(obs.spans.hist(Phase::RetryBackoff).sum() as f64
                        / (obs.spans.total_us() as f64).max(1.0)),
                )
                .field_raw("phases", &serde_json::array_raw(rows.clone()))
                .build(),
        );
    }
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_obs.json", json.build()).expect("write BENCH_obs.json");
    println!("\nwrote results/BENCH_obs.json");

    println!(
        "\nExpected shape: LAN ops are gather-dominated with a tight tail; WAN \
         ops inherit the log-normal tail in both quorum phases; the outage \
         window moves an order of magnitude of latency into retry_backoff; and \
         the phase sums reconcile with end-to-end latency exactly."
    );
}
