//! `qc-trace` — query tool over `qc-events-v1` causal span-tree JSONL.
//!
//! Reads the flight-recorder output (`CausalReport::to_jsonl`, e.g.
//! `results/critpath_slowest.jsonl` from `exp_critpath`, or the golden
//! `txn_banking_causal_seed17.jsonl`) and answers the questions the
//! recorder exists for, offline:
//!
//! ```text
//! qc-trace FILE.jsonl top [K]    # K slowest txns, rendered critical paths (default 5)
//! qc-trace FILE.jsonl aborts     # abort-cause breakdown + abort chains
//! qc-trace FILE.jsonl profile    # per-edge-kind critical-path attribution
//! qc-trace FILE.jsonl check      # verify every trace + exact reconciliation (CI)
//! ```
//!
//! Every mode re-verifies the causal invariants on the parsed traces
//! (`TxnTrace::verify`); `check` additionally demands that each critical
//! path reconciles exactly with the end-to-end latency and exits
//! non-zero otherwise, which is how CI exercises the golden JSONL.

use std::process::ExitCode;

use qc_bench::{row, rule};
use qc_sim::{AbortCause, CritProfile, TxnTrace, ABORT_CAUSES, EDGE_KINDS};

fn usage() -> ExitCode {
    eprintln!(
        "usage: qc-trace FILE.jsonl [top [K] | aborts | profile | check]\n\
         \n\
         top [K]   render the K slowest transactions' critical paths (default 5)\n\
         aborts    abort-cause breakdown and per-transaction abort chains\n\
         profile   per-edge-kind critical-path attribution table\n\
         check     verify causal consistency + exact latency reconciliation"
    );
    ExitCode::from(2)
}

/// Parse every `span_tree` event in the file; header and non-span lines
/// are skipped, malformed span lines are fatal (a recorder that emits
/// garbage should not be silently tolerated by its own query tool).
fn load(path: &str) -> Result<Vec<TxnTrace>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut traces = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || !line.contains("\"event\":\"span_tree\"") {
            continue;
        }
        let t = TxnTrace::parse_json_line(line)
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        t.verify()
            .map_err(|e| format!("{path}:{}: inconsistent trace: {e}", lineno + 1))?;
        traces.push(t);
    }
    if traces.is_empty() {
        return Err(format!("{path}: no span_tree events"));
    }
    Ok(traces)
}

/// The `slower` total order used by the recorder's top-K retention:
/// latency descending, transaction id ascending on ties.
fn by_slowness(traces: &mut [TxnTrace]) {
    traces.sort_by(|a, b| {
        b.latency_us()
            .cmp(&a.latency_us())
            .then_with(|| (a.id.client, a.id.epoch).cmp(&(b.id.client, b.id.epoch)))
    });
}

fn cmd_top(mut traces: Vec<TxnTrace>, k: usize) {
    by_slowness(&mut traces);
    println!(
        "{} traces; {} slowest critical paths:\n",
        traces.len(),
        k.min(traces.len())
    );
    for t in traces.iter().take(k) {
        print!("{}", t.render_critical_path());
    }
}

fn cmd_aborts(traces: &[TxnTrace]) {
    let mut profile = CritProfile::new();
    for t in traces {
        profile.observe(t);
    }
    let aborted = profile.txns() - profile.committed();
    println!(
        "{} traces, {} committed, {} aborted\n",
        profile.txns(),
        profile.committed(),
        aborted
    );
    let widths = [20, 10, 10];
    row(&["cause".into(), "count".into(), "share".into()], &widths);
    rule(&widths);
    for &cause in &ABORT_CAUSES {
        let n = profile.aborts(cause);
        if n > 0 {
            #[allow(clippy::cast_precision_loss)]
            row(
                &[
                    cause.name().into(),
                    format!("{n}"),
                    format!("{:.3}", n as f64 / aborted.max(1) as f64),
                ],
                &widths,
            );
        }
    }
    rule(&widths);
    for (shown, t) in traces.iter().filter(|t| !t.committed).enumerate() {
        if shown == 0 {
            println!("\nabort chains (root -> dooming span):");
        }
        if shown == 8 {
            println!("  ... ({} more)", traces.iter().filter(|t| !t.committed).count() - 8);
            break;
        }
        let chain: Vec<String> = t
            .abort_chain()
            .iter()
            .map(|&s| format!("span#{s}"))
            .collect();
        println!(
            "  txn {} cause={} latency={}us: {}",
            t.id.label(),
            t.cause.map_or("?", AbortCause::name),
            t.latency_us(),
            chain.join(" -> ")
        );
    }
}

fn cmd_profile(traces: &[TxnTrace]) {
    let mut profile = CritProfile::new();
    for t in traces {
        profile.observe(t);
    }
    println!(
        "{} traces, {} committed, reconciled {}/{}; e2e p50 {} us / p99 {} us\n",
        profile.txns(),
        profile.committed(),
        profile.reconciled(),
        profile.txns(),
        profile.e2e().p50(),
        profile.e2e().quantile(0.99),
    );
    let widths = [14, 10, 12, 12, 10];
    row(
        &[
            "edge".into(),
            "paths".into(),
            "total ms".into(),
            "mean us".into(),
            "share".into(),
        ],
        &widths,
    );
    rule(&widths);
    let path_total: u64 = EDGE_KINDS.iter().map(|&k| profile.edge(k).sum()).sum();
    for &kind in &EDGE_KINDS {
        let h = profile.edge(kind);
        if h.count() == 0 {
            continue;
        }
        #[allow(clippy::cast_precision_loss)]
        row(
            &[
                kind.name().into(),
                format!("{}", h.count()),
                format!("{:.1}", h.sum() as f64 / 1e3),
                format!("{:.0}", h.mean()),
                format!("{:.3}", h.sum() as f64 / path_total.max(1) as f64),
            ],
            &widths,
        );
    }
    rule(&widths);
}

fn cmd_check(traces: &[TxnTrace]) -> ExitCode {
    let mut profile = CritProfile::new();
    for t in traces {
        profile.observe(t);
        let cp = t.critical_path().total_us;
        let e2e = t.latency_us();
        if cp != e2e {
            eprintln!(
                "FAIL: txn {} critical path {cp} us != latency {e2e} us",
                t.id.label()
            );
            return ExitCode::FAILURE;
        }
        // Round-trip identity: the query tool and the recorder must
        // agree on the wire format, bit for bit.
        let line = t.to_json_line();
        match TxnTrace::parse_json_line(&line) {
            Ok(back) if back == *t => {}
            Ok(_) => {
                eprintln!("FAIL: txn {} does not round-trip identically", t.id.label());
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("FAIL: txn {} re-parse: {e}", t.id.label());
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "ok: {} traces verified, {} reconciled exactly, {} committed / {} aborted",
        profile.txns(),
        profile.reconciled(),
        profile.committed(),
        profile.txns() - profile.committed()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        return usage();
    };
    let traces = match load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("qc-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    match args.get(1).map(String::as_str).unwrap_or("top") {
        "top" => {
            let k = args
                .get(2)
                .map(|s| s.parse().expect("K takes an integer"))
                .unwrap_or(5);
            cmd_top(traces, k);
            ExitCode::SUCCESS
        }
        "aborts" => {
            cmd_aborts(&traces);
            ExitCode::SUCCESS
        }
        "profile" => {
            cmd_profile(&traces);
            ExitCode::SUCCESS
        }
        "check" => cmd_check(&traces),
        _ => usage(),
    }
}
