//! F1/F2 — the paper's Figure 1 and Figure 2: transaction trees for the
//! replicated system **B** and the corresponding non-replicated system
//! **A**.
//!
//! The trees are extracted from an actual execution (the paper's figures
//! are schematic; ours are the real names that took steps), labelled the
//! same way: `U` = user transaction, `TM` = transaction manager, `a,b` =
//! non-replica accesses, `x1` = access to replica 1 of item `x`.

use std::collections::BTreeMap;

use nested_txn::{ObjectId, Tid, TxnOp};
use qc_bench::figure1_spec;
use qc_replication::{project_to_a, run_system_b, Layout, RunOptions, TmRole};

fn label(
    tid: &Tid,
    layout: &Layout,
    plain_accesses: &BTreeMap<Tid, ObjectId>,
    system_a: bool,
) -> String {
    if tid.is_root() {
        return "T0 (root: the external environment)".into();
    }
    if let Some(role) = layout.tm_roles.get(tid) {
        let item = &layout.items[&role.item()].item.name;
        let kind = match role {
            TmRole::Read(_) => "read",
            TmRole::Write(_) => "write",
        };
        return if system_a {
            format!("{tid}  [{kind} access to O({item})]")
        } else {
            format!("{tid}  [{kind}-TM for {item}]")
        };
    }
    if let Some(parent) = tid.parent() {
        if let Some(role) = layout.tm_roles.get(&parent) {
            let item_layout = &layout.items[&role.item()];
            return format!("{tid}  [access to a replica of {}]", item_layout.item.name);
        }
    }
    if let Some(obj) = plain_accesses.get(tid) {
        let name = layout
            .plain_objects
            .iter()
            .find(|(o, _)| o == obj)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| obj.to_string());
        return format!("{tid}  [non-replica access to {name}]");
    }
    format!("{tid}  [user transaction]")
}

fn print_tree(
    tids: &[Tid],
    layout: &Layout,
    plain_accesses: &BTreeMap<Tid, ObjectId>,
    system_a: bool,
) {
    // Parent → children, in name order.
    let mut children: BTreeMap<Tid, Vec<Tid>> = BTreeMap::new();
    for t in tids {
        if let Some(p) = t.parent() {
            children.entry(p).or_default().push(t.clone());
        }
    }
    #[allow(clippy::too_many_arguments)]
    fn rec(
        t: &Tid,
        children: &BTreeMap<Tid, Vec<Tid>>,
        layout: &Layout,
        plain_accesses: &BTreeMap<Tid, ObjectId>,
        system_a: bool,
        prefix: &str,
        last: bool,
    ) {
        let connector = if t.is_root() {
            ""
        } else if last {
            "└── "
        } else {
            "├── "
        };
        println!(
            "{prefix}{connector}{}",
            label(t, layout, plain_accesses, system_a)
        );
        let next_prefix = if t.is_root() {
            String::new()
        } else if last {
            format!("{prefix}    ")
        } else {
            format!("{prefix}│   ")
        };
        if let Some(kids) = children.get(t) {
            for (i, k) in kids.iter().enumerate() {
                rec(
                    k,
                    children,
                    layout,
                    plain_accesses,
                    system_a,
                    &next_prefix,
                    i + 1 == kids.len(),
                );
            }
        }
    }
    rec(
        &Tid::root(),
        &children,
        layout,
        plain_accesses,
        system_a,
        "",
        true,
    );
}

fn tids_of(schedule: &ioa::Schedule<TxnOp>) -> Vec<Tid> {
    let mut tids: Vec<Tid> = schedule.iter().map(|op| op.tid().clone()).collect();
    tids.push(Tid::root());
    tids.sort();
    tids.dedup();
    tids
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = figure1_spec();
    let (beta, layout) = run_system_b(
        &spec,
        RunOptions {
            seed: 4,
            abort_weight: 0,
            ..RunOptions::default()
        },
    )?;

    // Plain (non-replica) accesses, identified by their carried specs.
    let plain_ids: Vec<ObjectId> = layout.plain_objects.iter().map(|(o, _)| *o).collect();
    let mut plain_accesses = BTreeMap::new();
    for op in beta.iter() {
        if let Some(spec) = op.access() {
            if plain_ids.contains(&spec.object) {
                plain_accesses.insert(op.tid().clone(), spec.object);
            }
        }
    }

    println!("=== Figure 1: transaction tree of the replicated system B ===\n");
    print_tree(&tids_of(&beta), &layout, &plain_accesses, false);

    let alpha = project_to_a(&layout, &beta);
    println!("\n=== Figure 2: corresponding tree of the non-replicated system A ===\n");
    print_tree(&tids_of(&alpha), &layout, &plain_accesses, true);

    println!(
        "\n(B: logical accesses are TMs whose children access individual replicas; \
         A: the same names are plain accesses to one object per item.)"
    );
    Ok(())
}
