//! E3 — Theorem 11: concurrent executions under Moss 2PL at the copy level
//! are serializable at the logical-item level.
//!
//! For each contention regime: run the concurrent system **C**, build the
//! return-order serial witness σ, replay σ on **B** (hypothesis), project
//! and replay on **A** (conclusion). Reports interleaving statistics;
//! `refuted` must stay 0.

use qc_bench::{contention_spec, row, rule};
use qc_cc::{check_theorem11, CcRunOptions};

fn main() {
    println!("E3 — Theorem 11: 2PL at the copies ⇒ serializability at the items\n");
    let widths = [24, 6, 10, 10, 9, 9, 10, 9];
    row(
        &[
            "regime".into(),
            "runs".into(),
            "Σ|γ|".into(),
            "Σ|σ|".into(),
            "commits".into(),
            "aborts".into(),
            "conflicts".into(),
            "refuted".into(),
        ],
        &widths,
    );
    rule(&widths);

    let regimes = [
        ("2 users, 3 replicas", 2usize, 3usize, 1u32, 20u64),
        ("3 users, 3 replicas", 3, 3, 1, 12),
        ("4 users, 3 replicas", 4, 3, 1, 8),
        ("3 users, 5 replicas", 3, 5, 1, 10),
        ("3 users, abortive", 3, 3, 10, 10),
    ];

    for (name, users, replicas, abort_weight, runs) in regimes {
        let spec = contention_spec(users, replicas);
        let mut gamma = 0usize;
        let mut sigma = 0usize;
        let mut commits = 0usize;
        let mut aborts = 0usize;
        let mut conflicts = 0u64;
        let mut refuted = 0u64;
        for seed in 0..runs {
            match check_theorem11(
                &spec,
                CcRunOptions {
                    seed,
                    abort_weight,
                    max_steps: 150_000,
                    ..CcRunOptions::default()
                },
            ) {
                Ok(r) => {
                    gamma += r.gamma_len;
                    sigma += r.sigma_len;
                    commits += r.users_committed;
                    aborts += r.aborts;
                    conflicts += r.lock_conflicts;
                }
                Err(e) => {
                    refuted += 1;
                    eprintln!("REFUTED ({name}, seed {seed}): {e}");
                }
            }
        }
        row(
            &[
                name.into(),
                format!("{runs}"),
                format!("{gamma}"),
                format!("{sigma}"),
                format!("{commits}"),
                format!("{aborts}"),
                format!("{conflicts}"),
                format!("{refuted}"),
            ],
            &widths,
        );
    }

    println!(
        "\nExpected: refuted = 0 — every 2PL interleaving serializes against B \
         and, projected, against A (the paper's modularity result)."
    );
}
