//! A1 — ablation: how much does taming the TMs' nondeterminism matter?
//!
//! The paper stresses that its TM automata are deliberately loose ("the
//! read-TM simply invokes any number of accesses to any of the DMs") and
//! notes that a real implementation would direct accesses at a particular
//! quorum; correctness is unaffected because every operation still meets
//! the preconditions. This ablation quantifies the *efficiency* side:
//! schedule length and replica accesses per run for the quorum-directed
//! (`Eager`) strategy versus increasingly chaotic ones — plus a weighted-
//! voting configuration, exercising Gifford's original vote interface.

use nested_txn::{TxnOp, Value};
use qc_bench::{row, rule};
use qc_replication::{
    run_system_b, ConfigChoice, ItemSpec, RunOptions, SystemSpec, TmStrategy, UserSpec, UserStep,
};
use qc_sim::{default_threads, par_map};

fn spec(strategy: TmStrategy, config: ConfigChoice) -> SystemSpec {
    SystemSpec {
        items: vec![ItemSpec {
            name: "x".into(),
            init: Value::Int(0),
            replicas: 5,
            config,
        }],
        plain: vec![],
        users: vec![UserSpec::new(vec![
            UserStep::Write(0, Value::Int(1)),
            UserStep::Read(0),
            UserStep::Read(0),
        ])],
        strategy,
    }
}

fn measure(name: &str, s: &SystemSpec, widths: &[usize]) {
    let runs = 40u64;
    // Independent seeded runs — fan them across cores; per-seed results
    // are deterministic, so the aggregates below are thread-count-stable.
    let per_seed = par_map(
        (0..runs).collect::<Vec<u64>>(),
        default_threads(),
        |_, seed| {
            let (beta, layout) = run_system_b(
                s,
                RunOptions {
                    seed,
                    abort_weight: 0,
                    max_steps: 30_000,
                    ..RunOptions::default()
                },
            )
            .expect("run");
            let accesses = beta
                .iter()
                .filter(|op| {
                    matches!(op, TxnOp::Create { .. }) && layout.is_replica_access_op(op)
                })
                .count();
            // Completed = every TM committed.
            let completed = layout.tm_roles.keys().all(|t| {
                beta.iter()
                    .any(|op| matches!(op, TxnOp::Commit { tid, .. } if tid == t))
            });
            (beta.len(), accesses, completed)
        },
    );
    let steps: usize = per_seed.iter().map(|(s, _, _)| s).sum();
    let accesses: usize = per_seed.iter().map(|(_, a, _)| a).sum();
    let completed = per_seed.iter().filter(|(_, _, c)| *c).count();
    row(
        &[
            name.into(),
            format!("{runs}"),
            format!("{:.0}", steps as f64 / runs as f64),
            format!("{:.1}", accesses as f64 / runs as f64),
            format!("{completed}/{runs}"),
        ],
        widths,
    );
}

fn main() {
    println!("A1 — TM strategy & configuration ablation (1 write + 2 reads, n = 5)\n");
    let widths = [34, 6, 11, 13, 11];
    row(
        &[
            "variant".into(),
            "runs".into(),
            "ops/run".into(),
            "accesses/run".into(),
            "completed".into(),
        ],
        &widths,
    );
    rule(&widths);

    measure(
        "targeted, majority",
        &spec(TmStrategy::Targeted, ConfigChoice::Majority),
        &widths,
    );
    measure(
        "eager, majority",
        &spec(TmStrategy::Eager, ConfigChoice::Majority),
        &widths,
    );
    measure(
        "chaotic(max 6), majority",
        &spec(TmStrategy::Chaotic { max_accesses: 6 }, ConfigChoice::Majority),
        &widths,
    );
    measure(
        "chaotic(max 10), majority",
        &spec(TmStrategy::Chaotic { max_accesses: 10 }, ConfigChoice::Majority),
        &widths,
    );
    measure(
        "eager, rowa",
        &spec(TmStrategy::Eager, ConfigChoice::Rowa),
        &widths,
    );
    measure(
        "eager, weighted 3-1-1-1-1 (r4,w4)",
        &spec(
            TmStrategy::Eager,
            ConfigChoice::Weighted {
                votes: vec![3, 1, 1, 1, 1],
                read: 4,
                write: 4,
            },
        ),
        &widths,
    );

    println!(
        "\nExpected shape: the targeted strategy touches exactly one quorum per \
         phase; eager/chaotic spray accesses at every replica for the same result; \
         ROWA reads use the fewest accesses. Correctness (Lemma monitors, attached \
         in every run) is identical across all variants — the paper's point."
    );
}
