//! Q2 — read/write availability versus per-site failure probability:
//! exact enumeration vs Monte-Carlo vs the discrete-event simulator.
//!
//! The three columns per operation class should agree (the simulator's
//! long-run site uptime is mttf/(mttf+mttr) = 1−p), validating both the
//! analysis and the simulator against each other.
//!
//! The `dyn` columns rerun each simulator cell with reactive online
//! reconfiguration (Goldman–Lynch §4): the membership tracks the live
//! set, so write availability decouples from the static formulas — the
//! gap between `write sim` and `write dyn` is what reconfiguration buys
//! under sustained stochastic churn.

use std::sync::Arc;

use qc_bench::{faults_flag, flag_value, row, rule};
use qc_sim::{
    default_threads, run_batch, ContactPolicy, FaultPlan, ReconfigPolicy, SimConfig, SimTime,
};
use quorum::{analysis, Majority, QuorumSpec, Rowa};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sim_config(
    q: &Arc<dyn QuorumSpec + Send + Sync>,
    p_down: f64,
    faults: &FaultPlan,
    seed: u64,
) -> SimConfig {
    // Choose mttf/mttr so the stationary down-probability is p_down.
    let cycle = SimTime::from_secs(20);
    let mttr = SimTime((cycle.as_micros() as f64 * p_down) as u64 + 1);
    let mttf = SimTime(cycle.as_micros() - mttr.as_micros() + 1);
    let mut c = SimConfig::new(Arc::clone(q));
    c.read_fraction = 0.5;
    c.contact = ContactPolicy::AllLive;
    c.mttf = Some(mttf);
    c.mttr = mttr;
    c.duration = SimTime::from_secs(3_000);
    c.timeout = SimTime::from_millis(20);
    // Long think time ≫ op time makes attempts (nearly) time-uniform, so
    // the per-attempt availability estimates the stationary probability —
    // closed-loop clients would otherwise oversample up-periods, where
    // operations finish faster.
    c.think_time = SimTime::from_millis(500);
    c.seed = seed;
    c.faults = faults.clone();
    c
}

fn main() {
    // `--faults "<plan>"` layers a deterministic fault plan on top of the
    // stochastic failures in every simulator cell (the analytic columns
    // know nothing about the plan, so expect the sim columns to drop below
    // them); `--seed N` re-seeds the simulator cells.
    let faults = faults_flag().unwrap_or_default();
    let seed: u64 = flag_value("--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(17);

    println!("Q2 — availability vs per-site failure probability p (n = 5)\n");
    if !faults.is_empty() {
        println!("injected fault plan: {faults}\n");
    }
    let widths = [14, 6, 10, 10, 10, 10, 10, 10, 10, 7];
    row(
        &[
            "quorum".into(),
            "p".into(),
            "read ex".into(),
            "read mc".into(),
            "read sim".into(),
            "write ex".into(),
            "write mc".into(),
            "write sim".into(),
            "write dyn".into(),
            "recfg".into(),
        ],
        &widths,
    );
    rule(&widths);

    let systems: Vec<Arc<dyn QuorumSpec + Send + Sync>> =
        vec![Arc::new(Rowa::new(5)), Arc::new(Majority::new(5))];
    let mut rng = ChaCha8Rng::seed_from_u64(0xA2);
    let ps = [0.01, 0.05, 0.1, 0.2, 0.3, 0.5];

    // The simulator columns are the expensive ones — fan the whole
    // (quorum × p × mode) grid across cores; each cell is self-seeded, so
    // the table is identical at any thread count. The dynamic twin of each
    // cell runs with the reactive trigger on and an uncapped budget (the
    // churn is sustained, so a bounded budget would freeze the membership
    // mid-run).
    let grid: Vec<SimConfig> = systems
        .iter()
        .flat_map(|q| {
            ps.iter().flat_map(|&p| {
                let stat = sim_config(q, p, &faults, seed);
                let mut dynamic = sim_config(q, p, &faults, seed);
                dynamic.reconfig = ReconfigPolicy::reactive();
                dynamic.reconfig.max_reconfigs = u32::MAX;
                [stat, dynamic]
            })
        })
        .collect();
    let sims = run_batch(grid, default_threads());
    let mut sims = sims.iter();

    for q in &systems {
        for p in ps {
            let up = 1.0 - p;
            let r_ex = analysis::exact_read_availability(q.as_ref(), up);
            let w_ex = analysis::exact_write_availability(q.as_ref(), up);
            let (r_mc, w_mc) =
                analysis::monte_carlo_availability(q.as_ref(), up, 50_000, &mut rng);
            let m = sims.next().expect("one static sim per grid cell");
            let d = sims.next().expect("one dynamic sim per grid cell");
            assert_eq!(d.lemma_violations, 0, "dynamic cell violations: {:?}", d.violations);
            let (r_sim, w_sim) = (m.reads.availability(), m.writes.availability());
            row(
                &[
                    q.label(),
                    format!("{p:.2}"),
                    format!("{r_ex:.4}"),
                    format!("{r_mc:.4}"),
                    format!("{r_sim:.4}"),
                    format!("{w_ex:.4}"),
                    format!("{w_mc:.4}"),
                    format!("{w_sim:.4}"),
                    format!("{:.4}", d.writes.availability()),
                    format!("{}", d.reconfigurations),
                ],
                &widths,
            );
        }
        rule(&widths);
    }

    println!(
        "Expected shape: ROWA reads stay near 1 while ROWA writes collapse as p \
         grows; majority degrades gracefully and symmetrically. Exact, Monte-Carlo \
         and simulated columns agree. The dynamic column holds write availability \
         far above the static formulas as p grows — the membership follows the \
         live set instead of waiting out every outage."
    );
}
