//! Q5 — the ROWA/majority crossover: expected replica accesses per logical
//! operation as a function of the read fraction, analytic and simulated,
//! locating the workload mix at which each configuration wins.

use std::sync::Arc;

use qc_bench::{row, rule};
use qc_sim::{run, ContactPolicy, SimConfig, SimTime};
use quorum::{analysis, Majority, QuorumSpec, Rowa};

fn simulated_msgs(q: Arc<dyn QuorumSpec + Send + Sync>, rf: f64) -> f64 {
    let mut c = SimConfig::new(q);
    c.read_fraction = rf;
    c.contact = ContactPolicy::MinimalQuorum;
    c.duration = SimTime::from_secs(15);
    c.seed = 41;
    let m = run(c);
    let ops = (m.reads.attempts + m.writes.attempts) as f64;
    (m.reads.messages + m.writes.messages) as f64 / ops
}

fn main() {
    let n = 5;
    println!("Q5 — ROWA vs majority crossover (n = {n}); accesses & messages per op\n");
    let widths = [8, 12, 12, 12, 12, 10];
    row(
        &[
            "reads".into(),
            "rowa (an)".into(),
            "maj (an)".into(),
            "rowa (sim)".into(),
            "maj (sim)".into(),
            "winner".into(),
        ],
        &widths,
    );
    rule(&widths);

    let rowa = Rowa::new(n);
    let maj = Majority::new(n);
    let mut crossover: Option<f64> = None;
    let mut prev_sign: Option<bool> = None;

    for i in 0..=10 {
        let rf = i as f64 / 10.0;
        let a_rowa = analysis::expected_accesses_per_op(&rowa, rf);
        let a_maj = analysis::expected_accesses_per_op(&maj, rf);
        // Simulated messages ≈ 2 × accesses (request + response).
        let s_rowa = simulated_msgs(Arc::new(rowa), rf);
        let s_maj = simulated_msgs(Arc::new(maj), rf);
        // Track strict winners only; ties (the write-only mix at odd n)
        // are not crossings.
        if a_rowa != a_maj {
            let rowa_wins = a_rowa < a_maj;
            if let Some(p) = prev_sign {
                if p != rowa_wins && crossover.is_none() {
                    crossover = Some(rf);
                }
            }
            prev_sign = Some(rowa_wins);
        }
        row(
            &[
                format!("{rf:.1}"),
                format!("{a_rowa:.2}"),
                format!("{a_maj:.2}"),
                format!("{s_rowa:.2}"),
                format!("{s_maj:.2}"),
                if a_rowa < a_maj {
                    "rowa".into()
                } else if a_maj < a_rowa {
                    "majority".into()
                } else {
                    "tie".into()
                },
            ],
            &widths,
        );
    }

    match crossover {
        Some(rf) => println!("\ncrossover near read fraction {rf:.1}"),
        None => println!(
            "\nno strict crossover at n = {n}: write costs tie at n+1 accesses \
             (any legal threshold pair sums past n), so ROWA weakly dominates \
             on access count for every mix — its true price is write \
             *availability* (see Q2)."
        ),
    }
}
