//! Q6 — fault injection: availability, retries, and runtime lemma
//! monitoring under a seeded deterministic fault plan.
//!
//! The scenario plan staggers two site outages across a 30-second run,
//! forces two client aborts, and adds one message-drop window and one
//! extra-delay window. Each (quorum × retry-budget) cell runs the same
//! plan; the runtime [`qc_sim::InvariantProbe`] checks Lemma 7/8 on every
//! committed operation and at end of run, and the table asserts zero
//! violations. A final negative-control run corrupts one replica store
//! mid-run and asserts the monitor *does* fire — demonstrating the green
//! cells are a real check, not a vacuous one.
//!
//! Flags: `--faults "<plan>"` overrides the scenario plan (grammar in
//! `EXPERIMENTS.md`), `--seed N` overrides the default seed (42),
//! `--secs N` rescales the run (the scenario's event times scale with it),
//! and `--trace-dir DIR` runs each cell traced, dumps one JSON schedule
//! trace per cell, and replays every trace through the Theorem 10
//! conformance checker (the negative control must *fail* it).
//!
//! Reproduce with:
//!   cargo run --release -p qc-bench --bin exp_faults > results/exp_faults.txt
//! Also writes `results/BENCH_faults.json` (plan, seed, per-cell metrics).

use std::sync::Arc;

use qc_bench::{
    dump_trace, faults_flag, flag_value, obs_flags, row, rule, trace_dir_flag, trace_file_stem,
};
use qc_sim::{
    check_trace, default_threads, par_map, run, run_batch, run_observed, run_traced,
    ContactPolicy, FaultPlan, Metrics, ReconfigPolicy, RetryPolicy, SimConfig, SimTime,
};
use quorum::{Majority, QuorumSpec, Rowa};
use serde_json::JsonObject;

const DURATION_SECS: u64 = 30;

/// The default scenario. Event times are fractions of the run length so
/// `--secs` rescales the whole plan; at the default 30 s this reproduces
/// the documented plan `crash@4000:1; recover@9000:1; ...` exactly, and
/// the printed plan can always be pasted back through `--faults`.
fn scenario(secs: u64) -> FaultPlan {
    let t = |s30: u64| SimTime(secs * s30 * 1_000_000 / 30);
    FaultPlan::new()
        .crash_at(t(4), 1)
        .recover_at(t(9), 1)
        .crash_at(t(12), 3)
        .recover_at(t(18), 3)
        .abort_at(t(6), 0)
        .abort_at(t(20), 2)
        .drop_window(t(22), t(2), 250)
        .delay_window(t(26), t(2), SimTime::from_millis(2))
}

fn cell(
    q: &Arc<dyn QuorumSpec + Send + Sync>,
    plan: &FaultPlan,
    seed: u64,
    attempts: u32,
    secs: u64,
    dynamic: bool,
) -> SimConfig {
    let mut c = SimConfig::new(Arc::clone(q));
    c.contact = ContactPolicy::AllLive;
    c.clients = 6;
    c.read_fraction = 0.7;
    c.duration = SimTime::from_secs(secs);
    c.think_time = SimTime::from_millis(5);
    c.seed = seed;
    c.faults = plan.clone();
    c.retry = RetryPolicy::retries(attempts, SimTime::from_millis(10));
    if dynamic {
        c.reconfig = ReconfigPolicy::reactive();
    }
    c
}

fn mode_name(dynamic: bool) -> &'static str {
    if dynamic {
        "dynamic"
    } else {
        "static"
    }
}

fn main() {
    let seed: u64 = flag_value("--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let secs: u64 = flag_value("--secs")
        .map(|s| s.parse().expect("--secs takes an integer"))
        .unwrap_or(DURATION_SECS);
    let plan = faults_flag().unwrap_or_else(|| scenario(secs));
    let trace_dir = trace_dir_flag();
    // `--obs-dir DIR` / `--snapshot-every SECS`: run every cell with the
    // instrumentation layer on (fault firings and any violations land in
    // the event log) and dump the recordings per cell.
    let obs = obs_flags();

    println!("Q6 — fault injection under a seeded plan (n = 5, seed {seed}, {secs} s)\n");
    println!("plan: {plan}\n");

    let systems: Vec<Arc<dyn QuorumSpec + Send + Sync>> =
        vec![Arc::new(Rowa::new(5)), Arc::new(Majority::new(5))];
    let budgets = [1u32, 4];
    let modes = [false, true];

    let mut cells: Vec<(Arc<dyn QuorumSpec + Send + Sync>, u32, bool)> = Vec::new();
    for q in &systems {
        for &a in &budgets {
            for &d in &modes {
                cells.push((Arc::clone(q), a, d));
            }
        }
    }
    let metrics: Vec<Metrics> = match &trace_dir {
        Some(dir) => {
            // Traced runs are serial, but the recorded metrics are
            // bit-identical to the parallel sweep's; every trace must
            // replay through the (generation-aware) Theorem 10
            // conformance checker.
            std::fs::create_dir_all(dir).expect("create --trace-dir");
            cells
                .iter()
                .map(|(q, attempts, dynamic)| {
                    let (m, trace) =
                        run_traced(cell(q, &plan, seed, *attempts, secs, *dynamic));
                    let name = format!(
                        "faults_{}_a{attempts}_{}.json",
                        trace_file_stem(&q.label()),
                        mode_name(*dynamic)
                    );
                    let path = dump_trace(dir, &name, &trace);
                    let report = check_trace(&trace, q.as_ref()).unwrap_or_else(|d| {
                        panic!("{name}: trace failed conformance: {d}")
                    });
                    println!(
                        "trace {}: {} events ({} faulted), {} committed, conformant",
                        path.display(),
                        report.events,
                        report.faulted_events,
                        report.committed
                    );
                    m
                })
                .collect()
        }
        None if obs.enabled() => {
            let options = obs.options();
            let grid: Vec<SimConfig> = cells
                .iter()
                .map(|(q, a, d)| {
                    let mut c = cell(q, &plan, seed, *a, secs, *d);
                    c.obs = options;
                    c
                })
                .collect();
            let outs = par_map(grid, default_threads(), |_, c| run_observed(c));
            outs.into_iter()
                .zip(&cells)
                .map(|((m, report), (q, attempts, dynamic))| {
                    let stem = format!(
                        "faults_{}_a{attempts}_{}",
                        trace_file_stem(&q.label()),
                        mode_name(*dynamic)
                    );
                    obs.dump(&stem, &report);
                    m
                })
                .collect()
        }
        None => {
            let grid: Vec<SimConfig> = cells
                .iter()
                .map(|(q, a, d)| cell(q, &plan, seed, *a, secs, *d))
                .collect();
            run_batch(grid, default_threads())
        }
    };
    if trace_dir.is_some() {
        println!();
    }

    let widths = [14, 9, 8, 10, 10, 8, 8, 8, 8, 8, 6, 6];
    row(
        &[
            "quorum".into(),
            "attempts".into(),
            "mode".into(),
            "read av".into(),
            "write av".into(),
            "unavail".into(),
            "timeout".into(),
            "retries".into(),
            "aborted".into(),
            "dropped".into(),
            "recfg".into(),
            "viol".into(),
        ],
        &widths,
    );
    rule(&widths);

    // The headline comparison: reconfiguration must close most of the
    // write-availability gap the outages open under static ROWA, and the
    // dynamic column must be non-degenerate (the trigger actually fired).
    let mut rowa_write_av = Vec::new();

    let mut cells_json = Vec::new();
    let mut iter = metrics.iter();
    for q in &systems {
        for &attempts in &budgets {
            for &dynamic in &modes {
                let m = iter.next().expect("one metrics per grid cell");
                assert_eq!(
                    m.lemma_violations, 0,
                    "in-model faults must never trip the monitor: {:?}",
                    m.violations
                );
                // ROWA is the system the outages actually starve, so its
                // dynamic cells must reconfigure. Majority tolerates the
                // plan without a single failure signal, and a trigger that
                // fired anyway would be churn, not repair.
                if dynamic && q.label().starts_with("rowa") {
                    assert!(
                        m.reconfigurations > 0,
                        "{} a{attempts}: dynamic cell is degenerate — the reactive \
                         trigger never fired",
                        q.label()
                    );
                }
                if q.label().starts_with("rowa") {
                    rowa_write_av.push((attempts, dynamic, m.writes.availability()));
                }
                row(
                    &[
                        q.label(),
                        format!("{attempts}"),
                        mode_name(dynamic).into(),
                        format!("{:.4}", m.reads.availability()),
                        format!("{:.4}", m.writes.availability()),
                        format!("{}", m.reads.unavailable + m.writes.unavailable),
                        format!("{}", m.reads.timeouts + m.writes.timeouts),
                        format!("{}", m.reads.retries + m.writes.retries),
                        format!("{}", m.reads.aborted + m.writes.aborted),
                        format!("{}", m.dropped_messages),
                        format!("{}", m.reconfigurations),
                        format!("{}", m.lemma_violations),
                    ],
                    &widths,
                );
                cells_json.push(
                    JsonObject::new()
                        .field("quorum", q.label().as_str())
                        .field("attempts", &attempts)
                        .field("mode", mode_name(dynamic))
                        .field_raw(
                            "reads",
                            &serde_json::to_string(&m.reads.summary())
                                .expect("summary serializes"),
                        )
                        .field_raw(
                            "writes",
                            &serde_json::to_string(&m.writes.summary())
                                .expect("summary serializes"),
                        )
                        .field("dropped_messages", &m.dropped_messages)
                        .field("forced_aborts", &m.forced_aborts)
                        .field("injected_faults", &m.injected_faults)
                        .field("site_failures", &m.site_failures)
                        .field("reconfigurations", &m.reconfigurations)
                        .field("reconfig_failures", &m.reconfig_failures)
                        .field("stale_rejections", &m.stale_rejections)
                        .field("lemma_violations", &m.lemma_violations)
                        .build(),
                );
            }
        }
        rule(&widths);
    }

    // On the pinned default scenario the static ROWA cells sit near 0.56
    // write availability (two staggered outages under read-one/write-all);
    // the reactive trigger must lift every dynamic ROWA cell to >= 0.85.
    for &(attempts, dynamic, av) in &rowa_write_av {
        if dynamic {
            let static_av = rowa_write_av
                .iter()
                .find(|&&(a, d, _)| a == attempts && !d)
                .map(|&(_, _, av)| av)
                .expect("matching static cell");
            assert!(
                av > static_av,
                "rowa a{attempts}: dynamic write availability {av:.4} did not \
                 improve on static {static_av:.4}"
            );
            if secs == DURATION_SECS && flag_value("--faults").is_none() {
                assert!(
                    av >= 0.85,
                    "rowa a{attempts}: dynamic write availability {av:.4} < 0.85 \
                     on the pinned scenario"
                );
            }
        }
    }

    // Negative control: corrupt one replica's store mid-run. The monitor
    // MUST fire — this is the proof that the zero-violation cells above
    // actually checked something. Under `--trace-dir` the recorded trace
    // must likewise FAIL conformance, proving the checker is not vacuous.
    let corrupt =
        FaultPlan::new().corrupt_at(SimTime(secs * 1_000_000 / 2), 2, 999_999, 77);
    let m = if let Some(dir) = &trace_dir {
        let (m, trace) = run_traced(cell(&systems[1], &corrupt, seed, 1, secs, false));
        let path = dump_trace(dir, "faults_negative_control.json", &trace);
        let d = check_trace(&trace, systems[1].as_ref())
            .expect_err("negative control failed: corrupted trace passed conformance");
        println!(
            "trace {}: rejected as required — {d}",
            path.display()
        );
        m
    } else if obs.enabled() {
        // The negative control is the interesting event log: the corrupt
        // injection and every violation it causes (with the offending op
        // attached at commit-time detections) land in it.
        let mut c = cell(&systems[1], &corrupt, seed, 1, secs, false);
        c.obs = obs.options();
        let (m, report) = run_observed(c);
        obs.dump("faults_negative_control", &report);
        m
    } else {
        run(cell(&systems[1], &corrupt, seed, 1, secs, false))
    };
    assert!(
        m.lemma_violations > 0,
        "negative control failed: corrupted store went undetected"
    );
    println!(
        "\nnegative control: {corrupt} on {} -> {} violation(s), first: {}",
        systems[1].label(),
        m.lemma_violations,
        m.violations.first().map(String::as_str).unwrap_or("<none>")
    );

    let json = JsonObject::new()
        .field("seed", &seed)
        .field("duration_secs", &secs)
        .field("plan_text", plan.to_string().as_str())
        .field_raw("plan", &serde_json::to_string(&plan).expect("plan serializes"))
        .field_raw("cells", &serde_json::array_raw(cells_json))
        .field_raw(
            "negative_control",
            &JsonObject::new()
                .field("plan_text", corrupt.to_string().as_str())
                .field("lemma_violations", &m.lemma_violations)
                .build(),
        )
        .build();
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_faults.json", json).expect("write BENCH_faults.json");
    println!("wrote results/BENCH_faults.json");

    println!(
        "\nExpected shape: retries recover most availability lost to the two \
         outages; static ROWA writes suffer more than majority under a single \
         site crash, and the reactive reconfiguration trigger closes most of \
         that gap in the dynamic cells; the drop window costs messages, not \
         correctness; monitors stay green for every in-model fault and fire on \
         the out-of-model corruption."
    );
    println!(
        "Reproduce: cargo run --release -p qc-bench --bin exp_faults \
         > results/exp_faults.txt"
    );
}
