//! Q11 — nested-transaction workloads over the replicated sharded store:
//! Theorem 11 at scale.
//!
//! Runs seeded nested-transaction programs (banking transfers, inventory
//! orders, random trees with sibling aborts) through `qc_sim`'s
//! transaction harness: every leaf access is a full Gifford quorum
//! operation, copy-level Moss locks serialise conflicting accesses, and
//! doomed subtrees run, abort and are compensated. Four sections, all
//! written to `results/BENCH_txn.json`:
//!
//! 1. **Determinism** — the report digest of a fixed banking
//!    configuration run on 1, 2 and 4 OS threads; *asserted* identical.
//! 2. **Conformance** — a traced run of the same configuration: every
//!    per-item schedule replays through Theorem 10 (`check_trace`,
//!    asserted), and the committed projection of every top-level
//!    transaction replays serially in commit order (Theorem 11,
//!    `check_commit_order_serializable`, asserted).
//! 3. **Scale** — a long multi-domain run that must execute at least
//!    10⁵ top-level transactions end to end, serializability asserted.
//! 4. **Contention / abort-rate sweep** — abort and compensation rates
//!    vs client count per domain, across the three workload shapes, plus
//!    a faulted scenario (crashes + drop window + forced aborts).
//!
//! Flags: `--secs N` (default 120, scale-section simulated seconds),
//! `--seed N` (default 17), `--threads T` (default: all cores),
//! `--smoke` (CI leg: shrink every section, skip the 10⁵ floor).

use std::sync::Arc;
use std::time::Instant;

use nested_txn::{BankingGen, InventoryGen, RandomTreeGen, WorkloadKind};
use qc_bench::{flag_value, row, rule};
use qc_sim::{
    check_commit_order_serializable, check_trace, default_threads, run_txn, run_txn_committed,
    run_txn_traced, FaultPlan, SimTime, TxnConfig, TxnReport,
};
use quorum::Majority;
use serde_json::JsonObject;

fn banking(seed: u64, secs: u64) -> TxnConfig {
    let mut c = TxnConfig::new(
        Arc::new(Majority::new(3)),
        WorkloadKind::Banking(BankingGen::new(4)),
    );
    c.items = 8;
    c.domains = 2;
    c.clients_per_domain = 2;
    c.duration = SimTime::from_secs(secs);
    c.seed = seed;
    c
}

fn abort_rate(r: &TxnReport) -> f64 {
    let done = r.stats.txns_committed + r.stats.txns_aborted;
    if done == 0 {
        return 0.0;
    }
    r.stats.txns_aborted as f64 / done as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let secs: u64 = flag_value("--secs")
        .map(|s| s.parse().expect("--secs takes an integer"))
        .unwrap_or(if smoke { 2 } else { 120 });
    let seed: u64 = flag_value("--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(17);
    let threads: usize = flag_value("--threads")
        .map(|s| s.parse().expect("--threads takes an integer"))
        .unwrap_or_else(default_threads);

    println!(
        "Q11 — nested transactions over the sharded store (n = 3 majority, \
         seed {seed}, {threads} threads{})\n",
        if smoke { ", smoke" } else { "" }
    );

    // 1. Determinism: bit-identical digest across thread counts.
    let det_cfg = banking(seed, secs.min(2));
    let mut digests = Vec::new();
    for t in [1usize, 2, 4] {
        digests.push(run_txn(&det_cfg, t).digest());
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "digest diverged across thread counts: {digests:x?}"
    );
    println!(
        "determinism: digest {:#018x} identical on 1/2/4 threads",
        digests[0]
    );

    // 2. Conformance: Theorem 10 per item, Theorem 11 for the whole run.
    let (traced_report, traces) = run_txn_traced(&det_cfg, threads);
    assert_eq!(
        traced_report.digest(),
        digests[0],
        "tracing perturbed the run"
    );
    let mut traced_events = 0usize;
    for (g, trace) in traces.iter().enumerate() {
        let conf = check_trace(trace, &*det_cfg.quorum)
            .unwrap_or_else(|d| panic!("item {g} diverged from the serial system: {d}"));
        assert_eq!(
            conf.committed as u64, traced_report.item_commits[g],
            "item {g}: trace commits vs report tally"
        );
        traced_events += conf.events;
    }
    let (rep2, commits) = run_txn_committed(&det_cfg, threads);
    assert_eq!(rep2.digest(), digests[0], "commit capture perturbed the run");
    let finals = check_commit_order_serializable(&|_| 0, &commits)
        .unwrap_or_else(|e| panic!("Theorem 11 replay failed: {e}"));
    assert_eq!(rep2.stats.lemma_violations, 0, "{:?}", rep2.stats.violations);
    println!(
        "conformance: {} items / {traced_events} trace events (Theorem 10), \
         {} committed txns replay serially over {} items (Theorem 11)",
        traces.len(),
        commits.len(),
        finals.len()
    );

    // 3. Scale: >= 1e5 nested transactions end to end.
    let mut scale_cfg = banking(seed, secs);
    scale_cfg.items = 64;
    scale_cfg.domains = 16;
    scale_cfg.clients_per_domain = 4;
    let start = Instant::now();
    let (scale_report, scale_commits) = run_txn_committed(&scale_cfg, threads);
    let scale_wall = start.elapsed().as_secs_f64();
    check_commit_order_serializable(&|_| 0, &scale_commits)
        .unwrap_or_else(|e| panic!("Theorem 11 replay failed at scale: {e}"));
    assert_eq!(
        scale_report.stats.lemma_violations, 0,
        "{:?}",
        scale_report.stats.violations
    );
    if !smoke {
        assert!(
            scale_report.stats.txns_started >= 100_000,
            "scale section ran only {} txns (raise --secs)",
            scale_report.stats.txns_started
        );
    }
    let s = &scale_report.stats;
    println!(
        "scale: {} txns started, {} committed, abort rate {:.4}, \
         {} accesses, max depth {}, {:.2} s wall ({} domains x {} clients, {secs} s simulated)",
        s.txns_started,
        s.txns_committed,
        abort_rate(&scale_report),
        s.reads_committed + s.writes_committed,
        s.max_depth,
        scale_wall,
        scale_cfg.domains,
        scale_cfg.clients_per_domain,
    );

    // 4. Contention sweep: abort/compensation rates vs clients per domain,
    // per workload shape, plus a faulted scenario.
    println!();
    let widths = [11, 8, 9, 11, 11, 11, 12];
    row(
        &[
            "workload".into(),
            "clients".into(),
            "txns".into(),
            "abort rate".into(),
            "lock waits".into(),
            "timeouts".into(),
            "compensations".into(),
        ],
        &widths,
    );
    rule(&widths);
    let sweep_secs = if smoke { 1 } else { secs.min(10) };
    let cpd_points: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut sweep_rows = Vec::new();
    for (name, workload) in [
        ("banking", WorkloadKind::Banking(BankingGen::new(4))),
        ("inventory", WorkloadKind::Inventory(InventoryGen::new(3))),
        ("random", WorkloadKind::Random(RandomTreeGen::new(4))),
    ] {
        for &cpd in cpd_points {
            let mut c = TxnConfig::new(Arc::new(Majority::new(3)), workload);
            c.items = 8;
            c.domains = 2;
            c.clients_per_domain = cpd;
            c.duration = SimTime::from_secs(sweep_secs);
            c.seed = seed;
            let (report, commits) = run_txn_committed(&c, threads);
            check_commit_order_serializable(&|_| 0, &commits)
                .unwrap_or_else(|e| panic!("{name}/cpd={cpd}: Theorem 11 replay failed: {e}"));
            assert_eq!(
                report.stats.lemma_violations, 0,
                "{name}/cpd={cpd}: {:?}",
                report.stats.violations
            );
            let st = &report.stats;
            row(
                &[
                    name.into(),
                    format!("{}", c.clients()),
                    format!("{}", st.txns_started),
                    format!("{:.4}", abort_rate(&report)),
                    format!("{}", st.lock_waits),
                    format!("{}", st.lock_timeouts),
                    format!("{}", st.compensations),
                ],
                &widths,
            );
            sweep_rows.push(
                JsonObject::new()
                    .field("workload", name)
                    .field("clients", &c.clients())
                    .field("txns_started", &st.txns_started)
                    .field("txns_committed", &st.txns_committed)
                    .field("abort_rate", &abort_rate(&report))
                    .field("lock_waits", &st.lock_waits)
                    .field("lock_timeouts", &st.lock_timeouts)
                    .field("subtree_aborts", &st.subtree_aborts)
                    .field("compensations", &st.compensations)
                    .field("max_depth", &st.max_depth)
                    .build(),
            );
        }
    }
    rule(&widths);

    // Faulted scenario: crashes, a drop window and forced aborts while
    // the wall stays green.
    let mut faulted_cfg = banking(seed, sweep_secs.max(2));
    faulted_cfg.quorum = Arc::new(Majority::new(5));
    faulted_cfg.faults = FaultPlan::new()
        .crash_at(SimTime::from_millis(200), 1)
        .crash_at(SimTime::from_millis(400), 4)
        .recover_at(SimTime::from_millis(900), 1)
        .recover_at(SimTime::from_millis(1_100), 4)
        .drop_window(SimTime::from_millis(600), SimTime::from_millis(200), 150)
        .abort_at(SimTime::from_millis(300), 0)
        .abort_at(SimTime::from_millis(700), 3);
    let (faulted_report, faulted_commits) = run_txn_committed(&faulted_cfg, threads);
    check_commit_order_serializable(&|_| 0, &faulted_commits)
        .unwrap_or_else(|e| panic!("faulted scenario: Theorem 11 replay failed: {e}"));
    assert_eq!(
        faulted_report.stats.lemma_violations, 0,
        "{:?}",
        faulted_report.stats.violations
    );
    let fs = &faulted_report.stats;
    println!(
        "\nfaulted: {} txns, abort rate {:.4}, {} forced aborts, {} retries, \
         {} dropped messages — serializable, zero violations",
        fs.txns_started,
        abort_rate(&faulted_report),
        fs.forced_aborts,
        fs.retries,
        fs.dropped_messages,
    );

    let json = JsonObject::new()
        .field("cores", &default_threads())
        .field("threads", &threads)
        .field("seed", &seed)
        .field("sim_duration_secs", &secs)
        .field("smoke", &smoke)
        .field("determinism_digest", &format!("{:#018x}", digests[0]))
        .field("determinism_thread_counts", "1/2/4 identical")
        .field("conformant_items", &traces.len())
        .field("theorem11_committed_txns", &commits.len())
        .field("scale_txns_started", &scale_report.stats.txns_started)
        .field("scale_txns_committed", &scale_report.stats.txns_committed)
        .field("scale_abort_rate", &abort_rate(&scale_report))
        .field("scale_subtree_aborts", &scale_report.stats.subtree_aborts)
        .field("scale_compensations", &scale_report.stats.compensations)
        .field("scale_wall_secs", &scale_wall)
        .field_raw("contention_sweep", &serde_json::array_raw(sweep_rows))
        .field(
            "faulted_abort_rate",
            &abort_rate(&faulted_report),
        )
        .field("faulted_forced_aborts", &faulted_report.stats.forced_aborts)
        .build();
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_txn.json", json).expect("write BENCH_txn.json");
    println!("\nwrote results/BENCH_txn.json");

    println!(
        "\nExpected shape: the abort rate climbs with clients per domain (more \
         lock conflicts on the same items) and the doomed-subtree compensation \
         count scales with transaction volume; every configuration — contended, \
         faulted, or at 1e5-txn scale — replays serially (Theorem 11) and every \
         per-item schedule conforms to the single-copy serial object (Theorem 10)."
    );
}
