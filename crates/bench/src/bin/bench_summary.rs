//! `bench_summary` — fold the current `results/BENCH_*.json` snapshots
//! into `results/BENCH_trajectory.json`, keyed by commit.
//!
//! Every experiment binary writes one machine-readable snapshot
//! (`BENCH_shard.json`, `BENCH_rebalance.json`, …) that reflects the tree
//! it ran in; nothing ties those files to the commit that produced them,
//! so perf regressions across PRs can only be found by archaeology. This
//! binary stamps the current snapshot set with the commit hash and commit
//! date and merges it into a growing trajectory file:
//!
//! ```json
//! {
//! "<commit>": {"recorded":"<commit ISO date>","benches":{"rebalance":{…},…}},
//! "<older commit>": {…}
//! }
//! ```
//!
//! The file is line-structured — one entry per line between the braces —
//! so the merge (replace the current commit's entry, keep the rest) needs
//! no JSON parser, which the vendored `serde_json` deliberately does not
//! provide. Re-running on the same commit overwrites that commit's entry
//! in place; history for other commits is never touched.
//!
//! Flags: `--commit <hash>` overrides the `git rev-parse` lookup (useful
//! in CI where the checkout may be detached) and `--results <dir>`
//! overrides the default `results/`.
//!
//! `--check` turns the trajectory into a perf-regression gate instead of
//! merging: the two most recent entries are compared on every
//! `ops_per_wall_sec` sample they carry (hot-path throughput rows from
//! `exp_throughput` / `exp_rebalance`), and the run fails if the
//! geometric mean dropped by more than the tolerance (default 15%,
//! override with `--tolerance-pct N`). The geometric mean — not
//! row-by-row deltas — is the gated quantity because individual cells
//! jitter on shared runners while a real regression moves all of them.

use std::fs;
use std::path::Path;
use std::process::Command;

use qc_bench::flag_value;

/// `git <args>` stdout, trimmed, or `None` if git is unavailable.
fn git(args: &[&str]) -> Option<String> {
    let out = Command::new("git").args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let s = s.trim();
    (!s.is_empty()).then(|| s.to_string())
}

/// The existing trajectory entries as `(commit, line)` pairs, oldest
/// last, parsed from the line-structured format this binary writes.
fn existing_entries(path: &Path) -> Vec<(String, String)> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if line == "{" || line == "}" || line.is_empty() {
            continue;
        }
        // `"<commit>": {...}` — the commit is the first quoted token.
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some(q) = rest.find('"') else { continue };
        entries.push((rest[..q].to_string(), line.to_string()));
    }
    entries
}

/// Every `"ops_per_wall_sec":<number>` sample in a trajectory entry, in
/// order of appearance. String scanning on purpose: the vendored
/// `serde_json` is writer-only and the field grammar here is fixed.
fn wall_ops_samples(entry: &str) -> Vec<f64> {
    const NEEDLE: &str = "\"ops_per_wall_sec\":";
    let mut vals = Vec::new();
    let mut rest = entry;
    while let Some(i) = rest.find(NEEDLE) {
        rest = &rest[i + NEEDLE.len()..];
        let end = rest
            .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
            .unwrap_or(rest.len());
        if let Ok(v) = rest[..end].parse::<f64>() {
            if v > 0.0 {
                vals.push(v);
            }
        }
        rest = &rest[end..];
    }
    vals
}

fn geomean(vals: &[f64]) -> f64 {
    let ln_sum: f64 = vals.iter().map(|v| v.ln()).sum();
    (ln_sum / vals.len() as f64).exp()
}

/// The `--check` gate: compare the two most recent trajectory entries'
/// hot-path throughput samples; exit non-zero on a regression beyond
/// the tolerance. Process-exits in every path.
fn check_regression(path: &Path, tolerance_pct: f64) -> ! {
    let entries = existing_entries(path);
    let ok: &str = "perf gate: ok";
    match entries.as_slice() {
        [] | [_] => {
            println!("{ok} ({} trajectory entries — nothing to compare yet)", entries.len());
            std::process::exit(0);
        }
        [(new_commit, new_entry), (old_commit, old_entry), ..] => {
            let new = wall_ops_samples(new_entry);
            let old = wall_ops_samples(old_entry);
            if new.is_empty() || old.is_empty() {
                println!(
                    "{ok} (no ops_per_wall_sec samples: {} new, {} old — run \
                     exp_throughput before the gate)",
                    new.len(),
                    old.len()
                );
                std::process::exit(0);
            }
            let (gn, go) = (geomean(&new), geomean(&old));
            let delta_pct = (gn / go - 1.0) * 100.0;
            println!(
                "perf gate: {new_commit} geomean {gn:.0} ops/wall-s over {} samples vs \
                 {old_commit} {go:.0} over {} ({delta_pct:+.1}%)",
                new.len(),
                old.len()
            );
            if gn < go * (1.0 - tolerance_pct / 100.0) {
                eprintln!(
                    "perf gate: FAIL — hot-path throughput regressed {:.1}% \
                     (tolerance {tolerance_pct}%)",
                    -delta_pct
                );
                std::process::exit(1);
            }
            println!("{ok} (tolerance {tolerance_pct}%)");
            std::process::exit(0);
        }
    }
}

fn main() {
    let results = flag_value("--results").unwrap_or_else(|| "results".to_string());
    let results = Path::new(&results);
    if std::env::args().any(|a| a == "--check") {
        let tolerance = flag_value("--tolerance-pct")
            .map(|s| s.parse().expect("--tolerance-pct takes a number"))
            .unwrap_or(15.0);
        check_regression(&results.join("BENCH_trajectory.json"), tolerance);
    }
    let commit = flag_value("--commit")
        .or_else(|| git(&["rev-parse", "--short=12", "HEAD"]))
        .unwrap_or_else(|| "unknown".to_string());
    let recorded = git(&["log", "-1", "--format=%cI"]).unwrap_or_default();

    // Collect the snapshot files, stable order, trajectory excluded.
    let mut names: Vec<String> = fs::read_dir(results)
        .unwrap_or_else(|e| panic!("read {}: {e}", results.display()))
        .filter_map(|d| d.ok()?.file_name().into_string().ok())
        .filter(|n| {
            n.starts_with("BENCH_") && n.ends_with(".json") && n != "BENCH_trajectory.json"
        })
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no BENCH_*.json snapshots under {}", results.display());

    let mut benches = Vec::with_capacity(names.len());
    for name in &names {
        let raw = fs::read_to_string(results.join(name)).expect("snapshot readable");
        let raw = raw.trim();
        // Embed verbatim; a malformed snapshot must fail here, not when a
        // later reader chokes on the trajectory.
        assert!(
            raw.starts_with('{') && raw.ends_with('}'),
            "{name} is not a JSON object"
        );
        let key = name
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json");
        benches.push(format!("\"{key}\":{raw}"));
        println!("  + {name}");
    }
    let entry = format!(
        "\"{commit}\": {{\"recorded\":\"{recorded}\",\"benches\":{{{}}}}}",
        benches.join(",")
    );

    let path = results.join("BENCH_trajectory.json");
    let mut entries = existing_entries(&path);
    entries.retain(|(c, _)| *c != commit);
    entries.insert(0, (commit.clone(), entry));
    let body: Vec<String> = entries.into_iter().map(|(_, line)| line).collect();
    fs::write(&path, format!("{{\n{}\n}}\n", body.join(",\n"))).expect("write trajectory");
    println!(
        "recorded {} snapshot(s) for commit {commit} in {}",
        names.len(),
        path.display()
    );
}
