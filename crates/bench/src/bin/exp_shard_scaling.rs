//! Q7 — shard scaling: aggregate throughput of the sharded multi-item
//! simulator vs shard count, with the determinism and per-item
//! conformance checks that make parallel results trustworthy.
//!
//! Three sections, all written to `results/BENCH_shard.json`:
//!
//! 1. **Determinism** — the report digest of a fixed configuration run on
//!    1, 2 and 4 OS threads; the binary *asserts* the three are equal.
//! 2. **Conformance** — a traced run of the same configuration; every
//!    per-item schedule must pass the Theorem 10 conformance check
//!    (asserted).
//! 3. **Scaling** — aggregate simulated ops/sec as the shard count grows
//!    from 1 (the single-shard baseline, same per-shard client count) to
//!    8, plus wall-clock per sweep point. Simulated throughput scales with
//!    the shard count because shards are independent; wall-clock speedup
//!    additionally needs cores.
//!
//! Flags: `--items N` (default 16), `--shards S` (max shard count,
//! default 8), `--secs N` (default 10), `--seed N` (default 23),
//! `--zipf THETA` (default 0 = uniform), `--threads T` (default: all
//! cores). CI runs `--secs 2 --threads 2` as a smoke test of the
//! assertions.

use std::sync::Arc;
use std::time::Instant;

use qc_bench::{flag_value, obs_flags, row, rule};
use qc_sim::{
    check_trace, default_threads, run_sharded, run_sharded_traced, ContactPolicy, ItemDist,
    MultiConfig, SimTime, Workload,
};
use quorum::Majority;
use serde_json::JsonObject;

fn config(items: usize, shards: usize, secs: u64, seed: u64, theta: f64) -> MultiConfig {
    let mut c = MultiConfig::new(Arc::new(Majority::new(5)));
    c.contact = ContactPolicy::MinimalQuorum;
    c.items = items;
    c.shards = shards;
    c.clients_per_shard = 2;
    c.workload = Workload::Closed {
        think: SimTime::from_millis(0),
    };
    c.dist = if theta > 0.0 {
        ItemDist::Zipfian { theta }
    } else {
        ItemDist::Uniform
    };
    c.duration = SimTime::from_secs(secs);
    c.seed = seed;
    c
}

fn main() {
    let items: usize = flag_value("--items")
        .map(|s| s.parse().expect("--items takes an integer"))
        .unwrap_or(16);
    let max_shards: usize = flag_value("--shards")
        .map(|s| s.parse().expect("--shards takes an integer"))
        .unwrap_or(8);
    let secs: u64 = flag_value("--secs")
        .map(|s| s.parse().expect("--secs takes an integer"))
        .unwrap_or(10);
    let seed: u64 = flag_value("--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(23);
    let theta: f64 = flag_value("--zipf")
        .map(|s| s.parse().expect("--zipf takes a float"))
        .unwrap_or(0.0);
    let threads: usize = flag_value("--threads")
        .map(|s| s.parse().expect("--threads takes an integer"))
        .unwrap_or_else(default_threads);

    println!(
        "Q7 — shard scaling (n = 5 majority, {items} items, 2 clients/shard, \
         zipf {theta}, {secs} s simulated, {threads} threads)\n"
    );

    // `--obs-dir DIR` / `--snapshot-every SECS`: run the determinism
    // configuration instrumented too; the merged ObsReport is part of the
    // cross-thread-count identity check below.
    let obs = obs_flags();

    // 1. Determinism: bit-identical report digest across thread counts —
    // including the merged observability recordings when enabled.
    let mut det_cfg = config(items, max_shards.min(items), secs.min(2), seed, theta);
    det_cfg.obs = obs.options();
    let mut digests = Vec::new();
    let mut obs_digests = Vec::new();
    for t in [1usize, 2, 4] {
        let r = run_sharded(&det_cfg, t);
        digests.push(r.digest());
        obs_digests.push(r.obs.digest());
        if t == 1 {
            obs.dump("shard_scaling", &r.obs);
        }
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "digest diverged across thread counts: {digests:x?}"
    );
    assert!(
        obs_digests.windows(2).all(|w| w[0] == w[1]),
        "obs recordings diverged across thread counts: {obs_digests:x?}"
    );
    println!(
        "determinism: digest {:#018x} identical on 1/2/4 threads",
        digests[0]
    );

    // 2. Conformance: every per-item schedule replays through Theorem 10.
    let (traced_report, traces) = run_sharded_traced(&det_cfg, threads);
    assert_eq!(
        traced_report.digest(),
        digests[0],
        "tracing perturbed the run"
    );
    let mut traced_events = 0usize;
    for (g, trace) in traces.iter().enumerate() {
        let conf = check_trace(trace, &*det_cfg.quorum)
            .unwrap_or_else(|d| panic!("item {g} diverged from the serial system: {d}"));
        assert_eq!(
            conf.committed as u64, traced_report.item_commits[g],
            "item {g}: trace commits vs report tally"
        );
        traced_events += conf.events;
    }
    println!(
        "conformance: {} items, {traced_events} trace events, all conformant",
        traces.len()
    );
    assert_eq!(
        traced_report.metrics.lemma_violations, 0,
        "violations: {:?}",
        traced_report.metrics.violations
    );

    // 3. Scaling sweep: aggregate simulated throughput vs shard count.
    println!();
    let widths = [8, 10, 14, 12, 12];
    row(
        &[
            "shards".into(),
            "clients".into(),
            "ops/sec".into(),
            "speedup".into(),
            "wall secs".into(),
        ],
        &widths,
    );
    rule(&widths);
    let mut sweep_rows = Vec::new();
    let mut baseline_ops = None;
    for shards in [1usize, 2, 4, 8] {
        if shards > max_shards || shards > items {
            continue;
        }
        let c = config(items, shards, secs, seed, theta);
        let start = Instant::now();
        let report = run_sharded(&c, threads);
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(
            report.metrics.lemma_violations, 0,
            "violations: {:?}",
            report.metrics.violations
        );
        let ops = report
            .metrics
            .throughput_ops_per_sec(SimTime::from_secs(secs));
        let base = *baseline_ops.get_or_insert(ops);
        let speedup = ops / base.max(1e-9);
        row(
            &[
                format!("{shards}"),
                format!("{}", c.clients()),
                format!("{ops:.0}"),
                format!("{speedup:.2}x"),
                format!("{wall:.3}"),
            ],
            &widths,
        );
        sweep_rows.push(
            JsonObject::new()
                .field("shards", &shards)
                .field("clients", &c.clients())
                .field("agg_ops_per_sec", &ops)
                .field("speedup_vs_single_shard", &speedup)
                .field("wall_secs", &wall)
                .build(),
        );
    }
    rule(&widths);

    // Item-count scaling at the max shard count: per-item arena cost.
    let mut items_rows = Vec::new();
    for n_items in [items, items * 4, items * 16] {
        let c = config(n_items, max_shards.min(n_items), secs.min(5), seed, theta);
        let start = Instant::now();
        let report = run_sharded(&c, threads);
        let wall = start.elapsed().as_secs_f64();
        let ops = report
            .metrics
            .throughput_ops_per_sec(SimTime::from_secs(secs.min(5)));
        items_rows.push(
            JsonObject::new()
                .field("items", &n_items)
                .field("agg_ops_per_sec", &ops)
                .field("wall_secs", &wall)
                .build(),
        );
    }

    let json = JsonObject::new()
        .field("cores", &default_threads())
        .field("threads", &threads)
        .field("items", &items)
        .field("zipf_theta", &theta)
        .field("sim_duration_secs", &secs)
        .field("determinism_digest", &format!("{:#018x}", digests[0]))
        .field("determinism_thread_counts", "1/2/4 identical")
        .field("conformant_items", &traces.len())
        .field_raw("shard_scaling", &serde_json::array_raw(sweep_rows))
        .field_raw("item_scaling", &serde_json::array_raw(items_rows))
        .build();
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_shard.json", json).expect("write BENCH_shard.json");
    println!("\nwrote results/BENCH_shard.json");

    println!(
        "\nExpected shape: aggregate simulated ops/sec grows ~linearly with the \
         shard count (independent items, one event loop each); the digest line \
         certifies the 8-shard result is bit-identical however many OS threads \
         executed it."
    );
}
