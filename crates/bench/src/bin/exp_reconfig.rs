//! E4 — §4 reconfiguration correctness: spies reconfigure quorums mid-run;
//! executions still project onto the single-copy system **A**, with
//! generation/version invariants (I1–I3) monitored at every step.

use nested_txn::Value;
use qc_bench::{row, rule};
use qc_reconfig::{check_rc_random, RcItemSpec, RcRunOptions, RcSystemSpec};
use qc_replication::{UserSpec, UserStep};

fn spec(replicas: usize, max_reconfigs: u32) -> RcSystemSpec {
    let u: Vec<usize> = (0..replicas).collect();
    RcSystemSpec {
        items: vec![RcItemSpec {
            name: "x".into(),
            init: Value::Int(0),
            replicas,
            initial_config: quorum::generators::majority(&u),
            alt_configs: vec![
                quorum::generators::rowa(&u),
                quorum::generators::raow(&u),
            ],
        }],
        users: vec![
            UserSpec::new(vec![
                UserStep::Write(0, Value::Int(7)),
                UserStep::Read(0),
            ]),
            UserSpec::new(vec![
                UserStep::Read(0),
                UserStep::Write(0, Value::Int(9)),
                UserStep::Read(0),
            ]),
        ],
        max_reconfigs_per_user: max_reconfigs,
    }
}

fn main() {
    println!("E4 — reconfiguration: correctness across dynamic quorum changes\n");
    let widths = [28, 6, 10, 12, 9];
    row(
        &[
            "regime".into(),
            "runs".into(),
            "Σ|β|".into(),
            "reconfigs".into(),
            "refuted".into(),
        ],
        &widths,
    );
    rule(&widths);

    let regimes = [
        ("3 replicas, no spies", 3usize, 0u32, 2u32, 12u64),
        ("3 replicas, 1 per user", 3, 1, 2, 12),
        ("3 replicas, 2 per user", 3, 2, 2, 12),
        ("5 replicas, 2 per user", 5, 2, 2, 8),
        ("3 replicas, abortive", 3, 2, 40, 10),
    ];
    for (name, replicas, max_rc, abort_weight, runs) in regimes {
        let s = spec(replicas, max_rc);
        let mut b_total = 0usize;
        let mut reconfigs = 0usize;
        let mut refuted = 0u64;
        for seed in 0..runs {
            match check_rc_random(
                &s,
                RcRunOptions {
                    seed,
                    abort_weight,
                    max_steps: 60_000,
                    ..RcRunOptions::default()
                },
            ) {
                Ok(r) => {
                    b_total += r.b_len;
                    reconfigs += r.reconfigs_committed;
                }
                Err(e) => {
                    refuted += 1;
                    eprintln!("REFUTED ({name}, seed {seed}): {e}");
                }
            }
        }
        row(
            &[
                name.into(),
                format!("{runs}"),
                format!("{b_total}"),
                format!("{reconfigs}"),
                format!("{refuted}"),
            ],
            &widths,
        );
    }
    println!(
        "\nExpected: refuted = 0; reconfigs > 0 whenever spies are enabled. \
         New configurations are written to an *old* write-quorum only — the \
         Goldman–Lynch improvement over Gifford's old-and-new rule."
    );
}
