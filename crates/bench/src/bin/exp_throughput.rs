//! Q3 — concurrency: simulator throughput vs read fraction, and 2PL
//! contention statistics on the concurrent nested-transaction runtime.
//!
//! Part 1 (simulator): closed-loop clients; throughput falls as the write
//! fraction rises because writes pay two quorum phases.
//!
//! Part 2 (2PL runtime): committed user transactions, aborts, and lock
//! conflicts as contention (number of users on the same items) grows.

use std::sync::Arc;

use qc_bench::{contention_spec, row, rule};
use qc_cc::{check_theorem11, CcRunOptions};
use qc_sim::{run, ContactPolicy, SimConfig, SimTime};
use quorum::{Majority, QuorumSpec, Rowa};

fn main() {
    println!("Q3a — simulated throughput vs read fraction (n = 5, 8 clients, LAN)\n");
    let widths = [14, 8, 14, 12, 12];
    row(
        &[
            "quorum".into(),
            "reads".into(),
            "ops/sec".into(),
            "read p50".into(),
            "write p50".into(),
        ],
        &widths,
    );
    rule(&widths);

    let systems: Vec<Arc<dyn QuorumSpec + Send + Sync>> =
        vec![Arc::new(Rowa::new(5)), Arc::new(Majority::new(5))];
    for q in &systems {
        for rf in [0.5, 0.9, 0.99] {
            let mut c = SimConfig::new(Arc::clone(q));
            c.clients = 8;
            c.read_fraction = rf;
            c.contact = ContactPolicy::MinimalQuorum;
            c.think_time = SimTime::from_millis(0);
            c.duration = SimTime::from_secs(20);
            c.seed = 23;
            let m = run(c);
            row(
                &[
                    q.label(),
                    format!("{rf:.2}"),
                    format!("{:.0}", m.throughput_ops_per_sec(SimTime::from_secs(20))),
                    format!("{:.2}ms", m.reads.percentile_ms(50.0)),
                    format!("{:.2}ms", m.writes.percentile_ms(50.0)),
                ],
                &widths,
            );
        }
        rule(&widths);
    }

    println!("\nQ3b — 2PL contention on the concurrent nested-transaction runtime\n");
    let widths = [8, 6, 12, 12, 12, 12];
    row(
        &[
            "users".into(),
            "runs".into(),
            "commit rate".into(),
            "aborts/run".into(),
            "confl/run".into(),
            "γ ops/run".into(),
        ],
        &widths,
    );
    rule(&widths);
    for users in [1usize, 2, 3, 4, 5] {
        let spec = contention_spec(users, 3);
        let runs = 8u64;
        let mut commits = 0usize;
        let mut aborts = 0usize;
        let mut conflicts = 0u64;
        let mut gamma = 0usize;
        for seed in 0..runs {
            let r = check_theorem11(
                &spec,
                CcRunOptions {
                    seed,
                    abort_weight: 1,
                    max_steps: 200_000,
                    ..CcRunOptions::default()
                },
            )
            .expect("theorem 11 must hold");
            commits += r.users_committed;
            aborts += r.aborts;
            conflicts += r.lock_conflicts;
            gamma += r.gamma_len;
        }
        row(
            &[
                format!("{users}"),
                format!("{runs}"),
                format!(
                    "{:.2}",
                    commits as f64 / (runs as usize * users) as f64
                ),
                format!("{:.1}", aborts as f64 / runs as f64),
                format!("{:.1}", conflicts as f64 / runs as f64),
                format!("{:.0}", gamma as f64 / runs as f64),
            ],
            &widths,
        );
    }

    println!(
        "\nExpected shape: throughput rises with the read fraction (ROWA most \
         sharply); lock conflicts and deadlock-victim aborts grow with contention \
         while Theorem 11 keeps holding."
    );
}
