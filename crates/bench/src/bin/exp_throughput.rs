//! Q3 — concurrency: simulator throughput vs read fraction, and 2PL
//! contention statistics on the concurrent nested-transaction runtime.
//!
//! Part 1 (simulator): closed-loop clients; throughput falls as the write
//! fraction rises because writes pay two quorum phases. The parameter grid
//! runs on the parallel sweep runner ([`qc_sim::run_batch`]) — per-cell
//! metrics are bit-identical to serial runs because every cell carries its
//! own seed.
//!
//! Part 2 (2PL runtime): committed user transactions, aborts, and lock
//! conflicts as contention (number of users on the same items) grows; the
//! per-seed runs fan out over [`qc_sim::par_map`].
//!
//! Also writes `results/BENCH_hotpath.json`: hot-path throughput numbers
//! (simulator ops/sec under both event-queue implementations, the
//! event-queue hold-model microbench, explorer schedules/sec with
//! checkpointed vs full-replay state reconstruction, sweep-runner thread
//! scaling at 1/2/4/8 threads) for before/after comparisons.

use std::sync::Arc;
use std::time::Instant;

use ioa::{ExploreLimits, ReplayStrategy};
use nested_txn::Value;
use qc_bench::{
    contention_spec, dump_trace, faults_flag, flag_value, obs_flags, row, rule, trace_dir_flag,
    trace_file_stem,
};
use qc_cc::{check_theorem11, CcRunOptions};
use qc_replication::{
    verify_exhaustive_with, ConfigChoice, ItemSpec, SystemSpec, UserSpec, UserStep,
};
use qc_sim::{
    check_trace, default_threads, par_map, run, run_batch, run_observed, run_sharded,
    run_traced, ContactPolicy, EventQueue, FaultPlan, ItemDist, Metrics, MultiConfig,
    QueueImpl, QueueKind, SimConfig, SimTime, Workload,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use quorum::{Majority, QuorumSpec, Rowa};
use serde_json::JsonObject;

// 60 simulated seconds keeps each cell's wall time around 100ms, long
// enough that per-run setup (arena/queue construction, page faults)
// amortizes out of the ops/wall-second rate; at 20s the fixed cost was a
// double-digit percentage of the measurement.
const SIM_SECS: u64 = 60;

/// Run a cell `BENCH_TRIALS` times and report the fastest wall time. The
/// metrics are identical across trials (the simulator is deterministic),
/// so trials only de-noise the wall-clock rate: min is the standard
/// estimator for a noise floor that is strictly additive.
const BENCH_TRIALS: usize = 3;

fn run_timed(c: &SimConfig) -> (Metrics, f64) {
    let mut best: Option<(Metrics, f64)> = None;
    for _ in 0..BENCH_TRIALS {
        let start = Instant::now();
        let m = run(c.clone());
        let wall = start.elapsed().as_secs_f64();
        best = match best {
            Some((pm, pw)) if pw <= wall => Some((pm, pw)),
            _ => Some((m, wall)),
        };
    }
    best.expect("BENCH_TRIALS > 0")
}

fn sim_grid(faults: &FaultPlan, seed: u64, secs: u64) -> Vec<(String, f64, SimConfig)> {
    let systems: Vec<Arc<dyn QuorumSpec + Send + Sync>> =
        vec![Arc::new(Rowa::new(5)), Arc::new(Majority::new(5))];
    let mut grid = Vec::new();
    for q in &systems {
        for rf in [0.5, 0.9, 0.99] {
            let mut c = SimConfig::new(Arc::clone(q));
            c.clients = 8;
            c.read_fraction = rf;
            c.contact = ContactPolicy::MinimalQuorum;
            c.think_time = SimTime::from_millis(0);
            c.duration = SimTime::from_secs(secs);
            c.seed = seed;
            c.faults = faults.clone();
            grid.push((q.label(), rf, c));
        }
    }
    grid
}

/// One sampled inter-event delay (µs) for the event-queue hold model —
/// the same distributions as `benches/queue_bench.rs`, so the JSON rows
/// and the interactive bench agree.
fn hold_delay(dist: &str, rng: &mut ChaCha8Rng) -> u64 {
    match dist {
        "near-future" => rng.gen_range(200..600),
        "wan-tail" => {
            if rng.gen_range(0u32..10) == 0 {
                rng.gen_range(100_000..5_000_000)
            } else {
                rng.gen_range(500..2_000)
            }
        }
        _ => rng.gen_range(0..2), // same-instant floods
    }
}

/// Hold-model cost of one pop+reschedule on a steady-state queue of
/// `size` pending events, in ns/op: batches of 10k ops until 100 ms of
/// wall clock has accumulated.
fn hold_ns_per_op(kind: QueueKind, dist: &str, size: u64) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut q: QueueImpl<u64> = QueueImpl::new(kind);
    for seq in 0..size {
        q.push(SimTime(hold_delay(dist, &mut rng)), seq, seq);
    }
    let mut seq = size;
    let mut ops = 0u64;
    let start = Instant::now();
    loop {
        for _ in 0..10_000 {
            let (t, _, payload) = q.pop().expect("hold queue never drains");
            seq += 1;
            q.push(t + SimTime(hold_delay(dist, &mut rng)), seq, payload);
        }
        ops += 10_000;
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 100 {
            return elapsed.as_nanos() as f64 / ops as f64;
        }
    }
}

/// The seed scope used for the explorer throughput numbers: one write then
/// one read on 2 ROWA replicas — the largest single-user scope from E6.
fn explorer_scope() -> SystemSpec {
    SystemSpec {
        items: vec![ItemSpec {
            name: "x".into(),
            init: Value::Int(0),
            replicas: 2,
            config: ConfigChoice::Rowa,
        }],
        plain: vec![],
        users: vec![UserSpec::new(vec![
            UserStep::Write(0, Value::Int(1)),
            UserStep::Read(0),
        ])],
        strategy: Default::default(),
    }
}

fn main() {
    // `--faults "<plan>"` injects a deterministic fault plan into every
    // simulator cell (throughput then reflects the outage windows);
    // `--seed N` re-seeds the cells; `--secs N` rescales the simulated
    // duration; `--trace-dir DIR` records and conformance-checks each cell.
    let faults = faults_flag().unwrap_or_default();
    let seed: u64 = flag_value("--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(23);
    let secs: u64 = flag_value("--secs")
        .map(|s| s.parse().expect("--secs takes an integer"))
        .unwrap_or(SIM_SECS);
    // `--threads N` caps the sweep threads; `--items N` adds a sharded
    // multi-item throughput section (`--zipf THETA` skews its keyspace).
    let threads = flag_value("--threads")
        .map(|s| s.parse().expect("--threads takes an integer"))
        .unwrap_or_else(default_threads);
    // `--obs-dir DIR` / `--snapshot-every SECS` instrument every cell and
    // dump its event log + snapshots under DIR.
    let obs = obs_flags();
    println!(
        "Q3a — simulated throughput vs read fraction (n = 5, 8 clients, LAN, \
         {threads}-thread sweep)\n"
    );
    if !faults.is_empty() {
        println!("injected fault plan: {faults}\n");
    }
    let widths = [14, 8, 12, 12, 12, 12];
    row(
        &[
            "quorum".into(),
            "reads".into(),
            "ops/sim-s".into(),
            "ops/wall-s".into(),
            "read p50".into(),
            "write p50".into(),
        ],
        &widths,
    );
    rule(&widths);

    let grid = sim_grid(&faults, seed, secs);
    // Each cell reports (metrics, its own wall-clock seconds): simulated
    // throughput is the model's prediction, wall throughput is what the
    // simulator itself sustains — reported side by side below.
    let timed: Vec<(Metrics, f64)> = match trace_dir_flag() {
        Some(dir) => {
            // Traced cells run serially (identical metrics); each trace is
            // dumped as JSON and must pass the Theorem 10 conformance check.
            std::fs::create_dir_all(&dir).expect("create --trace-dir");
            grid.iter()
                .map(|(label, rf, c)| {
                    let start = Instant::now();
                    let (m, trace) = run_traced(c.clone());
                    let wall = start.elapsed().as_secs_f64();
                    let name = format!(
                        "throughput_{}_rf{}.json",
                        trace_file_stem(label),
                        (rf * 100.0) as u32
                    );
                    let path = dump_trace(&dir, &name, &trace);
                    let report = check_trace(&trace, c.quorum.as_ref()).unwrap_or_else(|d| {
                        panic!("{name}: trace failed conformance: {d}")
                    });
                    println!(
                        "trace {}: {} events, {} committed, conformant",
                        path.display(),
                        report.events,
                        report.committed
                    );
                    (m, wall)
                })
                .collect()
        }
        None if obs.enabled() => {
            // Observed cells: same sweep, with instrumentation on; the
            // recordings are dumped per cell under `--obs-dir`.
            let options = obs.options();
            let cells: Vec<(String, f64, SimConfig)> = grid
                .iter()
                .map(|(l, rf, c)| {
                    let mut c = c.clone();
                    c.obs = options;
                    (l.clone(), *rf, c)
                })
                .collect();
            let outs = par_map(cells, threads, |_, (_, _, c)| {
                let start = Instant::now();
                let out = run_observed(c);
                (out, start.elapsed().as_secs_f64())
            });
            outs.into_iter()
                .zip(&grid)
                .map(|(((m, report), wall), (label, rf, _))| {
                    let stem = format!(
                        "throughput_{}_rf{}",
                        trace_file_stem(label),
                        (rf * 100.0) as u32
                    );
                    obs.dump(&stem, &report);
                    (m, wall)
                })
                .collect()
        }
        None => {
            let configs: Vec<SimConfig> = grid.iter().map(|(_, _, c)| c.clone()).collect();
            par_map(configs, threads, |_, c| run_timed(&c))
        }
    };
    let mut sim_rows = Vec::new();
    let mut prev_label = None;
    for ((label, rf, _), (m, wall)) in grid.iter().zip(&timed) {
        if prev_label.is_some() && prev_label != Some(label) {
            rule(&widths);
        }
        prev_label = Some(label);
        let ops = m.throughput_ops_per_sec(SimTime::from_secs(secs));
        let committed = m.reads.successes + m.writes.successes;
        let wall_ops = committed as f64 / wall.max(1e-9);
        row(
            &[
                label.clone(),
                format!("{rf:.2}"),
                format!("{ops:.0}"),
                format!("{wall_ops:.0}"),
                format!("{:.2}ms", m.reads.percentile_ms(50.0)),
                format!("{:.2}ms", m.writes.percentile_ms(50.0)),
            ],
            &widths,
        );
        sim_rows.push(
            JsonObject::new()
                .field("quorum", label.as_str())
                .field("read_fraction", rf)
                .field("event_queue", "calendar")
                .field("ops_per_sim_sec", &ops)
                .field("ops_per_wall_sec", &wall_ops)
                .field("wall_secs", wall)
                .build(),
        );
    }
    rule(&widths);

    // Heap-oracle pass: the same grid with the event queue forced to the
    // binary-heap implementation. Both implementations pop the identical
    // (time, seq) order, so the metrics must be bit-identical — asserted
    // below on the plain path — and the wall-throughput delta isolates
    // what the calendar queue itself contributes.
    let heap_configs: Vec<SimConfig> = grid
        .iter()
        .map(|(_, _, c)| {
            let mut c = c.clone();
            c.queue = QueueKind::Heap;
            c
        })
        .collect();
    let plain_run = trace_dir_flag().is_none() && !obs.enabled();
    let heap_timed: Vec<(Metrics, f64)> = par_map(heap_configs, threads, |_, c| run_timed(&c));
    for (((label, rf, _), (m_cal, _)), (m, wall)) in
        grid.iter().zip(&timed).zip(&heap_timed)
    {
        if plain_run {
            assert_eq!(
                format!("{m_cal:?}"),
                format!("{m:?}"),
                "{label} rf={rf}: heap oracle diverged from calendar queue"
            );
        }
        let ops = m.throughput_ops_per_sec(SimTime::from_secs(secs));
        let committed = m.reads.successes + m.writes.successes;
        let wall_ops = committed as f64 / wall.max(1e-9);
        sim_rows.push(
            JsonObject::new()
                .field("quorum", label.as_str())
                .field("read_fraction", rf)
                .field("event_queue", "heap")
                .field("ops_per_sim_sec", &ops)
                .field("ops_per_wall_sec", &wall_ops)
                .field("wall_secs", wall)
                .build(),
        );
    }

    // Optional sharded multi-item section: `--items N [--zipf THETA]`
    // runs the sharded simulator over an N-item keyspace (8 shards, or one
    // per item if fewer) and reports the aggregate throughput. The full
    // shard-scaling study lives in `exp_shard_scaling`.
    if let Some(items) = flag_value("--items") {
        let items: usize = items.parse().expect("--items takes an integer");
        let theta: f64 = flag_value("--zipf")
            .map(|s| s.parse().expect("--zipf takes a float"))
            .unwrap_or(0.0);
        let mut mc = MultiConfig::new(Arc::new(Majority::new(5)));
        mc.contact = ContactPolicy::MinimalQuorum;
        mc.items = items;
        mc.shards = items.min(8);
        mc.clients_per_shard = 2;
        mc.workload = Workload::Closed {
            think: SimTime::from_millis(0),
        };
        mc.dist = if theta > 0.0 {
            ItemDist::Zipfian { theta }
        } else {
            ItemDist::Uniform
        };
        mc.duration = SimTime::from_secs(secs);
        mc.seed = seed;
        mc.faults = faults.clone();
        mc.obs = obs.options();
        let report = run_sharded(&mc, threads);
        obs.dump("throughput_sharded", &report.obs);
        let ops = report
            .metrics
            .throughput_ops_per_sec(SimTime::from_secs(secs));
        let hottest = report
            .item_commits
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .map(|(g, &c)| (g, c))
            .unwrap_or((0, 0));
        println!(
            "\nsharded: {items} items / {} shards / {} clients, zipf {theta}: \
             {ops:.0} ops/sec aggregate, hottest item {} ({} commits), \
             {} lemma violations",
            mc.shards,
            mc.clients(),
            hottest.0,
            hottest.1,
            report.metrics.lemma_violations
        );
    }

    // Sweep-runner thread scaling (wall-clock). The bare 6-cell grid
    // finishes in well under a second, so a measurement over it is
    // dominated by thread spawn and scheduler noise; replicate the grid
    // with distinct seeds until the batch amortizes that overhead, and
    // record the speedup over the 1-thread wall explicitly. (On a
    // single-core host the speedup stays ~1; the counts still validate
    // determinism.)
    let mut scaling_rows = Vec::new();
    let replicas = 4usize;
    let batch = || -> Vec<SimConfig> {
        (0..replicas)
            .flat_map(|k| {
                sim_grid(&faults, seed + 1_000 * (k as u64 + 1), secs)
                    .into_iter()
                    .map(|(_, _, c)| c)
            })
            .collect()
    };
    let mut wall1 = None;
    for t in [1usize, 2, 4, 8] {
        let configs = batch();
        let cells = configs.len();
        let start = Instant::now();
        let out = run_batch(configs, t);
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(out.len(), cells);
        let w1 = *wall1.get_or_insert(wall);
        scaling_rows.push(
            JsonObject::new()
                .field("threads", &t)
                .field("cells", &cells)
                .field("wall_secs", &wall)
                .field("speedup", &(w1 / wall.max(1e-9)))
                .build(),
        );
    }

    // Event-queue hold model: ns per pop+reschedule for both queue
    // implementations across delay distributions and queue sizes. The
    // simulators themselves run in the near-future/16 cell.
    let mut queue_rows = Vec::new();
    for dist in ["near-future", "wan-tail", "same-instant"] {
        for size in [16u64, 256, 4096] {
            let cal = hold_ns_per_op(QueueKind::Calendar, dist, size);
            let heap = hold_ns_per_op(QueueKind::Heap, dist, size);
            queue_rows.push(
                JsonObject::new()
                    .field("distribution", dist)
                    .field("size", &size)
                    .field("calendar_ns_per_op", &cal)
                    .field("heap_ns_per_op", &heap)
                    .build(),
            );
        }
    }

    // Explorer throughput: checkpointed state reconstruction vs the
    // full-replay baseline on the seed scope (identical stats; the work
    // counters and wall time differ).
    let limits = ExploreLimits {
        max_depth: 80,
        max_schedules: 5_000_000,
    };
    let mut explorer_rows = Vec::new();
    for (name, strategy) in [
        ("full_replay", ReplayStrategy::FullReplay),
        ("checkpoint_every_4", ReplayStrategy::default()),
    ] {
        let start = Instant::now();
        let report = verify_exhaustive_with(&explorer_scope(), limits, strategy)
            .expect("seed scope verifies");
        let secs = start.elapsed().as_secs_f64();
        let sched_per_sec = report.stats.schedules as f64 / secs.max(1e-9);
        explorer_rows.push(
            JsonObject::new()
                .field("strategy", name)
                .field("schedules", &report.stats.schedules)
                .field("replayed_steps", &report.profile.replayed_steps)
                .field("checkpoints_taken", &report.profile.checkpoints_taken)
                .field("wall_secs", &secs)
                .field("schedules_per_sec", &sched_per_sec)
                .build(),
        );
    }

    let json = JsonObject::new()
        .field("cores", &threads)
        .field("sim_duration_secs", &secs)
        .field_raw("simulator", &serde_json::array_raw(sim_rows))
        .field_raw("event_queue", &serde_json::array_raw(queue_rows))
        .field_raw("thread_scaling", &serde_json::array_raw(scaling_rows))
        .field_raw("explorer", &serde_json::array_raw(explorer_rows))
        .build();
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_hotpath.json", json).expect("write BENCH_hotpath.json");
    println!("\nwrote results/BENCH_hotpath.json");

    println!("\nQ3b — 2PL contention on the concurrent nested-transaction runtime\n");
    let widths = [8, 6, 12, 12, 12, 12];
    row(
        &[
            "users".into(),
            "runs".into(),
            "commit rate".into(),
            "aborts/run".into(),
            "confl/run".into(),
            "γ ops/run".into(),
        ],
        &widths,
    );
    rule(&widths);
    for users in [1usize, 2, 3, 4, 5] {
        let spec = contention_spec(users, 3);
        let runs = 8u64;
        let reports = par_map((0..runs).collect::<Vec<u64>>(), threads, |_, seed| {
            check_theorem11(
                &spec,
                CcRunOptions {
                    seed,
                    abort_weight: 1,
                    max_steps: 200_000,
                    ..CcRunOptions::default()
                },
            )
            .expect("theorem 11 must hold")
        });
        let commits: usize = reports.iter().map(|r| r.users_committed).sum();
        let aborts: usize = reports.iter().map(|r| r.aborts).sum();
        let conflicts: u64 = reports.iter().map(|r| r.lock_conflicts).sum();
        let gamma: usize = reports.iter().map(|r| r.gamma_len).sum();
        row(
            &[
                format!("{users}"),
                format!("{runs}"),
                format!("{:.2}", commits as f64 / (runs as usize * users) as f64),
                format!("{:.1}", aborts as f64 / runs as f64),
                format!("{:.1}", conflicts as f64 / runs as f64),
                format!("{:.0}", gamma as f64 / runs as f64),
            ],
            &widths,
        );
    }

    println!(
        "\nExpected shape: throughput rises with the read fraction (ROWA most \
         sharply); lock conflicts and deadlock-victim aborts grow with contention \
         while Theorem 11 keeps holding."
    );
}
