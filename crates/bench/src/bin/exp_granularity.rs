//! A2 — lock-granularity ablation: Moss's nested rules vs a flat
//! top-level-exclusive baseline.
//!
//! Both granularities satisfy Theorem 11 (each is serializable at the
//! copies); the difference is concurrency. Nested locking releases an
//! object to other top-level transactions as soon as the writer's chain
//! commits upward; the flat baseline pins the object for a whole top-level
//! lifetime and therefore blocks (and deadlock-aborts) more under
//! contention.

use qc_bench::{contention_spec, row, rule};
use qc_cc::{check_theorem11, CcRunOptions, LockGranularity};

fn main() {
    println!("A2 — nested vs top-level-exclusive locking under contention\n");
    let widths = [24, 8, 12, 12, 12, 9];
    row(
        &[
            "variant".into(),
            "users".into(),
            "commit rate".into(),
            "aborts/run".into(),
            "confl/run".into(),
            "refuted".into(),
        ],
        &widths,
    );
    rule(&widths);

    for users in [2usize, 3, 4] {
        for (name, granularity) in [
            ("nested (Moss)", LockGranularity::Nested),
            ("top-level excl.", LockGranularity::TopLevelExclusive),
        ] {
            let spec = contention_spec(users, 3);
            let runs = 10u64;
            let mut commits = 0usize;
            let mut aborts = 0usize;
            let mut conflicts = 0u64;
            let mut refuted = 0u64;
            for seed in 0..runs {
                match check_theorem11(
                    &spec,
                    CcRunOptions {
                        seed,
                        granularity,
                        max_steps: 200_000,
                        ..CcRunOptions::default()
                    },
                ) {
                    Ok(r) => {
                        commits += r.users_committed;
                        aborts += r.aborts;
                        conflicts += r.lock_conflicts;
                    }
                    Err(e) => {
                        refuted += 1;
                        eprintln!("REFUTED ({name}, {users} users, seed {seed}): {e}");
                    }
                }
            }
            row(
                &[
                    format!("{name}, {users}u"),
                    format!("{users}"),
                    format!("{:.2}", commits as f64 / (runs as usize * users) as f64),
                    format!("{:.1}", aborts as f64 / runs as f64),
                    format!("{:.1}", conflicts as f64 / runs as f64),
                    format!("{refuted}"),
                ],
                &widths,
            );
        }
        rule(&widths);
    }

    println!(
        "Expected shape: refuted = 0 for both — Theorem 11 composes with any \
         copy-level-serializable algorithm, which is the point of the experiment. \
         The conflict/abort columns show the classic granularity trade: the flat \
         baseline conflicts *earlier* (whole top-level transactions exclude each \
         other), which prevents the half-acquired states that deadlock, at the \
         price of admitting no concurrency within an object. Nested locking's \
         advantage needs intra-transaction parallelism, which these sequential \
         user programs deliberately do not exercise."
    );
}
