//! E1 — Theorem 10 at scale: for randomly generated system shapes and
//! randomly scheduled executions of the replicated serial system **B**,
//! the erasure of replica accesses is always a schedule of the
//! non-replicated system **A**.
//!
//! Prints one row per generator regime: runs checked, total β/α
//! operations, and failures (which must be 0).

use qc_bench::{row, rule};
use qc_replication::{check_random, random_spec, GenParams, RunOptions};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn regime(name: &str, params: GenParams, abort_weight: u32, runs: u64) {
    let widths = [22, 6, 10, 10, 9, 9];
    let mut rng = ChaCha8Rng::seed_from_u64(0xE1);
    let mut b_total = 0usize;
    let mut a_total = 0usize;
    let mut tms = 0usize;
    let mut failures = 0u64;
    for seed in 0..runs {
        let spec = random_spec(&mut rng, &params);
        match check_random(
            &spec,
            RunOptions {
                seed,
                abort_weight,
                max_steps: 15_000,
                ..RunOptions::default()
            },
        ) {
            Ok(r) => {
                b_total += r.b_len;
                a_total += r.a_len;
                tms += r.tms_in_beta;
            }
            Err(e) => {
                failures += 1;
                eprintln!("REFUTED ({name}, seed {seed}): {e}");
            }
        }
    }
    row(
        &[
            name.into(),
            format!("{runs}"),
            format!("{b_total}"),
            format!("{a_total}"),
            format!("{tms}"),
            format!("{failures}"),
        ],
        &widths,
    );
}

fn main() {
    println!("E1 — Theorem 10: project-and-replay over random systems and schedules\n");
    let widths = [22, 6, 10, 10, 9, 9];
    row(
        &[
            "regime".into(),
            "runs".into(),
            "Σ|β|".into(),
            "Σ|α|".into(),
            "Σ TMs".into(),
            "refuted".into(),
        ],
        &widths,
    );
    rule(&widths);

    regime("small, no aborts", GenParams::default(), 0, 120);
    regime("small, light aborts", GenParams::default(), 3, 120);
    regime("small, heavy aborts", GenParams::default(), 50, 120);
    regime(
        "wide (5 users)",
        GenParams {
            users: (4, 5),
            ..GenParams::default()
        },
        3,
        60,
    );
    regime(
        "deep (nesting 4)",
        GenParams {
            max_depth: 4,
            sub_probability: 0.5,
            ..GenParams::default()
        },
        3,
        60,
    );
    regime(
        "many replicas (7-9)",
        GenParams {
            replicas: (7, 9),
            ..GenParams::default()
        },
        3,
        40,
    );

    println!("\nExpected: refuted = 0 in every regime (the paper's Theorem 10).");
}
