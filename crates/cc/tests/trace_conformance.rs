//! Cross-validation of the schedule-trace conformance oracle against the
//! concurrency-control pipeline.
//!
//! Theorem 11's hypothesis produces, for each concurrent run γ of system
//! **C**, a serial witness σ that is a schedule of system **B**.  That σ is
//! exactly the kind of schedule the trace adapter
//! [`qc_replication::trace_from_schedule`] consumes, so every serialized
//! concurrent run must also pass the Theorem 10 conformance checker the
//! simulator traces are replayed through.

use std::collections::BTreeMap;

use nested_txn::Value;
use qc_cc::{final_dm_values, run_concurrent, serialize_return_order, CcRunOptions};
use qc_replication::{
    check_trace, trace_from_schedule, ConfigChoice, ItemId, ItemSpec, SystemSpec, UserSpec,
    UserStep,
};

fn two_user_spec() -> SystemSpec {
    SystemSpec {
        items: vec![ItemSpec {
            name: "x".into(),
            init: Value::Int(0),
            replicas: 3,
            config: ConfigChoice::Majority,
        }],
        plain: vec![],
        users: vec![
            UserSpec::new(vec![UserStep::Write(0, Value::Int(5)), UserStep::Read(0)]),
            UserSpec::new(vec![UserStep::Read(0), UserStep::Write(0, Value::Int(6))]),
        ],
        strategy: Default::default(),
    }
}

/// Serialize each concurrent run and replay its trace through the checker.
#[test]
fn serialized_concurrent_runs_conform() {
    let spec = two_user_spec();
    let mut committed = 0usize;
    for seed in 0..12u64 {
        let opts = CcRunOptions {
            seed,
            ..CcRunOptions::default()
        };
        let (gamma, layout, _conflicts, _quiescent) =
            run_concurrent(&spec, opts).expect("system C runs");
        let sigma = serialize_return_order(&gamma).expect("serial witness exists");
        let trace =
            trace_from_schedule(&layout, ItemId(0), &sigma).expect("sigma adapts to a trace");
        let il = &layout.items[&ItemId(0)];
        let site_of: BTreeMap<_, _> = il
            .dm_objects
            .iter()
            .enumerate()
            .map(|(s, o)| (*o, s))
            .collect();
        let config = il.config.map(|o| site_of[o]);
        let report = check_trace(&trace, &config)
            .unwrap_or_else(|d| panic!("seed {seed}: sigma trace diverged: {d}"));
        committed += report.committed;
    }
    assert!(committed > 0, "no TM ever committed across the seeds");
}

/// Aborting recovery victims must not break conformance: aborted attempts
/// appear in sigma as never-created transactions, and the projection erases
/// them down to bare REQUEST-CREATE / ABORT pairs.
#[test]
fn aborted_victims_still_conform() {
    let spec = two_user_spec();
    let mut aborted = 0usize;
    for seed in 0..12u64 {
        let opts = CcRunOptions {
            seed,
            abort_weight: 25,
            ..CcRunOptions::default()
        };
        let (gamma, layout, _conflicts, _quiescent) =
            run_concurrent(&spec, opts).expect("system C runs");
        let sigma = serialize_return_order(&gamma).expect("serial witness exists");
        let trace =
            trace_from_schedule(&layout, ItemId(0), &sigma).expect("sigma adapts to a trace");
        let il = &layout.items[&ItemId(0)];
        let site_of: BTreeMap<_, _> = il
            .dm_objects
            .iter()
            .enumerate()
            .map(|(s, o)| (*o, s))
            .collect();
        let config = il.config.map(|o| site_of[o]);
        let report = check_trace(&trace, &config)
            .unwrap_or_else(|d| panic!("seed {seed}: sigma trace diverged: {d}"));
        aborted += report.aborted;
    }
    assert!(aborted > 0, "abort_weight 25 never aborted a TM");
}

/// The checker's reconstructed version-number ceiling agrees with the copies
/// the concurrent run left behind: Lemma 7 across the module boundary.
#[test]
fn checker_max_vn_matches_final_dm_state() {
    let spec = two_user_spec();
    for seed in [0u64, 3, 9] {
        let opts = CcRunOptions {
            seed,
            ..CcRunOptions::default()
        };
        let (gamma, layout, _conflicts, quiescent) =
            run_concurrent(&spec, opts).expect("system C runs");
        if !quiescent {
            continue;
        }
        let sigma = serialize_return_order(&gamma).expect("serial witness exists");
        let trace =
            trace_from_schedule(&layout, ItemId(0), &sigma).expect("sigma adapts to a trace");
        let il = &layout.items[&ItemId(0)];
        let site_of: BTreeMap<_, _> = il
            .dm_objects
            .iter()
            .enumerate()
            .map(|(s, o)| (*o, s))
            .collect();
        let config = il.config.map(|o| site_of[o]);
        let report = check_trace(&trace, &config).expect("sigma trace conforms");
        let finals = final_dm_values(&spec, &sigma);
        assert!(!finals.is_empty(), "seed {seed}: sigma must replay in B");
        let copy_max = finals
            .iter()
            .filter(|(name, _)| il.dm_names.contains(name))
            .filter_map(|(_, v)| match v {
                Value::Versioned { vn, .. } => Some(*vn),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        assert_eq!(
            report.max_vn, copy_max,
            "seed {seed}: checker ceiling vs final copy state"
        );
    }
}
