//! Theorem 11, executable: combining the replication algorithm with a
//! concurrency-control algorithm that is serially correct at the copy
//! level yields a system serially correct at the logical-item level.
//!
//! The harness builds the concurrent system **C** — the *same* user
//! transactions and quorum-consensus TMs as system **B**, composed with the
//! [`ConcurrentScheduler`] and Moss-locking resilient objects — runs it
//! under random interleaving (with random deadlock-victim aborts), and then
//! checks both halves of the theorem:
//!
//! 1. **hypothesis** (provided by 2PL): the return-order serialization σ of
//!    γ replays on system **B**, and `γ|T = σ|T` for every non-orphan
//!    transaction;
//! 2. **conclusion** (Theorem 10 + 11): erasing replica accesses from σ
//!    yields a schedule of the non-replicated system **A**.

use std::error::Error;
use std::fmt;

use ioa::{Executor, IoaError, Schedule, WeightedPolicy};
use nested_txn::{ReadWriteObject, SystemWfMonitor, Tid, TxnOp, Value};
use qc_replication::{
    build_replicated_parts, build_system_b, check_projection, ops_of_transaction, Layout,
    SystemSpec, Theorem10Error,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::locking::{LockGranularity, LockingObject};
use crate::scheduler::ConcurrentScheduler;
use crate::serialize::{non_orphans, serialize_return_order, SerializeError};

/// Options for a concurrent run.
#[derive(Clone, Copy, Debug)]
pub struct CcRunOptions {
    /// RNG seed.
    pub seed: u64,
    /// Maximum steps.
    pub max_steps: usize,
    /// Relative weight of scheduler aborts (others weigh 100). Aborts are
    /// the deadlock-resolution mechanism: when a cycle blocks all other
    /// operations, only aborts remain enabled and one fires.
    pub abort_weight: u32,
    /// Lock granularity for the resilient objects.
    pub granularity: LockGranularity,
}

impl Default for CcRunOptions {
    fn default() -> Self {
        CcRunOptions {
            seed: 0,
            max_steps: 60_000,
            abort_weight: 1,
            granularity: LockGranularity::Nested,
        }
    }
}

/// Why a Theorem 11 check failed.
#[derive(Debug)]
pub enum Theorem11Error {
    /// The concurrent run itself failed (composition or monitor error).
    Run(IoaError),
    /// γ was not quiescent, so no return-order witness exists.
    Serialize(SerializeError),
    /// σ was refused by system **B** — the copy-level serializability
    /// hypothesis failed.
    HypothesisRefused(IoaError),
    /// `γ|T ≠ σ|T` for a non-orphan transaction.
    ProjectionMismatch {
        /// The transaction at which the projections differ.
        tid: Tid,
    },
    /// The Theorem 10 projection of σ was refused by system **A**.
    ConclusionRefused(Theorem10Error),
}

impl fmt::Display for Theorem11Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Theorem11Error::Run(e) => write!(f, "concurrent run failed: {e}"),
            Theorem11Error::Serialize(e) => write!(f, "serialization failed: {e}"),
            Theorem11Error::HypothesisRefused(e) => {
                write!(f, "σ is not a schedule of B: {e}")
            }
            Theorem11Error::ProjectionMismatch { tid } => {
                write!(f, "γ and σ differ at non-orphan {tid}")
            }
            Theorem11Error::ConclusionRefused(e) => {
                write!(f, "projection of σ is not a schedule of A: {e}")
            }
        }
    }
}

impl Error for Theorem11Error {}

/// Statistics from a successful Theorem 11 check.
#[derive(Clone, Debug)]
pub struct Theorem11Report {
    /// Length of the concurrent schedule γ.
    pub gamma_len: usize,
    /// Length of the serial witness σ.
    pub sigma_len: usize,
    /// Length of the non-replicated projection α.
    pub alpha_len: usize,
    /// Number of transactions aborted in γ (deadlock victims and
    /// spontaneous aborts).
    pub aborts: usize,
    /// Number of top-level user transactions that committed.
    pub users_committed: usize,
    /// Total lock conflicts observed across all objects.
    pub lock_conflicts: u64,
    /// Whether the run reached quiescence before the step bound.
    pub quiescent: bool,
    /// Non-orphan transactions whose projections were verified.
    pub non_orphans_checked: usize,
}

/// Build and run the concurrent system **C**, returning `(γ, layout,
/// lock-conflicts, quiescent)`.
///
/// # Errors
///
/// Composition errors or monitor violations.
pub fn run_concurrent(
    spec: &SystemSpec,
    opts: CcRunOptions,
) -> Result<(Schedule<TxnOp>, Layout, u64, bool), IoaError> {
    let (layout, nodes, tms) = build_replicated_parts(spec);
    let mut system: ioa::System<TxnOp> = ioa::System::new();
    system.push(Box::new(ConcurrentScheduler::new()));
    for (oid, name) in &layout.plain_objects {
        let init = &spec.plain[oid.0 as usize].init;
        system.push(Box::new(LockingObject::with_granularity(
            *oid,
            name.clone(),
            init.clone(),
            opts.granularity,
        )));
    }
    for il in layout.items.values() {
        for (r, oid) in il.dm_objects.iter().enumerate() {
            system.push(Box::new(LockingObject::with_granularity(
                *oid,
                il.dm_names[r].clone(),
                Value::versioned(0, il.item.init.clone()),
                opts.granularity,
            )));
        }
    }
    for n in nodes {
        system.push(n);
    }
    for tm in tms {
        system.push(tm);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let abort_weight = opts.abort_weight;
    let execution = Executor::new()
        .max_steps(opts.max_steps)
        .policy(WeightedPolicy::new(move |op: &TxnOp| match op {
            TxnOp::Abort { .. } => abort_weight,
            _ => 100,
        }))
        .monitor(SystemWfMonitor::transactions_only())
        .run(&mut system, &mut rng)?;
    let conflicts: u64 = system
        .components_as::<LockingObject>()
        .map(|(_, o)| o.conflicts())
        .sum();
    let quiescent = execution.is_quiescent();
    Ok((execution.into_schedule(), layout, conflicts, quiescent))
}

/// Run system **C** and check both halves of Theorem 11.
///
/// # Errors
///
/// [`Theorem11Error`] describing the first failed stage.
pub fn check_theorem11(
    spec: &SystemSpec,
    opts: CcRunOptions,
) -> Result<Theorem11Report, Theorem11Error> {
    let (gamma, layout, lock_conflicts, quiescent) =
        run_concurrent(spec, opts).map_err(Theorem11Error::Run)?;
    let sigma = serialize_return_order(&gamma).map_err(Theorem11Error::Serialize)?;

    // Hypothesis: σ is a schedule of B…
    let mut b = build_system_b(spec);
    b.system
        .replay(&sigma)
        .map_err(Theorem11Error::HypothesisRefused)?;
    // …agreeing with γ at every non-orphan transaction.
    let mut checked = 0;
    for tid in non_orphans(&gamma) {
        if layout.is_replica_access_op(&TxnOp::Abort { tid: tid.clone() }) {
            continue; // accesses are not transactions with automata
        }
        if ops_of_transaction(&tid, &gamma) != ops_of_transaction(&tid, &sigma) {
            return Err(Theorem11Error::ProjectionMismatch { tid });
        }
        checked += 1;
    }

    // Conclusion: the Theorem 10 projection of σ is a schedule of A.
    let t10 = check_projection(spec, &layout, &sigma)
        .map_err(Theorem11Error::ConclusionRefused)?;

    let aborts = gamma
        .iter()
        .filter(|op| matches!(op, TxnOp::Abort { .. }))
        .count();
    let users_committed = gamma
        .iter()
        .filter(|op| {
            matches!(op, TxnOp::Commit { tid, .. } if tid.depth() == 1)
        })
        .count();
    Ok(Theorem11Report {
        gamma_len: gamma.len(),
        sigma_len: sigma.len(),
        alpha_len: t10.a_len,
        aborts,
        users_committed,
        lock_conflicts,
        quiescent,
        non_orphans_checked: checked,
    })
}

/// A sanity check used by tests: replaying σ on **B** leaves the DM states
/// consistent with γ's committed effects (exposed for integration tests).
pub fn final_dm_values(spec: &SystemSpec, sigma: &Schedule<TxnOp>) -> Vec<(String, Value)> {
    let mut b = build_system_b(spec);
    if b.system.replay(sigma).is_err() {
        return Vec::new();
    }
    b.system
        .components_as::<ReadWriteObject>()
        .map(|(name, o)| (name, o.data().clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_replication::{ConfigChoice, ItemSpec, PlainObjectSpec, TmStrategy, UserSpec, UserStep};

    fn spec(users: usize) -> SystemSpec {
        let mut u = Vec::new();
        for k in 0..users {
            u.push(UserSpec::new(vec![
                UserStep::Write(0, Value::Int(100 + k as i64)),
                UserStep::Read(0),
                UserStep::Write(1, Value::Int(200 + k as i64)),
                UserStep::Read(1),
            ]));
        }
        SystemSpec {
            items: vec![
                ItemSpec {
                    name: "x".into(),
                    init: Value::Int(0),
                    replicas: 3,
                    config: ConfigChoice::Majority,
                },
                ItemSpec {
                    name: "y".into(),
                    init: Value::Int(0),
                    replicas: 2,
                    config: ConfigChoice::Rowa,
                },
            ],
            plain: vec![PlainObjectSpec {
                name: "p".into(),
                init: Value::Int(0),
            }],
            users: u,
            strategy: TmStrategy::Eager,
        }
    }

    #[test]
    fn theorem11_holds_two_users() {
        let mut any_conflict = false;
        for seed in 0..12 {
            let report = check_theorem11(
                &spec(2),
                CcRunOptions {
                    seed,
                    ..CcRunOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            any_conflict |= report.lock_conflicts > 0;
            assert!(report.quiescent, "seed {seed} did not quiesce");
        }
        assert!(
            any_conflict,
            "expected at least one genuine lock conflict across seeds"
        );
    }

    #[test]
    fn theorem11_holds_three_users_high_contention() {
        for seed in 0..6 {
            let report = check_theorem11(
                &spec(3),
                CcRunOptions {
                    seed,
                    max_steps: 120_000,
                    ..CcRunOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(report.sigma_len <= report.gamma_len);
        }
    }

    #[test]
    fn theorem11_with_nested_users() {
        let s = SystemSpec {
            items: vec![ItemSpec {
                name: "x".into(),
                init: Value::Int(0),
                replicas: 3,
                config: ConfigChoice::Majority,
            }],
            plain: vec![],
            users: vec![
                UserSpec::new(vec![
                    UserStep::Sub(UserSpec::new(vec![UserStep::Write(0, Value::Int(1))])),
                    UserStep::Read(0),
                ]),
                UserSpec::new(vec![UserStep::Read(0)]),
            ],
            strategy: TmStrategy::Eager,
        };
        for seed in 0..8 {
            check_theorem11(
                &s,
                CcRunOptions {
                    seed,
                    ..CcRunOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn theorem11_with_coarse_locking() {
        use crate::locking::LockGranularity;
        for seed in 0..6 {
            let report = check_theorem11(
                &spec(2),
                CcRunOptions {
                    seed,
                    granularity: LockGranularity::TopLevelExclusive,
                    max_steps: 150_000,
                    ..CcRunOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(report.quiescent, "seed {seed} did not quiesce");
        }
    }

    #[test]
    fn theorem11_with_heavier_aborts() {
        for seed in 0..6 {
            let report = check_theorem11(
                &spec(2),
                CcRunOptions {
                    seed,
                    abort_weight: 8,
                    max_steps: 120_000,
                    ..CcRunOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(report.aborts > 0 || report.users_committed == 2);
        }
    }
}
