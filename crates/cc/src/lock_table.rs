//! A flat, item-keyed Moss lock table for the discrete-event simulator.
//!
//! [`LockingObject`](crate::LockingObject) realises Moss read/write locking
//! as one I/O automaton per object, driven by `TxnOp`s and holding cloned
//! [`Tid`](nested_txn::Tid)s — right for model checking, too slow and too
//! allocation-happy for the simulator's hot loop. [`LockTable`] is the same
//! algorithm re-hosted for the flat DM arena: locks are keyed by local item
//! index, transactions are named by copy-free [`PathTid`]s (a client/epoch
//! pair plus a packed tree path), and the grant/inherit/abort rules are the
//! Moss rules verbatim:
//!
//! * a **read** lock is grantable iff every *write* holder is an ancestor
//!   of the requestor;
//! * a **write** lock is grantable iff *every* holder (read or write) is an
//!   ancestor of the requestor;
//! * when a transaction **commits**, its locks and undo entries are
//!   inherited by its parent;
//! * when a subtree **aborts**, its locks are discarded and its writes are
//!   undone in reverse order (the version-stack suffix owned by the
//!   subtree), yielding the value the item must be restored to.
//!
//! Waiters queue FIFO per item and are granted in order on release, with
//! no barging past the queue *except* by requests that are compatible with
//! the current holders (ancestors' re-entry must not deadlock behind
//! strangers). An explicit *compensation latch* blocks all grants on an
//! item while an aborted subtree's restore-write is still in flight, so no
//! transaction ever observes an uncommitted (to-be-undone) value.

use std::collections::VecDeque;

/// Maximum tree-path depth a [`PathTid`] can name.
pub const MAX_PATH: usize = 12;

/// A copy-free transaction name for the lock table: `client` and `epoch`
/// identify one top-level transaction instance (epochs distinguish
/// successive transactions of the same client — names from different
/// epochs are never related); `path` is the position within that
/// transaction's tree, the top-level transaction itself being the empty
/// path.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathTid {
    client: u32,
    epoch: u32,
    len: u8,
    path: [u16; MAX_PATH],
}

impl std::fmt::Debug for PathTid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}e{}", self.client, self.epoch)?;
        for i in 0..self.len as usize {
            write!(f, ".{}", self.path[i])?;
        }
        Ok(())
    }
}

impl PathTid {
    /// The top-level transaction of `client`'s `epoch`-th program.
    #[must_use]
    pub fn top(client: u32, epoch: u32) -> Self {
        PathTid {
            client,
            epoch,
            len: 0,
            path: [0; MAX_PATH],
        }
    }

    /// The `index`-th child.
    ///
    /// # Panics
    ///
    /// If the path would exceed [`MAX_PATH`].
    #[must_use]
    pub fn child(&self, index: u16) -> Self {
        let mut c = *self;
        assert!((c.len as usize) < MAX_PATH, "PathTid deeper than MAX_PATH");
        c.path[c.len as usize] = index;
        c.len += 1;
        c
    }

    /// The parent, or `None` for the top-level transaction.
    #[must_use]
    pub fn parent(&self) -> Option<Self> {
        if self.len == 0 {
            return None;
        }
        let mut p = *self;
        p.len -= 1;
        p.path[p.len as usize] = 0;
        Some(p)
    }

    /// The owning client.
    #[must_use]
    pub fn client(&self) -> u32 {
        self.client
    }

    /// The owning epoch.
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The tree path from the top-level transaction to this one (empty for
    /// the top-level transaction itself) — child indices, outermost first.
    /// Lets an event loop map a granted waiter back to its program node.
    #[must_use]
    pub fn path(&self) -> &[u16] {
        &self.path[..self.len as usize]
    }

    /// Whether `self` is an ancestor of `other` (every transaction is an
    /// ancestor of itself). Names from different clients or epochs are
    /// unrelated.
    #[must_use]
    pub fn is_ancestor_of(&self, other: &Self) -> bool {
        self.client == other.client
            && self.epoch == other.epoch
            && self.len <= other.len
            && self.path[..self.len as usize] == other.path[..self.len as usize]
    }
}

/// Read or write lock.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Shared with other readers and with ancestors.
    Read,
    /// Exclusive except against ancestors.
    Write,
}

/// The outcome of [`LockTable::acquire`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Acquire {
    /// The lock was granted immediately.
    Granted,
    /// The request was queued; the ticket names it for
    /// [`LockTable::is_waiting`] and timeout handling.
    Queued(u64),
}

#[derive(Clone, Debug)]
struct Waiter {
    tid: PathTid,
    mode: LockMode,
    ticket: u64,
}

#[derive(Clone, Debug, Default)]
struct ItemLocks {
    read_holders: Vec<PathTid>,
    write_holders: Vec<PathTid>,
    /// Version/undo stack: `(owner, previous value)` per performed write,
    /// oldest first. Entries climb the tree with lock inheritance and the
    /// suffix owned by an aborted subtree is popped to find the restore
    /// value.
    undo: Vec<(PathTid, u64)>,
    waiters: VecDeque<Waiter>,
    /// While set, an aborted subtree's compensating restore-write is in
    /// flight and nothing may be granted on this item.
    comp_pending: bool,
}

impl ItemLocks {
    fn grantable(&self, tid: &PathTid, mode: LockMode) -> bool {
        if self.comp_pending {
            return false;
        }
        let writes_ok = self.write_holders.iter().all(|h| h.is_ancestor_of(tid));
        match mode {
            LockMode::Read => writes_ok,
            LockMode::Write => {
                writes_ok && self.read_holders.iter().all(|h| h.is_ancestor_of(tid))
            }
        }
    }

    fn add_holder(&mut self, tid: PathTid, mode: LockMode) {
        let list = match mode {
            LockMode::Read => &mut self.read_holders,
            LockMode::Write => &mut self.write_holders,
        };
        if !list.contains(&tid) {
            list.push(tid);
        }
    }
}

/// A Moss lock table over `items` local item slots. All operations are
/// deterministic: holder lists and wait queues are scanned in insertion
/// order.
#[derive(Clone, Debug)]
pub struct LockTable {
    items: Vec<ItemLocks>,
    next_ticket: u64,
    conflicts: u64,
}

impl LockTable {
    /// An empty table over `items` slots.
    #[must_use]
    pub fn new(items: usize) -> Self {
        LockTable {
            items: vec![ItemLocks::default(); items],
            next_ticket: 0,
            conflicts: 0,
        }
    }

    /// Number of lock requests that had to queue.
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Request `mode` on `item` for `tid`: granted immediately if
    /// compatible with the current holders, queued FIFO otherwise.
    pub fn acquire(&mut self, item: usize, tid: PathTid, mode: LockMode) -> Acquire {
        let it = &mut self.items[item];
        if it.grantable(&tid, mode) {
            it.add_holder(tid, mode);
            return Acquire::Granted;
        }
        self.conflicts += 1;
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        it.waiters.push_back(Waiter { tid, mode, ticket });
        Acquire::Queued(ticket)
    }

    /// Whether the queued request `ticket` is still waiting on `item`.
    #[must_use]
    pub fn is_waiting(&self, item: usize, ticket: u64) -> bool {
        self.items[item].waiters.iter().any(|w| w.ticket == ticket)
    }

    /// The first holder a `mode` request by `tid` on `item` conflicts
    /// with — the proximate cause a causal tracer should charge a queued
    /// wait to. `None` when nothing conflicts (the request would be
    /// granted, or it queues only behind the compensation latch — check
    /// [`LockTable::comp_pending`]). Holder lists are scanned in
    /// insertion order, writers first, so the answer is deterministic.
    #[must_use]
    pub fn blocking_holder(&self, item: usize, tid: &PathTid, mode: LockMode) -> Option<PathTid> {
        let it = &self.items[item];
        let writes = it.write_holders.iter().find(|h| !h.is_ancestor_of(tid));
        match mode {
            LockMode::Read => writes.copied(),
            LockMode::Write => writes
                .or_else(|| it.read_holders.iter().find(|h| !h.is_ancestor_of(tid)))
                .copied(),
        }
    }

    /// Record a performed write by `tid` on `item`: `prev` is the logical
    /// value the item held before the write (the undo value). The caller
    /// must already hold the write lock.
    pub fn note_write(&mut self, item: usize, tid: PathTid, prev: u64) {
        debug_assert!(
            self.items[item].write_holders.contains(&tid),
            "note_write without the write lock"
        );
        self.items[item].undo.push((tid, prev));
    }

    /// `tid` committed: its holders and undo entries on `item` are
    /// inherited by its parent (Moss lock inheritance). No-op if `tid`
    /// holds nothing on `item`.
    ///
    /// # Panics
    ///
    /// If `tid` is a top-level transaction (use
    /// [`LockTable::release_top`]).
    pub fn inherit(&mut self, item: usize, tid: &PathTid) {
        let parent = tid.parent().expect("inherit called on a top-level tid");
        let it = &mut self.items[item];
        for list in [&mut it.read_holders, &mut it.write_holders] {
            if list.iter().any(|h| h == tid) {
                list.retain(|h| h != tid);
                if !list.contains(&parent) {
                    list.push(parent);
                }
            }
        }
        for (owner, _) in &mut it.undo {
            if owner == tid {
                *owner = parent;
            }
        }
    }

    /// The top-level transaction of `(client, epoch)` committed: drop all
    /// its holders and undo entries on `item` (the writes are permanent).
    /// Returns whether anything was released (the caller should then
    /// [`LockTable::rescan`] the item).
    pub fn release_top(&mut self, item: usize, client: u32, epoch: u32) -> bool {
        let it = &mut self.items[item];
        let before = it.read_holders.len() + it.write_holders.len();
        let mine = |h: &PathTid| h.client == client && h.epoch == epoch;
        it.read_holders.retain(|h| !mine(h));
        it.write_holders.retain(|h| !mine(h));
        it.undo.retain(|(owner, _)| !mine(owner));
        before != it.read_holders.len() + it.write_holders.len()
    }

    /// The subtree rooted at `prefix` aborted: discard its holders and
    /// queued waiters on `item`, pop the undo-stack suffix it owns, and
    /// return the value the item must be restored to (`None` when the
    /// subtree performed no write on `item`).
    ///
    /// When a restore value is returned the item's *compensation latch* is
    /// set: nothing is granted until [`LockTable::compensation_done`].
    pub fn abort_subtree(&mut self, item: usize, prefix: &PathTid) -> Option<u64> {
        let it = &mut self.items[item];
        it.read_holders.retain(|h| !prefix.is_ancestor_of(h));
        it.write_holders.retain(|h| !prefix.is_ancestor_of(h));
        it.waiters.retain(|w| !prefix.is_ancestor_of(&w.tid));
        let mut restore = None;
        while let Some((owner, prev)) = it.undo.last() {
            if prefix.is_ancestor_of(owner) {
                restore = Some(*prev);
                it.undo.pop();
            } else {
                break;
            }
        }
        debug_assert!(
            it.undo.iter().all(|(o, _)| !prefix.is_ancestor_of(o)),
            "aborted subtree's undo entries were not a stack suffix"
        );
        if restore.is_some() {
            it.comp_pending = true;
        }
        restore
    }

    /// The compensating restore-write for `item` committed: lift the latch.
    pub fn compensation_done(&mut self, item: usize) {
        debug_assert!(self.items[item].comp_pending);
        self.items[item].comp_pending = false;
    }

    /// Whether `item` is latched behind an in-flight compensation.
    #[must_use]
    pub fn comp_pending(&self, item: usize) -> bool {
        self.items[item].comp_pending
    }

    /// Grant queued waiters on `item` in FIFO order: the front waiter is
    /// granted while compatible; the scan stops at the first waiter that
    /// is not (no starvation of writers by later readers).
    pub fn rescan(&mut self, item: usize) -> Vec<(PathTid, LockMode, u64)> {
        let it = &mut self.items[item];
        let mut granted = Vec::new();
        while let Some(front) = it.waiters.front() {
            if !it.grantable(&front.tid, front.mode) {
                break;
            }
            let w = it.waiters.pop_front().expect("front exists");
            it.add_holder(w.tid, w.mode);
            granted.push((w.tid, w.mode, w.ticket));
        }
        granted
    }

    /// Test/diagnostic view: `(read holders, write holders, undo depth,
    /// queued waiters)` for `item`.
    #[must_use]
    pub fn snapshot(&self, item: usize) -> (usize, usize, usize, usize) {
        let it = &self.items[item];
        (
            it.read_holders.len(),
            it.write_holders.len(),
            it.undo.len(),
            it.waiters.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn top(c: u32) -> PathTid {
        PathTid::top(c, 0)
    }

    #[test]
    fn path_tid_ancestry() {
        let t = top(3);
        let a = t.child(0);
        let b = a.child(2);
        assert!(t.is_ancestor_of(&t));
        assert!(t.is_ancestor_of(&b));
        assert!(a.is_ancestor_of(&b));
        assert!(!b.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&t.child(1)));
        assert_eq!(b.parent(), Some(a));
        assert_eq!(t.parent(), None);
        // Different clients and different epochs are unrelated.
        assert!(!top(4).is_ancestor_of(&b));
        assert!(!PathTid::top(3, 1).is_ancestor_of(&b));
    }

    #[test]
    fn reads_share_writes_exclude() {
        let mut lt = LockTable::new(1);
        assert_eq!(lt.acquire(0, top(0).child(0), LockMode::Read), Acquire::Granted);
        assert_eq!(lt.acquire(0, top(1).child(0), LockMode::Read), Acquire::Granted);
        // A stranger's write waits behind both readers.
        assert!(matches!(
            lt.acquire(0, top(2).child(0), LockMode::Write),
            Acquire::Queued(_)
        ));
        assert_eq!(lt.conflicts(), 1);
    }

    #[test]
    fn ancestors_do_not_block_descendants() {
        let mut lt = LockTable::new(1);
        let t = top(0);
        let leaf1 = t.child(0);
        // Leaf writes, commits: lock inherited by the top-level.
        assert_eq!(lt.acquire(0, leaf1, LockMode::Write), Acquire::Granted);
        lt.note_write(0, leaf1, 7);
        lt.inherit(0, &leaf1);
        // A sibling leaf of the same transaction can read and write (the
        // holder is now its ancestor)…
        let leaf2 = t.child(1);
        assert_eq!(lt.acquire(0, leaf2, LockMode::Read), Acquire::Granted);
        assert_eq!(lt.acquire(0, leaf2, LockMode::Write), Acquire::Granted);
        // …while a stranger still waits.
        assert!(matches!(
            lt.acquire(0, top(1).child(0), LockMode::Read),
            Acquire::Queued(_)
        ));
    }

    #[test]
    fn release_top_unblocks_fifo_in_order() {
        let mut lt = LockTable::new(1);
        let w = top(0).child(0);
        assert_eq!(lt.acquire(0, w, LockMode::Write), Acquire::Granted);
        let r1 = top(1).child(0);
        let r2 = top(2).child(0);
        let w3 = top(3).child(0);
        let Acquire::Queued(t1) = lt.acquire(0, r1, LockMode::Read) else {
            panic!("r1 should queue")
        };
        let Acquire::Queued(_t2) = lt.acquire(0, r2, LockMode::Read) else {
            panic!("r2 should queue")
        };
        let Acquire::Queued(t3) = lt.acquire(0, w3, LockMode::Write) else {
            panic!("w3 should queue")
        };
        assert!(lt.is_waiting(0, t1));
        lt.inherit(0, &w);
        assert!(lt.release_top(0, 0, 0));
        // Both readers granted; the writer stays queued behind them.
        let granted = lt.rescan(0);
        assert_eq!(granted.len(), 2);
        assert_eq!(granted[0].0, r1);
        assert_eq!(granted[1].0, r2);
        assert!(lt.is_waiting(0, t3));
        // Readers release → writer granted.
        assert!(lt.release_top(0, 1, 0));
        assert!(lt.release_top(0, 2, 0));
        let granted = lt.rescan(0);
        assert_eq!(granted, vec![(w3, LockMode::Write, t3)]);
    }

    #[test]
    fn abort_pops_undo_suffix_and_latches() {
        let mut lt = LockTable::new(1);
        let t = top(0);
        let doomed = t.child(1);
        let leaf_a = t.child(0); // committed branch
        let leaf_b = doomed.child(0); // doomed branch
        // Branch A writes 10 over 0, commits up to the top.
        assert_eq!(lt.acquire(0, leaf_a, LockMode::Write), Acquire::Granted);
        lt.note_write(0, leaf_a, 0);
        lt.inherit(0, &leaf_a);
        // Doomed branch writes 20 over 10, commits up to the doomed node.
        assert_eq!(lt.acquire(0, leaf_b, LockMode::Write), Acquire::Granted);
        lt.note_write(0, leaf_b, 10);
        lt.inherit(0, &leaf_b);
        // Abort the doomed subtree: restore to 10, the committed branch's
        // value; the top-level's own entry survives.
        assert_eq!(lt.abort_subtree(0, &doomed), Some(10));
        assert!(lt.comp_pending(0));
        // Nothing grants while the compensation is in flight — not even
        // the same transaction.
        assert!(matches!(
            lt.acquire(0, t.child(2), LockMode::Read),
            Acquire::Queued(_)
        ));
        lt.compensation_done(0);
        let granted = lt.rescan(0);
        assert_eq!(granted.len(), 1);
        // The committed branch's undo entry is still owned by the top.
        assert_eq!(lt.snapshot(0).2, 1);
    }

    #[test]
    fn blocking_holder_names_the_proximate_conflict() {
        let mut lt = LockTable::new(1);
        let r = top(1).child(0);
        let w = top(2).child(0);
        assert_eq!(lt.acquire(0, r, LockMode::Read), Acquire::Granted);
        // A stranger's write conflicts with the reader.
        assert_eq!(lt.blocking_holder(0, &w, LockMode::Write), Some(r));
        // A stranger's read is compatible with the reader.
        assert_eq!(lt.blocking_holder(0, &top(3).child(0), LockMode::Read), None);
        // An ancestor's holder never blocks its descendant.
        assert_eq!(lt.blocking_holder(0, &top(1).child(0).child(2), LockMode::Write), None);
        // Behind a compensation latch there is no conflicting holder.
        let t = top(4);
        let leaf = t.child(0);
        assert!(lt.release_top(0, 1, 0));
        assert_eq!(lt.acquire(0, leaf, LockMode::Write), Acquire::Granted);
        lt.note_write(0, leaf, 7);
        lt.inherit(0, &leaf);
        assert_eq!(lt.abort_subtree(0, &t), Some(7));
        assert!(lt.comp_pending(0));
        assert_eq!(lt.blocking_holder(0, &top(5).child(0), LockMode::Write), None);
    }

    #[test]
    fn abort_without_writes_restores_nothing() {
        let mut lt = LockTable::new(2);
        let t = top(0);
        let leaf = t.child(0).child(0);
        assert_eq!(lt.acquire(1, leaf, LockMode::Read), Acquire::Granted);
        assert_eq!(lt.abort_subtree(1, &t.child(0)), None);
        assert!(!lt.comp_pending(1));
        assert_eq!(lt.snapshot(1), (0, 0, 0, 0));
    }

    #[test]
    fn abort_discards_queued_waiters_of_the_subtree() {
        let mut lt = LockTable::new(1);
        let stranger = top(9).child(0);
        assert_eq!(lt.acquire(0, stranger, LockMode::Write), Acquire::Granted);
        let t = top(0);
        let leaf = t.child(0).child(3);
        let Acquire::Queued(ticket) = lt.acquire(0, leaf, LockMode::Read) else {
            panic!("should queue")
        };
        lt.abort_subtree(0, &t);
        assert!(!lt.is_waiting(0, ticket));
    }

    #[test]
    fn write_blocked_by_sibling_branch_until_inherited_high_enough() {
        // The suffix property's engine: a sibling branch cannot write
        // while the other branch's holder is not its ancestor.
        let mut lt = LockTable::new(1);
        let t = top(0);
        let d = t.child(0); // subtree that wrote and committed to d
        let leaf_b = d.child(0);
        assert_eq!(lt.acquire(0, leaf_b, LockMode::Write), Acquire::Granted);
        lt.note_write(0, leaf_b, 0);
        lt.inherit(0, &leaf_b); // holder: d
        let other = t.child(1); // sibling branch
        assert!(matches!(
            lt.acquire(0, other, LockMode::Write),
            Acquire::Queued(_)
        ));
        // d commits up to t: now t is the holder, an ancestor of `other`.
        lt.inherit(0, &d);
        let granted = lt.rescan(0);
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].0, other);
    }
}
