//! Moss-style read/write locking with lock inheritance — the copy-level
//! concurrency-control algorithm the paper names as satisfying Theorem 11's
//! hypothesis (via Moss \[19\] and Fekete–Lynch–Merritt–Weihl \[9\]).
//!
//! A [`LockingObject`] is a *resilient* object: besides the `CREATE` /
//! `REQUEST-COMMIT` operations of its accesses, it receives `COMMIT` and
//! `ABORT` information for *every* transaction, which drives lock
//! inheritance and recovery:
//!
//! * an access `T` may acquire a **read lock** when every write-lock
//!   holder is an ancestor of `T`;
//! * an access `T` may acquire a **write lock** when every lock holder
//!   (read or write) is an ancestor of `T`;
//! * when a transaction commits, its locks and versions are inherited by
//!   its parent;
//! * when a transaction aborts, the locks and versions held by it and its
//!   descendants are discarded, restoring the previous version.
//!
//! Versions form a stack whose owners lie on one ancestor chain (a
//! consequence of the write rule), so an abort always removes a suffix.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

use ioa::{Component, OpClass};
use nested_txn::{AccessKind, ObjectId, Tid, TxnOp, Value};

/// Locking granularity: how much of the nested structure the lock rules
/// see.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LockGranularity {
    /// Moss's nested rules: ancestors' locks do not conflict, read locks
    /// are shared. Maximum concurrency within the serializability the
    /// theory requires.
    #[default]
    Nested,
    /// A flat baseline: the object is exclusively owned by one *top-level*
    /// transaction at a time (any access whose top-level ancestor differs
    /// from every current holder's is blocked). Trivially serializable and
    /// strictly less concurrent — the ablation counterpart for
    /// experiment A2.
    TopLevelExclusive,
}

/// A resilient read/write object with Moss locking (see module docs).
#[derive(Clone, Debug)]
pub struct LockingObject {
    id: ObjectId,
    label: String,
    init: Value,
    /// Version stack; the base entry is owned by the root (= committed).
    versions: Vec<(Tid, Value)>,
    read_holders: BTreeSet<Tid>,
    write_holders: BTreeSet<Tid>,
    /// Accesses created but not yet granted + responded.
    pending: BTreeMap<Tid, (AccessKind, Value)>,
    /// Accesses created here (for classification).
    created: BTreeSet<Tid>,
    /// Aborted transactions seen so far: accesses descending from any of
    /// these are orphans and are never granted locks (they could otherwise
    /// acquire locks that no live transaction would ever release).
    aborted: Vec<Tid>,
    /// Count of grant attempts blocked by conflicts (for reporting).
    conflicts: u64,
    granularity: LockGranularity,
}

impl LockingObject {
    /// A locking object with the given initial (committed) value and
    /// Moss's nested locking rules.
    pub fn new(id: ObjectId, label: impl Into<String>, init: Value) -> Self {
        Self::with_granularity(id, label, init, LockGranularity::Nested)
    }

    /// A locking object with an explicit [`LockGranularity`].
    pub fn with_granularity(
        id: ObjectId,
        label: impl Into<String>,
        init: Value,
        granularity: LockGranularity,
    ) -> Self {
        LockingObject {
            id,
            label: label.into(),
            versions: vec![(Tid::root(), init.clone())],
            init,
            read_holders: BTreeSet::new(),
            write_holders: BTreeSet::new(),
            pending: BTreeMap::new(),
            created: BTreeSet::new(),
            aborted: Vec::new(),
            conflicts: 0,
            granularity,
        }
    }

    /// This object's identifier.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The currently visible (top) version's value.
    pub fn current_value(&self) -> &Value {
        &self.versions.last().expect("base version always present").1
    }

    /// The committed (base) value.
    pub fn committed_value(&self) -> &Value {
        &self.versions[0].1
    }

    /// Number of lock-conflict observations so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    fn read_grantable(&self, t: &Tid) -> bool {
        self.write_holders.iter().all(|w| w.is_ancestor_of(t))
    }

    fn write_grantable(&self, t: &Tid) -> bool {
        self.read_holders
            .iter()
            .chain(self.write_holders.iter())
            .all(|h| h.is_ancestor_of(t))
    }

    fn is_orphan(&self, t: &Tid) -> bool {
        self.aborted.iter().any(|a| a.is_ancestor_of(t))
    }

    /// Top-level ancestor (first path component) for the flat baseline.
    fn same_top(a: &Tid, b: &Tid) -> bool {
        a.path().first() == b.path().first()
    }

    fn grantable(&self, t: &Tid, kind: AccessKind) -> bool {
        if self.is_orphan(t) {
            return false;
        }
        let nested_ok = match kind {
            AccessKind::Read => self.read_grantable(t),
            AccessKind::Write => self.write_grantable(t),
        };
        match self.granularity {
            LockGranularity::Nested => nested_ok,
            // The flat baseline adds top-level exclusion *on top of* the
            // nested rules (which still arbitrate siblings within one
            // top-level transaction, keeping the version chain sound).
            LockGranularity::TopLevelExclusive => {
                nested_ok
                    && self
                        .read_holders
                        .iter()
                        .chain(self.write_holders.iter())
                        .all(|h| Self::same_top(h, t))
            }
        }
    }
}

impl Component<TxnOp> for LockingObject {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn classify(&self, op: &TxnOp) -> OpClass {
        match op {
            TxnOp::Create { .. } => {
                if op.access().is_some_and(|s| s.object == self.id) {
                    OpClass::Input
                } else {
                    OpClass::NotMine
                }
            }
            TxnOp::RequestCommit { tid, .. } if self.created.contains(tid) => OpClass::Output,
            // Resilient objects receive commit/abort information for every
            // transaction (the paper's separation of concurrency control
            // from replication lives exactly here).
            TxnOp::Commit { .. } | TxnOp::Abort { .. } => OpClass::Input,
            _ => OpClass::NotMine,
        }
    }

    fn reset(&mut self) {
        self.versions = vec![(Tid::root(), self.init.clone())];
        self.read_holders.clear();
        self.write_holders.clear();
        self.pending.clear();
        self.created.clear();
        self.aborted.clear();
        self.conflicts = 0;
    }

    fn enabled_outputs(&self) -> Vec<TxnOp> {
        self.pending
            .iter()
            .filter(|(t, (kind, _))| self.grantable(t, *kind))
            .map(|(t, (kind, _))| TxnOp::RequestCommit {
                tid: t.clone(),
                value: match kind {
                    AccessKind::Read => self.current_value().clone(),
                    AccessKind::Write => Value::Nil,
                },
            })
            .collect()
    }

    fn apply(&mut self, op: &TxnOp) -> Result<(), String> {
        match op {
            TxnOp::Create { tid, .. } => {
                let spec = op
                    .access()
                    .filter(|s| s.object == self.id)
                    .ok_or_else(|| format!("{}: CREATE for foreign access {tid}", self.label))?;
                if self.created.contains(tid) {
                    return Err(format!("{}: repeated CREATE({tid})", self.label));
                }
                if !self.grantable(tid, spec.kind) {
                    self.conflicts += 1;
                }
                self.created.insert(tid.clone());
                self.pending
                    .insert(tid.clone(), (spec.kind, spec.data.clone()));
                Ok(())
            }
            TxnOp::RequestCommit { tid, value } => {
                let (kind, data) = self
                    .pending
                    .get(tid)
                    .cloned()
                    .ok_or_else(|| format!("{}: REQUEST-COMMIT for non-pending {tid}", self.label))?;
                if !self.grantable(tid, kind) {
                    return Err(format!("{}: lock not grantable to {tid}", self.label));
                }
                match kind {
                    AccessKind::Read => {
                        if value != self.current_value() {
                            return Err(format!(
                                "{}: read {tid} returns {value}, current is {}",
                                self.label,
                                self.current_value()
                            ));
                        }
                        self.read_holders.insert(tid.clone());
                    }
                    AccessKind::Write => {
                        if !value.is_nil() {
                            return Err(format!("{}: write must return nil", self.label));
                        }
                        self.write_holders.insert(tid.clone());
                        self.versions.push((tid.clone(), data));
                    }
                }
                self.pending.remove(tid);
                Ok(())
            }
            TxnOp::Commit { tid, .. } => {
                // Inheritance: locks and versions pass to the parent.
                let Some(parent) = tid.parent() else {
                    return Ok(()); // root never commits, but be permissive
                };
                if self.read_holders.remove(tid) {
                    self.read_holders.insert(parent.clone());
                }
                if self.write_holders.remove(tid) {
                    self.write_holders.insert(parent.clone());
                }
                for (owner, _) in &mut self.versions {
                    if owner == tid {
                        *owner = parent.clone();
                    }
                }
                // A root-owned holder is an ancestor of everything: drop it
                // (equivalent to releasing the lock).
                self.read_holders.remove(&Tid::root());
                self.write_holders.remove(&Tid::root());
                Ok(())
            }
            TxnOp::Abort { tid } => {
                // Recovery: discard everything owned by the aborted subtree.
                self.aborted.push(tid.clone());
                self.read_holders.retain(|h| !tid.is_ancestor_of(h));
                self.write_holders.retain(|h| !tid.is_ancestor_of(h));
                self.versions.retain(|(o, _)| !tid.is_ancestor_of(o));
                self.pending.retain(|t, _| !tid.is_ancestor_of(t));
                debug_assert!(!self.versions.is_empty(), "base version survives aborts");
                Ok(())
            }
            other => Err(format!("{}: unexpected operation {other}", self.label)),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_boxed(&self) -> Box<dyn Component<TxnOp>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_txn::AccessSpec;

    fn t(path: &[u32]) -> Tid {
        Tid::from_path(path)
    }

    fn obj() -> LockingObject {
        LockingObject::new(ObjectId(0), "x", Value::Int(0))
    }

    fn create_access(o: &mut LockingObject, path: &[u32], kind: AccessKind, data: Value) {
        o.apply(&TxnOp::Create {
            tid: t(path),
            access: Some(AccessSpec {
                object: ObjectId(0),
                kind,
                data,
            }),
            param: None,
        })
        .unwrap();
    }

    fn granted(o: &LockingObject, path: &[u32]) -> bool {
        o.enabled_outputs().iter().any(|op| op.tid() == &t(path))
    }

    #[test]
    fn concurrent_readers_allowed() {
        let mut o = obj();
        create_access(&mut o, &[0, 0, 0], AccessKind::Read, Value::Nil);
        create_access(&mut o, &[1, 0, 0], AccessKind::Read, Value::Nil);
        assert!(granted(&o, &[0, 0, 0]));
        assert!(granted(&o, &[1, 0, 0]));
    }

    #[test]
    fn writer_blocks_foreign_reader_until_toplevel_commit() {
        let mut o = obj();
        // T0.0.0.0 writes.
        create_access(&mut o, &[0, 0, 0], AccessKind::Write, Value::Int(7));
        let w = o.enabled_outputs()[0].clone();
        o.apply(&w).unwrap();
        // T0.1.0.0 wants to read: blocked (writer not an ancestor).
        create_access(&mut o, &[1, 0, 0], AccessKind::Read, Value::Nil);
        assert!(!granted(&o, &[1, 0, 0]));
        // Writer's chain commits: access → TM → user → (root).
        o.apply(&TxnOp::Commit {
            tid: t(&[0, 0, 0]),
            value: Value::Nil,
        })
        .unwrap();
        assert!(!granted(&o, &[1, 0, 0]));
        o.apply(&TxnOp::Commit {
            tid: t(&[0, 0]),
            value: Value::Nil,
        })
        .unwrap();
        assert!(!granted(&o, &[1, 0, 0]));
        o.apply(&TxnOp::Commit {
            tid: t(&[0]),
            value: Value::Nil,
        })
        .unwrap();
        // Top-level committed: lock at root = released; reader sees 7.
        assert!(granted(&o, &[1, 0, 0]));
        let r = o.enabled_outputs()[0].clone();
        assert!(matches!(
            &r,
            TxnOp::RequestCommit { value, .. } if value == &Value::Int(7)
        ));
    }

    #[test]
    fn descendant_reads_ancestors_uncommitted_write() {
        let mut o = obj();
        // The TM T0.0.0 writes via one access, then reads via another.
        create_access(&mut o, &[0, 0, 0, 0], AccessKind::Write, Value::Int(5));
        let w = o.enabled_outputs()[0].clone();
        o.apply(&w).unwrap();
        o.apply(&TxnOp::Commit {
            tid: t(&[0, 0, 0, 0]),
            value: Value::Nil,
        })
        .unwrap();
        // Sibling access under the same TM: write lock now held by the TM
        // (an ancestor), so the read is granted and sees 5.
        create_access(&mut o, &[0, 0, 0, 1], AccessKind::Read, Value::Nil);
        assert!(granted(&o, &[0, 0, 0, 1]));
        let r = o.enabled_outputs()[0].clone();
        assert!(matches!(
            &r,
            TxnOp::RequestCommit { value, .. } if value == &Value::Int(5)
        ));
    }

    #[test]
    fn abort_rolls_back_versions_and_locks() {
        let mut o = obj();
        create_access(&mut o, &[0, 0, 0], AccessKind::Write, Value::Int(9));
        let w = o.enabled_outputs()[0].clone();
        o.apply(&w).unwrap();
        assert_eq!(o.current_value(), &Value::Int(9));
        // The whole user T0.0 aborts.
        o.apply(&TxnOp::Abort { tid: t(&[0]) }).unwrap();
        assert_eq!(o.current_value(), &Value::Int(0));
        // Foreign reader now proceeds.
        create_access(&mut o, &[1, 0, 0], AccessKind::Read, Value::Nil);
        assert!(granted(&o, &[1, 0, 0]));
    }

    #[test]
    fn read_locks_block_foreign_writers() {
        let mut o = obj();
        create_access(&mut o, &[0, 0, 0], AccessKind::Read, Value::Nil);
        let r = o.enabled_outputs()[0].clone();
        o.apply(&r).unwrap();
        create_access(&mut o, &[1, 0, 0], AccessKind::Write, Value::Int(1));
        assert!(!granted(&o, &[1, 0, 0]));
        // Reader aborts (e.g. deadlock victim): writer unblocked.
        o.apply(&TxnOp::Abort { tid: t(&[0, 0, 0]) }).unwrap();
        assert!(granted(&o, &[1, 0, 0]));
    }

    #[test]
    fn conflict_counter_increments() {
        let mut o = obj();
        create_access(&mut o, &[0, 0, 0], AccessKind::Write, Value::Int(1));
        let w = o.enabled_outputs()[0].clone();
        o.apply(&w).unwrap();
        assert_eq!(o.conflicts(), 0);
        create_access(&mut o, &[1, 0, 0], AccessKind::Write, Value::Int(2));
        assert_eq!(o.conflicts(), 1);
    }
}
