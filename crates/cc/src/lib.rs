//! Concurrency control for nested transaction systems, and the executable
//! form of the paper's Theorem 11.
//!
//! The paper's modularity result: *any* concurrency-control algorithm that
//! guarantees serializability at the level of the individual data copies,
//! combined with the quorum-consensus replication algorithm, yields a
//! system that is serializable at the level of the logical data items —
//! "the effect is just like an execution on a single copy database".
//!
//! This crate supplies the pieces the theorem quantifies over:
//!
//! * [`ConcurrentScheduler`] — the serial scheduler minus its serializing
//!   preconditions: siblings interleave, and running transactions can be
//!   aborted (recovery / deadlock victims);
//! * [`LockingObject`] — Moss-style read/write locking with lock
//!   inheritance and version-stack recovery, the copy-level algorithm the
//!   paper cites via Moss \[19\] and Fekete–Lynch–Merritt–Weihl \[9\];
//! * [`serialize_return_order`] — the construction of the serial witness
//!   schedule σ from a concurrent schedule γ;
//! * [`check_theorem11`] — the end-to-end harness: run the concurrent
//!   system **C**, check σ against system **B** (the hypothesis), and check
//!   the Theorem 10 projection of σ against system **A** (the conclusion).
//!
//! # Example
//!
//! ```
//! use qc_cc::{check_theorem11, CcRunOptions};
//! use qc_replication::{ConfigChoice, ItemSpec, SystemSpec, UserSpec, UserStep};
//! use nested_txn::Value;
//!
//! let spec = SystemSpec {
//!     items: vec![ItemSpec {
//!         name: "x".into(),
//!         init: Value::Int(0),
//!         replicas: 3,
//!         config: ConfigChoice::Majority,
//!     }],
//!     plain: vec![],
//!     users: vec![
//!         UserSpec::new(vec![UserStep::Write(0, Value::Int(1)), UserStep::Read(0)]),
//!         UserSpec::new(vec![UserStep::Read(0)]),
//!     ],
//!     strategy: Default::default(),
//! };
//! let report = check_theorem11(&spec, CcRunOptions::default())?;
//! assert!(report.sigma_len <= report.gamma_len);
//! # Ok::<(), qc_cc::Theorem11Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lock_table;
mod locking;
mod scheduler;
mod serialize;
mod theorem11;

pub use lock_table::{Acquire, LockMode, LockTable, PathTid, MAX_PATH};
pub use locking::{LockGranularity, LockingObject};
pub use scheduler::ConcurrentScheduler;
pub use serialize::{non_orphans, serialize_return_order, SerializeError};
pub use theorem11::{
    check_theorem11, final_dm_values, run_concurrent, CcRunOptions, Theorem11Error,
    Theorem11Report,
};
