//! Constructing the witness serial schedule σ from a concurrent schedule γ.
//!
//! *Serial correctness* (paper §2.2): γ is serially correct with respect to
//! serial system **S** for transaction `T` when `γ|T = σ|T` for some
//! schedule σ of **S**. This module builds the natural candidate σ: the
//! depth-first linearisation of γ in *return order* — each child's entire
//! subtree is inlined immediately before its `COMMIT`, and aborted children
//! appear as bare `ABORT`s (the serial meaning of abort is "never ran").
//! Under two-phase locking with lock inheritance, return order is an
//! equivalent serial order, so replaying σ on system **B** should succeed;
//! a refusal refutes the combination of the concurrency-control and
//! replication algorithms.

use std::collections::BTreeMap;

use ioa::Schedule;
use nested_txn::{Tid, TxnOp};

/// Why σ could not be constructed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SerializeError {
    /// A non-orphan transaction never returned: γ must be quiescent (every
    /// created transaction returned) for the return-order witness to exist.
    Incomplete {
        /// The unfinished transaction.
        tid: Tid,
    },
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Incomplete { tid } => {
                write!(f, "transaction {tid} did not return; γ is not quiescent")
            }
        }
    }
}

impl std::error::Error for SerializeError {}

/// Per-transaction event list: the operations of `γ|T`, in order.
fn buckets(gamma: &Schedule<TxnOp>) -> BTreeMap<Tid, Vec<TxnOp>> {
    let mut map: BTreeMap<Tid, Vec<TxnOp>> = BTreeMap::new();
    for op in gamma.iter() {
        let owner = match op {
            // CREATE and REQUEST-COMMIT are operations of the named
            // transaction (or its object, for accesses — same bucket).
            TxnOp::Create { tid, .. } | TxnOp::RequestCommit { tid, .. } => tid.clone(),
            // REQUEST-CREATE and returns are operations of the parent.
            TxnOp::RequestCreate { tid, .. }
            | TxnOp::Commit { tid, .. }
            | TxnOp::Abort { tid } => tid.parent().expect("root has no requests or returns"),
        };
        map.entry(owner).or_default().push(op.clone());
    }
    map
}

/// Build σ from a *quiescent* concurrent schedule γ.
///
/// By construction `σ|T = γ|T` for every transaction that is inlined —
/// exactly the non-orphans (aborted subtrees are represented by their
/// `ABORT` alone).
///
/// # Errors
///
/// [`SerializeError::Incomplete`] if some created, non-aborted transaction
/// has not returned (its subtree cannot be serialised).
pub fn serialize_return_order(gamma: &Schedule<TxnOp>) -> Result<Schedule<TxnOp>, SerializeError> {
    let buckets = buckets(gamma);
    let mut out = Vec::new();
    emit(&Tid::root(), &buckets, &mut out)?;
    Ok(out.into())
}

fn emit(
    tid: &Tid,
    buckets: &BTreeMap<Tid, Vec<TxnOp>>,
    out: &mut Vec<TxnOp>,
) -> Result<(), SerializeError> {
    let Some(ops) = buckets.get(tid) else {
        return Ok(()); // requested but never created and never aborted
    };
    for op in ops {
        match op {
            TxnOp::Create { .. }
            | TxnOp::RequestCreate { .. }
            | TxnOp::RequestCommit { .. } => out.push(op.clone()),
            TxnOp::Commit { tid: child, .. } => {
                emit(child, buckets, out)?;
                out.push(op.clone());
            }
            TxnOp::Abort { .. } => out.push(op.clone()),
        }
    }
    // Quiescence check: every child this transaction created must have
    // returned (otherwise its CREATE is stranded outside σ).
    let requested: Vec<&Tid> = ops
        .iter()
        .filter_map(|op| match op {
            TxnOp::RequestCreate { tid, .. } => Some(tid),
            _ => None,
        })
        .collect();
    for child in requested {
        let returned = ops.iter().any(|op| op.is_return_for(child));
        let created = buckets.contains_key(child);
        if created && !returned {
            return Err(SerializeError::Incomplete { tid: child.clone() });
        }
    }
    Ok(())
}

/// The non-orphan transactions of γ: those with no aborted ancestor.
pub fn non_orphans(gamma: &Schedule<TxnOp>) -> Vec<Tid> {
    let aborted: Vec<Tid> = gamma
        .iter()
        .filter_map(|op| match op {
            TxnOp::Abort { tid } => Some(tid.clone()),
            _ => None,
        })
        .collect();
    let mut tids: Vec<Tid> = buckets(gamma).into_keys().collect();
    tids.retain(|t| !aborted.iter().any(|a| a.is_ancestor_of(t)));
    tids
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_txn::Value;

    fn t(path: &[u32]) -> Tid {
        Tid::from_path(path)
    }

    fn create(path: &[u32]) -> TxnOp {
        TxnOp::Create {
            tid: t(path),
            access: None,
            param: None,
        }
    }

    fn rc(path: &[u32], v: i64) -> TxnOp {
        TxnOp::RequestCommit {
            tid: t(path),
            value: Value::Int(v),
        }
    }

    fn commit(path: &[u32], v: i64) -> TxnOp {
        TxnOp::Commit {
            tid: t(path),
            value: Value::Int(v),
        }
    }

    #[test]
    fn interleaved_siblings_are_serialised_by_return_order() {
        // Two children of the root, interleaved; T0.1 returns first.
        let gamma: Schedule<TxnOp> = vec![
            create(&[]),
            TxnOp::request_create(t(&[0])),
            TxnOp::request_create(t(&[1])),
            create(&[0]),
            create(&[1]),
            rc(&[1], 11),
            commit(&[1], 11),
            rc(&[0], 10),
            commit(&[0], 10),
        ]
        .into();
        let sigma = serialize_return_order(&gamma).unwrap();
        let ops = sigma.as_slice();
        // σ: root created, both requests, then T0.1's subtree + commit,
        // then T0.0's subtree + commit.
        assert_eq!(ops[0], create(&[]));
        let pos = |needle: &TxnOp| ops.iter().position(|o| o == needle).unwrap();
        assert!(pos(&create(&[1])) < pos(&commit(&[1], 11)));
        assert!(pos(&commit(&[1], 11)) < pos(&create(&[0])));
        assert!(pos(&create(&[0])) < pos(&commit(&[0], 10)));
        assert_eq!(ops.len(), gamma.len());
    }

    #[test]
    fn aborted_subtree_is_erased() {
        let gamma: Schedule<TxnOp> = vec![
            create(&[]),
            TxnOp::request_create(t(&[0])),
            create(&[0]),
            TxnOp::request_create(t(&[0, 0])),
            create(&[0, 0]),
            TxnOp::Abort { tid: t(&[0]) },
        ]
        .into();
        let sigma = serialize_return_order(&gamma).unwrap();
        // T0.0's CREATE and its child ops vanish; only the ABORT remains.
        assert_eq!(
            sigma.as_slice(),
            &[
                create(&[]),
                TxnOp::request_create(t(&[0])),
                TxnOp::Abort { tid: t(&[0]) },
            ]
        );
    }

    #[test]
    fn incomplete_run_is_rejected() {
        let gamma: Schedule<TxnOp> = vec![
            create(&[]),
            TxnOp::request_create(t(&[0])),
            create(&[0]),
        ]
        .into();
        let err = serialize_return_order(&gamma).unwrap_err();
        assert_eq!(err, SerializeError::Incomplete { tid: t(&[0]) });
    }

    #[test]
    fn projections_preserved_for_non_orphans() {
        let gamma: Schedule<TxnOp> = vec![
            create(&[]),
            TxnOp::request_create(t(&[0])),
            TxnOp::request_create(t(&[1])),
            create(&[1]),
            create(&[0]),
            rc(&[0], 1),
            commit(&[0], 1),
            rc(&[1], 2),
            commit(&[1], 2),
        ]
        .into();
        let sigma = serialize_return_order(&gamma).unwrap();
        for tid in non_orphans(&gamma) {
            let gp = qc_replication::ops_of_transaction(&tid, &gamma);
            let sp = qc_replication::ops_of_transaction(&tid, &sigma);
            assert_eq!(gp, sp, "projection differs at {tid}");
        }
    }

    #[test]
    fn never_created_requests_are_kept_dangling() {
        // A request with neither CREATE nor return: allowed (γ may end
        // while the request is still outstanding at the scheduler).
        let gamma: Schedule<TxnOp> =
            vec![create(&[]), TxnOp::request_create(t(&[0]))].into();
        let sigma = serialize_return_order(&gamma).unwrap();
        assert_eq!(sigma.len(), 2);
    }
}
