//! A concurrent (non-serial) scheduler.
//!
//! The paper's Theorem 11 assumes some system **C** with the same type as
//! **B** whose schedules are serially correct with respect to **B** for
//! non-orphan transactions — produced by combining the replication
//! algorithm with a concurrency-control algorithm at the copy level. This
//! module provides the scheduler side of such a system: it is the serial
//! scheduler *minus* the two serializing preconditions —
//!
//! * siblings may run concurrently (`CREATE` drops the
//!   siblings-returned condition), and
//! * running transactions may be aborted (`ABORT` drops the not-yet-created
//!   condition), modelling recovery: a deadlock victim's effects are undone
//!   by the resilient objects, so the abort again "looks like `T` was never
//!   created" to every non-orphan.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

use ioa::{Component, OpClass};
use nested_txn::{AccessSpec, Tid, TxnOp, Value};

/// The concurrent scheduler (see module docs).
#[derive(Debug, Clone, Default)]
pub struct ConcurrentScheduler {
    create_requested: BTreeMap<Tid, (Option<AccessSpec>, Option<Value>)>,
    created: BTreeSet<Tid>,
    commit_requested: BTreeMap<Tid, Value>,
    committed: BTreeMap<Tid, Value>,
    aborted: BTreeSet<Tid>,
    returned: BTreeSet<Tid>,
}

impl ConcurrentScheduler {
    /// A scheduler in its start state.
    pub fn new() -> Self {
        let mut s = ConcurrentScheduler::default();
        s.create_requested.insert(Tid::root(), (None, None));
        s
    }

    /// The set of aborted transactions.
    pub fn aborted(&self) -> &BTreeSet<Tid> {
        &self.aborted
    }

    /// The set of returned transactions.
    pub fn returned(&self) -> &BTreeSet<Tid> {
        &self.returned
    }

    /// Committed transactions and their values.
    pub fn committed(&self) -> &BTreeMap<Tid, Value> {
        &self.committed
    }

    /// Whether `tid` has an aborted ancestor (the paper's orphan notion).
    pub fn is_orphan(&self, tid: &Tid) -> bool {
        self.aborted.iter().any(|a| a.is_ancestor_of(tid))
    }

    fn create_enabled(&self, t: &Tid) -> bool {
        self.create_requested.contains_key(t)
            && !self.created.contains(t)
            && !self.aborted.contains(t)
    }

    fn commit_enabled(&self, t: &Tid) -> bool {
        !t.is_root()
            && self.commit_requested.contains_key(t)
            && !self.returned.contains(t)
            && self
                .create_requested
                .keys()
                .filter(|c| c.is_child_of(t))
                .all(|c| self.returned.contains(c))
    }

    fn abort_enabled(&self, t: &Tid) -> bool {
        !t.is_root() && self.create_requested.contains_key(t) && !self.returned.contains(t)
    }
}

impl Component<TxnOp> for ConcurrentScheduler {
    fn name(&self) -> String {
        "concurrent-scheduler".into()
    }

    fn classify(&self, op: &TxnOp) -> OpClass {
        match op {
            TxnOp::RequestCreate { .. } | TxnOp::RequestCommit { .. } => OpClass::Input,
            TxnOp::Create { .. } | TxnOp::Commit { .. } | TxnOp::Abort { .. } => OpClass::Output,
        }
    }

    fn reset(&mut self) {
        *self = ConcurrentScheduler::new();
    }

    fn enabled_outputs(&self) -> Vec<TxnOp> {
        let mut out = Vec::new();
        for (t, (access, param)) in &self.create_requested {
            if self.create_enabled(t) {
                out.push(TxnOp::Create {
                    tid: t.clone(),
                    access: access.clone(),
                    param: param.clone(),
                });
            }
            if self.abort_enabled(t) {
                out.push(TxnOp::Abort { tid: t.clone() });
            }
        }
        for (t, v) in &self.commit_requested {
            if self.commit_enabled(t) {
                out.push(TxnOp::Commit {
                    tid: t.clone(),
                    value: v.clone(),
                });
            }
        }
        out
    }

    fn apply(&mut self, op: &TxnOp) -> Result<(), String> {
        match op {
            TxnOp::RequestCreate { tid, access, param } => {
                self.create_requested
                    .entry(tid.clone())
                    .or_insert_with(|| (access.clone(), param.clone()));
                Ok(())
            }
            TxnOp::RequestCommit { tid, value } => {
                self.commit_requested
                    .entry(tid.clone())
                    .or_insert_with(|| value.clone());
                Ok(())
            }
            TxnOp::Create { tid, .. } => {
                if !self.create_enabled(tid) {
                    return Err(format!("CREATE({tid}) precondition fails"));
                }
                self.created.insert(tid.clone());
                Ok(())
            }
            TxnOp::Commit { tid, value } => {
                if !self.commit_enabled(tid) {
                    return Err(format!("COMMIT({tid}) precondition fails"));
                }
                if self.commit_requested.get(tid) != Some(value) {
                    return Err(format!("COMMIT({tid}) value differs from request"));
                }
                self.committed.insert(tid.clone(), value.clone());
                self.returned.insert(tid.clone());
                Ok(())
            }
            TxnOp::Abort { tid } => {
                if !self.abort_enabled(tid) {
                    return Err(format!("ABORT({tid}) precondition fails"));
                }
                self.aborted.insert(tid.clone());
                self.returned.insert(tid.clone());
                Ok(())
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_boxed(&self) -> Box<dyn Component<TxnOp>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(path: &[u32]) -> Tid {
        Tid::from_path(path)
    }

    fn create(path: &[u32]) -> TxnOp {
        TxnOp::Create {
            tid: t(path),
            access: None,
            param: None,
        }
    }

    #[test]
    fn siblings_run_concurrently() {
        let mut s = ConcurrentScheduler::new();
        s.apply(&create(&[])).unwrap();
        s.apply(&TxnOp::request_create(t(&[0]))).unwrap();
        s.apply(&TxnOp::request_create(t(&[1]))).unwrap();
        s.apply(&create(&[0])).unwrap();
        // Unlike the serial scheduler, T0.1 is creatable while T0.0 runs.
        assert!(s.enabled_outputs().contains(&create(&[1])));
    }

    #[test]
    fn created_transactions_can_abort() {
        let mut s = ConcurrentScheduler::new();
        s.apply(&create(&[])).unwrap();
        s.apply(&TxnOp::request_create(t(&[0]))).unwrap();
        s.apply(&create(&[0])).unwrap();
        assert!(s.enabled_outputs().contains(&TxnOp::Abort { tid: t(&[0]) }));
        s.apply(&TxnOp::Abort { tid: t(&[0]) }).unwrap();
        assert!(s.is_orphan(&t(&[0, 5])));
        // But not twice, and never after return.
        assert!(s.apply(&TxnOp::Abort { tid: t(&[0]) }).is_err());
    }

    #[test]
    fn root_never_aborts() {
        let s = ConcurrentScheduler::new();
        assert!(!s
            .enabled_outputs()
            .contains(&TxnOp::Abort { tid: Tid::root() }));
    }

    #[test]
    fn commit_still_waits_for_children() {
        let mut s = ConcurrentScheduler::new();
        s.apply(&create(&[])).unwrap();
        s.apply(&TxnOp::request_create(t(&[0]))).unwrap();
        s.apply(&create(&[0])).unwrap();
        s.apply(&TxnOp::request_create(t(&[0, 0]))).unwrap();
        s.apply(&TxnOp::RequestCommit {
            tid: t(&[0]),
            value: Value::Nil,
        })
        .unwrap();
        assert!(!s
            .enabled_outputs()
            .iter()
            .any(|o| matches!(o, TxnOp::Commit { tid, .. } if tid == &t(&[0]))));
        s.apply(&TxnOp::Abort { tid: t(&[0, 0]) }).unwrap();
        assert!(s
            .enabled_outputs()
            .iter()
            .any(|o| matches!(o, TxnOp::Commit { tid, .. } if tid == &t(&[0]))));
    }
}
