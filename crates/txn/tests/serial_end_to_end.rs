//! End-to-end tests of the *bare* serial system (scheduler + transaction
//! nodes + read/write objects, no replication): depth-first serial
//! execution, abort semantics, and well-formedness under random schedules.

use ioa::{Executor, System, WeightedPolicy};
use nested_txn::{
    AccessSpec, ChildRequest, ObjectId, Outcome, ReadWriteObject, ScriptProgram, ScriptStep,
    SerialScheduler, SystemWfMonitor, Tid, TransactionNode, TxnOp, Value,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A root that requests `n` top-level transactions at once and never
/// commits.
fn root_node(n: u32) -> TransactionNode {
    let reqs = (0..n)
        .map(|index| ChildRequest {
            index,
            access: None,
            param: None,
        })
        .collect();
    TransactionNode::new(Tid::root(), ScriptProgram::new(vec![ScriptStep::Run(reqs)]))
}

/// A user transaction that writes `value` to the object, reads it back,
/// and commits with nil.
fn write_then_read(tid: Tid, object: ObjectId, value: i64) -> TransactionNode {
    TransactionNode::new(
        tid,
        ScriptProgram::new(vec![
            ScriptStep::Run(vec![ChildRequest {
                index: 0,
                access: Some(AccessSpec::write(object, Value::Int(value))),
                param: None,
            }]),
            ScriptStep::Run(vec![ChildRequest {
                index: 1,
                access: Some(AccessSpec::read(object)),
                param: None,
            }]),
            ScriptStep::Commit(Value::Nil),
        ]),
    )
}

fn system_two_writers() -> System<TxnOp> {
    let mut sys = System::new();
    sys.push(Box::new(SerialScheduler::new()));
    sys.push(Box::new(ReadWriteObject::new(ObjectId(0), "x", Value::Int(0))));
    sys.push(Box::new(root_node(2)));
    sys.push(Box::new(write_then_read(Tid::root().child(0), ObjectId(0), 10)));
    sys.push(Box::new(write_then_read(Tid::root().child(1), ObjectId(0), 20)));
    sys
}

#[test]
fn serial_execution_is_depth_first() {
    // Without aborts, the run is quiescent and each user sees exactly its
    // own write (siblings never interleave under the serial scheduler).
    for seed in 0..20 {
        let mut sys = system_two_writers();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let exec = Executor::new()
            .policy(WeightedPolicy::new(|op: &TxnOp| match op {
                TxnOp::Abort { .. } => 0,
                _ => 100,
            }))
            .monitor(SystemWfMonitor::new())
            .run(&mut sys, &mut rng)
            .unwrap();
        assert!(exec.is_quiescent(), "seed {seed}");
        let sched = exec.schedule();
        // Users' op ranges must not interleave: between CREATE(U) and
        // COMMIT(U), no op of the other user's subtree occurs.
        for u in [Tid::root().child(0), Tid::root().child(1)] {
            let created = sched
                .iter()
                .position(|op| matches!(op, TxnOp::Create { tid, .. } if tid == &u))
                .unwrap();
            let committed = sched
                .iter()
                .position(|op| matches!(op, TxnOp::Commit { tid, .. } if tid == &u))
                .unwrap();
            let other = if u == Tid::root().child(0) {
                Tid::root().child(1)
            } else {
                Tid::root().child(0)
            };
            for (i, op) in sched.iter().enumerate() {
                if i > created && i < committed {
                    // Requests *for* the other sibling are root ops and may
                    // appear; ops *of* the other's subtree may not.
                    let in_other_subtree = other.is_proper_ancestor_of(op.tid())
                        || (op.tid() == &other
                            && matches!(op, TxnOp::Create { .. } | TxnOp::RequestCommit { .. }));
                    assert!(
                        !in_other_subtree,
                        "seed {seed}: {op} inside {u}'s serial window"
                    );
                }
            }
            // Each user's read returned its own write.
            let node_name = format!("txn({u})");
            let node: &TransactionNode = sys.component_as(&node_name).unwrap();
            let read_result = node.returns().get(&u.child(1)).unwrap();
            let expected = if u == Tid::root().child(0) { 10 } else { 20 };
            assert_eq!(read_result, &Outcome::Committed(Value::Int(expected)));
        }
    }
}

#[test]
fn final_object_state_is_last_writer() {
    let mut sys = system_two_writers();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let exec = Executor::new()
        .policy(WeightedPolicy::new(|op: &TxnOp| match op {
            TxnOp::Abort { .. } => 0,
            _ => 100,
        }))
        .run(&mut sys, &mut rng)
        .unwrap();
    // Whichever user committed last determines x.
    let sched = exec.schedule();
    let last_commit = sched
        .iter()
        .filter_map(|op| match op {
            TxnOp::Commit { tid, .. } if tid.depth() == 1 => Some(tid.clone()),
            _ => None,
        })
        .next_back()
        .unwrap();
    let expected = if last_commit == Tid::root().child(0) { 10 } else { 20 };
    let x: &ReadWriteObject = sys.component_as("x").unwrap();
    assert_eq!(x.data(), &Value::Int(expected));
}

#[test]
fn aborts_keep_schedules_well_formed_and_replayable() {
    for seed in 0..30 {
        let mut sys = system_two_writers();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let exec = Executor::new()
            .policy(WeightedPolicy::new(|op: &TxnOp| match op {
                TxnOp::Abort { .. } => 25,
                _ => 100,
            }))
            .monitor(SystemWfMonitor::new())
            .run(&mut sys, &mut rng)
            .unwrap();
        // Any schedule of the serial system replays on a fresh copy.
        let mut fresh = system_two_writers();
        fresh.replay(exec.schedule()).unwrap();
    }
}

#[test]
fn aborted_user_leaves_object_untouched() {
    // Abort user 0 before creation; user 1 must still run and win.
    let mut sys = system_two_writers();
    sys.reset();
    let u0 = Tid::root().child(0);
    // Drive manually: create root, request both, abort u0.
    let boot = [
        TxnOp::Create {
            tid: Tid::root(),
            access: None,
            param: None,
        },
        TxnOp::request_create(u0.clone()),
        TxnOp::request_create(Tid::root().child(1)),
        TxnOp::Abort { tid: u0 },
    ];
    for op in &boot {
        sys.step(op).unwrap();
    }
    // Finish the rest randomly without further aborts.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let exec = Executor::new()
        .resume()
        .policy(WeightedPolicy::new(|op: &TxnOp| match op {
            TxnOp::Abort { .. } => 0,
            _ => 100,
        }))
        .run(&mut sys, &mut rng)
        .unwrap();
    assert!(exec.is_quiescent());
    let x: &ReadWriteObject = sys.component_as("x").unwrap();
    assert_eq!(x.data(), &Value::Int(20), "only user 1 wrote");
    // The root saw ABORT(u0) and COMMIT(u1).
    let root: &TransactionNode = sys.component_as("txn(T0)").unwrap();
    assert_eq!(
        root.returns().get(&Tid::root().child(0)),
        Some(&Outcome::Aborted)
    );
    assert!(matches!(
        root.returns().get(&Tid::root().child(1)),
        Some(Outcome::Committed(_))
    ));
}
