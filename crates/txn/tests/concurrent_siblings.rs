//! The assumption that broke when the simulator gained nested programs:
//! one client may now hold *several* in-flight children at once (parallel
//! program nodes), and a whole-transaction abort can straddle them.
//!
//! Two facts are pinned here, because the nested-workload harness in
//! `qc-sim` depends on both:
//!
//! 1. The paper's *serial* scheduler cannot express concurrent siblings —
//!    its CREATE/ABORT preconditions (`siblings(T) ∩ created ⊆ returned`)
//!    reject the second sibling while the first is unreturned. This is by
//!    construction, not a bug; it is why the simulator tracks per-node
//!    runtime state (status/epoch per program node) instead of funnelling
//!    nested programs through `SerialScheduler` or the one-op-per-client
//!    `OpSlab`.
//! 2. Well-formedness (the paper's §2.2 WF conditions) is *per
//!    transaction* and therefore perfectly happy with concurrent siblings
//!    and with an abort that straddles a still-running sibling — the
//!    exact schedule shape the simulator's epoch-bump cancellation
//!    produces.

use nested_txn::{SerialScheduler, SystemWfMonitor, Tid, TxnOp, Value};
use ioa::Component;

fn t(path: &[u32]) -> Tid {
    Tid::from_path(path)
}

fn create(path: &[u32]) -> TxnOp {
    TxnOp::Create {
        tid: t(path),
        access: None,
        param: None,
    }
}

/// The straddling-abort schedule: two siblings requested, the first
/// created and still running when the second is aborted, then the first
/// created sibling keeps going. One client, multiple in-flight children.
fn straddling_schedule() -> Vec<TxnOp> {
    vec![
        create(&[]),
        TxnOp::request_create(t(&[0])),
        TxnOp::request_create(t(&[1])),
        create(&[0]),
        // T0.0 is created and unreturned; aborting its sibling T0.1 now is
        // the straddle.
        TxnOp::Abort { tid: t(&[1]) },
        TxnOp::RequestCommit {
            tid: t(&[0]),
            value: Value::Int(1),
        },
        TxnOp::Commit {
            tid: t(&[0]),
            value: Value::Int(1),
        },
    ]
}

#[test]
fn wf_monitor_accepts_the_straddling_abort() {
    let mut wf = SystemWfMonitor::new();
    for op in straddling_schedule() {
        wf.observe_op(&op)
            .unwrap_or_else(|e| panic!("WF rejected {op:?}: {e}"));
    }
}

#[test]
fn wf_monitor_accepts_concurrent_siblings() {
    // Both siblings created before either returns — legal under WF, the
    // shape every parallel program node produces.
    let mut wf = SystemWfMonitor::new();
    for op in [
        create(&[]),
        TxnOp::request_create(t(&[0])),
        TxnOp::request_create(t(&[1])),
        create(&[0]),
        create(&[1]),
        TxnOp::RequestCommit {
            tid: t(&[1]),
            value: Value::Int(2),
        },
        TxnOp::Commit {
            tid: t(&[1]),
            value: Value::Int(2),
        },
        TxnOp::RequestCommit {
            tid: t(&[0]),
            value: Value::Int(1),
        },
        TxnOp::Commit {
            tid: t(&[0]),
            value: Value::Int(1),
        },
    ] {
        wf.observe_op(&op)
            .unwrap_or_else(|e| panic!("WF rejected {op:?}: {e}"));
    }
}

#[test]
fn serial_scheduler_rejects_concurrent_siblings_by_construction() {
    let mut s = SerialScheduler::new();
    s.apply(&create(&[])).unwrap();
    s.apply(&TxnOp::request_create(t(&[0]))).unwrap();
    s.apply(&TxnOp::request_create(t(&[1]))).unwrap();
    s.apply(&create(&[0])).unwrap();
    // The second sibling can be neither created nor aborted while the
    // first is in flight: the serial scheduler serialises siblings, so a
    // straddling abort is inexpressible here and the simulator must keep
    // its own per-node state to model it.
    assert!(s.apply(&create(&[1])).is_err());
    assert!(s.apply(&TxnOp::Abort { tid: t(&[1]) }).is_err());
    // Once the first sibling returns, the abort goes through.
    s.apply(&TxnOp::RequestCommit {
        tid: t(&[0]),
        value: Value::Int(1),
    })
    .unwrap();
    s.apply(&TxnOp::Commit {
        tid: t(&[0]),
        value: Value::Int(1),
    })
    .unwrap();
    s.apply(&TxnOp::Abort { tid: t(&[1]) }).unwrap();
}
