//! Non-access transaction automata driven by programs.
//!
//! The paper deliberately leaves transaction automata "largely unspecified"
//! — they are arbitrary automata subject only to preserving well-formedness.
//! [`TransactionNode`] realises that: it wraps a [`TransactionProgram`]
//! (which decides *what* to do) in an automaton shell that enforces the
//! well-formedness obligations (no outputs before `CREATE` or after
//! `REQUEST-COMMIT`, no duplicate child requests, …).

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use ioa::{Component, OpClass};

use crate::op::{AccessSpec, TxnOp};
use crate::tid::Tid;
use crate::value::Value;

/// The fate of a child transaction as reported to its parent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// `COMMIT(T', v)` — the child committed with value `v`.
    Committed(Value),
    /// `ABORT(T')` — the child was aborted (semantically, never ran).
    Aborted,
}

impl Outcome {
    /// The committed value, if committed.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Outcome::Committed(v) => Some(v),
            Outcome::Aborted => None,
        }
    }
}

/// A request for the creation of one child.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChildRequest {
    /// The child's index under this transaction.
    pub index: u32,
    /// Access attributes if the child is an access.
    pub access: Option<AccessSpec>,
    /// Creation parameter if the child's automaton is value-parameterised.
    pub param: Option<Value>,
}

/// The effects a program may produce in response to an input.
#[derive(Debug, Default)]
pub struct Effects {
    requests: Vec<ChildRequest>,
    commit: Option<Value>,
}

impl Effects {
    /// Request creation of the non-access child with the given index.
    pub fn request_child(&mut self, index: u32) {
        self.requests.push(ChildRequest {
            index,
            access: None,
            param: None,
        });
    }

    /// Request creation of a child with a creation parameter.
    pub fn request_child_with_param(&mut self, index: u32, param: Value) {
        self.requests.push(ChildRequest {
            index,
            access: None,
            param: Some(param),
        });
    }

    /// Request creation of an access child.
    pub fn request_access(&mut self, index: u32, spec: AccessSpec) {
        self.requests.push(ChildRequest {
            index,
            access: Some(spec),
            param: None,
        });
    }

    /// Announce completion with the given result value.
    pub fn request_commit(&mut self, value: Value) {
        self.commit = Some(value);
    }
}

/// The decision logic of a non-access transaction.
///
/// Programs are notified when the transaction is created and when each child
/// returns; they respond by requesting children and, eventually, requesting
/// to commit. Programs must be resettable so the enclosing system can be
/// returned to its start state.
pub trait TransactionProgram: fmt::Debug {
    /// Called on `CREATE(T)`.
    fn on_create(&mut self, eff: &mut Effects);

    /// Called on `COMMIT(T',v)` or `ABORT(T')` for a child `T'`.
    fn on_return(&mut self, child: &Tid, outcome: &Outcome, eff: &mut Effects);

    /// Return to the initial state.
    fn reset(&mut self);

    /// A boxed deep copy of this program in its current state, so the
    /// enclosing [`TransactionNode`] can be snapshotted by the explorer.
    fn clone_boxed(&self) -> Box<dyn TransactionProgram>;
}

/// An I/O automaton for a non-access transaction, combining a program with
/// well-formedness bookkeeping.
#[derive(Debug)]
pub struct TransactionNode {
    tid: Tid,
    label: String,
    program: Box<dyn TransactionProgram>,
    created: bool,
    requested: BTreeSet<Tid>,
    commit_performed: bool,
    pending_requests: VecDeque<TxnOp>,
    pending_commit: Option<Value>,
    returns: BTreeMap<Tid, Outcome>,
    child_limit: u32,
    halted: bool,
}

impl Clone for TransactionNode {
    fn clone(&self) -> Self {
        TransactionNode {
            tid: self.tid.clone(),
            label: self.label.clone(),
            program: self.program.clone_boxed(),
            created: self.created,
            requested: self.requested.clone(),
            commit_performed: self.commit_performed,
            pending_requests: self.pending_requests.clone(),
            pending_commit: self.pending_commit.clone(),
            returns: self.returns.clone(),
            child_limit: self.child_limit,
            halted: self.halted,
        }
    }
}

impl TransactionNode {
    /// A node for transaction `tid` driven by `program`.
    pub fn new(tid: Tid, program: impl TransactionProgram + 'static) -> Self {
        let label = format!("txn({tid})");
        TransactionNode {
            tid,
            label,
            program: Box::new(program),
            created: false,
            requested: BTreeSet::new(),
            commit_performed: false,
            pending_requests: VecDeque::new(),
            pending_commit: None,
            returns: BTreeMap::new(),
            child_limit: u32::MAX,
            halted: false,
        }
    }

    /// Restrict this node's operation signature to children with index
    /// `< limit`.
    ///
    /// Child names at and above the limit are *not* operations of this
    /// automaton; they can be claimed by a companion automaton — the
    /// reconfiguration *spy* of paper §4, which invokes reconfigure-TMs as
    /// children of the user transaction "spontaneously and transparently",
    /// without the user program seeing their invocations or returns.
    pub fn with_child_limit(mut self, limit: u32) -> Self {
        self.child_limit = limit;
        self
    }

    fn owns_child(&self, child: &Tid) -> bool {
        child.is_child_of(&self.tid) && child.last_index().is_some_and(|i| i < self.child_limit)
    }

    /// The transaction this node animates.
    pub fn tid(&self) -> &Tid {
        &self.tid
    }

    /// The fates of returned children, in name order.
    pub fn returns(&self) -> &BTreeMap<Tid, Outcome> {
        &self.returns
    }

    /// Whether this node has performed its `REQUEST-COMMIT`.
    pub fn has_committed_requested(&self) -> bool {
        self.commit_performed
    }

    fn absorb(&mut self, eff: Effects) {
        for r in eff.requests {
            let child = self.tid.child(r.index);
            if self.requested.contains(&child) {
                continue; // program bug; preserve well-formedness by dropping
            }
            self.pending_requests.push_back(TxnOp::RequestCreate {
                tid: child,
                access: r.access,
                param: r.param,
            });
        }
        if let Some(v) = eff.commit {
            self.pending_commit.get_or_insert(v);
        }
    }
}

impl Component<TxnOp> for TransactionNode {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn classify(&self, op: &TxnOp) -> OpClass {
        match op {
            TxnOp::Create { tid, .. } if tid == &self.tid => OpClass::Input,
            // Own-abort information: in concurrent systems the scheduler
            // may abort a running transaction; the automaton halts (an
            // orphan-management courtesy — serial systems never send this
            // to a created transaction).
            TxnOp::Abort { tid } if tid == &self.tid => OpClass::Input,
            TxnOp::Commit { tid, .. } | TxnOp::Abort { tid } if self.owns_child(tid) => {
                OpClass::Input
            }
            TxnOp::RequestCreate { tid, .. } if self.owns_child(tid) => OpClass::Output,
            TxnOp::RequestCommit { tid, .. } if tid == &self.tid => OpClass::Output,
            _ => OpClass::NotMine,
        }
    }

    fn reset(&mut self) {
        self.program.reset();
        self.created = false;
        self.requested.clear();
        self.commit_performed = false;
        self.pending_requests.clear();
        self.pending_commit = None;
        self.returns.clear();
        self.halted = false;
    }

    fn enabled_outputs(&self) -> Vec<TxnOp> {
        if !self.created || self.commit_performed || self.halted {
            return Vec::new();
        }
        let mut out: Vec<TxnOp> = self.pending_requests.iter().cloned().collect();
        // Offer the commit only once all requests have been issued, so a
        // program that computes its result from child values never commits
        // out from under its own pending requests.
        if out.is_empty() {
            if let Some(v) = &self.pending_commit {
                out.push(TxnOp::RequestCommit {
                    tid: self.tid.clone(),
                    value: v.clone(),
                });
            }
        }
        out
    }

    fn apply(&mut self, op: &TxnOp) -> Result<(), String> {
        match op {
            TxnOp::Abort { tid } if tid == &self.tid => {
                self.halted = true;
                Ok(())
            }
            TxnOp::Create { tid, .. } if tid == &self.tid => {
                self.created = true;
                let mut eff = Effects::default();
                self.program.on_create(&mut eff);
                self.absorb(eff);
                Ok(())
            }
            TxnOp::Commit { tid, value } if tid.is_child_of(&self.tid) => {
                let outcome = Outcome::Committed(value.clone());
                self.returns.insert(tid.clone(), outcome.clone());
                let mut eff = Effects::default();
                self.program.on_return(tid, &outcome, &mut eff);
                self.absorb(eff);
                Ok(())
            }
            TxnOp::Abort { tid } if tid.is_child_of(&self.tid) => {
                self.returns.insert(tid.clone(), Outcome::Aborted);
                let mut eff = Effects::default();
                self.program.on_return(tid, &Outcome::Aborted, &mut eff);
                self.absorb(eff);
                Ok(())
            }
            TxnOp::RequestCreate { tid, .. } if tid.is_child_of(&self.tid) => {
                let pos = self
                    .pending_requests
                    .iter()
                    .position(|p| p.tid() == tid)
                    .ok_or_else(|| format!("{}: REQUEST-CREATE({tid}) not pending", self.label))?;
                self.pending_requests.remove(pos);
                self.requested.insert(tid.clone());
                Ok(())
            }
            TxnOp::RequestCommit { tid, value } if tid == &self.tid => {
                if self.commit_performed {
                    return Err(format!("{}: repeated REQUEST-COMMIT", self.label));
                }
                if self.pending_commit.as_ref() != Some(value) {
                    return Err(format!("{}: REQUEST-COMMIT value not pending", self.label));
                }
                self.commit_performed = true;
                self.pending_commit = None;
                Ok(())
            }
            other => Err(format!("{}: unexpected operation {other}", self.label)),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_boxed(&self) -> Box<dyn Component<TxnOp>> {
        Box::new(self.clone())
    }
}

/// One step of a [`ScriptProgram`].
#[derive(Clone, Debug)]
pub enum ScriptStep {
    /// Request these children (possibly several), then wait for all of them
    /// to return before moving on.
    Run(Vec<ChildRequest>),
    /// Request to commit with this value.
    Commit(Value),
}

/// A program that walks a fixed script: batches of child requests, each
/// awaited to completion, optionally ending in a commit.
///
/// The root transaction `T0` (the external environment) is modelled as a
/// `ScriptProgram` with no `Commit` step, since `T0` may neither commit nor
/// abort.
#[derive(Clone, Debug)]
pub struct ScriptProgram {
    steps: Vec<ScriptStep>,
    pos: usize,
    outstanding: usize,
}

impl ScriptProgram {
    /// A program executing `steps` in order.
    pub fn new(steps: Vec<ScriptStep>) -> Self {
        ScriptProgram {
            steps,
            pos: 0,
            outstanding: 0,
        }
    }

    /// Convenience: request each listed child in its own awaited batch,
    /// then commit with `value`.
    pub fn sequential(children: Vec<ChildRequest>, value: Value) -> Self {
        let mut steps: Vec<ScriptStep> = children
            .into_iter()
            .map(|c| ScriptStep::Run(vec![c]))
            .collect();
        steps.push(ScriptStep::Commit(value));
        Self::new(steps)
    }

    fn advance(&mut self, eff: &mut Effects) {
        while self.pos < self.steps.len() && self.outstanding == 0 {
            match &self.steps[self.pos] {
                ScriptStep::Run(reqs) => {
                    for r in reqs {
                        eff.requests.push(r.clone());
                    }
                    self.outstanding = reqs.len();
                    self.pos += 1;
                    if self.outstanding > 0 {
                        break;
                    }
                }
                ScriptStep::Commit(v) => {
                    eff.request_commit(v.clone());
                    self.pos += 1;
                }
            }
        }
    }
}

impl TransactionProgram for ScriptProgram {
    fn on_create(&mut self, eff: &mut Effects) {
        self.advance(eff);
    }

    fn on_return(&mut self, _child: &Tid, _outcome: &Outcome, eff: &mut Effects) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.advance(eff);
    }

    fn reset(&mut self) {
        self.pos = 0;
        self.outstanding = 0;
    }

    fn clone_boxed(&self) -> Box<dyn TransactionProgram> {
        Box::new(self.clone())
    }
}

/// A program that immediately commits with a fixed value and spawns nothing.
#[derive(Clone, Debug)]
pub struct LeafProgram {
    value: Value,
}

impl LeafProgram {
    /// Commit immediately with `value`.
    pub fn new(value: Value) -> Self {
        LeafProgram { value }
    }
}

impl TransactionProgram for LeafProgram {
    fn on_create(&mut self, eff: &mut Effects) {
        eff.request_commit(self.value.clone());
    }

    fn on_return(&mut self, _child: &Tid, _outcome: &Outcome, _eff: &mut Effects) {}

    fn reset(&mut self) {}

    fn clone_boxed(&self) -> Box<dyn TransactionProgram> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(path: &[u32]) -> Tid {
        Tid::from_path(path)
    }

    fn create(node: &Tid) -> TxnOp {
        TxnOp::Create {
            tid: node.clone(),
            access: None,
            param: None,
        }
    }

    #[test]
    fn leaf_program_commits_immediately() {
        let mut n = TransactionNode::new(t(&[1]), LeafProgram::new(Value::Int(5)));
        assert!(n.enabled_outputs().is_empty()); // not created yet
        n.apply(&create(&t(&[1]))).unwrap();
        let outs = n.enabled_outputs();
        assert_eq!(
            outs,
            vec![TxnOp::RequestCommit {
                tid: t(&[1]),
                value: Value::Int(5),
            }]
        );
        n.apply(&outs[0]).unwrap();
        assert!(n.enabled_outputs().is_empty());
        assert!(n.has_committed_requested());
    }

    #[test]
    fn script_runs_batches_in_order() {
        let prog = ScriptProgram::new(vec![
            ScriptStep::Run(vec![ChildRequest {
                index: 0,
                access: None,
                param: None,
            }]),
            ScriptStep::Run(vec![ChildRequest {
                index: 1,
                access: None,
                param: None,
            }]),
            ScriptStep::Commit(Value::Nil),
        ]);
        let mut n = TransactionNode::new(t(&[1]), prog);
        n.apply(&create(&t(&[1]))).unwrap();
        // First batch pending.
        let outs = n.enabled_outputs();
        assert_eq!(outs, vec![TxnOp::request_create(t(&[1, 0]))]);
        n.apply(&outs[0]).unwrap();
        // Nothing until the child returns.
        assert!(n.enabled_outputs().is_empty());
        n.apply(&TxnOp::Commit {
            tid: t(&[1, 0]),
            value: Value::Int(9),
        })
        .unwrap();
        let outs = n.enabled_outputs();
        assert_eq!(outs, vec![TxnOp::request_create(t(&[1, 1]))]);
        n.apply(&outs[0]).unwrap();
        n.apply(&TxnOp::Abort { tid: t(&[1, 1]) }).unwrap();
        // Aborted child still unblocks the script (abort tolerance).
        let outs = n.enabled_outputs();
        assert_eq!(
            outs,
            vec![TxnOp::RequestCommit {
                tid: t(&[1]),
                value: Value::Nil,
            }]
        );
        assert_eq!(n.returns().len(), 2);
    }

    #[test]
    fn no_outputs_before_create_or_after_commit() {
        let mut n = TransactionNode::new(
            t(&[2]),
            ScriptProgram::sequential(Vec::new(), Value::Int(1)),
        );
        assert!(n.enabled_outputs().is_empty());
        n.apply(&create(&t(&[2]))).unwrap();
        let outs = n.enabled_outputs();
        n.apply(&outs[0]).unwrap();
        assert!(n.enabled_outputs().is_empty());
    }

    #[test]
    fn classify_covers_own_ops_only() {
        let n = TransactionNode::new(t(&[1]), LeafProgram::new(Value::Nil));
        assert_eq!(n.classify(&create(&t(&[1]))), OpClass::Input);
        assert_eq!(n.classify(&create(&t(&[2]))), OpClass::NotMine);
        assert_eq!(
            n.classify(&TxnOp::request_create(t(&[1, 0]))),
            OpClass::Output
        );
        assert_eq!(
            n.classify(&TxnOp::Commit {
                tid: t(&[1, 0]),
                value: Value::Nil
            }),
            OpClass::Input
        );
        // Grandchild returns are not ours.
        assert_eq!(
            n.classify(&TxnOp::Commit {
                tid: t(&[1, 0, 0]),
                value: Value::Nil
            }),
            OpClass::NotMine
        );
    }

    #[test]
    fn reset_restores_everything() {
        let mut n = TransactionNode::new(t(&[1]), LeafProgram::new(Value::Int(3)));
        n.apply(&create(&t(&[1]))).unwrap();
        let outs = n.enabled_outputs();
        n.apply(&outs[0]).unwrap();
        n.reset();
        assert!(!n.has_committed_requested());
        assert!(n.enabled_outputs().is_empty());
        n.apply(&create(&t(&[1]))).unwrap();
        assert_eq!(n.enabled_outputs().len(), 1);
    }

    #[test]
    fn parallel_batch_waits_for_all() {
        let prog = ScriptProgram::new(vec![
            ScriptStep::Run(vec![
                ChildRequest {
                    index: 0,
                    access: None,
                    param: None,
                },
                ChildRequest {
                    index: 1,
                    access: None,
                    param: None,
                },
            ]),
            ScriptStep::Commit(Value::Nil),
        ]);
        let mut n = TransactionNode::new(t(&[1]), prog);
        n.apply(&create(&t(&[1]))).unwrap();
        let outs = n.enabled_outputs();
        assert_eq!(outs.len(), 2);
        for o in &outs {
            n.apply(o).unwrap();
        }
        n.apply(&TxnOp::Commit {
            tid: t(&[1, 0]),
            value: Value::Nil,
        })
        .unwrap();
        assert!(n.enabled_outputs().is_empty());
        n.apply(&TxnOp::Commit {
            tid: t(&[1, 1]),
            value: Value::Nil,
        })
        .unwrap();
        assert_eq!(n.enabled_outputs().len(), 1);
    }
}
