//! Well-formedness of transaction and basic-object schedules (paper §2.2).
//!
//! Well-formedness is defined *per primitive*: a sequence of operations of a
//! system is well-formed iff its projection at every transaction and every
//! basic object is well-formed. The paper proves that all serial schedules
//! are well-formed; [`SystemWfMonitor`] re-checks this at runtime as an
//! executable corollary, and the standalone trackers are used by components
//! and tests.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use ioa::{Monitor, Schedule, System};

use crate::op::TxnOp;
use crate::tid::Tid;
use crate::value::ObjectId;

/// A well-formedness violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WfError {
    /// The primitive (transaction or object) whose projection is ill-formed.
    pub primitive: String,
    /// Description of the violated clause.
    pub reason: String,
}

impl fmt::Display for WfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ill-formed at {}: {}", self.primitive, self.reason)
    }
}

impl Error for WfError {}

/// Incremental checker for the well-formedness of one *transaction*'s
/// operation subsequence (the recursive definition in §2.2).
///
/// The tracked transaction `T` sees: `CREATE(T)`, `COMMIT(T',v)` /
/// `ABORT(T')` for children `T'`, `REQUEST-CREATE(T')` for children, and
/// `REQUEST-COMMIT(T,v)`.
#[derive(Clone, Debug, Default)]
pub struct TxnWfTracker {
    created: bool,
    requested: BTreeSet<Tid>,
    returned: BTreeSet<Tid>,
    commit_requested: bool,
}

impl TxnWfTracker {
    /// A tracker in the initial (empty-schedule) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `CREATE(T)` has occurred.
    pub fn is_created(&self) -> bool {
        self.created
    }

    /// Whether `REQUEST-COMMIT(T, ·)` has occurred.
    pub fn has_requested_commit(&self) -> bool {
        self.commit_requested
    }

    /// Observe the next operation of `T`'s subsequence, where `tid` is `T`.
    ///
    /// # Errors
    ///
    /// [`WfError`] naming the violated clause.
    pub fn observe(&mut self, tid: &Tid, op: &TxnOp) -> Result<(), WfError> {
        let fail = |reason: String| {
            Err(WfError {
                primitive: tid.to_string(),
                reason,
            })
        };
        match op {
            TxnOp::Create { tid: t, .. } => {
                debug_assert_eq!(t, tid);
                if self.created {
                    return fail("repeated CREATE".into());
                }
                self.created = true;
            }
            TxnOp::Commit { tid: child, .. } | TxnOp::Abort { tid: child } => {
                debug_assert_eq!(child.parent().as_ref(), Some(tid));
                if !self.requested.contains(child) {
                    return fail(format!("return for unrequested child {child}"));
                }
                if self.returned.contains(child) {
                    return fail(format!("repeated return for child {child}"));
                }
                self.returned.insert(child.clone());
            }
            TxnOp::RequestCreate { tid: child, .. } => {
                debug_assert_eq!(child.parent().as_ref(), Some(tid));
                if self.requested.contains(child) {
                    return fail(format!("repeated REQUEST-CREATE for {child}"));
                }
                if self.commit_requested {
                    return fail("REQUEST-CREATE after REQUEST-COMMIT".into());
                }
                if !self.created {
                    return fail("REQUEST-CREATE before CREATE".into());
                }
                self.requested.insert(child.clone());
            }
            TxnOp::RequestCommit { tid: t, .. } => {
                debug_assert_eq!(t, tid);
                if self.commit_requested {
                    return fail("repeated REQUEST-COMMIT".into());
                }
                if !self.created {
                    return fail("REQUEST-COMMIT before CREATE".into());
                }
                self.commit_requested = true;
            }
        }
        Ok(())
    }
}

/// Incremental checker for the well-formedness of one *basic object*'s
/// operation subsequence: alternating `CREATE` / `REQUEST-COMMIT` pairs for
/// the same access, starting with a `CREATE`, each access created at most
/// once.
#[derive(Clone, Debug, Default)]
pub struct ObjectWfTracker {
    created: BTreeSet<Tid>,
    pending: Option<Tid>,
}

impl ObjectWfTracker {
    /// A tracker in the initial state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The currently pending access, if any.
    pub fn pending(&self) -> Option<&Tid> {
        self.pending.as_ref()
    }

    /// Observe the next operation of the object's subsequence.
    ///
    /// # Errors
    ///
    /// [`WfError`] naming the violated clause.
    pub fn observe(&mut self, object: ObjectId, op: &TxnOp) -> Result<(), WfError> {
        let fail = |reason: String| {
            Err(WfError {
                primitive: object.to_string(),
                reason,
            })
        };
        match op {
            TxnOp::Create { tid, .. } => {
                if self.created.contains(tid) {
                    return fail(format!("repeated CREATE for access {tid}"));
                }
                if let Some(p) = &self.pending {
                    return fail(format!("CREATE({tid}) while access {p} pending"));
                }
                self.created.insert(tid.clone());
                self.pending = Some(tid.clone());
            }
            TxnOp::RequestCommit { tid, .. } => {
                if !self.created.contains(tid) {
                    return fail(format!("REQUEST-COMMIT for uncreated access {tid}"));
                }
                if self.pending.as_ref() != Some(tid) {
                    return fail(format!("REQUEST-COMMIT({tid}) while not pending"));
                }
                self.pending = None;
            }
            other => {
                return fail(format!("operation {other} is not an object operation"));
            }
        }
        Ok(())
    }
}

/// Checks a whole sequence against the transaction well-formedness rules
/// for the single transaction `tid` (the sequence must be `σ|T`).
///
/// # Errors
///
/// The first violation found.
pub fn check_transaction_wf(tid: &Tid, seq: &[TxnOp]) -> Result<(), WfError> {
    let mut t = TxnWfTracker::new();
    for op in seq {
        t.observe(tid, op)?;
    }
    Ok(())
}

/// Checks a whole sequence against the basic-object well-formedness rules
/// (the sequence must be `σ|X`).
///
/// # Errors
///
/// The first violation found.
pub fn check_object_wf(object: ObjectId, seq: &[TxnOp]) -> Result<(), WfError> {
    let mut t = ObjectWfTracker::new();
    for op in seq {
        t.observe(object, op)?;
    }
    Ok(())
}

/// An [`ioa::Monitor`] asserting that the running system's schedule stays
/// well-formed at every primitive — the executable form of the paper's
/// lemma that all serial schedules are well-formed.
///
/// The monitor learns which transaction names are accesses (and to which
/// object) from the `access` payloads of `REQUEST-CREATE`/`CREATE`
/// operations, or from a pre-registered map for systems whose objects
/// resolve accesses by registry.
#[derive(Debug, Default)]
pub struct SystemWfMonitor {
    txns: BTreeMap<Tid, TxnWfTracker>,
    objects: BTreeMap<ObjectId, ObjectWfTracker>,
    access_obj: BTreeMap<Tid, ObjectId>,
    transactions_only: bool,
}

impl SystemWfMonitor {
    /// A monitor with no pre-registered accesses.
    pub fn new() -> Self {
        Self::default()
    }

    /// A monitor that checks transaction projections only.
    ///
    /// Concurrent (non-serial) systems use *resilient* objects that hold
    /// several pending accesses at once — deliberately outside the
    /// basic-object well-formedness discipline — so object projections are
    /// not checked there.
    pub fn transactions_only() -> Self {
        SystemWfMonitor {
            transactions_only: true,
            ..Self::default()
        }
    }

    /// Pre-register `tid` as an access to `object` (for registry-resolved
    /// systems such as the non-replicated system **A**, whose access
    /// operations carry no [`AccessSpec`](crate::AccessSpec)).
    pub fn register_access(&mut self, tid: Tid, object: ObjectId) {
        self.access_obj.insert(tid, object);
    }

    /// Observe the next operation of the system schedule directly (the
    /// standalone form of the [`Monitor`] hookup, for callers that have a
    /// plain operation sequence rather than an executing [`System`]).
    ///
    /// # Errors
    ///
    /// The violated well-formedness clause.
    pub fn observe_op(&mut self, op: &TxnOp) -> Result<(), WfError> {
        self.observe(op)
    }

    fn observe(&mut self, op: &TxnOp) -> Result<(), WfError> {
        // Learn access names from specs.
        if let (tid, Some(spec)) = (op.tid(), op.access()) {
            self.access_obj.entry(tid.clone()).or_insert(spec.object);
        }
        let tid = op.tid().clone();
        let is_access = self.access_obj.contains_key(&tid);
        match op {
            TxnOp::RequestCreate { .. } => {
                // Operation of parent(T).
                let parent = tid.parent().expect("REQUEST-CREATE of root");
                self.txns.entry(parent.clone()).or_default().observe(&parent, op)?;
            }
            TxnOp::Create { .. } => {
                if is_access {
                    if !self.transactions_only {
                        let obj = self.access_obj[&tid];
                        self.objects.entry(obj).or_default().observe(obj, op)?;
                    }
                } else {
                    self.txns.entry(tid.clone()).or_default().observe(&tid, op)?;
                }
            }
            TxnOp::RequestCommit { .. } => {
                if is_access {
                    if !self.transactions_only {
                        let obj = self.access_obj[&tid];
                        self.objects.entry(obj).or_default().observe(obj, op)?;
                    }
                } else {
                    self.txns.entry(tid.clone()).or_default().observe(&tid, op)?;
                }
            }
            TxnOp::Commit { .. } | TxnOp::Abort { .. } => {
                // Return operations belong to parent(T).
                let parent = tid.parent().expect("return operation for root");
                self.txns.entry(parent.clone()).or_default().observe(&parent, op)?;
            }
        }
        Ok(())
    }
}

impl Monitor<TxnOp> for SystemWfMonitor {
    fn name(&self) -> String {
        "well-formedness".into()
    }

    fn check(
        &mut self,
        _system: &System<TxnOp>,
        so_far: &Schedule<TxnOp>,
        step: usize,
    ) -> Result<(), String> {
        let op = &so_far[step];
        self.observe(op).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::AccessSpec;
    use crate::value::Value;

    fn t(path: &[u32]) -> Tid {
        Tid::from_path(path)
    }

    fn create(path: &[u32]) -> TxnOp {
        TxnOp::Create {
            tid: t(path),
            access: None,
            param: None,
        }
    }

    fn rc(path: &[u32]) -> TxnOp {
        TxnOp::RequestCommit {
            tid: t(path),
            value: Value::Nil,
        }
    }

    #[test]
    fn empty_schedule_is_well_formed() {
        assert!(check_transaction_wf(&t(&[1]), &[]).is_ok());
        assert!(check_object_wf(ObjectId(0), &[]).is_ok());
    }

    #[test]
    fn typical_transaction_lifecycle() {
        let me = t(&[1]);
        let seq = vec![
            create(&[1]),
            TxnOp::request_create(t(&[1, 0])),
            TxnOp::Commit {
                tid: t(&[1, 0]),
                value: Value::Nil,
            },
            rc(&[1]),
        ];
        assert!(check_transaction_wf(&me, &seq).is_ok());
    }

    #[test]
    fn repeated_create_rejected() {
        let me = t(&[1]);
        let err = check_transaction_wf(&me, &[create(&[1]), create(&[1])]).unwrap_err();
        assert!(err.reason.contains("repeated CREATE"));
    }

    #[test]
    fn return_without_request_rejected() {
        let me = t(&[1]);
        let seq = vec![
            create(&[1]),
            TxnOp::Abort { tid: t(&[1, 0]) },
        ];
        let err = check_transaction_wf(&me, &seq).unwrap_err();
        assert!(err.reason.contains("unrequested"));
    }

    #[test]
    fn conflicting_returns_rejected() {
        let me = t(&[1]);
        let seq = vec![
            create(&[1]),
            TxnOp::request_create(t(&[1, 0])),
            TxnOp::Commit {
                tid: t(&[1, 0]),
                value: Value::Nil,
            },
            TxnOp::Abort { tid: t(&[1, 0]) },
        ];
        let err = check_transaction_wf(&me, &seq).unwrap_err();
        assert!(err.reason.contains("repeated return"));
    }

    #[test]
    fn output_before_create_rejected() {
        let me = t(&[1]);
        let err =
            check_transaction_wf(&me, &[TxnOp::request_create(t(&[1, 0]))]).unwrap_err();
        assert!(err.reason.contains("before CREATE"));
        let err2 = check_transaction_wf(&me, &[rc(&[1])]).unwrap_err();
        assert!(err2.reason.contains("before CREATE"));
    }

    #[test]
    fn request_create_after_commit_rejected() {
        let me = t(&[1]);
        let seq = vec![create(&[1]), rc(&[1]), TxnOp::request_create(t(&[1, 0]))];
        let err = check_transaction_wf(&me, &seq).unwrap_err();
        assert!(err.reason.contains("after REQUEST-COMMIT"));
    }

    #[test]
    fn duplicate_child_request_rejected() {
        let me = t(&[1]);
        let seq = vec![
            create(&[1]),
            TxnOp::request_create(t(&[1, 0])),
            TxnOp::request_create(t(&[1, 0])),
        ];
        let err = check_transaction_wf(&me, &seq).unwrap_err();
        assert!(err.reason.contains("repeated REQUEST-CREATE"));
    }

    #[test]
    fn object_alternation_enforced() {
        let o = ObjectId(0);
        let a1 = TxnOp::Create {
            tid: t(&[1, 0]),
            access: Some(AccessSpec::read(o)),
            param: None,
        };
        let a2 = TxnOp::Create {
            tid: t(&[1, 1]),
            access: Some(AccessSpec::read(o)),
            param: None,
        };
        // CREATE while another access pending.
        let err = check_object_wf(o, &[a1.clone(), a2.clone()]).unwrap_err();
        assert!(err.reason.contains("pending"));
        // Proper alternation is fine.
        let ok = vec![a1, rc(&[1, 0]), a2, rc(&[1, 1])];
        assert!(check_object_wf(o, &ok).is_ok());
    }

    #[test]
    fn object_rejects_uncreated_commit_and_duplicates() {
        let o = ObjectId(0);
        let err = check_object_wf(o, &[rc(&[1, 0])]).unwrap_err();
        assert!(err.reason.contains("uncreated"));

        let a1 = TxnOp::Create {
            tid: t(&[1, 0]),
            access: Some(AccessSpec::read(o)),
            param: None,
        };
        let err2 = check_object_wf(
            o,
            &[a1.clone(), rc(&[1, 0]), a1],
        )
        .unwrap_err();
        assert!(err2.reason.contains("repeated CREATE"));
    }

    #[test]
    fn monitor_routes_ops_to_primitives() {
        let mut m = SystemWfMonitor::new();
        // Root created, requests child 1; child created; child commits.
        let script = vec![
            TxnOp::Create {
                tid: Tid::root(),
                access: None,
                param: None,
            },
            TxnOp::request_create(t(&[1])),
            create(&[1]),
            rc(&[1]),
            TxnOp::Commit {
                tid: t(&[1]),
                value: Value::Nil,
            },
        ];
        for op in &script {
            m.observe(op).unwrap();
        }
    }

    #[test]
    fn monitor_detects_cross_primitive_violation() {
        let mut m = SystemWfMonitor::new();
        m.observe(&TxnOp::Create {
            tid: Tid::root(),
            access: None,
            param: None,
        })
        .unwrap();
        m.observe(&TxnOp::request_create(t(&[1]))).unwrap();
        // COMMIT for T0.2, never requested.
        let err = m
            .observe(&TxnOp::Commit {
                tid: t(&[2]),
                value: Value::Nil,
            })
            .unwrap_err();
        assert!(err.reason.contains("unrequested"));
    }

    #[test]
    fn monitor_uses_registered_accesses() {
        let mut m = SystemWfMonitor::new();
        m.register_access(t(&[1, 0]), ObjectId(9));
        m.observe(&TxnOp::Create {
            tid: t(&[1, 0]),
            access: None, // no spec: registry decides this is an object op
            param: None,
        })
        .unwrap();
        // The object tracker (not a transaction tracker) saw it: a second
        // CREATE for the same access must be a *repeated CREATE* object
        // violation.
        let err = m
            .observe(&TxnOp::Create {
                tid: t(&[1, 0]),
                access: None,
                param: None,
            })
            .unwrap_err();
        assert_eq!(err.primitive, "O9");
    }
}
