//! The serial scheduler automaton (paper §2.2, fully specified).

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

use ioa::{Component, OpClass};

use crate::op::{AccessSpec, TxnOp};
use crate::tid::Tid;
use crate::value::Value;

/// The serial scheduler: the fully-specified automaton that controls
/// communication between transactions and basic objects, and thereby defines
/// the allowable (serial) orders in which they may take steps.
///
/// State components follow the paper exactly: `create-requested`, `created`,
/// `commit-requested`, `committed`, `aborted`, and `returned`. Initially
/// `create-requested = {T0}` and the rest are empty.
///
/// Output preconditions (transcribed):
///
/// * `CREATE(T)`: `T ∈ create-requested − (created ∪ aborted)` and
///   `siblings(T) ∩ created ⊆ returned` — siblings run one at a time, in a
///   depth-first traversal of the transaction tree.
/// * `COMMIT(T,v)`: `(T,v) ∈ commit-requested`, `T ∉ returned`, and
///   `children(T) ∩ create-requested ⊆ returned` — a transaction cannot
///   commit until all its requested children have returned.
/// * `ABORT(T)`: `T ∈ create-requested − (created ∪ aborted)` and
///   `siblings(T) ∩ created ⊆ returned` — the scheduler may spontaneously
///   abort any requested-but-not-yet-created transaction; the semantics of
///   `ABORT(T)` are that `T` was never created.
///
/// The root `T0` "may neither commit nor abort" (it models the external
/// world), so the scheduler never emits `COMMIT`/`ABORT` for it.
///
/// Because siblings run one at a time, this automaton cannot express the
/// concurrent-sibling schedules that parallel program nodes produce in
/// the simulator's nested-transaction harness (multiple in-flight
/// children per client, aborts straddling a running sibling) — those are
/// legal under the per-transaction well-formedness conditions but not
/// under the serial scheduler's sibling rule. `tests/concurrent_siblings.rs`
/// pins both facts; the harness keeps its own per-node state instead.
///
/// The scheduler also ferries the access/parameter payloads from
/// `REQUEST-CREATE(T)` to `CREATE(T)` — those payloads are part of the
/// transaction *name* in the paper's encoding (see
/// [`AccessSpec`](crate::AccessSpec)).
#[derive(Debug, Clone, Default)]
pub struct SerialScheduler {
    create_requested: BTreeMap<Tid, (Option<AccessSpec>, Option<Value>)>,
    created: BTreeSet<Tid>,
    commit_requested: BTreeMap<Tid, Value>,
    committed: BTreeMap<Tid, Value>,
    aborted: BTreeSet<Tid>,
    returned: BTreeSet<Tid>,
    // The two output preconditions quantify over siblings/children, and a
    // scan per step makes long flat schedules quadratic (replaying a
    // million-transaction simulator trace never finishes). These counters
    // are the same predicates maintained incrementally:
    /// Per-parent count of created-but-not-returned children
    /// (`siblings(T) ∩ created ⊈ returned` ⇔ counter ≠ 0).
    active_children: BTreeMap<Tid, usize>,
    /// Per-parent count of requested-but-not-returned children
    /// (`children(T) ∩ create-requested ⊈ returned` ⇔ counter ≠ 0).
    pending_children: BTreeMap<Tid, usize>,
}

impl SerialScheduler {
    /// A scheduler in its start state (`create-requested = {T0}`).
    pub fn new() -> Self {
        let mut s = SerialScheduler::default();
        s.create_requested.insert(Tid::root(), (None, None));
        s
    }

    /// The set of created transactions.
    pub fn created(&self) -> &BTreeSet<Tid> {
        &self.created
    }

    /// The set of aborted transactions.
    pub fn aborted(&self) -> &BTreeSet<Tid> {
        &self.aborted
    }

    /// The set of returned (committed or aborted) transactions.
    pub fn returned(&self) -> &BTreeSet<Tid> {
        &self.returned
    }

    /// Committed transactions with their values.
    pub fn committed(&self) -> &BTreeMap<Tid, Value> {
        &self.committed
    }

    /// Whether `tid` is an *orphan*: some ancestor has aborted. (Used for
    /// the non-orphan hypothesis of the paper's Theorem 11.)
    pub fn is_orphan(&self, tid: &Tid) -> bool {
        self.aborted.iter().any(|a| a.is_ancestor_of(tid))
    }

    /// `siblings(T) ∩ created ⊆ returned`. Only consulted for a `t` that
    /// is not itself created (see [`Self::create_enabled`]), so the
    /// parent's active-children counter counts exactly the created,
    /// unreturned siblings.
    fn siblings_quiet(&self, t: &Tid) -> bool {
        match t.parent() {
            Some(p) => self.active_children.get(&p).copied().unwrap_or(0) == 0,
            None => true, // the root has no siblings
        }
    }

    /// `children(T) ∩ create-requested ⊆ returned`, as a counter.
    fn children_returned(&self, t: &Tid) -> bool {
        self.pending_children.get(t).copied().unwrap_or(0) == 0
    }

    /// Maintain the counters when `t` returns: it stops being an active
    /// sibling (if it was created) and a pending child (if requested).
    /// Called at most once per transaction — both `COMMIT` and `ABORT`
    /// preconditions exclude already-returned transactions.
    fn note_returned(&mut self, t: &Tid) {
        if let Some(p) = t.parent() {
            if self.created.contains(t) {
                if let Some(n) = self.active_children.get_mut(&p) {
                    *n = n.saturating_sub(1);
                }
            }
            if self.create_requested.contains_key(t) {
                if let Some(n) = self.pending_children.get_mut(&p) {
                    *n = n.saturating_sub(1);
                }
            }
        }
    }

    fn create_enabled(&self, t: &Tid) -> bool {
        self.create_requested.contains_key(t)
            && !self.created.contains(t)
            && !self.aborted.contains(t)
            && self.siblings_quiet(t)
    }

    fn commit_enabled(&self, t: &Tid) -> bool {
        !t.is_root()
            && self.commit_requested.contains_key(t)
            && !self.returned.contains(t)
            && self.children_returned(t)
    }

    fn abort_enabled(&self, t: &Tid) -> bool {
        !t.is_root() && self.create_enabled(t)
    }
}

impl Component<TxnOp> for SerialScheduler {
    fn name(&self) -> String {
        "serial-scheduler".into()
    }

    fn classify(&self, op: &TxnOp) -> OpClass {
        match op {
            TxnOp::RequestCreate { .. } | TxnOp::RequestCommit { .. } => OpClass::Input,
            TxnOp::Create { .. } | TxnOp::Commit { .. } | TxnOp::Abort { .. } => OpClass::Output,
        }
    }

    fn reset(&mut self) {
        *self = SerialScheduler::new();
    }

    fn enabled_outputs(&self) -> Vec<TxnOp> {
        let mut out = Vec::new();
        for (t, (access, param)) in &self.create_requested {
            if self.create_enabled(t) {
                out.push(TxnOp::Create {
                    tid: t.clone(),
                    access: access.clone(),
                    param: param.clone(),
                });
                if !t.is_root() {
                    out.push(TxnOp::Abort { tid: t.clone() });
                }
            }
        }
        for (t, v) in &self.commit_requested {
            if self.commit_enabled(t) {
                out.push(TxnOp::Commit {
                    tid: t.clone(),
                    value: v.clone(),
                });
            }
        }
        out
    }

    fn apply(&mut self, op: &TxnOp) -> Result<(), String> {
        match op {
            TxnOp::RequestCreate { tid, access, param } => {
                // Postcondition: create-requested ∪= {T}. (Set union: a
                // repeat — which only an ill-formed parent would issue — is
                // idempotent.)
                if let std::collections::btree_map::Entry::Vacant(e) =
                    self.create_requested.entry(tid.clone())
                {
                    e.insert((access.clone(), param.clone()));
                    if let Some(p) = tid.parent() {
                        *self.pending_children.entry(p).or_insert(0) += 1;
                    }
                }
                Ok(())
            }
            TxnOp::RequestCommit { tid, value } => {
                self.commit_requested
                    .entry(tid.clone())
                    .or_insert_with(|| value.clone());
                Ok(())
            }
            TxnOp::Create { tid, .. } => {
                if !self.create_enabled(tid) {
                    return Err(format!("CREATE({tid}) precondition fails"));
                }
                self.created.insert(tid.clone());
                if let Some(p) = tid.parent() {
                    *self.active_children.entry(p).or_insert(0) += 1;
                }
                Ok(())
            }
            TxnOp::Commit { tid, value } => {
                if !self.commit_enabled(tid) {
                    return Err(format!("COMMIT({tid}) precondition fails"));
                }
                if self.commit_requested.get(tid) != Some(value) {
                    return Err(format!("COMMIT({tid}) value differs from request"));
                }
                self.committed.insert(tid.clone(), value.clone());
                self.returned.insert(tid.clone());
                self.note_returned(tid);
                Ok(())
            }
            TxnOp::Abort { tid } => {
                if !self.abort_enabled(tid) {
                    return Err(format!("ABORT({tid}) precondition fails"));
                }
                self.aborted.insert(tid.clone());
                self.returned.insert(tid.clone());
                self.note_returned(tid);
                Ok(())
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_boxed(&self) -> Box<dyn Component<TxnOp>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(path: &[u32]) -> Tid {
        Tid::from_path(path)
    }

    fn req(path: &[u32]) -> TxnOp {
        TxnOp::request_create(t(path))
    }

    fn create(path: &[u32]) -> TxnOp {
        TxnOp::Create {
            tid: t(path),
            access: None,
            param: None,
        }
    }

    #[test]
    fn initially_only_root_creation_enabled() {
        let s = SerialScheduler::new();
        let outs = s.enabled_outputs();
        assert_eq!(outs, vec![create(&[])]);
    }

    #[test]
    fn root_is_never_aborted_or_committed() {
        let mut s = SerialScheduler::new();
        s.apply(&create(&[])).unwrap();
        s.apply(&TxnOp::RequestCommit {
            tid: Tid::root(),
            value: Value::Nil,
        })
        .unwrap();
        assert!(s.enabled_outputs().is_empty());
    }

    #[test]
    fn siblings_run_one_at_a_time() {
        let mut s = SerialScheduler::new();
        s.apply(&create(&[])).unwrap();
        s.apply(&req(&[0])).unwrap();
        s.apply(&req(&[1])).unwrap();
        // Both children creatable...
        let outs = s.enabled_outputs();
        assert!(outs.contains(&create(&[0])));
        assert!(outs.contains(&create(&[1])));
        // ...but once T0.0 is created, T0.1 must wait.
        s.apply(&create(&[0])).unwrap();
        let outs = s.enabled_outputs();
        assert!(!outs.contains(&create(&[1])));
        // T0.1 may still be aborted? No: ABORT shares the sibling condition.
        assert!(!outs.contains(&TxnOp::Abort { tid: t(&[1]) }));
        // After T0.0 commits, T0.1 becomes creatable again.
        s.apply(&TxnOp::RequestCommit {
            tid: t(&[0]),
            value: Value::Nil,
        })
        .unwrap();
        s.apply(&TxnOp::Commit {
            tid: t(&[0]),
            value: Value::Nil,
        })
        .unwrap();
        assert!(s.enabled_outputs().contains(&create(&[1])));
    }

    #[test]
    fn commit_waits_for_children() {
        let mut s = SerialScheduler::new();
        s.apply(&create(&[])).unwrap();
        s.apply(&req(&[0])).unwrap();
        s.apply(&create(&[0])).unwrap();
        s.apply(&req(&[0, 0])).unwrap();
        s.apply(&TxnOp::RequestCommit {
            tid: t(&[0]),
            value: Value::Int(1),
        })
        .unwrap();
        // Child T0.0.0 requested but not returned: COMMIT(T0.0) disabled.
        assert!(!s
            .enabled_outputs()
            .iter()
            .any(|o| matches!(o, TxnOp::Commit { tid, .. } if tid == &t(&[0]))));
        // Abort the child (never created): now the commit can go.
        s.apply(&TxnOp::Abort { tid: t(&[0, 0]) }).unwrap();
        assert!(s
            .enabled_outputs()
            .iter()
            .any(|o| matches!(o, TxnOp::Commit { tid, .. } if tid == &t(&[0]))));
    }

    #[test]
    fn abort_only_before_creation() {
        let mut s = SerialScheduler::new();
        s.apply(&create(&[])).unwrap();
        s.apply(&req(&[0])).unwrap();
        assert!(s.abort_enabled(&t(&[0])));
        s.apply(&create(&[0])).unwrap();
        assert!(!s.abort_enabled(&t(&[0])));
        assert!(s
            .apply(&TxnOp::Abort { tid: t(&[0]) })
            .is_err());
    }

    #[test]
    fn create_requires_request() {
        let mut s = SerialScheduler::new();
        s.apply(&create(&[])).unwrap();
        assert!(s.apply(&create(&[5])).is_err());
    }

    #[test]
    fn no_repeat_create() {
        let mut s = SerialScheduler::new();
        s.apply(&create(&[])).unwrap();
        assert!(s.apply(&create(&[])).is_err());
    }

    #[test]
    fn commit_value_must_match_request() {
        let mut s = SerialScheduler::new();
        s.apply(&create(&[])).unwrap();
        s.apply(&req(&[0])).unwrap();
        s.apply(&create(&[0])).unwrap();
        s.apply(&TxnOp::RequestCommit {
            tid: t(&[0]),
            value: Value::Int(1),
        })
        .unwrap();
        assert!(s
            .apply(&TxnOp::Commit {
                tid: t(&[0]),
                value: Value::Int(2),
            })
            .is_err());
        assert!(s
            .apply(&TxnOp::Commit {
                tid: t(&[0]),
                value: Value::Int(1),
            })
            .is_ok());
        // No double return.
        assert!(s
            .apply(&TxnOp::Commit {
                tid: t(&[0]),
                value: Value::Int(1),
            })
            .is_err());
    }

    #[test]
    fn orphan_detection() {
        let mut s = SerialScheduler::new();
        s.apply(&create(&[])).unwrap();
        s.apply(&req(&[0])).unwrap();
        s.apply(&TxnOp::Abort { tid: t(&[0]) }).unwrap();
        assert!(s.is_orphan(&t(&[0])));
        assert!(s.is_orphan(&t(&[0, 3])));
        assert!(!s.is_orphan(&t(&[1])));
    }

    #[test]
    fn payloads_ferried_from_request_to_create() {
        use crate::op::AccessSpec;
        use crate::value::ObjectId;
        let mut s = SerialScheduler::new();
        s.apply(&create(&[])).unwrap();
        let spec = AccessSpec::read(ObjectId(7));
        s.apply(&TxnOp::RequestCreate {
            tid: t(&[0]),
            access: Some(spec.clone()),
            param: Some(Value::Int(9)),
        })
        .unwrap();
        let outs = s.enabled_outputs();
        assert!(outs.contains(&TxnOp::Create {
            tid: t(&[0]),
            access: Some(spec),
            param: Some(Value::Int(9)),
        }));
    }

    /// The incremental counters must agree with brute-force evaluation of
    /// the paper's set-quantified preconditions after every step of a
    /// nested schedule (creation, nesting, commits, and aborts).
    #[test]
    fn counter_predicates_match_the_quantified_preconditions() {
        let brute_quiet = |s: &SerialScheduler, x: &Tid| {
            s.created
                .iter()
                .filter(|c| c.is_sibling_of(x))
                .all(|c| s.returned.contains(c))
        };
        let brute_children = |s: &SerialScheduler, x: &Tid| {
            s.create_requested
                .keys()
                .filter(|c| c.is_child_of(x))
                .all(|c| s.returned.contains(c))
        };
        let rc = |path: &[u32], v: Value| TxnOp::RequestCommit {
            tid: t(path),
            value: v,
        };
        let commit = |path: &[u32], v: Value| TxnOp::Commit {
            tid: t(path),
            value: v,
        };
        let script = vec![
            create(&[]),
            req(&[0]),
            req(&[1]),
            req(&[2]),
            create(&[0]),
            req(&[0, 0]),
            req(&[0, 1]),
            create(&[0, 0]),
            rc(&[0, 0], Value::Int(1)),
            commit(&[0, 0], Value::Int(1)),
            TxnOp::Abort { tid: t(&[0, 1]) },
            rc(&[0], Value::Nil),
            commit(&[0], Value::Nil),
            create(&[1]),
            rc(&[1], Value::Int(2)),
            commit(&[1], Value::Int(2)),
            TxnOp::Abort { tid: t(&[2]) },
        ];
        let probes = [
            t(&[]),
            t(&[0]),
            t(&[1]),
            t(&[2]),
            t(&[3]),
            t(&[0, 0]),
            t(&[0, 1]),
        ];
        let mut s = SerialScheduler::new();
        for op in script {
            s.apply(&op).unwrap_or_else(|e| panic!("{op:?}: {e}"));
            for p in &probes {
                // `siblings_quiet` is only consulted for a `p` that is not
                // itself created-and-unreturned (see `create_enabled`); an
                // active `p` counts itself in the parent's counter.
                if !s.created.contains(p) || s.returned.contains(p) {
                    assert_eq!(
                        s.siblings_quiet(p),
                        brute_quiet(&s, p),
                        "siblings_quiet({p}) diverged after {op:?}"
                    );
                }
                assert_eq!(
                    s.children_returned(p),
                    brute_children(&s, p),
                    "children_returned({p}) diverged after {op:?}"
                );
            }
        }
        assert!(s.committed.contains_key(&t(&[0])));
        assert!(s.aborted.contains(&t(&[2])));
    }
}
