//! Nested transaction systems after Lynch–Merritt (paper §2.2).
//!
//! A *serial system* is the composition of:
//!
//! * a transaction automaton for each internal node of the transaction tree
//!   (here: [`TransactionNode`] driven by a [`TransactionProgram`], or any
//!   hand-written [`ioa::Component`] such as the transaction managers in
//!   `qc-replication`);
//! * a *basic object* for each element of the access partition `O` (here:
//!   [`ReadWriteObject`], which also serves as the paper's data manager);
//! * the fully-specified [`SerialScheduler`], which runs siblings one at a
//!   time in a depth-first traversal of the tree and may spontaneously abort
//!   requested-but-uncreated transactions.
//!
//! Transactions are named by tree paths ([`Tid`]); operations are the
//! five-fold vocabulary `REQUEST-CREATE` / `CREATE` / `REQUEST-COMMIT` /
//! `COMMIT` / `ABORT` ([`TxnOp`]); well-formedness of every primitive's
//! projection is defined in [`wf`] and enforceable at runtime via
//! [`SystemWfMonitor`].
//!
//! # Example: a minimal serial system
//!
//! One user transaction reads an object and commits with the value it read.
//!
//! ```
//! use ioa::{Executor, System};
//! use nested_txn::{
//!     AccessSpec, ChildRequest, ObjectId, ReadWriteObject, ScriptProgram, SerialScheduler,
//!     Tid, TransactionNode, TxnOp, Value,
//! };
//! use rand::SeedableRng;
//!
//! let root = Tid::root();
//! let user = root.child(0);
//! let object = ObjectId(0);
//!
//! let mut system: System<TxnOp> = System::new();
//! system.push(Box::new(SerialScheduler::new()));
//! system.push(Box::new(ReadWriteObject::new(object, "x", Value::Int(7))));
//! // The root requests the user transaction and never commits.
//! system.push(Box::new(TransactionNode::new(
//!     root.clone(),
//!     ScriptProgram::new(vec![nested_txn::ScriptStep::Run(vec![ChildRequest {
//!         index: 0,
//!         access: None,
//!         param: None,
//!     }])]),
//! )));
//! // The user transaction performs one read access, then commits.
//! system.push(Box::new(TransactionNode::new(
//!     user.clone(),
//!     ScriptProgram::sequential(
//!         vec![ChildRequest {
//!             index: 0,
//!             access: Some(AccessSpec::read(object)),
//!             param: None,
//!         }],
//!         Value::Nil,
//!     ),
//! )));
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let exec = Executor::new().run(&mut system, &mut rng)?;
//! assert!(exec.schedule().len() > 0);
//! # Ok::<(), ioa::IoaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod object;
mod op;
mod program;
mod scheduler;
mod tid;
mod value;
pub mod wf;
pub mod workload;

pub use object::{ReadWriteObject, RegisteredAccess};
pub use op::{AccessKind, AccessSpec, TxnOp};
pub use program::{
    ChildRequest, Effects, LeafProgram, Outcome, ScriptProgram, ScriptStep, TransactionNode,
    TransactionProgram,
};
pub use scheduler::SerialScheduler;
pub use tid::Tid;
pub use value::{ObjectId, Value};
pub use wf::{SystemWfMonitor, WfError};
pub use workload::{
    BankingGen, InventoryGen, ProgramNode, ProgramTree, RandomTreeGen, TreeStats, WorkloadKind,
};
