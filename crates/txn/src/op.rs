//! The operation vocabulary of nested transaction systems.

use std::fmt;

use crate::tid::Tid;
use crate::value::{ObjectId, Value};

/// Whether an access reads or writes its object (the `kind` attribute of an
/// access to a read-write object, paper §2.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AccessKind {
    /// A read access: returns the object's data.
    Read,
    /// A write access: replaces the object's data, returns `nil`.
    Write,
}

/// The attributes of an access transaction: which object it touches, its
/// kind, and (for writes) the data to be written.
///
/// The paper treats these as attributes of the transaction *name* (footnote
/// 1: transactions with different parameters are different transactions; the
/// tree is a naming scheme for all possible transactions). We realise that
/// convention by carrying the attributes inside the `REQUEST-CREATE` /
/// `CREATE` operations for the access, which is equivalent: the pair
/// `(tid, spec)` plays the role of the paper's access name.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AccessSpec {
    /// The object accessed.
    pub object: ObjectId,
    /// Read or write.
    pub kind: AccessKind,
    /// For writes, the data to write; `nil` for reads.
    pub data: Value,
}

impl AccessSpec {
    /// A read access to `object`.
    pub fn read(object: ObjectId) -> Self {
        AccessSpec {
            object,
            kind: AccessKind::Read,
            data: Value::Nil,
        }
    }

    /// A write access to `object` with the given data.
    pub fn write(object: ObjectId, data: Value) -> Self {
        AccessSpec {
            object,
            kind: AccessKind::Write,
            data,
        }
    }
}

/// An operation of a nested transaction system (paper §2.2).
///
/// | operation | output of | input of |
/// |---|---|---|
/// | `REQUEST-CREATE(T)` | `parent(T)` | serial scheduler |
/// | `CREATE(T)` | serial scheduler | `T` (or `T`'s object, for accesses) |
/// | `REQUEST-COMMIT(T,v)` | `T` (or its object) | serial scheduler |
/// | `COMMIT(T,v)` | serial scheduler | `parent(T)` |
/// | `ABORT(T)` | serial scheduler | `parent(T)` |
///
/// `COMMIT(T,v)` and `ABORT(T)` are the *return* operations for `T`.
///
/// The optional `access` payload carries the access attributes for leaf
/// transactions (see [`AccessSpec`]); the optional `param` payload carries a
/// creation parameter for non-access transactions whose behaviour is
/// value-parameterised (e.g. a write transaction-manager's `value(T)`). Both
/// are part of the transaction *name* in the paper's sense.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TxnOp {
    /// `REQUEST-CREATE(T)`: the parent asks for child `T` to run.
    RequestCreate {
        /// The transaction to create.
        tid: Tid,
        /// Access attributes if `T` is an access (leaf).
        access: Option<AccessSpec>,
        /// Creation parameter if `T`'s automaton is value-parameterised.
        param: Option<Value>,
    },
    /// `CREATE(T)`: the scheduler wakes `T` up.
    Create {
        /// The transaction created.
        tid: Tid,
        /// Access attributes, copied from the request.
        access: Option<AccessSpec>,
        /// Creation parameter, copied from the request.
        param: Option<Value>,
    },
    /// `REQUEST-COMMIT(T,v)`: `T` announces completion with result `v`.
    RequestCommit {
        /// The completing transaction.
        tid: Tid,
        /// Its result value.
        value: Value,
    },
    /// `COMMIT(T,v)`: the scheduler reports `T`'s success to its parent.
    Commit {
        /// The committed transaction.
        tid: Tid,
        /// The value passed to the parent.
        value: Value,
    },
    /// `ABORT(T)`: the scheduler reports `T`'s failure to its parent;
    /// semantically, `T` was never created.
    Abort {
        /// The aborted transaction.
        tid: Tid,
    },
}

impl TxnOp {
    /// `REQUEST-CREATE` for a non-access child with no parameter.
    pub fn request_create(tid: Tid) -> Self {
        TxnOp::RequestCreate {
            tid,
            access: None,
            param: None,
        }
    }

    /// `REQUEST-CREATE` for an access child.
    pub fn request_access(tid: Tid, spec: AccessSpec) -> Self {
        TxnOp::RequestCreate {
            tid,
            access: Some(spec),
            param: None,
        }
    }

    /// The transaction this operation concerns.
    pub fn tid(&self) -> &Tid {
        match self {
            TxnOp::RequestCreate { tid, .. }
            | TxnOp::Create { tid, .. }
            | TxnOp::RequestCommit { tid, .. }
            | TxnOp::Commit { tid, .. }
            | TxnOp::Abort { tid } => tid,
        }
    }

    /// Whether this is a *return* operation (`COMMIT` or `ABORT`) for `t`.
    pub fn is_return_for(&self, t: &Tid) -> bool {
        matches!(self, TxnOp::Commit { tid, .. } | TxnOp::Abort { tid } if tid == t)
    }

    /// The access attributes carried by a `REQUEST-CREATE`/`CREATE`, if any.
    pub fn access(&self) -> Option<&AccessSpec> {
        match self {
            TxnOp::RequestCreate { access, .. } | TxnOp::Create { access, .. } => access.as_ref(),
            _ => None,
        }
    }

    /// The creation parameter carried by a `REQUEST-CREATE`/`CREATE`.
    pub fn param(&self) -> Option<&Value> {
        match self {
            TxnOp::RequestCreate { param, .. } | TxnOp::Create { param, .. } => param.as_ref(),
            _ => None,
        }
    }

    /// A short tag for weighting policies and diagnostics.
    pub fn tag(&self) -> &'static str {
        match self {
            TxnOp::RequestCreate { .. } => "REQUEST-CREATE",
            TxnOp::Create { .. } => "CREATE",
            TxnOp::RequestCommit { .. } => "REQUEST-COMMIT",
            TxnOp::Commit { .. } => "COMMIT",
            TxnOp::Abort { .. } => "ABORT",
        }
    }
}

impl fmt::Display for TxnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnOp::RequestCreate { tid, access, param } => {
                write!(f, "REQUEST-CREATE({tid}")?;
                if let Some(a) = access {
                    write!(f, ", {a:?}")?;
                }
                if let Some(p) = param {
                    write!(f, ", param={p}")?;
                }
                write!(f, ")")
            }
            TxnOp::Create { tid, .. } => write!(f, "CREATE({tid})"),
            TxnOp::RequestCommit { tid, value } => write!(f, "REQUEST-COMMIT({tid}, {value})"),
            TxnOp::Commit { tid, value } => write!(f, "COMMIT({tid}, {value})"),
            TxnOp::Abort { tid } => write!(f, "ABORT({tid})"),
        }
    }
}

impl fmt::Debug for TxnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_accessors() {
        let t = Tid::root().child(1);
        let spec = AccessSpec::read(ObjectId(3));
        let op = TxnOp::request_access(t.clone(), spec.clone());
        assert_eq!(op.tid(), &t);
        assert_eq!(op.access(), Some(&spec));
        assert_eq!(op.param(), None);
        assert_eq!(op.tag(), "REQUEST-CREATE");
    }

    #[test]
    fn return_ops() {
        let t = Tid::root().child(1);
        let commit = TxnOp::Commit {
            tid: t.clone(),
            value: Value::Nil,
        };
        let abort = TxnOp::Abort { tid: t.clone() };
        assert!(commit.is_return_for(&t));
        assert!(abort.is_return_for(&t));
        assert!(!commit.is_return_for(&Tid::root()));
        let rc = TxnOp::RequestCommit {
            tid: t.clone(),
            value: Value::Nil,
        };
        assert!(!rc.is_return_for(&t));
    }

    #[test]
    fn access_spec_constructors() {
        let r = AccessSpec::read(ObjectId(0));
        assert_eq!(r.kind, AccessKind::Read);
        assert!(r.data.is_nil());
        let w = AccessSpec::write(ObjectId(0), Value::Int(4));
        assert_eq!(w.kind, AccessKind::Write);
        assert_eq!(w.data, Value::Int(4));
    }

    #[test]
    fn display_is_readable() {
        let t = Tid::root().child(2);
        let op = TxnOp::RequestCommit {
            tid: t,
            value: Value::Int(1),
        };
        assert_eq!(op.to_string(), "REQUEST-COMMIT(T0.2, 1)");
    }
}
