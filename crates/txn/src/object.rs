//! Basic objects: read/write objects (paper §2.3).

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

use ioa::{Component, OpClass};

use crate::op::{AccessKind, TxnOp};
use crate::tid::Tid;
use crate::value::{ObjectId, Value};

/// How an object learns the attributes of an access with a given name.
///
/// The paper makes `kind(T)` and `data(T)` attributes of the access *name*.
/// In the replicated system **B**, transaction managers mint access names on
/// the fly and our operations carry the attributes inline
/// ([`AccessSpec`](crate::AccessSpec)); in the non-replicated system **A**
/// the accesses are the (statically known) transaction-manager names, so the
/// object is built with a registry mapping each name to its attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegisteredAccess {
    /// Read or write.
    pub kind: AccessKind,
    /// The data for writes. `None` means "take the `param` payload of the
    /// `CREATE` operation", for value-parameterised accesses.
    pub data: Option<Value>,
}

/// A read-write object: the fully-specified basic object of §2.3.
///
/// State: `active` (the current access, initially `nil`) and `data` (a
/// domain element, initially the object's initial value).
///
/// * `CREATE(T)` (input) sets `active := T`.
/// * `REQUEST-COMMIT(T,v)` with `kind(T) = read` requires `active = T` and
///   `v = data`; it sets `active := nil`.
/// * `REQUEST-COMMIT(T,v)` with `kind(T) = write` requires `active = T` and
///   `v = nil`; it sets `data := data(T)` and `active := nil`.
///
/// The same automaton serves as a data manager (over the versioned domain
/// `N × V`) in system **B** and as the single logical object `O(x)` in
/// system **A**; only the domain and the access-resolution mode differ.
#[derive(Clone, Debug)]
pub struct ReadWriteObject {
    id: ObjectId,
    label: String,
    init: Value,
    data: Value,
    active: Option<(Tid, AccessKind, Value)>,
    created: BTreeSet<Tid>,
    registry: BTreeMap<Tid, RegisteredAccess>,
}

impl ReadWriteObject {
    /// An object whose accesses carry their attributes inline (system
    /// **B** style).
    pub fn new(id: ObjectId, label: impl Into<String>, init: Value) -> Self {
        ReadWriteObject {
            id,
            label: label.into(),
            data: init.clone(),
            init,
            active: None,
            created: BTreeSet::new(),
            registry: BTreeMap::new(),
        }
    }

    /// An object with a pre-registered access map (system **A** style).
    pub fn with_registry(
        id: ObjectId,
        label: impl Into<String>,
        init: Value,
        registry: BTreeMap<Tid, RegisteredAccess>,
    ) -> Self {
        ReadWriteObject {
            id,
            label: label.into(),
            data: init.clone(),
            init,
            active: None,
            created: BTreeSet::new(),
            registry,
        }
    }

    /// This object's identifier.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The current data component of the state.
    pub fn data(&self) -> &Value {
        &self.data
    }

    /// The currently active access, if any.
    pub fn active(&self) -> Option<&Tid> {
        self.active.as_ref().map(|(t, _, _)| t)
    }

    /// All accesses created at this object so far.
    pub fn accesses_created(&self) -> &BTreeSet<Tid> {
        &self.created
    }

    fn resolve(&self, op: &TxnOp) -> Option<(AccessKind, Value)> {
        // Inline spec takes precedence; otherwise the registry.
        if let Some(spec) = op.access() {
            if spec.object == self.id {
                return Some((spec.kind, spec.data.clone()));
            }
            return None;
        }
        let tid = op.tid();
        self.registry.get(tid).map(|reg| {
            let data = reg
                .data
                .clone()
                .or_else(|| op.param().cloned())
                .unwrap_or(Value::Nil);
            (reg.kind, data)
        })
    }
}

impl Component<TxnOp> for ReadWriteObject {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn classify(&self, op: &TxnOp) -> OpClass {
        match op {
            TxnOp::Create { .. } => {
                if self.resolve(op).is_some() {
                    OpClass::Input
                } else {
                    OpClass::NotMine
                }
            }
            TxnOp::RequestCommit { tid, .. } => {
                // Our access iff we created it (its CREATE necessarily
                // precedes in any well-formed schedule), or it is
                // registered to us.
                if self.created.contains(tid) || self.registry.contains_key(tid) {
                    OpClass::Output
                } else {
                    OpClass::NotMine
                }
            }
            _ => OpClass::NotMine,
        }
    }

    fn reset(&mut self) {
        self.data = self.init.clone();
        self.active = None;
        self.created.clear();
    }

    fn enabled_outputs(&self) -> Vec<TxnOp> {
        match &self.active {
            Some((tid, AccessKind::Read, _)) => vec![TxnOp::RequestCommit {
                tid: tid.clone(),
                value: self.data.clone(),
            }],
            Some((tid, AccessKind::Write, _)) => vec![TxnOp::RequestCommit {
                tid: tid.clone(),
                value: Value::Nil,
            }],
            None => Vec::new(),
        }
    }

    fn apply(&mut self, op: &TxnOp) -> Result<(), String> {
        match op {
            TxnOp::Create { tid, .. } => {
                let (kind, data) = self
                    .resolve(op)
                    .ok_or_else(|| format!("{}: CREATE for foreign access {tid}", self.label))?;
                // Postcondition: active := T.
                self.active = Some((tid.clone(), kind, data));
                self.created.insert(tid.clone());
                Ok(())
            }
            TxnOp::RequestCommit { tid, value } => {
                let Some((active, kind, wdata)) = self.active.clone() else {
                    return Err(format!(
                        "{}: REQUEST-COMMIT({tid}) with no active access",
                        self.label
                    ));
                };
                if &active != tid {
                    return Err(format!(
                        "{}: REQUEST-COMMIT({tid}) but active is {active}",
                        self.label
                    ));
                }
                match kind {
                    AccessKind::Read => {
                        if *value != self.data {
                            return Err(format!(
                                "{}: read access {tid} returns {value}, data is {}",
                                self.label, self.data
                            ));
                        }
                    }
                    AccessKind::Write => {
                        if !value.is_nil() {
                            return Err(format!(
                                "{}: write access {tid} must return nil",
                                self.label
                            ));
                        }
                        self.data = wdata;
                    }
                }
                self.active = None;
                Ok(())
            }
            other => Err(format!("{}: not an object operation: {other}", self.label)),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_boxed(&self) -> Box<dyn Component<TxnOp>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::AccessSpec;

    fn t(path: &[u32]) -> Tid {
        Tid::from_path(path)
    }

    fn obj() -> ReadWriteObject {
        ReadWriteObject::new(ObjectId(0), "x", Value::Int(0))
    }

    fn create_read(o: &ObjectId, path: &[u32]) -> TxnOp {
        TxnOp::Create {
            tid: t(path),
            access: Some(AccessSpec::read(*o)),
            param: None,
        }
    }

    fn create_write(o: &ObjectId, path: &[u32], v: Value) -> TxnOp {
        TxnOp::Create {
            tid: t(path),
            access: Some(AccessSpec::write(*o, v)),
            param: None,
        }
    }

    #[test]
    fn read_returns_current_data() {
        let mut x = obj();
        x.apply(&create_read(&ObjectId(0), &[1, 0])).unwrap();
        let outs = x.enabled_outputs();
        assert_eq!(
            outs,
            vec![TxnOp::RequestCommit {
                tid: t(&[1, 0]),
                value: Value::Int(0),
            }]
        );
        x.apply(&outs[0]).unwrap();
        assert!(x.enabled_outputs().is_empty());
        assert!(x.active().is_none());
    }

    #[test]
    fn write_installs_data_and_returns_nil() {
        let mut x = obj();
        x.apply(&create_write(&ObjectId(0), &[1, 0], Value::Int(42)))
            .unwrap();
        let outs = x.enabled_outputs();
        assert_eq!(
            outs,
            vec![TxnOp::RequestCommit {
                tid: t(&[1, 0]),
                value: Value::Nil,
            }]
        );
        x.apply(&outs[0]).unwrap();
        assert_eq!(x.data(), &Value::Int(42));
    }

    #[test]
    fn wrong_read_value_refused() {
        let mut x = obj();
        x.apply(&create_read(&ObjectId(0), &[1, 0])).unwrap();
        let err = x
            .apply(&TxnOp::RequestCommit {
                tid: t(&[1, 0]),
                value: Value::Int(99),
            })
            .unwrap_err();
        assert!(err.contains("returns"));
    }

    #[test]
    fn foreign_access_not_mine() {
        let x = obj();
        let op = create_read(&ObjectId(5), &[1, 0]);
        assert_eq!(x.classify(&op), OpClass::NotMine);
        assert_eq!(
            x.classify(&TxnOp::RequestCommit {
                tid: t(&[9]),
                value: Value::Nil
            }),
            OpClass::NotMine
        );
    }

    #[test]
    fn commit_without_active_refused() {
        let mut x = obj();
        let err = x
            .apply(&TxnOp::RequestCommit {
                tid: t(&[1, 0]),
                value: Value::Int(0),
            })
            .unwrap_err();
        assert!(err.contains("no active access"));
    }

    #[test]
    fn registry_resolution_with_param() {
        let mut reg = BTreeMap::new();
        reg.insert(
            t(&[1]),
            RegisteredAccess {
                kind: AccessKind::Write,
                data: None, // take data from the CREATE's param
            },
        );
        reg.insert(
            t(&[2]),
            RegisteredAccess {
                kind: AccessKind::Read,
                data: None,
            },
        );
        let mut x = ReadWriteObject::with_registry(ObjectId(0), "x", Value::Int(0), reg);
        // Write via param.
        x.apply(&TxnOp::Create {
            tid: t(&[1]),
            access: None,
            param: Some(Value::Int(7)),
        })
        .unwrap();
        x.apply(&TxnOp::RequestCommit {
            tid: t(&[1]),
            value: Value::Nil,
        })
        .unwrap();
        assert_eq!(x.data(), &Value::Int(7));
        // Read sees it.
        x.apply(&TxnOp::Create {
            tid: t(&[2]),
            access: None,
            param: None,
        })
        .unwrap();
        assert_eq!(
            x.enabled_outputs(),
            vec![TxnOp::RequestCommit {
                tid: t(&[2]),
                value: Value::Int(7),
            }]
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut x = obj();
        x.apply(&create_write(&ObjectId(0), &[1, 0], Value::Int(5)))
            .unwrap();
        x.apply(&TxnOp::RequestCommit {
            tid: t(&[1, 0]),
            value: Value::Nil,
        })
        .unwrap();
        x.reset();
        assert_eq!(x.data(), &Value::Int(0));
        assert!(x.active().is_none());
        assert!(x.accesses_created().is_empty());
    }
}
