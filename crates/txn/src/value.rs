//! Return values and object identifiers.

use std::fmt;

use quorum::Configuration;

/// Identifier of a basic object (an element of the partition `O` of
/// accesses, paper §2.2).
///
/// In the replicated system **B** the data managers for all logical items
/// are objects; in the non-replicated system **A** each logical item is a
/// single object. Builders allocate these densely.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A value returned by a transaction — an element of the paper's value set
/// `V`, which includes the special undefined value `nil`.
///
/// The variants cover everything the workspace's algorithms pass around:
/// plain data (`Int`, `Text`, …), the data-manager domain `N × V`
/// ([`Value::Versioned`]), and the reconfigurable-DM domain carrying a
/// configuration and generation number ([`Value::RcVersioned`]).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// The undefined value `nil` (required to be in every domain `V_x`).
    #[default]
    Nil,
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A string.
    Text(String),
    /// A sequence of values.
    Seq(Vec<Value>),
    /// A (version-number, value) pair — the domain `D_x = N × V_x` of a
    /// data manager (paper §3.1).
    Versioned {
        /// The version number.
        vn: u64,
        /// The associated value.
        value: Box<Value>,
    },
    /// A quorum configuration, as carried by reconfiguration operations.
    Config(Box<Configuration<ObjectId>>),
    /// The reconfigurable data-manager domain (paper §4): a value and
    /// version number plus a configuration and generation number.
    RcVersioned {
        /// The version number of the value.
        vn: u64,
        /// The data value.
        value: Box<Value>,
        /// The generation number of the configuration.
        gen: u64,
        /// The configuration.
        config: Box<Configuration<ObjectId>>,
    },
}

impl Value {
    /// Convenience constructor for [`Value::Versioned`].
    pub fn versioned(vn: u64, value: Value) -> Self {
        Value::Versioned {
            vn,
            value: Box::new(value),
        }
    }

    /// Convenience constructor for [`Value::RcVersioned`].
    pub fn rc_versioned(vn: u64, value: Value, gen: u64, config: Configuration<ObjectId>) -> Self {
        Value::RcVersioned {
            vn,
            value: Box::new(value),
            gen,
            config: Box::new(config),
        }
    }

    /// View as a `(version-number, value)` pair, if versioned.
    pub fn as_versioned(&self) -> Option<(u64, &Value)> {
        match self {
            Value::Versioned { vn, value } => Some((*vn, value)),
            _ => None,
        }
    }

    /// View as the reconfigurable tuple, if of that shape.
    pub fn as_rc_versioned(&self) -> Option<(u64, &Value, u64, &Configuration<ObjectId>)> {
        match self {
            Value::RcVersioned {
                vn,
                value,
                gen,
                config,
            } => Some((*vn, value, *gen, config)),
            _ => None,
        }
    }

    /// View as an integer, if `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Whether this is `nil`.
    pub fn is_nil(&self) -> bool {
        matches!(self, Value::Nil)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Seq(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Value::Versioned { vn, value } => write!(f, "(vn={vn}, {value})"),
            Value::Config(_) => write!(f, "<config>"),
            Value::RcVersioned { vn, gen, value, .. } => {
                write!(f, "(vn={vn}, {value}, gen={gen}, <config>)")
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versioned_accessors() {
        let v = Value::versioned(3, Value::Int(7));
        assert_eq!(v.as_versioned(), Some((3, &Value::Int(7))));
        assert_eq!(Value::Nil.as_versioned(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5), Value::Int(5));
        assert_eq!(Value::from("x"), Value::Text("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert!(Value::default().is_nil());
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = [Value::Int(2),
            Value::Nil,
            Value::versioned(1, Value::Nil),
            Value::Int(1)];
        vals.sort();
        assert_eq!(vals[0], Value::Nil);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Nil.to_string(), "nil");
        assert_eq!(Value::versioned(2, Value::Int(9)).to_string(), "(vn=2, 9)");
        assert_eq!(
            Value::Seq(vec![Value::Int(1), Value::Nil]).to_string(),
            "[1, nil]"
        );
    }
}
