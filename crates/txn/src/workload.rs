//! Seeded nested-transaction workload generators.
//!
//! A [`ProgramTree`] is the *shape* of one top-level user transaction: a
//! tree of inner transactions over leaf accesses to abstract item *slots*.
//! Generators ([`BankingGen`], [`InventoryGen`], [`RandomTreeGen`]) are pure
//! functions from a seed to a tree, so every consumer — the serial
//! model-checking harnesses, the Theorem 11 concurrent harness, and the
//! discrete-event simulator — replays the identical workload from the same
//! seed.
//!
//! Slots are indices `0..slots()`; the consumer maps them to concrete
//! objects (the examples map slot `k` to logical item `k`; the simulator
//! draws a zipfian item per slot). `doomed` inner nodes model *sibling
//! aborts*: the subtree is deterministically aborted while its siblings
//! commit, exercising the paper's claim that `ABORT(T)` means `T` was never
//! created — whatever the subtree did must be invisible afterwards.

use crate::op::{AccessSpec, TxnOp};
use crate::program::{ChildRequest, ScriptProgram, ScriptStep};
use crate::tid::Tid;
use crate::value::{ObjectId, Value};
use crate::wf::{SystemWfMonitor, WfError};

/// One node of a program tree.
///
/// A node is either a leaf access (`access` is `Some`, `children` empty) or
/// an inner transaction (`access` is `None`, `children` non-empty).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramNode {
    /// `Some((slot, is_write))` for a leaf access.
    pub access: Option<(u32, bool)>,
    /// Inner node: request all children as one awaited batch (concurrent
    /// siblings) instead of one at a time.
    pub parallel: bool,
    /// Inner node: deterministically abort this subtree after it runs (a
    /// *sibling abort* — the parent continues as if the child returned).
    pub doomed: bool,
    /// Child transactions, in request order.
    pub children: Vec<ProgramNode>,
}

impl ProgramNode {
    /// A read access to `slot`.
    #[must_use]
    pub fn read(slot: u32) -> Self {
        ProgramNode {
            access: Some((slot, false)),
            parallel: false,
            doomed: false,
            children: Vec::new(),
        }
    }

    /// A write access to `slot`.
    #[must_use]
    pub fn write(slot: u32) -> Self {
        ProgramNode {
            access: Some((slot, true)),
            parallel: false,
            doomed: false,
            children: Vec::new(),
        }
    }

    /// An inner transaction running `children` one at a time.
    #[must_use]
    pub fn seq(children: Vec<ProgramNode>) -> Self {
        ProgramNode {
            access: None,
            parallel: false,
            doomed: false,
            children,
        }
    }

    /// An inner transaction running `children` as one awaited batch.
    #[must_use]
    pub fn par(children: Vec<ProgramNode>) -> Self {
        ProgramNode {
            access: None,
            parallel: true,
            doomed: false,
            children,
        }
    }

    /// Mark this subtree as doomed (deterministic sibling abort).
    #[must_use]
    pub fn doom(mut self) -> Self {
        self.doomed = true;
        self
    }

    fn is_leaf(&self) -> bool {
        self.access.is_some()
    }

    fn depth(&self) -> u32 {
        1 + self
            .children
            .iter()
            .map(ProgramNode::depth)
            .max()
            .unwrap_or(0)
    }

    fn count(&self, acc: &mut TreeStats, doomed_above: bool) {
        let doomed = doomed_above || self.doomed;
        if let Some((slot, write)) = self.access {
            acc.accesses += 1;
            if write {
                acc.writes += 1;
            }
            if doomed {
                acc.doomed_accesses += 1;
            }
            acc.max_slot = acc.max_slot.max(slot + 1);
        } else {
            acc.inner += 1;
            if self.doomed {
                acc.doomed_nodes += 1;
            }
        }
        for c in &self.children {
            c.count(acc, doomed);
        }
    }

    fn validate(&self, is_root: bool) -> Result<(), String> {
        if self.is_leaf() {
            if !self.children.is_empty() {
                return Err("leaf access with children".into());
            }
            if self.doomed {
                return Err("doomed leaf (doom belongs to inner nodes)".into());
            }
        } else if self.children.is_empty() {
            return Err("inner node without children".into());
        }
        if is_root && self.is_leaf() {
            return Err("top-level transaction must be an inner node".into());
        }
        for c in &self.children {
            c.validate(false)?;
        }
        Ok(())
    }
}

/// Aggregate shape statistics of a [`ProgramTree`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Leaf accesses.
    pub accesses: u32,
    /// Leaf write accesses.
    pub writes: u32,
    /// Leaf accesses under some doomed ancestor.
    pub doomed_accesses: u32,
    /// Inner (non-access) transactions, the root included.
    pub inner: u32,
    /// Inner nodes marked doomed.
    pub doomed_nodes: u32,
    /// One past the highest slot referenced.
    pub max_slot: u32,
}

/// The program of one top-level user transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramTree {
    /// The top-level transaction (always an inner node).
    pub root: ProgramNode,
}

impl ProgramTree {
    /// Structural sanity: leaves are accesses, inner nodes have children,
    /// the root is an inner node.
    ///
    /// # Errors
    ///
    /// A description of the malformation.
    pub fn validate(&self) -> Result<(), String> {
        self.root.validate(true)
    }

    /// Tree height in nodes (a root over one access has depth 2).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.root.depth()
    }

    /// Shape statistics.
    #[must_use]
    pub fn stats(&self) -> TreeStats {
        let mut s = TreeStats::default();
        self.root.count(&mut s, false);
        s
    }

    /// The serial schedule of this program as top-level transaction
    /// `T0.top_index`, in the paper's five-action vocabulary.
    ///
    /// Children run depth-first; a doomed child is `REQUEST-CREATE`d and
    /// then `ABORT`ed by the scheduler (the paper's abort semantics: the
    /// subtree was never created), which is exactly the committed
    /// projection the simulator must be equivalent to. Reads request-commit
    /// with `nil`; writes with their (position-derived) data.
    #[must_use]
    pub fn serial_schedule(&self, top_index: u32) -> Vec<TxnOp> {
        let mut out = vec![TxnOp::Create {
            tid: Tid::root(),
            access: None,
            param: None,
        }];
        let top = Tid::root().child(top_index);
        out.push(TxnOp::request_create(top.clone()));
        emit_node(&self.root, &top, &mut out);
        out
    }

    /// Drive this program's serial schedule through a fresh
    /// [`SystemWfMonitor`]: every transaction and object projection must be
    /// well-formed.
    ///
    /// # Errors
    ///
    /// The first well-formedness violation.
    pub fn check_wf(&self, top_index: u32) -> Result<(), WfError> {
        let mut mon = SystemWfMonitor::new();
        for op in self.serial_schedule(top_index) {
            mon.observe_op(&op)?;
        }
        Ok(())
    }

    /// A [`ScriptProgram`] realising this tree's *root* step structure, for
    /// composition with [`TransactionNode`](crate::TransactionNode) under
    /// the serial scheduler. Inner children are indexed by position; the
    /// caller builds their nodes from [`ProgramNode::children`] the same
    /// way (see the examples).
    #[must_use]
    pub fn root_script(&self, slot_object: impl Fn(u32) -> ObjectId) -> ScriptProgram {
        node_script(&self.root, &slot_object)
    }
}

fn access_spec(slot: u32, write: bool, slot_object: &impl Fn(u32) -> ObjectId) -> AccessSpec {
    if write {
        AccessSpec::write(slot_object(slot), Value::Int(i64::from(slot) + 1))
    } else {
        AccessSpec::read(slot_object(slot))
    }
}

fn node_script(node: &ProgramNode, slot_object: &impl Fn(u32) -> ObjectId) -> ScriptProgram {
    let reqs: Vec<ChildRequest> = node
        .children
        .iter()
        .enumerate()
        .map(|(i, c)| ChildRequest {
            index: u32::try_from(i).expect("child index fits u32"),
            access: c
                .access
                .map(|(slot, write)| access_spec(slot, write, slot_object)),
            param: None,
        })
        .collect();
    let mut steps = Vec::new();
    if node.parallel {
        steps.push(ScriptStep::Run(reqs));
    } else {
        steps.extend(reqs.into_iter().map(|r| ScriptStep::Run(vec![r])));
    }
    steps.push(ScriptStep::Commit(Value::Nil));
    ScriptProgram::new(steps)
}

fn emit_node(node: &ProgramNode, tid: &Tid, out: &mut Vec<TxnOp>) {
    out.push(TxnOp::Create {
        tid: tid.clone(),
        access: None,
        param: None,
    });
    for (i, child) in node.children.iter().enumerate() {
        let ct = tid.child(u32::try_from(i).expect("child index fits u32"));
        if let Some((slot, write)) = child.access {
            let spec = access_spec(slot, write, &ObjectId);
            out.push(TxnOp::RequestCreate {
                tid: ct.clone(),
                access: Some(spec.clone()),
                param: None,
            });
            out.push(TxnOp::Create {
                tid: ct.clone(),
                access: Some(spec.clone()),
                param: None,
            });
            let v = if write { Value::Nil } else { Value::Int(0) };
            out.push(TxnOp::RequestCommit {
                tid: ct.clone(),
                value: v.clone(),
            });
            out.push(TxnOp::Commit { tid: ct, value: v });
        } else if child.doomed {
            // ABORT(T): the scheduler may abort any requested, not-yet-
            // created transaction — the serial meaning of a sibling abort.
            out.push(TxnOp::request_create(ct.clone()));
            out.push(TxnOp::Abort { tid: ct });
        } else {
            out.push(TxnOp::request_create(ct.clone()));
            emit_node(child, &ct, out);
        }
    }
    out.push(TxnOp::RequestCommit {
        tid: tid.clone(),
        value: Value::Nil,
    });
    out.push(TxnOp::Commit {
        tid: tid.clone(),
        value: Value::Nil,
    });
}

/// SplitMix64 — the repo's standard seed-expansion hash (see
/// `qc_sim::faults`), reproduced here so generators stay dependency-free
/// and their pinned outputs never drift.
#[must_use]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny deterministic stream over [`splitmix`].
struct Mix {
    state: u64,
}

impl Mix {
    fn new(seed: u64) -> Self {
        Mix {
            state: splitmix(seed ^ 0xC0FF_EE00_D15E_A5E5),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = splitmix(self.state);
        self.state
    }

    /// Uniform draw in `0..n` (n ≥ 1).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Bernoulli with probability `permille`/1000.
    fn chance(&mut self, permille: u32) -> bool {
        self.below(1000) < u64::from(permille)
    }
}

/// The banking workload of `examples/banking.rs` as a seeded generator:
/// deposits (read-modify-write one account), transfers (two nested
/// read-modify-write legs over distinct accounts, occasionally doomed on
/// the credit leg), and read-only audits over every account.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BankingGen {
    /// Number of account slots.
    pub accounts: u32,
    /// Permille of transfers whose credit leg is doomed (a failed
    /// transfer: the debit must be undone by the abort machinery).
    pub doomed_permille: u32,
}

impl BankingGen {
    /// The example's shape: `accounts` accounts, 125‰ failed transfers.
    #[must_use]
    pub fn new(accounts: u32) -> Self {
        assert!(accounts >= 2, "banking needs at least two accounts");
        BankingGen {
            accounts,
            doomed_permille: 125,
        }
    }

    /// The program for `seed`.
    #[must_use]
    pub fn program(&self, seed: u64) -> ProgramTree {
        let mut mix = Mix::new(seed ^ 0xBA4C);
        let a = u32::try_from(mix.below(u64::from(self.accounts))).expect("slot");
        let root = match mix.below(3) {
            // Deposit: read-modify-write one account.
            0 => ProgramNode::seq(vec![ProgramNode::read(a), ProgramNode::write(a)]),
            // Transfer: debit and credit legs as concurrent nested
            // transactions over two distinct accounts.
            1 => {
                let b = (a + 1 + u32::try_from(mix.below(u64::from(self.accounts - 1))).expect("slot"))
                    % self.accounts;
                let debit = ProgramNode::seq(vec![ProgramNode::read(a), ProgramNode::write(a)]);
                let mut credit =
                    ProgramNode::seq(vec![ProgramNode::read(b), ProgramNode::write(b)]);
                if mix.chance(self.doomed_permille) {
                    credit = credit.doom();
                }
                ProgramNode::par(vec![debit, credit])
            }
            // Audit: a read-only parallel sweep over every account.
            _ => ProgramNode::par((0..self.accounts).map(ProgramNode::read).collect()),
        };
        ProgramTree { root }
    }
}

/// The inventory workload of `examples/inventory.rs` as a seeded
/// generator: stock checks (read one product), restocks (read-modify-write
/// one product), and multi-product orders reserving two products in
/// concurrent nested legs, occasionally doomed on the second reservation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InventoryGen {
    /// Number of product slots.
    pub products: u32,
    /// Permille of stock checks among generated programs (the example's
    /// read-mostly catalogue traffic).
    pub check_permille: u32,
    /// Permille of orders whose second reservation is doomed.
    pub doomed_permille: u32,
}

impl InventoryGen {
    /// The example's shape: `products` products, 60% stock checks, 100‰
    /// doomed reservations.
    #[must_use]
    pub fn new(products: u32) -> Self {
        assert!(products >= 2, "inventory needs at least two products");
        InventoryGen {
            products,
            check_permille: 600,
            doomed_permille: 100,
        }
    }

    /// The program for `seed`.
    #[must_use]
    pub fn program(&self, seed: u64) -> ProgramTree {
        let mut mix = Mix::new(seed ^ 0x14E0);
        let p = u32::try_from(mix.below(u64::from(self.products))).expect("slot");
        let root = if mix.chance(self.check_permille) {
            // Stock check: read one product (plus a read-only price peek
            // at a neighbour, so even checks span two items).
            let q = (p + 1) % self.products;
            ProgramNode::seq(vec![ProgramNode::read(p), ProgramNode::read(q)])
        } else if mix.chance(500) {
            // Restock: read-modify-write one product.
            ProgramNode::seq(vec![ProgramNode::read(p), ProgramNode::write(p)])
        } else {
            // Order: reserve two distinct products in concurrent nested
            // legs; the second reservation occasionally fails.
            let q = (p + 1 + u32::try_from(mix.below(u64::from(self.products - 1))).expect("slot"))
                % self.products;
            let first = ProgramNode::seq(vec![ProgramNode::read(p), ProgramNode::write(p)]);
            let mut second = ProgramNode::seq(vec![ProgramNode::read(q), ProgramNode::write(q)]);
            if mix.chance(self.doomed_permille) {
                second = second.doom();
            }
            ProgramNode::par(vec![first, second])
        };
        ProgramTree { root }
    }
}

/// A seeded random program-tree generator: bounded depth and fan-out,
/// read-only subtrees, doomed subtrees, and a write fraction for leaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandomTreeGen {
    /// Number of item slots leaves draw from.
    pub slots: u32,
    /// Maximum tree height in nodes (≥ 2: a root over accesses).
    pub max_depth: u32,
    /// Maximum children per inner node (≥ 1).
    pub max_fanout: u32,
    /// Permille of leaves that are writes (outside read-only subtrees).
    pub write_permille: u32,
    /// Permille of inner nodes that start a read-only subtree.
    pub read_only_permille: u32,
    /// Permille of non-root inner nodes that are doomed.
    pub doom_permille: u32,
    /// Permille of inner nodes whose children run as one awaited batch.
    pub parallel_permille: u32,
}

impl RandomTreeGen {
    /// A balanced default over `slots` item slots: depth ≤ 4, fan-out ≤ 3,
    /// 40% writes, 20% read-only subtrees, 10% doomed subtrees, 50%
    /// parallel batches.
    #[must_use]
    pub fn new(slots: u32) -> Self {
        assert!(slots >= 1, "need at least one slot");
        RandomTreeGen {
            slots,
            max_depth: 4,
            max_fanout: 3,
            write_permille: 400,
            read_only_permille: 200,
            doom_permille: 100,
            parallel_permille: 500,
        }
    }

    /// The program for `seed`.
    #[must_use]
    pub fn program(&self, seed: u64) -> ProgramTree {
        let mut mix = Mix::new(seed ^ 0x7EEE);
        let mut root = self.gen_node(&mut mix, 1, false, true);
        // The root must be an inner node with at least one access.
        if root.is_leaf() {
            root = ProgramNode::seq(vec![root]);
        }
        let tree = ProgramTree { root };
        debug_assert!(tree.validate().is_ok());
        tree
    }

    fn gen_leaf(&self, mix: &mut Mix, read_only: bool) -> ProgramNode {
        let slot = u32::try_from(mix.below(u64::from(self.slots))).expect("slot");
        if !read_only && mix.chance(self.write_permille) {
            ProgramNode::write(slot)
        } else {
            ProgramNode::read(slot)
        }
    }

    fn gen_node(&self, mix: &mut Mix, depth: u32, read_only: bool, is_root: bool) -> ProgramNode {
        // Leaves get likelier with depth; the last level is all leaves.
        let leaf_chance = if depth >= self.max_depth {
            1000
        } else {
            250 * depth
        };
        if !is_root && mix.chance(leaf_chance) {
            return self.gen_leaf(mix, read_only);
        }
        let read_only = read_only || mix.chance(self.read_only_permille);
        let fanout = 1 + mix.below(u64::from(self.max_fanout));
        let children = (0..fanout)
            .map(|_| self.gen_node(mix, depth + 1, read_only, false))
            .collect();
        let mut node = if mix.chance(self.parallel_permille) {
            ProgramNode::par(children)
        } else {
            ProgramNode::seq(children)
        };
        if !is_root && mix.chance(self.doom_permille) {
            node = node.doom();
        }
        node
    }
}

/// A config-friendly sum of the generators (the simulator's workload knob).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// [`BankingGen`].
    Banking(BankingGen),
    /// [`InventoryGen`].
    Inventory(InventoryGen),
    /// [`RandomTreeGen`].
    Random(RandomTreeGen),
}

impl WorkloadKind {
    /// The program for `seed`.
    #[must_use]
    pub fn program(&self, seed: u64) -> ProgramTree {
        match self {
            WorkloadKind::Banking(g) => g.program(seed),
            WorkloadKind::Inventory(g) => g.program(seed),
            WorkloadKind::Random(g) => g.program(seed),
        }
    }

    /// Number of item slots programs draw from.
    #[must_use]
    pub fn slots(&self) -> u32 {
        match self {
            WorkloadKind::Banking(g) => g.accounts,
            WorkloadKind::Inventory(g) => g.products,
            WorkloadKind::Random(g) => g.slots,
        }
    }

    /// A short label for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Banking(_) => "banking",
            WorkloadKind::Inventory(_) => "inventory",
            WorkloadKind::Random(_) => "random",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banking_trees_are_well_formed() {
        let g = BankingGen::new(4);
        for seed in 0..200 {
            let t = g.program(seed);
            t.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            t.check_wf(0).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(t.stats().accesses >= 2, "seed {seed}");
        }
    }

    #[test]
    fn inventory_trees_are_well_formed() {
        let g = InventoryGen::new(6);
        for seed in 0..200 {
            let t = g.program(seed);
            t.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            t.check_wf(3).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn random_trees_are_well_formed_and_bounded() {
        let g = RandomTreeGen::new(8);
        for seed in 0..500 {
            let t = g.program(seed);
            t.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            t.check_wf(1).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(t.depth() <= g.max_depth + 1, "seed {seed}: {}", t.depth());
            let s = t.stats();
            assert!(s.accesses >= 1, "seed {seed}");
            assert!(s.max_slot <= g.slots, "seed {seed}");
        }
    }

    #[test]
    fn generators_are_pure_functions_of_the_seed() {
        let g = RandomTreeGen::new(8);
        for seed in [0, 1, 17, 0xDEAD_BEEF] {
            assert_eq!(g.program(seed), g.program(seed));
        }
        // …and the seed actually matters.
        assert_ne!(g.program(2), g.program(3));
    }

    #[test]
    fn doomed_subtrees_appear_and_are_counted() {
        let g = BankingGen::new(4);
        let doomed: u32 = (0..400).map(|s| g.program(s).stats().doomed_nodes).sum();
        assert!(doomed > 0, "no doomed transfer in 400 seeds");
        // Doomed accesses are only those under the doomed node.
        for seed in 0..400 {
            let s = g.program(seed).stats();
            assert!(s.doomed_accesses <= s.accesses);
        }
    }

    #[test]
    fn serial_schedule_models_sibling_abort_as_never_created() {
        // A doomed child contributes REQUEST-CREATE + ABORT and nothing
        // else to the serial schedule.
        let tree = ProgramTree {
            root: ProgramNode::seq(vec![
                ProgramNode::write(0),
                ProgramNode::seq(vec![ProgramNode::write(1)]).doom(),
            ]),
        };
        tree.check_wf(0).unwrap();
        let sched = tree.serial_schedule(0);
        let doomed = Tid::root().child(0).child(1);
        let of_doomed: Vec<_> = sched
            .iter()
            .filter(|op| doomed.is_ancestor_of(op.tid()))
            .collect();
        assert_eq!(of_doomed.len(), 2, "{of_doomed:?}");
        assert!(matches!(of_doomed[0], TxnOp::RequestCreate { .. }));
        assert!(matches!(of_doomed[1], TxnOp::Abort { .. }));
    }

    #[test]
    fn root_script_matches_tree_arity() {
        let g = InventoryGen::new(4);
        let tree = g.program(9);
        // The script exists and the conversion does not panic; end-to-end
        // execution is covered by the examples and the core spec tests.
        let _ = tree.root_script(ObjectId);
    }
}
