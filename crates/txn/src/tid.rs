//! Transaction names, organised into a tree.

use std::fmt;
use std::sync::Arc;

/// A transaction name: a path from the root `T0` of the transaction tree
/// (paper §2.2, the *system type*).
///
/// The tree structure is "known in advance by all the components of the
/// system and can be thought of as a predefined naming scheme for all
/// possible transactions that might ever be invoked". We realise that naming
/// scheme as index paths: the root is the empty path and the `i`-th child of
/// `t` is `t` extended with `i`. Only some of the (infinitely many) names
/// take steps in any given execution.
///
/// `Tid`s are cheap to clone (shared storage) and order lexicographically,
/// so a parent sorts before its descendants.
///
/// # Example
///
/// ```
/// use nested_txn::Tid;
///
/// let root = Tid::root();
/// let t = root.child(1).child(3);
/// assert_eq!(t.to_string(), "T0.1.3");
/// assert_eq!(t.parent(), Some(root.child(1)));
/// assert!(root.is_ancestor_of(&t));
/// assert!(t.is_ancestor_of(&t)); // a transaction is its own ancestor
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(Arc<[u32]>);

impl Tid {
    /// The root transaction `T0`, which models the external environment.
    pub fn root() -> Self {
        Tid(Arc::from([] as [u32; 0]))
    }

    /// The `index`-th child of this transaction.
    pub fn child(&self, index: u32) -> Self {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(index);
        Tid(Arc::from(v))
    }

    /// Construct from an explicit path (root = empty path).
    pub fn from_path(path: &[u32]) -> Self {
        Tid(Arc::from(path))
    }

    /// The path from the root (empty for the root itself).
    pub fn path(&self) -> &[u32] {
        &self.0
    }

    /// The parent, or `None` for the root.
    pub fn parent(&self) -> Option<Tid> {
        if self.0.is_empty() {
            None
        } else {
            Some(Tid(Arc::from(&self.0[..self.0.len() - 1])))
        }
    }

    /// Depth in the tree (root = 0).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the root `T0`.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    /// The index of this transaction among its siblings.
    ///
    /// Returns `None` for the root.
    pub fn last_index(&self) -> Option<u32> {
        self.0.last().copied()
    }

    /// Whether `self` is an ancestor of `other`. Per the paper, "a
    /// transaction is its own ancestor and descendant".
    pub fn is_ancestor_of(&self, other: &Tid) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == *self.0
    }

    /// Whether `self` is a *proper* ancestor (ancestor and not equal).
    pub fn is_proper_ancestor_of(&self, other: &Tid) -> bool {
        other.0.len() > self.0.len() && other.0[..self.0.len()] == *self.0
    }

    /// Whether `self` is a descendant of `other`.
    pub fn is_descendant_of(&self, other: &Tid) -> bool {
        other.is_ancestor_of(self)
    }

    /// Whether `self` and `other` are siblings (same parent, different
    /// names). The root has no siblings.
    pub fn is_sibling_of(&self, other: &Tid) -> bool {
        self != other
            && !self.0.is_empty()
            && self.0.len() == other.0.len()
            && self.0[..self.0.len() - 1] == other.0[..other.0.len() - 1]
    }

    /// Whether `self` is a child of `other`.
    pub fn is_child_of(&self, other: &Tid) -> bool {
        self.parent().as_ref() == Some(other)
    }

    /// The least common ancestor of two names.
    pub fn lca(&self, other: &Tid) -> Tid {
        let n = self
            .0
            .iter()
            .zip(other.0.iter())
            .take_while(|(a, b)| a == b)
            .count();
        Tid(Arc::from(&self.0[..n]))
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T0")?;
        for i in self.0.iter() {
            write!(f, ".{i}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_properties() {
        let r = Tid::root();
        assert!(r.is_root());
        assert_eq!(r.parent(), None);
        assert_eq!(r.depth(), 0);
        assert_eq!(r.to_string(), "T0");
        assert_eq!(r.last_index(), None);
    }

    #[test]
    fn child_and_parent_roundtrip() {
        let t = Tid::root().child(2).child(5);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.last_index(), Some(5));
        assert_eq!(t.parent().unwrap(), Tid::root().child(2));
        assert_eq!(t.to_string(), "T0.2.5");
    }

    #[test]
    fn ancestry_includes_self() {
        let a = Tid::root().child(1);
        let b = a.child(0).child(7);
        assert!(a.is_ancestor_of(&a));
        assert!(a.is_ancestor_of(&b));
        assert!(!a.is_proper_ancestor_of(&a));
        assert!(a.is_proper_ancestor_of(&b));
        assert!(b.is_descendant_of(&a));
        assert!(!b.is_ancestor_of(&a));
    }

    #[test]
    fn ancestry_distinguishes_branches() {
        let a = Tid::root().child(1);
        let b = Tid::root().child(2).child(1);
        assert!(!a.is_ancestor_of(&b));
        assert!(!b.is_ancestor_of(&a));
    }

    #[test]
    fn siblings() {
        let p = Tid::root().child(3);
        let a = p.child(0);
        let b = p.child(1);
        assert!(a.is_sibling_of(&b));
        assert!(!a.is_sibling_of(&a));
        assert!(!a.is_sibling_of(&p.child(0).child(0)));
        assert!(!Tid::root().is_sibling_of(&Tid::root()));
        assert!(a.is_child_of(&p));
        assert!(!a.is_child_of(&Tid::root()));
    }

    #[test]
    fn lca() {
        let a = Tid::root().child(1).child(2).child(3);
        let b = Tid::root().child(1).child(4);
        assert_eq!(a.lca(&b), Tid::root().child(1));
        assert_eq!(a.lca(&a), a);
        assert_eq!(a.lca(&Tid::root()), Tid::root());
    }

    #[test]
    fn ordering_puts_ancestors_first() {
        let p = Tid::root().child(1);
        let c = p.child(0);
        assert!(p < c);
        assert!(Tid::root() < p);
    }

    #[test]
    fn from_path_roundtrip() {
        let t = Tid::from_path(&[4, 2]);
        assert_eq!(t, Tid::root().child(4).child(2));
        assert_eq!(t.path(), &[4, 2]);
    }
}
