//! Operation metrics and summaries.

use serde::Serialize;

use crate::time::SimTime;

/// Statistics for one operation class (reads or writes).
#[derive(Clone, Debug, Default)]
pub struct OpStats {
    /// Operations attempted.
    pub attempts: u64,
    /// Operations that obtained their quorums in time.
    pub successes: u64,
    /// Messages sent (requests + responses).
    pub messages: u64,
    latencies_us: Vec<u64>,
}

impl OpStats {
    /// Record a successful operation.
    pub fn record_success(&mut self, latency: SimTime, messages: u64) {
        self.attempts += 1;
        self.successes += 1;
        self.messages += messages;
        self.latencies_us.push(latency.as_micros());
    }

    /// Record a failed operation.
    pub fn record_failure(&mut self, messages: u64) {
        self.attempts += 1;
        self.messages += messages;
    }

    /// Fraction of attempts that succeeded (1.0 when nothing attempted).
    pub fn availability(&self) -> f64 {
        if self.attempts == 0 {
            1.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }

    /// Mean success latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        self.latencies_us.iter().sum::<u64>() as f64 / self.latencies_us.len() as f64 / 1_000.0
    }

    /// A latency percentile (0–100) in milliseconds.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        let mut v = self.latencies_us.clone();
        v.sort_unstable();
        let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
        v[rank.min(v.len() - 1)] as f64 / 1_000.0
    }

    /// Mean messages per attempted operation.
    pub fn messages_per_op(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.messages as f64 / self.attempts as f64
        }
    }

    /// Condensed summary for reports.
    pub fn summary(&self) -> OpSummary {
        OpSummary {
            attempts: self.attempts,
            successes: self.successes,
            availability: self.availability(),
            mean_ms: self.mean_latency_ms(),
            p50_ms: self.percentile_ms(50.0),
            p95_ms: self.percentile_ms(95.0),
            p99_ms: self.percentile_ms(99.0),
            messages_per_op: self.messages_per_op(),
        }
    }
}

/// Serializable summary of an [`OpStats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct OpSummary {
    /// Operations attempted.
    pub attempts: u64,
    /// Operations that succeeded.
    pub successes: u64,
    /// successes / attempts.
    pub availability: f64,
    /// Mean success latency (ms).
    pub mean_ms: f64,
    /// Median success latency (ms).
    pub p50_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Mean messages per attempted operation.
    pub messages_per_op: f64,
}

impl Serialize for OpSummary {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(
            &serde_json::JsonObject::new()
                .field("attempts", &self.attempts)
                .field("successes", &self.successes)
                .field("availability", &self.availability)
                .field("mean_ms", &self.mean_ms)
                .field("p50_ms", &self.p50_ms)
                .field("p95_ms", &self.p95_ms)
                .field("p99_ms", &self.p99_ms)
                .field("messages_per_op", &self.messages_per_op)
                .build(),
        );
    }
}

/// Metrics for a whole simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Logical-read statistics.
    pub reads: OpStats,
    /// Logical-write statistics.
    pub writes: OpStats,
    /// Site-down events observed.
    pub site_failures: u64,
}

impl Metrics {
    /// Combined throughput in operations per simulated second.
    pub fn throughput_ops_per_sec(&self, duration: SimTime) -> f64 {
        let ops = self.reads.successes + self.writes.successes;
        let secs = duration.as_micros() as f64 / 1e6;
        if secs == 0.0 {
            0.0
        } else {
            ops as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_counts() {
        let mut s = OpStats::default();
        s.record_success(SimTime(1_000), 6);
        s.record_success(SimTime(3_000), 6);
        s.record_failure(6);
        assert!((s.availability() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.messages_per_op(), 6.0);
        assert_eq!(s.mean_latency_ms(), 2.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut s = OpStats::default();
        for i in 1..=100u64 {
            s.record_success(SimTime(i * 1000), 1);
        }
        assert!(s.percentile_ms(50.0) <= s.percentile_ms(95.0));
        assert!(s.percentile_ms(95.0) <= s.percentile_ms(99.0));
        assert_eq!(s.percentile_ms(100.0), 100.0);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OpStats::default();
        assert_eq!(s.availability(), 1.0);
        assert_eq!(s.mean_latency_ms(), 0.0);
        assert_eq!(s.percentile_ms(99.0), 0.0);
    }

    #[test]
    fn throughput() {
        let mut m = Metrics::default();
        m.reads.record_success(SimTime(1), 1);
        m.writes.record_success(SimTime(1), 1);
        assert_eq!(m.throughput_ops_per_sec(SimTime::from_secs(2)), 1.0);
    }
}
