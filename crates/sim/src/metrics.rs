//! Operation metrics and summaries.

use qc_obs::Histogram;
use serde::Serialize;

use crate::time::SimTime;

/// Statistics for one operation class (reads or writes).
#[derive(Clone, Debug, Default)]
pub struct OpStats {
    /// Operations attempted.
    pub attempts: u64,
    /// Operations that obtained their quorums in time.
    pub successes: u64,
    /// Messages sent (requests + responses).
    pub messages: u64,
    /// Extra attempts after a failed first attempt (not counted in
    /// `attempts`; an operation that retries twice and then commits is one
    /// attempt, one success, two retries).
    pub retries: u64,
    /// Operations whose final attempt timed out assembling a quorum.
    pub timeouts: u64,
    /// Operations that failed fast because the live sites held no quorum.
    pub unavailable: u64,
    /// Operations forcibly aborted by an injected fault.
    pub aborted: u64,
    latencies_us: Vec<u64>,
    /// Log-bucketed success-latency histogram (µs). Kept alongside the
    /// raw samples: the samples give exact percentiles for reports, the
    /// histogram gives O(1)-memory live percentiles for snapshots plus
    /// exact count/sum/min/max for the observability reconciliation.
    hist: Histogram,
}

impl OpStats {
    /// Record a successful operation.
    pub fn record_success(&mut self, latency: SimTime, messages: u64) {
        self.attempts += 1;
        self.successes += 1;
        self.messages += messages;
        self.latencies_us.push(latency.as_micros());
        self.hist.record(latency.as_micros());
    }

    /// Record a failed operation (final attempt timed out).
    pub fn record_failure(&mut self, messages: u64) {
        self.attempts += 1;
        self.messages += messages;
        self.timeouts += 1;
    }

    /// Record an operation rejected fast for lack of a live quorum.
    pub fn record_unavailable(&mut self, messages: u64) {
        self.attempts += 1;
        self.messages += messages;
        self.unavailable += 1;
    }

    /// Record a forced abort.
    pub fn record_abort(&mut self) {
        self.attempts += 1;
        self.aborted += 1;
    }

    /// Record a retry (an additional attempt after a failed one).
    pub fn record_retry(&mut self) {
        self.retries += 1;
    }

    /// Fraction of attempts that succeeded (1.0 when nothing attempted).
    pub fn availability(&self) -> f64 {
        if self.attempts == 0 {
            1.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }

    /// Mean success latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        self.latencies_us.iter().sum::<u64>() as f64 / self.latencies_us.len() as f64 / 1_000.0
    }

    /// A latency percentile (0–100) in milliseconds.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        let mut v = self.latencies_us.clone();
        v.sort_unstable();
        let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
        v[rank.min(v.len() - 1)] as f64 / 1_000.0
    }

    /// Mean messages per attempted operation.
    pub fn messages_per_op(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.messages as f64 / self.attempts as f64
        }
    }

    /// Fold another stats block into this one (counter sums; the latency
    /// samples of `other` are appended). Used by the sharded simulator to
    /// reduce per-shard stats into one aggregate; every counter-derived
    /// quantity (availability, messages/op, mean latency, percentiles over
    /// the sample *multiset*) is order-insensitive, so any merge order
    /// yields the same aggregate statistics.
    pub fn merge(&mut self, other: &OpStats) {
        self.attempts += other.attempts;
        self.successes += other.successes;
        self.messages += other.messages;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.unavailable += other.unavailable;
        self.aborted += other.aborted;
        self.latencies_us.extend_from_slice(&other.latencies_us);
        self.hist.merge(&other.hist);
    }

    /// The log-bucketed success-latency histogram (microseconds).
    pub fn latency_hist(&self) -> &Histogram {
        &self.hist
    }

    /// Condensed summary for reports. The tail fields come from the
    /// embedded histogram: `p999_ms` is bucketed (<0.8% relative error),
    /// `max_ms` is exact.
    pub fn summary(&self) -> OpSummary {
        OpSummary {
            attempts: self.attempts,
            successes: self.successes,
            availability: self.availability(),
            mean_ms: self.mean_latency_ms(),
            p50_ms: self.percentile_ms(50.0),
            p95_ms: self.percentile_ms(95.0),
            p99_ms: self.percentile_ms(99.0),
            p999_ms: self.hist.p999() as f64 / 1_000.0,
            max_ms: self.hist.max() as f64 / 1_000.0,
            messages_per_op: self.messages_per_op(),
            retries: self.retries,
            timeouts: self.timeouts,
            unavailable: self.unavailable,
            aborted: self.aborted,
        }
    }
}

/// Serializable summary of an [`OpStats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct OpSummary {
    /// Operations attempted.
    pub attempts: u64,
    /// Operations that succeeded.
    pub successes: u64,
    /// successes / attempts.
    pub availability: f64,
    /// Mean success latency (ms).
    pub mean_ms: f64,
    /// Median success latency (ms).
    pub p50_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// 99.9th-percentile latency (ms), from the log-bucketed histogram.
    pub p999_ms: f64,
    /// Maximum success latency (ms), exact.
    pub max_ms: f64,
    /// Mean messages per attempted operation.
    pub messages_per_op: f64,
    /// Extra attempts after failures.
    pub retries: u64,
    /// Final-attempt quorum-assembly timeouts.
    pub timeouts: u64,
    /// Fast quorum-unavailable rejections.
    pub unavailable: u64,
    /// Forced aborts.
    pub aborted: u64,
}

impl Serialize for OpSummary {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(
            &serde_json::JsonObject::new()
                .field("attempts", &self.attempts)
                .field("successes", &self.successes)
                .field("availability", &self.availability)
                .field("mean_ms", &self.mean_ms)
                .field("p50_ms", &self.p50_ms)
                .field("p95_ms", &self.p95_ms)
                .field("p99_ms", &self.p99_ms)
                .field("p999_ms", &self.p999_ms)
                .field("max_ms", &self.max_ms)
                .field("messages_per_op", &self.messages_per_op)
                .field("retries", &self.retries)
                .field("timeouts", &self.timeouts)
                .field("unavailable", &self.unavailable)
                .field("aborted", &self.aborted)
                .build(),
        );
    }
}

/// One committed logical operation, in commit order.
///
/// Recorded only when `SimConfig::record_history` is set; the cross-policy
/// equivalence tests compare these histories byte for byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// The client that issued the operation.
    pub client: usize,
    /// Whether it was a logical read (else a write).
    pub read: bool,
    /// The version number read or installed.
    pub vn: u64,
    /// The value returned or written.
    pub value: u64,
}

/// Number of lemma-violation descriptions retained verbatim in
/// [`Metrics::violations`]; further violations only bump the counter.
pub const MAX_RECORDED_VIOLATIONS: usize = 8;

/// Metrics for a whole simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Logical-read statistics.
    pub reads: OpStats,
    /// Logical-write statistics.
    pub writes: OpStats,
    /// Site-down events observed.
    pub site_failures: u64,
    /// Messages lost to injected drop windows.
    pub dropped_messages: u64,
    /// Operations killed by injected `AbortClient` faults.
    pub forced_aborts: u64,
    /// Fault-plan events that fired.
    pub injected_faults: u64,
    /// Runtime lemma violations detected by the invariant probe.
    pub lemma_violations: u64,
    /// Reconfigurations committed (scripted or reactive).
    pub reconfigurations: u64,
    /// Reconfigure ops that could not reach the required quorums.
    pub reconfig_failures: u64,
    /// Operation attempts rejected at a superseded configuration
    /// generation (each retried under the new one, off the retry budget).
    pub stale_rejections: u64,
    /// The first few violation descriptions (capped at
    /// [`MAX_RECORDED_VIOLATIONS`]).
    pub violations: Vec<String>,
    /// Committed operations in commit order (only when
    /// `SimConfig::record_history` is set).
    pub history: Vec<CommitRecord>,
}

impl Metrics {
    /// Record a lemma violation, keeping the first few descriptions.
    pub fn record_violation(&mut self, description: String) {
        self.lemma_violations += 1;
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(description);
        }
    }

    /// Record a lemma violation from pre-formatted arguments, rendering
    /// the description only if it will actually be retained (past the
    /// [`MAX_RECORDED_VIOLATIONS`] cap, only the counter moves). This is
    /// the simulator-facing entry point: the non-violating hot path never
    /// allocates a description, and a violation storm formats at most the
    /// first few.
    pub fn record_violation_args(&mut self, description: std::fmt::Arguments<'_>) {
        self.lemma_violations += 1;
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(description.to_string());
        }
    }

    /// Fold another run's metrics into this one: counters sum, latency
    /// samples and histories append, violation descriptions keep the cap.
    ///
    /// The sharded simulator reduces per-shard metrics with this; because
    /// the shard list is a deterministic function of the configuration
    /// (never of the thread count), merging shard `0, 1, …, S-1` in index
    /// order produces a byte-identical aggregate no matter how many OS
    /// threads executed the shards.
    pub fn merge(&mut self, other: &Metrics) {
        self.reads.merge(&other.reads);
        self.writes.merge(&other.writes);
        self.site_failures += other.site_failures;
        self.dropped_messages += other.dropped_messages;
        self.forced_aborts += other.forced_aborts;
        self.injected_faults += other.injected_faults;
        self.lemma_violations += other.lemma_violations;
        self.reconfigurations += other.reconfigurations;
        self.reconfig_failures += other.reconfig_failures;
        self.stale_rejections += other.stale_rejections;
        for v in &other.violations {
            if self.violations.len() >= MAX_RECORDED_VIOLATIONS {
                break;
            }
            self.violations.push(v.clone());
        }
        self.history.extend_from_slice(&other.history);
    }

    /// FNV-1a digest of the complete `Debug` rendering (every counter and
    /// every latency sample). Two runs with equal digests committed the
    /// same operations with the same latencies — this is the value the
    /// cross-thread-count determinism suite and the shard-scaling smoke
    /// pin.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let s = format!("{self:?}");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Combined throughput in operations per simulated second.
    pub fn throughput_ops_per_sec(&self, duration: SimTime) -> f64 {
        let ops = self.reads.successes + self.writes.successes;
        let secs = duration.as_micros() as f64 / 1e6;
        if secs == 0.0 {
            0.0
        } else {
            ops as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_counts() {
        let mut s = OpStats::default();
        s.record_success(SimTime(1_000), 6);
        s.record_success(SimTime(3_000), 6);
        s.record_failure(6);
        assert!((s.availability() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.messages_per_op(), 6.0);
        assert_eq!(s.mean_latency_ms(), 2.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut s = OpStats::default();
        for i in 1..=100u64 {
            s.record_success(SimTime(i * 1000), 1);
        }
        assert!(s.percentile_ms(50.0) <= s.percentile_ms(95.0));
        assert!(s.percentile_ms(95.0) <= s.percentile_ms(99.0));
        assert_eq!(s.percentile_ms(100.0), 100.0);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OpStats::default();
        assert_eq!(s.availability(), 1.0);
        assert_eq!(s.mean_latency_ms(), 0.0);
        assert_eq!(s.percentile_ms(99.0), 0.0);
    }

    #[test]
    fn failure_kinds_are_tallied_separately() {
        let mut s = OpStats::default();
        s.record_failure(4);
        s.record_unavailable(0);
        s.record_abort();
        s.record_retry();
        assert_eq!(s.attempts, 3);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.unavailable, 1);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.retries, 1);
        let sum = s.summary();
        assert_eq!(
            (sum.retries, sum.timeouts, sum.unavailable, sum.aborted),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn violation_descriptions_are_capped() {
        let mut m = Metrics::default();
        for i in 0..20 {
            m.record_violation(format!("violation {i}"));
        }
        assert_eq!(m.lemma_violations, 20);
        assert_eq!(m.violations.len(), MAX_RECORDED_VIOLATIONS);
        assert_eq!(m.violations[0], "violation 0");
    }

    #[test]
    fn merge_sums_counters_and_appends_samples() {
        let mut a = Metrics::default();
        a.reads.record_success(SimTime(1_000), 6);
        a.writes.record_failure(4);
        a.record_violation("first".into());
        a.history.push(CommitRecord {
            client: 0,
            read: true,
            vn: 1,
            value: 7,
        });
        let mut b = Metrics::default();
        b.reads.record_success(SimTime(3_000), 6);
        b.reads.record_retry();
        b.site_failures = 2;
        b.record_violation("second".into());
        a.merge(&b);
        assert_eq!(a.reads.attempts, 2);
        assert_eq!(a.reads.successes, 2);
        assert_eq!(a.reads.retries, 1);
        assert_eq!(a.reads.mean_latency_ms(), 2.0);
        assert_eq!(a.writes.timeouts, 1);
        assert_eq!(a.site_failures, 2);
        assert_eq!(a.lemma_violations, 2);
        assert_eq!(a.violations, vec!["first".to_string(), "second".to_string()]);
        assert_eq!(a.history.len(), 1);
    }

    #[test]
    fn merge_respects_violation_cap() {
        let mut a = Metrics::default();
        let mut b = Metrics::default();
        for i in 0..MAX_RECORDED_VIOLATIONS {
            a.record_violation(format!("a{i}"));
            b.record_violation(format!("b{i}"));
        }
        a.merge(&b);
        assert_eq!(a.lemma_violations, 2 * MAX_RECORDED_VIOLATIONS as u64);
        assert_eq!(a.violations.len(), MAX_RECORDED_VIOLATIONS);
    }

    #[test]
    fn digest_distinguishes_and_reproduces() {
        let mut a = Metrics::default();
        a.reads.record_success(SimTime(1_000), 6);
        let mut b = Metrics::default();
        b.reads.record_success(SimTime(1_000), 6);
        assert_eq!(a.digest(), b.digest());
        b.reads.record_success(SimTime(2_000), 6);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn throughput() {
        let mut m = Metrics::default();
        m.reads.record_success(SimTime(1), 1);
        m.writes.record_success(SimTime(1), 1);
        assert_eq!(m.throughput_ops_per_sec(SimTime::from_secs(2)), 1.0);
    }
}
