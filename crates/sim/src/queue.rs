//! Pending-event queues for the discrete-event loops.
//!
//! Both simulators (`sim.rs`, `shard.rs`) drive a loop of timestamped
//! events ordered by `(time, seq)` — `seq` is a per-simulation push counter
//! that makes the order total, so FIFO among same-instant events. The queue
//! is the innermost data structure of the whole workspace: every message
//! round trip, retry backoff and site repair passes through one push and
//! one pop.
//!
//! Two implementations sit behind the [`EventQueue`] trait:
//!
//! * [`CalendarQueue`] — the default. An indexed calendar queue (Brown
//!   1988): a power-of-two array of buckets, each a "day" of `width`
//!   simulated microseconds; an event at time `t` lives in bucket
//!   `(t / width) mod nbuckets`. Enqueue is O(1) (append to the day's
//!   bucket); dequeue scans forward from the current virtual day and, on
//!   first touch of a dirty bucket, sorts it descending so the bucket's
//!   minimum pops from the `Vec` tail in O(1). The bucket count doubles or
//!   halves on load-factor thresholds and the width is re-derived from the
//!   observed event-time span, keeping ~one event per bucket-day for the
//!   dominant near-future timers. A full-year scan with no hit (a sparse
//!   horizon, e.g. only repair timers seconds away) falls back to a direct
//!   min search over all buckets.
//! * [`HeapQueue`] — the `BinaryHeap` the simulators shipped with, kept as
//!   the *slow-path oracle* (the same strategy PR 1 used for `FullReplay`):
//!   the property suite replays arbitrary interleaved push/pop sequences
//!   against it and the determinism suites can be forced onto it wholesale.
//!
//! Selection: [`QueueKind::from_env`] reads `QC_EVENT_QUEUE`
//! (`heap` / `calendar`); the configs' `queue` field defaults from it, so
//! CI runs the whole determinism surface once per implementation. Both
//! implementations pop in **bit-identical** `(time, seq)` order — the
//! property suite (`tests/queue_props.rs`) and the cross-implementation
//! digest tests pin this, which is what makes the calendar queue
//! observationally invisible under every pinned digest and golden trace.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// The interface both simulators drive their event loop through.
///
/// Entries are `(time, seq, event)`; `seq` values must be unique per queue
/// (the simulators use a monotone push counter), which makes the pop order
/// total and implementation-independent.
pub trait EventQueue<E: Copy> {
    /// Enqueue an event at `time` with tiebreak `seq`.
    fn push(&mut self, time: SimTime, seq: u64, event: E);

    /// Remove and return the minimum entry by `(time, seq)`.
    fn pop(&mut self) -> Option<(SimTime, u64, E)>;

    /// Remove and return the minimum entry only if its time equals `time`
    /// — the batched-delivery primitive: one clock advance drains every
    /// event at the current instant without re-entering the full dequeue
    /// path between them.
    fn pop_at(&mut self, time: SimTime) -> Option<(u64, E)>;

    /// The timestamp of the minimum entry (None when empty). Takes `&mut`
    /// because the calendar queue may sort a bucket to answer.
    fn next_time(&mut self) -> Option<SimTime>;

    /// Number of queued events.
    fn len(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allow pushes at times `>= t` again, even if a peek has already
    /// observed a later minimum.
    ///
    /// Peeking (`next_time`/`pop`) lets the calendar queue advance its
    /// scan cursor to the observed minimum, after which pushing an
    /// earlier event could be popped out of order. The elastic driver
    /// peeks one event past a migration barrier and then injects
    /// arrivals at `barrier + 1`; calling `rewind(barrier)` first is
    /// sound there because the barrier loop has already drained every
    /// event `<= barrier`. The heap oracle is order-safe by construction
    /// and ignores this.
    fn rewind(&mut self, _t: SimTime) {}
}

/// Which [`EventQueue`] implementation a simulation uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The indexed calendar queue (default fast path).
    #[default]
    Calendar,
    /// The binary-heap oracle.
    Heap,
}

impl QueueKind {
    /// Read the implementation choice from the `QC_EVENT_QUEUE`
    /// environment variable: `heap` (any case) forces the oracle,
    /// everything else (including unset) selects the calendar queue.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("QC_EVENT_QUEUE") {
            Ok(v) if v.eq_ignore_ascii_case("heap") => QueueKind::Heap,
            _ => QueueKind::Calendar,
        }
    }
}

/// The binary-heap implementation — the pre-calendar event queue, retained
/// verbatim as the correctness oracle.
#[derive(Clone, Debug, Default)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Reverse<HeapEntry<E>>>,
}

#[derive(Clone, Debug)]
struct HeapEntry<E> {
    time: u64,
    seq: u64,
    event: E,
}

// Ordering ignores the payload: `seq` is unique, so `(time, seq)` is
// already total and `E` needs no `Ord` bound.
impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}

impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Copy> HeapQueue<E> {
    /// An empty heap queue.
    #[must_use]
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<E: Copy> EventQueue<E> for HeapQueue<E> {
    fn push(&mut self, time: SimTime, seq: u64, event: E) {
        self.heap.push(Reverse(HeapEntry {
            time: time.as_micros(),
            seq,
            event,
        }));
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        self.heap
            .pop()
            .map(|Reverse(e)| (SimTime(e.time), e.seq, e.event))
    }

    fn pop_at(&mut self, time: SimTime) -> Option<(u64, E)> {
        match self.heap.peek() {
            Some(Reverse(e)) if e.time == time.as_micros() => {
                let Reverse(e) = self.heap.pop().expect("peeked above");
                Some((e.seq, e.event))
            }
            _ => None,
        }
    }

    fn next_time(&mut self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| SimTime(e.time))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Smallest bucket count the calendar shrinks down to.
const MIN_BUCKETS: usize = 8;
/// Widest bucket the resize policy will pick (µs) — keeps the
/// `(t / width) * width` arithmetic far from overflow.
const MAX_WIDTH: u64 = 1 << 40;

/// An indexed calendar queue over `(time, seq)`-ordered events.
///
/// See the module docs for the design; the resize policy is: grow
/// (double) when `len > 2·nbuckets`, shrink (halve, floor
/// [`MIN_BUCKETS`]) when `len < nbuckets / 4`, and on every resize
/// re-derive the bucket width as the mean gap `span / len` of the events
/// present (clamped to `[1, MAX_WIDTH]`).
#[derive(Clone, Debug)]
pub struct CalendarQueue<E> {
    /// `buckets[b]` holds events with `(t / width) % nbuckets == b`,
    /// sorted descending by `(time, seq)` when `clean[b]`.
    buckets: Vec<Vec<(u64, u64, E)>>,
    clean: Vec<bool>,
    /// `nbuckets - 1`; bucket count is a power of two.
    mask: usize,
    /// Bucket width in simulated µs (≥ 1).
    width: u64,
    len: usize,
    /// Monotone lower bound on the next pop time (the virtual clock):
    /// every queued event has `time >= floor`.
    floor: u64,
}

impl<E: Copy> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<E: Copy> CalendarQueue<E> {
    /// An empty calendar queue with the initial geometry
    /// ([`MIN_BUCKETS`] buckets of 256 µs — roughly one LAN round trip per
    /// day, immediately re-derived once the load factor moves).
    #[must_use]
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            clean: vec![true; MIN_BUCKETS],
            mask: MIN_BUCKETS - 1,
            width: 256,
            len: 0,
            floor: 0,
        }
    }

    /// Current bucket count (for the resize-boundary tests).
    #[must_use]
    pub fn nbuckets(&self) -> usize {
        self.buckets.len()
    }

    /// Current bucket width in µs (for the resize-boundary tests).
    #[must_use]
    pub fn width(&self) -> u64 {
        self.width
    }

    #[inline]
    fn bucket_of(&self, t: u64) -> usize {
        ((t / self.width) as usize) & self.mask
    }

    #[inline]
    fn ensure_sorted(&mut self, b: usize) {
        if !self.clean[b] {
            // Descending by (time, seq): the bucket minimum is the tail.
            self.buckets[b].sort_unstable_by_key(|e| std::cmp::Reverse((e.0, e.1)));
            self.clean[b] = true;
        }
    }

    /// Locate the minimum entry: `(time, bucket)`. Scans one full year
    /// from `floor`, then falls back to a direct min search (sparse
    /// horizon). Also advances `floor` to the found minimum — safe because
    /// nothing earlier can exist.
    fn locate_min(&mut self) -> Option<(u64, usize)> {
        if self.len == 0 {
            return None;
        }
        let nb = self.buckets.len();
        let mut b = self.bucket_of(self.floor);
        // End of bucket `b`'s current day window.
        let mut top = (self.floor / self.width)
            .saturating_add(1)
            .saturating_mul(self.width);
        for _ in 0..nb {
            self.ensure_sorted(b);
            if let Some(&(t, _, _)) = self.buckets[b].last() {
                if t < top {
                    self.floor = t;
                    return Some((t, b));
                }
            }
            b = (b + 1) & self.mask;
            top = top.saturating_add(self.width);
        }
        // Nothing within one calendar year of `floor`: direct search.
        let mut best: Option<(u64, u64, usize)> = None;
        for b in 0..nb {
            self.ensure_sorted(b);
            if let Some(&(t, seq, _)) = self.buckets[b].last() {
                if best.is_none_or(|(bt, bs, _)| (t, seq) < (bt, bs)) {
                    best = Some((t, seq, b));
                }
            }
        }
        let (t, _, b) = best.expect("len > 0 but no bucket minimum");
        self.floor = t;
        Some((t, b))
    }

    fn resize(&mut self, nbuckets: usize) {
        let mut entries: Vec<(u64, u64, E)> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            entries.append(b);
        }
        // Bucket width from the *median* inter-event gap of a sorted
        // sample, aiming at a few events per bucket-day. The median (not
        // the mean `span / len`) is what makes skewed horizons work: under
        // a 90/10 LAN-body/WAN-tail mix the mean gap is dominated by the
        // far tail and would lump the entire dense body into one hot
        // bucket, degrading every pop to a resort of that bucket. A
        // same-instant flood degenerates to width 1 (equal times share a
        // day no matter what).
        let width = if entries.len() >= 2 {
            let step = (entries.len() / 64).max(1);
            let mut sample: Vec<u64> = entries.iter().step_by(step).map(|&(t, _, _)| t).collect();
            sample.sort_unstable();
            let mut gaps: Vec<u64> = sample.windows(2).map(|w| w[1] - w[0]).collect();
            gaps.sort_unstable();
            let median = gaps[gaps.len() / 2];
            median.saturating_mul(4).clamp(1, MAX_WIDTH)
        } else {
            self.width
        };
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        self.clean = vec![true; nbuckets];
        self.mask = nbuckets - 1;
        self.width = width;
        for (t, seq, e) in entries {
            let b = self.bucket_of(t);
            self.buckets[b].push((t, seq, e));
            self.clean[b] = self.buckets[b].len() <= 1;
        }
    }

    #[inline]
    fn take_from(&mut self, b: usize) -> (u64, u64, E) {
        let entry = self.buckets[b].pop().expect("located bucket is nonempty");
        self.len -= 1;
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 4 {
            self.resize(self.buckets.len() / 2);
        }
        entry
    }
}

impl<E: Copy> EventQueue<E> for CalendarQueue<E> {
    fn push(&mut self, time: SimTime, seq: u64, event: E) {
        let t = time.as_micros();
        debug_assert!(t >= self.floor, "events cannot be scheduled in the past");
        let b = self.bucket_of(t);
        self.buckets[b].push((t, seq, event));
        // A one-element bucket is trivially sorted; appending to a longer
        // one usually is not — resolve lazily at first pop touch.
        self.clean[b] = self.buckets[b].len() <= 1;
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        let (_, b) = self.locate_min()?;
        let (t, seq, e) = self.take_from(b);
        Some((SimTime(t), seq, e))
    }

    fn pop_at(&mut self, time: SimTime) -> Option<(u64, E)> {
        match self.locate_min() {
            Some((t, b)) if t == time.as_micros() => {
                let (_, seq, e) = self.take_from(b);
                Some((seq, e))
            }
            _ => None,
        }
    }

    fn next_time(&mut self) -> Option<SimTime> {
        self.locate_min().map(|(t, _)| SimTime(t))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn rewind(&mut self, t: SimTime) {
        // A floor below the true queue minimum only lengthens the next
        // scan; a floor above it breaks pop order, so only move back.
        self.floor = self.floor.min(t.as_micros());
    }
}

/// The queue a simulation actually drives: static dispatch over the two
/// implementations (no per-event virtual call).
#[derive(Clone, Debug)]
pub enum QueueImpl<E> {
    /// The calendar fast path.
    Calendar(CalendarQueue<E>),
    /// The heap oracle.
    Heap(HeapQueue<E>),
}

impl<E: Copy> QueueImpl<E> {
    /// An empty queue of the given kind.
    #[must_use]
    pub fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Calendar => QueueImpl::Calendar(CalendarQueue::new()),
            QueueKind::Heap => QueueImpl::Heap(HeapQueue::new()),
        }
    }
}

impl<E: Copy> EventQueue<E> for QueueImpl<E> {
    #[inline]
    fn push(&mut self, time: SimTime, seq: u64, event: E) {
        match self {
            QueueImpl::Calendar(q) => q.push(time, seq, event),
            QueueImpl::Heap(q) => q.push(time, seq, event),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        match self {
            QueueImpl::Calendar(q) => q.pop(),
            QueueImpl::Heap(q) => q.pop(),
        }
    }

    #[inline]
    fn pop_at(&mut self, time: SimTime) -> Option<(u64, E)> {
        match self {
            QueueImpl::Calendar(q) => q.pop_at(time),
            QueueImpl::Heap(q) => q.pop_at(time),
        }
    }

    #[inline]
    fn next_time(&mut self) -> Option<SimTime> {
        match self {
            QueueImpl::Calendar(q) => q.next_time(),
            QueueImpl::Heap(q) => q.next_time(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            QueueImpl::Calendar(q) => q.len(),
            QueueImpl::Heap(q) => q.len(),
        }
    }

    #[inline]
    fn rewind(&mut self, t: SimTime) {
        match self {
            QueueImpl::Calendar(q) => q.rewind(t),
            QueueImpl::Heap(q) => q.rewind(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<E: Copy, Q: EventQueue<E>>(q: &mut Q) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((t, s, _)) = q.pop() {
            out.push((t.as_micros(), s));
        }
        out
    }

    #[test]
    fn rewind_permits_earlier_pushes_in_order() {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        for q in [
            &mut cal as &mut dyn EventQueue<()>,
            &mut heap as &mut dyn EventQueue<()>,
        ] {
            q.push(SimTime(5_000), 0, ());
            // Peek advances the calendar cursor to 5 000…
            assert_eq!(q.next_time(), Some(SimTime(5_000)));
            // …but after rewinding to a barrier every event at or past
            // the barrier is pushable and pops in order.
            q.rewind(SimTime(1_000));
            q.push(SimTime(1_001), 1, ());
            assert_eq!(q.pop(), Some((SimTime(1_001), 1, ())));
            assert_eq!(q.pop(), Some((SimTime(5_000), 0, ())));
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn both_pop_in_time_seq_order() {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let times = [500u64, 100, 100, 7_000_000, 100, 42, 500, 99_999];
        for (seq, &t) in times.iter().enumerate() {
            cal.push(SimTime(t), seq as u64, ());
            heap.push(SimTime(t), seq as u64, ());
        }
        let c = drain(&mut cal);
        let h = drain(&mut heap);
        assert_eq!(c, h);
        let mut sorted = c.clone();
        sorted.sort_unstable();
        assert_eq!(c, sorted);
    }

    #[test]
    fn pop_at_only_takes_the_current_instant() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(10), 1, "a");
        q.push(SimTime(10), 2, "b");
        q.push(SimTime(11), 3, "c");
        assert_eq!(q.next_time(), Some(SimTime(10)));
        assert_eq!(q.pop_at(SimTime(10)), Some((1, "a")));
        assert_eq!(q.pop_at(SimTime(10)), Some((2, "b")));
        assert_eq!(q.pop_at(SimTime(10)), None);
        assert_eq!(q.pop_at(SimTime(11)), Some((3, "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn same_instant_pushes_during_a_batch_pop_in_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(10), 1, 1u32);
        q.push(SimTime(10), 2, 2);
        assert_eq!(q.pop_at(SimTime(10)), Some((1, 1)));
        // An event scheduled *at* the instant being drained must pop after
        // the already-queued ones (higher seq).
        q.push(SimTime(10), 3, 3);
        assert_eq!(q.pop_at(SimTime(10)), Some((2, 2)));
        assert_eq!(q.pop_at(SimTime(10)), Some((3, 3)));
        assert_eq!(q.pop_at(SimTime(10)), None);
    }

    #[test]
    fn grows_and_shrinks_on_load_factor() {
        let mut q: CalendarQueue<()> = CalendarQueue::new();
        assert_eq!(q.nbuckets(), MIN_BUCKETS);
        for i in 0..1_000u64 {
            q.push(SimTime(i * 37), i, ());
        }
        assert!(q.nbuckets() >= 512, "grew to {}", q.nbuckets());
        let mut last = 0;
        for _ in 0..996 {
            let (t, _, ()) = q.pop().unwrap();
            assert!(t.as_micros() >= last);
            last = t.as_micros();
        }
        assert!(q.nbuckets() <= MIN_BUCKETS * 2, "shrank to {}", q.nbuckets());
    }

    #[test]
    fn sparse_horizon_falls_back_to_direct_search() {
        let mut q = CalendarQueue::new();
        // Force a tiny width, then queue events years apart.
        for i in 0..32u64 {
            q.push(SimTime(i), i, ());
        }
        for i in 0..32u64 {
            assert_eq!(q.pop(), Some((SimTime(i), i, ())));
        }
        q.push(SimTime(40_000_000_000), 100, ());
        q.push(SimTime(90_000_000_000), 101, ());
        assert_eq!(q.pop(), Some((SimTime(40_000_000_000), 100, ())));
        assert_eq!(q.pop(), Some((SimTime(90_000_000_000), 101, ())));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn env_selects_the_kind() {
        // Default (unset or anything but "heap") is the calendar queue.
        assert_eq!(QueueKind::default(), QueueKind::Calendar);
        let q: QueueImpl<u8> = QueueImpl::new(QueueKind::Heap);
        assert!(matches!(q, QueueImpl::Heap(_)));
        let q: QueueImpl<u8> = QueueImpl::new(QueueKind::Calendar);
        assert!(matches!(q, QueueImpl::Calendar(_)));
    }
}
