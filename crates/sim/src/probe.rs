//! Runtime invariant monitoring: the adapter that feeds every committed
//! simulated read/write into the paper's lemma checks.
//!
//! [`InvariantProbe`] wraps the runtime-agnostic
//! [`qc_replication::LemmaChecker`] — the same predicate code the
//! I/O-automaton executor's `LemmaMonitor` asserts step by step — and
//! instantiates it over the simulator's per-site `(version, value)`
//! stores. After every committed operation the probe asserts:
//!
//! * **Lemma 7** — the maximum version number across the replica stores
//!   equals `current-vn` of the committed history;
//! * **Lemma 8(1a)** — some write-quorum's sites all hold `current-vn`;
//! * **Lemma 8(1b)** — every site at `current-vn` holds the logical state;
//! * **Lemma 8(2)** — a committed read returned the logical state;
//! * a committed write's version number advanced `current-vn` by exactly
//!   one (its read-quorum discovery saw the latest version).
//!
//! The simulator commits operations atomically at their start instant (see
//! `sim.rs`), so every committed point is an "even point" of the access
//! sequence in the paper's sense and the full Lemma 8 clause applies.

use qc_replication::{LemmaChecker, LemmaViolation, ScheduleTrace};
use quorum::{QuorumFamily, QuorumSpec, ReplicaSet};

use crate::arena::DmArena;
use crate::trace::TraceRecorder;

/// Feeds committed simulated operations into the Lemma 7/8 checks.
///
/// The probe optionally carries a [`TraceRecorder`] *sink*: when attached
/// (see [`Simulation::run_traced`](crate::Simulation::run_traced)), the
/// simulator records every CREATE / READ-DM / WRITE-DM / REQUEST-COMMIT /
/// COMMIT / ABORT action of the run into it, alongside the lemma checks.
#[derive(Clone, Debug)]
pub struct InvariantProbe {
    checker: LemmaChecker<u64>,
    sink: Option<TraceRecorder>,
}

impl Default for InvariantProbe {
    fn default() -> Self {
        InvariantProbe::new()
    }
}

impl InvariantProbe {
    /// A probe over the initial store state (version 0, value 0 at every
    /// site).
    #[must_use]
    pub fn new() -> Self {
        InvariantProbe {
            checker: LemmaChecker::new(0),
            sink: None,
        }
    }

    /// Attach a schedule-trace sink (replacing any previous one).
    pub fn attach_sink(&mut self, recorder: TraceRecorder) {
        self.sink = Some(recorder);
    }

    /// Whether a trace sink is attached.
    #[must_use]
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// The attached sink, if any, for recording.
    pub fn sink_mut(&mut self) -> Option<&mut TraceRecorder> {
        self.sink.as_mut()
    }

    /// Detach the sink and return the recorded trace, if one was attached.
    pub fn take_trace(&mut self) -> Option<ScheduleTrace> {
        self.sink.take().map(TraceRecorder::finish)
    }

    /// `current-vn` of the committed history so far.
    #[must_use]
    pub fn current_vn(&self) -> u64 {
        self.checker.current_vn()
    }

    /// `logical-state` of the committed history so far.
    #[must_use]
    pub fn logical_state(&self) -> u64 {
        *self.checker.logical_state()
    }

    /// Assert Lemmas 7 and 8(1a)/8(1b) against the current stores.
    ///
    /// # Errors
    ///
    /// The first violated lemma.
    pub fn check_stores(
        &self,
        stores: &[(u64, u64)],
        quorum: &dyn QuorumSpec,
    ) -> Result<(), LemmaViolation> {
        self.checker.check_states(
            stores.iter().enumerate().map(|(r, (vn, v))| (r, *vn, v)),
            true,
            |holders| quorum.is_write_quorum_bits(holders),
        )
    }

    /// Digest a committed write that installed `vn = value` and re-check
    /// the stores.
    ///
    /// # Errors
    ///
    /// The first violated lemma (including a non-monotonic write version).
    pub fn on_write_commit(
        &mut self,
        vn: u64,
        value: u64,
        stores: &[(u64, u64)],
        quorum: &dyn QuorumSpec,
    ) -> Result<(), LemmaViolation> {
        self.checker.commit_write(vn, value)?;
        self.check_stores(stores, quorum)
    }

    /// Digest a committed read that returned `value` and re-check the
    /// stores.
    ///
    /// # Errors
    ///
    /// The first violated lemma.
    pub fn on_read_commit(
        &self,
        value: u64,
        stores: &[(u64, u64)],
        quorum: &dyn QuorumSpec,
    ) -> Result<(), LemmaViolation> {
        self.checker.check_read(&value)?;
        self.check_stores(stores, quorum)
    }

    /// Lemma 8(2) alone: a committed read must return the logical state.
    ///
    /// Split out from [`on_read_commit_arena`](Self::on_read_commit_arena)
    /// so the simulator can memoize the store re-check separately (the
    /// store scan depends only on the history digest and the store
    /// contents, while this clause depends on the read's value).
    ///
    /// # Errors
    ///
    /// [`LemmaViolation::Lemma8Read`] when the value is not the logical
    /// state.
    pub fn check_read_value(&self, value: u64) -> Result<(), LemmaViolation> {
        self.checker.check_read(&value)
    }

    /// Digest a committed write into the history (`current-vn` advances by
    /// exactly one) without re-checking the stores.
    ///
    /// # Errors
    ///
    /// [`LemmaViolation::WriteVn`] on a non-monotonic version number; the
    /// checker state is left unchanged in that case.
    pub fn commit_write_digest(&mut self, vn: u64, value: u64) -> Result<(), LemmaViolation> {
        self.checker.commit_write(vn, value)
    }

    /// [`check_stores`](Self::check_stores) over one item's slots of a SoA
    /// [`DmArena`] (`base..base + n`), without materializing pairs.
    ///
    /// # Errors
    ///
    /// The first violated lemma.
    pub fn check_arena(
        &self,
        arena: &DmArena,
        base: usize,
        n: usize,
        quorum: &dyn QuorumSpec,
    ) -> Result<(), LemmaViolation> {
        self.checker.check_states(arena.states(base..base + n), true, |holders| {
            quorum.is_write_quorum_bits(holders)
        })
    }

    /// [`on_write_commit`](Self::on_write_commit) against a [`DmArena`].
    ///
    /// # Errors
    ///
    /// The first violated lemma (including a non-monotonic write version).
    pub fn on_write_commit_arena(
        &mut self,
        vn: u64,
        value: u64,
        arena: &DmArena,
        base: usize,
        n: usize,
        quorum: &dyn QuorumSpec,
    ) -> Result<(), LemmaViolation> {
        self.checker.commit_write(vn, value)?;
        self.check_arena(arena, base, n, quorum)
    }

    /// [`on_read_commit`](Self::on_read_commit) against a [`DmArena`].
    ///
    /// # Errors
    ///
    /// The first violated lemma.
    pub fn on_read_commit_arena(
        &self,
        value: u64,
        arena: &DmArena,
        base: usize,
        n: usize,
        quorum: &dyn QuorumSpec,
    ) -> Result<(), LemmaViolation> {
        self.checker.check_read(&value)?;
        self.check_arena(arena, base, n, quorum)
    }

    /// [`check_arena`](Self::check_arena) under a *dynamic* configuration:
    /// Lemma 8(1a)'s write quorum is evaluated over the current `members`
    /// via the quorum family's size rule, so sites outside the membership
    /// neither count toward the quorum nor trip the check.
    ///
    /// # Errors
    ///
    /// The first violated lemma.
    pub fn check_arena_members(
        &self,
        arena: &DmArena,
        base: usize,
        n: usize,
        family: QuorumFamily,
        members: ReplicaSet,
    ) -> Result<(), LemmaViolation> {
        self.checker.check_states(arena.states(base..base + n), true, |holders| {
            holders.intersection(members).len() >= family.write_size(members.len())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum::Majority;

    #[test]
    fn probe_follows_a_faithful_run() {
        let q = Majority::new(3);
        let mut probe = InvariantProbe::new();
        let mut stores = vec![(0u64, 0u64); 3];
        probe.check_stores(&stores, &q).unwrap();
        // Write 7 at quorum {0, 1}.
        stores[0] = (1, 7);
        stores[1] = (1, 7);
        probe.on_write_commit(1, 7, &stores, &q).unwrap();
        probe.on_read_commit(7, &stores, &q).unwrap();
        assert_eq!(probe.current_vn(), 1);
        assert_eq!(probe.logical_state(), 7);
    }

    #[test]
    fn probe_fires_on_corruption_and_wrong_reads() {
        let q = Majority::new(3);
        let mut probe = InvariantProbe::new();
        let mut stores = vec![(0u64, 0u64); 3];
        stores[0] = (1, 7);
        stores[1] = (1, 7);
        probe.on_write_commit(1, 7, &stores, &q).unwrap();
        // Wrong read value.
        assert!(probe.on_read_commit(9, &stores, &q).is_err());
        // Corrupted store: version beyond current-vn.
        stores[2] = (99, 3);
        assert!(probe.check_stores(&stores, &q).is_err());
    }

    #[test]
    fn sink_lifecycle_detaches_with_the_recorded_trace() {
        use crate::trace::TraceRecorder;
        use crate::SimTime;
        use qc_replication::{TmKind, TraceAction, TraceTid};

        let mut probe = InvariantProbe::new();
        assert!(!probe.has_sink());
        assert!(probe.sink_mut().is_none());
        assert!(probe.take_trace().is_none());

        probe.attach_sink(TraceRecorder::new("majority(2/3)", 3, 9));
        assert!(probe.has_sink());
        let tid = TraceTid {
            client: 0,
            op: 0,
            attempt: 1,
        };
        probe.sink_mut().unwrap().record(
            SimTime::from_millis(1),
            tid,
            TraceAction::Create { kind: TmKind::Read },
            false,
        );

        let trace = probe.take_trace().expect("sink was attached");
        assert_eq!(trace.seed, 9);
        assert_eq!(trace.events.len(), 1);
        // Taking the trace detaches the sink.
        assert!(!probe.has_sink());
        assert!(probe.take_trace().is_none());
    }
}
