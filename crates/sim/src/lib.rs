//! Discrete-event simulation substrate for evaluating quorum-consensus
//! replication.
//!
//! Goldman & Lynch (PODC 1987) is a theory paper; its introduction
//! motivates replication by availability, reliability and performance.
//! This crate provides the testbed-stand-in used by the workspace's
//! quantitative experiments (Q1–Q5 in `EXPERIMENTS.md`): replica sites
//! with exponential crash/repair processes, parametric message latency
//! (LAN / WAN / fixed), closed-loop clients running the Gifford protocol
//! (read-quorum discovery, then write-quorum installation), and per-class
//! metrics (latency percentiles, message cost, availability, throughput).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use qc_sim::{run, SimConfig, SimTime};
//! use quorum::Majority;
//!
//! let mut config = SimConfig::new(Arc::new(Majority::new(5)));
//! config.duration = SimTime::from_secs(2);
//! let metrics = run(config);
//! assert!(metrics.reads.availability() > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
mod faults;
mod latency;
mod metrics;
mod par;
pub mod placement;
mod probe;
pub mod queue;
mod shard;
#[allow(clippy::module_inception)]
mod sim;
mod slab;
mod time;
pub mod trace;
pub mod txn_workload;

pub use arena::DmArena;
pub use faults::{message_dropped, FaultEvent, FaultPlan, ReconfigTarget, RetryPolicy};
pub use latency::{sample_exponential, LatencyModel};
pub use metrics::{CommitRecord, Metrics, OpStats, OpSummary, MAX_RECORDED_VIOLATIONS};
pub use queue::{CalendarQueue, EventQueue, HeapQueue, QueueImpl, QueueKind};
pub use par::{default_threads, par_map, run_batch};
pub use placement::{
    plan_moves, ElasticPolicy, EpochSample, LoadTracker, Migration, PlacementDirectory,
    PlacementPolicy, PlacementReport, SeedPlacement,
};
pub use probe::InvariantProbe;
pub use shard::{
    cum_weight_table, item_weight, run_sharded, run_sharded_elastic,
    run_sharded_elastic_traced, run_sharded_traced, ItemDist, MultiConfig, ShardReport, Workload,
};
pub use qc_replication::{
    check_commit_order_serializable, check_trace, AbortReason, AccessRecord, CommittedTxn,
    ConformanceReport, Divergence, DivergenceKind, ScheduleTrace, SerializabilityError, TmKind,
    TraceAction, TraceEvent, TraceTid,
};
pub use qc_obs::{
    EventKind, EventLogMode, Histogram, ObsEvent, ObsOptions, ObsReport, OpRef, Phase,
    Snapshot, SpanRecorder, PHASES,
};
pub use sim::{run, run_observed, run_traced, ContactPolicy, ReconfigPolicy, SimConfig, Simulation};
pub use time::SimTime;
pub use trace::{trace_to_json, TraceRecorder};
pub use qc_obs::causal::{
    AbortCause, CausalOptions, CausalReport, CritProfile, EdgeKind, SpanKind, TxnTrace,
    ABORT_CAUSES, EDGE_KINDS,
};
pub use txn_workload::{
    run_txn, run_txn_causal, run_txn_committed, run_txn_traced, TxnConfig, TxnReport, TxnStats,
};
