//! Deterministic fault injection: seed-driven, serializable schedules of
//! site crashes, recoveries, message drops/delays, forced aborts and
//! replica-store corruption, plus the coordinator's retry/backoff policy.
//!
//! A [`FaultPlan`] pins fault events to exact [`SimTime`] points, so every
//! run under the same `(config, seed, plan)` triple is bit-identical —
//! unlike the exponential crash/repair process (`SimConfig::mttf`), which
//! models background failure *rates*, a plan reproduces a specific failure
//! *scenario* (the paper's abort/failure model made concrete; see
//! `DESIGN.md`). Plans round-trip through a compact text form
//! ([`FaultPlan::parse`] / `Display`) for experiment CLI flags, and
//! serialize to JSON for result files.
//!
//! Per-message randomness (drop decisions) is derived from a hash of the
//! message's coordinates `(seed, client, op, attempt, phase, site,
//! direction)` rather than from the simulator's main RNG stream. This keeps
//! the main stream identical across [`ContactPolicy`] variants — the
//! policies send different message sets, and drawing per-message coins from
//! a shared stream would make every later sample diverge.
//!
//! [`ContactPolicy`]: crate::ContactPolicy

use std::fmt;

use quorum::replica_set::MAX_REPLICAS;
use quorum::ReplicaSet;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use crate::time::SimTime;

/// The membership a scripted reconfiguration targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReconfigTarget {
    /// Reconfigure to the set of sites live at the event time.
    Live,
    /// Reconfigure to an explicit member set.
    Members(ReplicaSet),
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Site `site` crashes (fail-stop: it stops responding; its store
    /// survives and is served again after recovery).
    Crash {
        /// The crashing site.
        site: usize,
    },
    /// Site `site` recovers with its store intact.
    Recover {
        /// The recovering site.
        site: usize,
    },
    /// The next operation (or in-flight retry sequence) of `client` is
    /// forcibly aborted — the paper's transaction-abort model: the TM
    /// stops without a `REQUEST-COMMIT` and none of its effects become
    /// visible.
    AbortClient {
        /// The client whose operation aborts.
        client: usize,
    },
    /// Scribble `(vn, value)` into site `site`'s replica store. This is
    /// *outside* the paper's fail-stop model — it is the negative control
    /// proving the runtime lemma monitor actually fires.
    Corrupt {
        /// The corrupted site.
        site: usize,
        /// The bogus version number installed.
        vn: u64,
        /// The bogus value installed.
        value: u64,
    },
    /// For `duration` from the event time, every message is independently
    /// dropped with probability `permille`/1000.
    DropWindow {
        /// Window length.
        duration: SimTime,
        /// Drop probability in thousandths (0..=1000).
        permille: u32,
    },
    /// For `duration` from the event time, every one-way message latency
    /// gains `extra`.
    DelayWindow {
        /// Window length.
        duration: SimTime,
        /// Added one-way latency.
        extra: SimTime,
    },
    /// Install a new configuration (a scripted Goldman–Lynch
    /// reconfigure-TM): the target membership is written to a write quorum
    /// of the *old* configuration, after which operations at stale
    /// generations are rejected and retried under the new one. Only
    /// meaningful when the simulator's `ReconfigPolicy` is enabled — the
    /// simulators reject the plan otherwise, like any out-of-range
    /// reference.
    Reconfig {
        /// The new membership.
        target: ReconfigTarget,
    },
    /// Migrate item `item` to shard `to` (a scripted hot-item handoff).
    /// Interpreted by the sharded simulator's elastic control plane — the
    /// move is installed as a same-membership reconfiguration of the item
    /// at the epoch barrier — and rejected everywhere else, like any
    /// out-of-range reference. Not part of any shard's local plan view
    /// ([`FaultPlan::shard_view`] strips it).
    Migrate {
        /// Global item id to move.
        item: usize,
        /// Destination shard.
        to: usize,
    },
}

/// A deterministic, serializable schedule of [`FaultEvent`]s.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultEvent)>,
}

impl FaultPlan {
    /// The empty plan (no injected faults).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events, sorted by time (stable for equal times).
    #[must_use]
    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }

    fn push(mut self, at: SimTime, e: FaultEvent) -> Self {
        self.events.push((at, e));
        self.events.sort_by_key(|&(t, _)| t);
        self
    }

    /// Schedule a site crash.
    #[must_use]
    pub fn crash_at(self, at: SimTime, site: usize) -> Self {
        self.push(at, FaultEvent::Crash { site })
    }

    /// Schedule a site recovery.
    #[must_use]
    pub fn recover_at(self, at: SimTime, site: usize) -> Self {
        self.push(at, FaultEvent::Recover { site })
    }

    /// Schedule a forced abort of `client`'s next operation.
    #[must_use]
    pub fn abort_at(self, at: SimTime, client: usize) -> Self {
        self.push(at, FaultEvent::AbortClient { client })
    }

    /// Schedule a store corruption (monitor negative control).
    #[must_use]
    pub fn corrupt_at(self, at: SimTime, site: usize, vn: u64, value: u64) -> Self {
        self.push(at, FaultEvent::Corrupt { site, vn, value })
    }

    /// Schedule a message-drop window.
    ///
    /// # Panics
    ///
    /// Panics if `permille > 1000`.
    #[must_use]
    pub fn drop_window(self, at: SimTime, duration: SimTime, permille: u32) -> Self {
        assert!(permille <= 1000, "drop probability is in thousandths");
        self.push(at, FaultEvent::DropWindow { duration, permille })
    }

    /// Schedule a message-delay window.
    #[must_use]
    pub fn delay_window(self, at: SimTime, duration: SimTime, extra: SimTime) -> Self {
        self.push(at, FaultEvent::DelayWindow { duration, extra })
    }

    /// Schedule a scripted reconfiguration to `target`.
    #[must_use]
    pub fn reconfig_at(self, at: SimTime, target: ReconfigTarget) -> Self {
        self.push(at, FaultEvent::Reconfig { target })
    }

    /// Schedule a scripted migration of `item` to shard `to` (sharded
    /// simulator with elastic placement only).
    #[must_use]
    pub fn migrate_at(self, at: SimTime, item: usize, to: usize) -> Self {
        self.push(at, FaultEvent::Migrate { item, to })
    }

    /// The strongest drop probability (thousandths) of any window active at
    /// `t`.
    #[must_use]
    pub fn drop_permille_at(&self, t: SimTime) -> u32 {
        self.events
            .iter()
            .filter_map(|&(at, e)| match e {
                FaultEvent::DropWindow { duration, permille }
                    if at <= t && t < at + duration =>
                {
                    Some(permille)
                }
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// The largest extra one-way latency of any delay window active at `t`.
    #[must_use]
    pub fn delay_extra_at(&self, t: SimTime) -> SimTime {
        self.events
            .iter()
            .filter_map(|&(at, e)| match e {
                FaultEvent::DelayWindow { duration, extra } if at <= t && t < at + duration => {
                    Some(extra)
                }
                _ => None,
            })
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// The scheduled crash times of `site`, ascending (used by the
    /// simulator to detect operations that straddle a crash).
    pub fn crash_times_for(&self, site: usize) -> impl Iterator<Item = SimTime> + '_ {
        self.events.iter().filter_map(move |&(at, e)| match e {
            FaultEvent::Crash { site: s } if s == site => Some(at),
            _ => None,
        })
    }

    /// Check every event references sites `< sites` and clients
    /// `< clients`.
    ///
    /// # Errors
    ///
    /// A description of the first out-of-range event.
    pub fn validate(&self, sites: usize, clients: usize) -> Result<(), String> {
        for &(at, e) in &self.events {
            match e {
                FaultEvent::Crash { site }
                | FaultEvent::Recover { site }
                | FaultEvent::Corrupt { site, .. } => {
                    if site >= sites {
                        return Err(format!(
                            "fault at {at} references site {site}, but there are {sites} sites"
                        ));
                    }
                }
                FaultEvent::AbortClient { client } => {
                    if client >= clients {
                        return Err(format!(
                            "fault at {at} references client {client}, but there are \
                             {clients} clients"
                        ));
                    }
                }
                FaultEvent::Reconfig { target } => {
                    if let ReconfigTarget::Members(members) = target {
                        if members.is_empty() {
                            return Err(format!("reconfig at {at} targets an empty member set"));
                        }
                        if let Some(worst) = members.iter().find(|&s| s >= sites) {
                            return Err(format!(
                                "reconfig at {at} references site {worst}, but there are \
                                 {sites} sites"
                            ));
                        }
                    }
                }
                // Item/shard ranges are properties of the sharded
                // configuration, not of (sites, clients); the sharded
                // simulator's `MultiConfig::validate` checks them.
                FaultEvent::Migrate { .. } => {}
                FaultEvent::DropWindow { .. } | FaultEvent::DelayWindow { .. } => {}
            }
        }
        Ok(())
    }

    /// The view of a global plan that one shard of the sharded simulator
    /// applies (see `qc_sim::shard`).
    ///
    /// Site-scoped events — crashes, recoveries, drop and delay windows —
    /// are *shared across shards*: every shard replays them against its
    /// own copy of the site state, so all shards experience the same
    /// cluster weather at the same simulated instants. Client- and
    /// item-scoped events are split: `AbortClient { client }` survives
    /// only when `client` falls in the shard's global client range
    /// `[clients_lo, clients_hi)`, remapped to the shard-local index;
    /// `Corrupt` survives only when `keep_corrupt` is set (the sharded
    /// simulator scribbles the negative-control corruption into exactly
    /// one item, owned by one shard, so the monitor fires once rather than
    /// once per shard).
    ///
    /// Event order (and therefore replay determinism) is preserved.
    #[must_use]
    pub fn shard_view(
        &self,
        clients_lo: usize,
        clients_hi: usize,
        keep_corrupt: bool,
    ) -> FaultPlan {
        let events = self
            .events
            .iter()
            .filter_map(|&(at, e)| match e {
                FaultEvent::AbortClient { client } => (clients_lo..clients_hi)
                    .contains(&client)
                    .then(|| (at, FaultEvent::AbortClient { client: client - clients_lo })),
                FaultEvent::Corrupt { .. } => keep_corrupt.then_some((at, e)),
                // Migrations are control-plane events interpreted by the
                // epoch driver between shard legs, never inside a shard.
                FaultEvent::Migrate { .. } => None,
                _ => Some((at, e)),
            })
            .collect();
        FaultPlan { events }
    }

    /// A deterministic seed-driven plan: `pairs` crash/recovery pairs over
    /// random sites, `aborts` forced client aborts, all within
    /// `[duration/10, 9·duration/10]`.
    #[must_use]
    pub fn random(seed: u64, sites: usize, clients: usize, duration: SimTime, pairs: usize, aborts: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA17_FA17_FA17_FA17);
        let span = duration.as_micros();
        let (lo, hi) = (span / 10, span * 9 / 10);
        let mut plan = FaultPlan::new();
        for _ in 0..pairs {
            let site = rng.gen_range(0..sites);
            let down = rng.gen_range(lo..hi);
            let up = rng.gen_range(down..=hi);
            plan = plan
                .crash_at(SimTime(down), site)
                .recover_at(SimTime(up), site);
        }
        for _ in 0..aborts {
            let client = rng.gen_range(0..clients);
            let at = rng.gen_range(lo..hi);
            plan = plan.abort_at(SimTime(at), client);
        }
        plan
    }

    /// Parse the compact text form emitted by `Display`.
    ///
    /// Events are separated by `;`. Times are milliseconds, with an
    /// optional fraction of up to three digits (microsecond resolution),
    /// so `crash@1.5:2` crashes site 2 at t = 1500 µs:
    ///
    /// ```text
    /// crash@1500:2       site 2 crashes at t = 1500 ms
    /// recover@3000:2     site 2 recovers at t = 3000 ms
    /// abort@2000:0       client 0's next operation aborts at t = 2000 ms
    /// corrupt@4000:1,99,7  site 1's store becomes (vn 99, value 7)
    /// drop@1000:500,300  for 500 ms from t = 1000 ms, drop 30.0% of messages
    /// delay@1000:500,2   for 500 ms from t = 1000 ms, +2 ms one-way latency
    /// reconfig@5000:live reconfigure to the then-live sites at t = 5000 ms
    /// reconfig@5000:0+2+3  reconfigure to members {0, 2, 3}
    /// ```
    ///
    /// # Errors
    ///
    /// A description of the first malformed event.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for raw in spec.split(';') {
            let ev = raw.trim();
            if ev.is_empty() {
                continue;
            }
            let (head, args) = ev
                .split_once(':')
                .ok_or_else(|| format!("missing ':' in fault event {ev:?}"))?;
            let (kind, at_ms) = head
                .split_once('@')
                .ok_or_else(|| format!("missing '@' in fault event {ev:?}"))?;
            let at =
                parse_ms(at_ms).map_err(|_| format!("bad time {:?} in {ev:?}", at_ms.trim()))?;
            let parts: Vec<&str> = args.split(',').map(str::trim).collect();
            let arity = |n: usize| {
                if parts.len() == n {
                    Ok(())
                } else {
                    Err(format!(
                        "{ev:?}: expected {n} argument(s), got {}",
                        parts.len()
                    ))
                }
            };
            let int = |a: &str| {
                a.parse::<u64>()
                    .map_err(|_| format!("bad argument {a:?} in {ev:?}"))
            };
            let time = |a: &str| parse_ms(a).map_err(|_| format!("bad argument {a:?} in {ev:?}"));
            plan = match kind.trim() {
                "crash" => {
                    arity(1)?;
                    plan.crash_at(at, int(parts[0])? as usize)
                }
                "recover" => {
                    arity(1)?;
                    plan.recover_at(at, int(parts[0])? as usize)
                }
                "abort" => {
                    arity(1)?;
                    plan.abort_at(at, int(parts[0])? as usize)
                }
                "corrupt" => {
                    arity(3)?;
                    plan.corrupt_at(at, int(parts[0])? as usize, int(parts[1])?, int(parts[2])?)
                }
                "drop" => {
                    arity(2)?;
                    let permille = int(parts[1])?;
                    if permille > 1000 {
                        return Err(format!("{ev:?}: drop permille must be ≤ 1000"));
                    }
                    plan.drop_window(at, time(parts[0])?, permille as u32)
                }
                "delay" => {
                    arity(2)?;
                    plan.delay_window(at, time(parts[0])?, time(parts[1])?)
                }
                "migrate" => {
                    arity(1)?;
                    let (item, to) = parts[0]
                        .split_once("->")
                        .ok_or_else(|| format!("{ev:?}: expected item->shard"))?;
                    plan.migrate_at(at, int(item.trim())? as usize, int(to.trim())? as usize)
                }
                "reconfig" => {
                    arity(1)?;
                    let target = if parts[0] == "live" {
                        ReconfigTarget::Live
                    } else {
                        let mut members = ReplicaSet::EMPTY;
                        for m in parts[0].split('+') {
                            let s = int(m.trim())? as usize;
                            if s >= MAX_REPLICAS {
                                return Err(format!(
                                    "{ev:?}: member {s} exceeds the {MAX_REPLICAS}-replica cap"
                                ));
                            }
                            members.insert(s);
                        }
                        ReconfigTarget::Members(members)
                    };
                    plan.reconfig_at(at, target)
                }
                other => return Err(format!("unknown fault kind {other:?} in {ev:?}")),
            };
        }
        Ok(plan)
    }
}

/// Format a time as decimal milliseconds, without trailing zeros, so that
/// [`parse_ms`] recovers it exactly (`1500 µs` → `"1.5"`, `2 ms` → `"2"`).
fn format_ms(t: SimTime) -> String {
    let us = t.as_micros();
    let (ms, frac) = (us / 1_000, us % 1_000);
    if frac == 0 {
        format!("{ms}")
    } else {
        let mut s = format!("{ms}.{frac:03}");
        while s.ends_with('0') {
            s.pop();
        }
        s
    }
}

/// Parse decimal milliseconds with at most three fractional digits (the
/// microsecond resolution of [`SimTime`]).
fn parse_ms(s: &str) -> Result<SimTime, ()> {
    let s = s.trim();
    let (whole, frac) = s.split_once('.').unwrap_or((s, ""));
    if frac.len() > 3 || !frac.bytes().all(|b| b.is_ascii_digit()) {
        return Err(());
    }
    let ms = whole.parse::<u64>().map_err(|_| ())?;
    let mut us = ms.checked_mul(1_000).ok_or(())?;
    if !frac.is_empty() {
        us += format!("{frac:0<3}").parse::<u64>().map_err(|_| ())?;
    }
    Ok(SimTime(us))
}

impl FaultEvent {
    /// The plan-grammar rendering of this event firing at `at` — the same
    /// fragment `Display for FaultPlan` emits (and [`FaultPlan::parse`]
    /// accepts). The structured event log uses this as the fault
    /// description, so log entries and plan flags share one vocabulary.
    pub fn text(&self, at: SimTime) -> String {
        let ms = format_ms(at);
        match *self {
            FaultEvent::Crash { site } => format!("crash@{ms}:{site}"),
            FaultEvent::Recover { site } => format!("recover@{ms}:{site}"),
            FaultEvent::AbortClient { client } => format!("abort@{ms}:{client}"),
            FaultEvent::Corrupt { site, vn, value } => {
                format!("corrupt@{ms}:{site},{vn},{value}")
            }
            FaultEvent::DropWindow { duration, permille } => {
                format!("drop@{ms}:{},{permille}", format_ms(duration))
            }
            FaultEvent::DelayWindow { duration, extra } => {
                format!("delay@{ms}:{},{}", format_ms(duration), format_ms(extra))
            }
            FaultEvent::Reconfig { target } => match target {
                ReconfigTarget::Live => format!("reconfig@{ms}:live"),
                ReconfigTarget::Members(members) => {
                    let list: Vec<String> = members.iter().map(|s| s.to_string()).collect();
                    format!("reconfig@{ms}:{}", list.join("+"))
                }
            },
            FaultEvent::Migrate { item, to } => format!("migrate@{ms}:{item}->{to}"),
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, &(at, e)) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{}", e.text(at))?;
        }
        Ok(())
    }
}

impl Serialize for FaultPlan {
    fn serialize_json(&self, out: &mut String) {
        let items: Vec<String> = self
            .events
            .iter()
            .map(|&(at, e)| {
                let o = serde_json::JsonObject::new().field("at_us", &at.as_micros());
                match e {
                    FaultEvent::Crash { site } => {
                        o.field("kind", "crash").field("site", &site)
                    }
                    FaultEvent::Recover { site } => {
                        o.field("kind", "recover").field("site", &site)
                    }
                    FaultEvent::AbortClient { client } => {
                        o.field("kind", "abort").field("client", &client)
                    }
                    FaultEvent::Corrupt { site, vn, value } => o
                        .field("kind", "corrupt")
                        .field("site", &site)
                        .field("vn", &vn)
                        .field("value", &value),
                    FaultEvent::DropWindow { duration, permille } => o
                        .field("kind", "drop")
                        .field("duration_us", &duration.as_micros())
                        .field("permille", &permille),
                    FaultEvent::DelayWindow { duration, extra } => o
                        .field("kind", "delay")
                        .field("duration_us", &duration.as_micros())
                        .field("extra_us", &extra.as_micros()),
                    FaultEvent::Reconfig { target } => match target {
                        ReconfigTarget::Live => {
                            o.field("kind", "reconfig").field("members", "live")
                        }
                        ReconfigTarget::Members(members) => {
                            let list: Vec<u64> = members.iter().map(|s| s as u64).collect();
                            o.field("kind", "reconfig").field("members", &list)
                        }
                    },
                    FaultEvent::Migrate { item, to } => {
                        o.field("kind", "migrate").field("item", &item).field("to", &to)
                    }
                }
                .build()
            })
            .collect();
        out.push_str(&serde_json::array_raw(items));
    }
}

/// Coordinator retry policy: how many attempts an operation gets and how
/// long the coordinator backs off between them.
///
/// The default is a single attempt (no retries), matching the pre-fault
/// simulator. With retries, a failed attempt (timeout or quorum loss)
/// re-samples the site state after an exponentially growing backoff, so an
/// operation that loses its quorum mid-flight degrades into a delayed
/// success once sites recover, instead of a hard failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (≥ 1; 1 means no retries).
    pub attempts: u32,
    /// Backoff before the second attempt.
    pub backoff: SimTime,
    /// Multiplier applied to the backoff for each further attempt.
    pub multiplier: u32,
    /// Upper bound on any single backoff.
    pub max_backoff: SimTime,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 1,
            backoff: SimTime::from_millis(1),
            multiplier: 2,
            max_backoff: SimTime::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// `attempts` attempts with exponential backoff starting at `backoff`
    /// (doubling, capped at 1 s).
    #[must_use]
    pub fn retries(attempts: u32, backoff: SimTime) -> Self {
        assert!(attempts >= 1, "an operation gets at least one attempt");
        RetryPolicy {
            attempts,
            backoff,
            ..RetryPolicy::default()
        }
    }

    /// The backoff to wait before attempt number `attempt` (2-based: the
    /// first retry is attempt 2).
    #[must_use]
    pub fn backoff_before(&self, attempt: u32) -> SimTime {
        let exp = attempt.saturating_sub(2);
        let factor = self.multiplier.saturating_pow(exp.min(20));
        let raw = self.backoff.as_micros().saturating_mul(u64::from(factor));
        SimTime(raw.min(self.max_backoff.as_micros()))
    }
}

/// SplitMix64 finalizer: the per-message hash underlying drop decisions.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic per-message drop coin, independent of the main RNG stream
/// (see the module docs for why). The arguments are exactly the coordinates
/// that identify one message.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn message_dropped(
    seed: u64,
    client: usize,
    op_index: u64,
    attempt: u32,
    phase: u8,
    site: usize,
    response: bool,
    permille: u32,
) -> bool {
    if permille == 0 {
        return false;
    }
    let mut h = mix(seed ^ 0xD809_D809_D809_D809);
    h = mix(h ^ client as u64);
    h = mix(h ^ op_index);
    h = mix(h ^ u64::from(attempt));
    h = mix(h ^ u64::from(phase));
    h = mix(h ^ site as u64);
    h = mix(h ^ u64::from(response));
    (h % 1000) < u64::from(permille)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_round_trips_through_text() {
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_millis(1500), 2)
            .recover_at(SimTime::from_millis(3000), 2)
            .abort_at(SimTime::from_millis(2000), 0)
            .corrupt_at(SimTime::from_millis(4000), 1, 99, 7)
            .drop_window(SimTime::from_millis(1000), SimTime::from_millis(500), 300)
            .delay_window(
                SimTime::from_millis(1000),
                SimTime::from_millis(500),
                SimTime::from_millis(2),
            );
        let text = plan.to_string();
        let back = FaultPlan::parse(&text).unwrap();
        assert_eq!(plan, back);
        assert_eq!(back.len(), 6);
    }

    #[test]
    fn empty_plan_round_trips_through_text() {
        let plan = FaultPlan::new();
        assert_eq!(plan.to_string(), "");
        let back = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, back);
        assert!(back.is_empty());
    }

    #[test]
    fn sub_millisecond_times_round_trip_through_text() {
        let plan = FaultPlan::new()
            .crash_at(SimTime(100), 0)
            .recover_at(SimTime(500), 0)
            .drop_window(SimTime(1_500), SimTime(250), 300)
            .delay_window(SimTime(2_001), SimTime(999), SimTime(1));
        let text = plan.to_string();
        assert_eq!(
            text,
            "crash@0.1:0; recover@0.5:0; drop@1.5:0.25,300; delay@2.001:0.999,0.001"
        );
        let back = FaultPlan::parse(&text).unwrap();
        assert_eq!(plan, back, "Display must not truncate sub-ms times");
    }

    #[test]
    fn fractional_times_parse_at_microsecond_resolution() {
        let plan = FaultPlan::parse("crash@1.5:2").unwrap();
        assert_eq!(plan.events()[0].0, SimTime(1_500));
        // Short fractions are right-padded: .5 ms == 500 µs, .05 == 50 µs.
        let plan = FaultPlan::parse("crash@0.05:2").unwrap();
        assert_eq!(plan.events()[0].0, SimTime(50));
        // More than µs resolution, or junk fractions, are rejected.
        assert!(FaultPlan::parse("crash@1.0005:2").is_err());
        assert!(FaultPlan::parse("crash@1.5x:2").is_err());
        assert!(FaultPlan::parse("crash@.5:2").is_err());
    }

    #[test]
    fn zero_duration_windows_round_trip_and_affect_no_instant() {
        let plan = FaultPlan::new()
            .drop_window(SimTime::from_millis(10), SimTime::ZERO, 900)
            .delay_window(SimTime::from_millis(20), SimTime::ZERO, SimTime::from_millis(3));
        let back = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, back);
        // A window of zero duration is empty: [start, start) contains nothing.
        assert_eq!(back.drop_permille_at(SimTime::from_millis(10)), 0);
        assert_eq!(back.delay_extra_at(SimTime::from_millis(20)), SimTime::ZERO);
    }

    #[test]
    fn overlapping_crash_recover_windows_on_one_site_round_trip() {
        // Two crash/recover windows on site 1 that overlap: the site is
        // down from 5 ms until the *last* recover at 40 ms.
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_millis(5), 1)
            .crash_at(SimTime::from_millis(10), 1)
            .recover_at(SimTime::from_millis(20), 1)
            .recover_at(SimTime::from_millis(40), 1)
            .crash_at(SimTime::from_millis(30), 1);
        let back = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, back);
        assert_eq!(back.len(), 5);
        // Events stay sorted by time, so replaying them in order leaves the
        // site up after 40 ms regardless of the insertion order above.
        let times: Vec<u64> = back.events().iter().map(|&(t, _)| t.as_micros()).collect();
        assert_eq!(times, vec![5_000, 10_000, 20_000, 30_000, 40_000]);
    }

    #[test]
    fn plan_events_stay_sorted() {
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_millis(900), 1)
            .crash_at(SimTime::from_millis(100), 0);
        let times: Vec<u64> = plan.events().iter().map(|&(t, _)| t.as_micros()).collect();
        assert_eq!(times, vec![100_000, 900_000]);
    }

    #[test]
    fn parse_rejects_malformed_events() {
        assert!(FaultPlan::parse("crash@100").is_err()); // no args
        assert!(FaultPlan::parse("crash:1").is_err()); // no time
        assert!(FaultPlan::parse("crash@abc:1").is_err()); // bad time
        assert!(FaultPlan::parse("explode@100:1").is_err()); // unknown kind
        assert!(FaultPlan::parse("corrupt@100:1,2").is_err()); // arity
        assert!(FaultPlan::parse("drop@100:10,2000").is_err()); // permille cap
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" ; ; ").unwrap().is_empty());
    }

    #[test]
    fn windows_answer_point_queries() {
        let plan = FaultPlan::new()
            .drop_window(SimTime::from_millis(10), SimTime::from_millis(5), 250)
            .drop_window(SimTime::from_millis(12), SimTime::from_millis(1), 900)
            .delay_window(
                SimTime::from_millis(20),
                SimTime::from_millis(10),
                SimTime::from_millis(3),
            );
        assert_eq!(plan.drop_permille_at(SimTime::from_millis(9)), 0);
        assert_eq!(plan.drop_permille_at(SimTime::from_millis(10)), 250);
        assert_eq!(plan.drop_permille_at(SimTime::from_millis(12)), 900); // max wins
        assert_eq!(plan.drop_permille_at(SimTime::from_millis(15)), 0); // end exclusive
        assert_eq!(plan.delay_extra_at(SimTime::from_millis(25)), SimTime::from_millis(3));
        assert_eq!(plan.delay_extra_at(SimTime::from_millis(30)), SimTime::ZERO);
    }

    #[test]
    fn validate_catches_out_of_range_references() {
        let plan = FaultPlan::new().crash_at(SimTime::from_millis(1), 7);
        assert!(plan.validate(5, 4).is_err());
        assert!(plan.validate(8, 4).is_ok());
        let plan = FaultPlan::new().abort_at(SimTime::from_millis(1), 4);
        assert!(plan.validate(5, 4).is_err());
        assert!(plan.validate(5, 5).is_ok());
    }

    #[test]
    fn shard_view_shares_site_events_and_splits_client_events() {
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_millis(1), 2)
            .recover_at(SimTime::from_millis(2), 2)
            .drop_window(SimTime::from_millis(3), SimTime::from_millis(1), 500)
            .delay_window(SimTime::from_millis(4), SimTime::from_millis(1), SimTime(100))
            .abort_at(SimTime::from_millis(5), 1)
            .abort_at(SimTime::from_millis(6), 5)
            .corrupt_at(SimTime::from_millis(7), 0, 99, 7);
        // Shard owning clients [4, 8): site events and windows survive
        // untouched, abort of global client 5 becomes local client 1,
        // abort of client 1 and the corruption disappear.
        let view = plan.shard_view(4, 8, false);
        assert_eq!(
            view.to_string(),
            "crash@1:2; recover@2:2; drop@3:1,500; delay@4:1,0.1; abort@6:1"
        );
        // Shard owning clients [0, 4) keeps the corruption (it owns item 0).
        let view0 = plan.shard_view(0, 4, true);
        assert_eq!(
            view0.to_string(),
            "crash@1:2; recover@2:2; drop@3:1,500; delay@4:1,0.1; abort@5:1; corrupt@7:0,99,7"
        );
        // A single-shard view over all clients with corruption kept is the
        // identity.
        assert_eq!(plan.shard_view(0, 8, true), plan);
    }

    #[test]
    fn random_plans_are_deterministic_and_valid() {
        let d = SimTime::from_secs(10);
        let a = FaultPlan::random(42, 5, 4, d, 3, 2);
        let b = FaultPlan::random(42, 5, 4, d, 3, 2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3 * 2 + 2);
        a.validate(5, 4).unwrap();
        let c = FaultPlan::random(43, 5, 4, d, 3, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let r = RetryPolicy::retries(5, SimTime::from_millis(2));
        assert_eq!(r.backoff_before(2), SimTime::from_millis(2));
        assert_eq!(r.backoff_before(3), SimTime::from_millis(4));
        assert_eq!(r.backoff_before(4), SimTime::from_millis(8));
        let huge = RetryPolicy {
            attempts: 64,
            backoff: SimTime::from_millis(100),
            multiplier: 10,
            max_backoff: SimTime::from_secs(1),
        };
        assert_eq!(huge.backoff_before(40), SimTime::from_secs(1));
    }

    #[test]
    fn drop_coin_is_deterministic_and_roughly_calibrated() {
        assert!(!message_dropped(1, 0, 0, 1, 0, 0, false, 0));
        let a = message_dropped(1, 2, 3, 1, 0, 4, true, 500);
        let b = message_dropped(1, 2, 3, 1, 0, 4, true, 500);
        assert_eq!(a, b);
        let hits = (0..10_000)
            .filter(|&i| message_dropped(7, 1, i, 1, 0, 2, false, 300))
            .count();
        // 30% ± 3% over 10k coordinates.
        assert!((2_700..=3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn reconfig_round_trips_through_text_and_json() {
        let members: ReplicaSet = [0usize, 2, 3].into_iter().collect();
        let plan = FaultPlan::new()
            .reconfig_at(SimTime(4_500), ReconfigTarget::Live)
            .reconfig_at(SimTime::from_millis(9), ReconfigTarget::Members(members));
        let text = plan.to_string();
        assert_eq!(text, "reconfig@4.5:live; reconfig@9:0+2+3");
        let back = FaultPlan::parse(&text).unwrap();
        assert_eq!(back, plan, "sub-ms reconfig times must round-trip");
        let json = serde_json::to_string(&plan).unwrap();
        assert_eq!(
            json,
            r#"[{"at_us":4500,"kind":"reconfig","members":"live"},{"at_us":9000,"kind":"reconfig","members":[0,2,3]}]"#
        );
    }

    #[test]
    fn reconfig_rejects_malformed_specs() {
        assert!(FaultPlan::parse("reconfig@5:").is_err()); // empty spec
        assert!(FaultPlan::parse("reconfig@5:0+x").is_err()); // junk member
        assert!(FaultPlan::parse("reconfig@5:live,1").is_err()); // arity
        assert!(FaultPlan::parse("reconfig@5:200").is_err()); // beyond the 128 cap
        assert!(FaultPlan::parse("reconfig@x:live").is_err()); // bad time
        // Validation catches out-of-range and empty member sets.
        let plan = FaultPlan::new().reconfig_at(
            SimTime::from_millis(1),
            ReconfigTarget::Members([0usize, 6].into_iter().collect()),
        );
        assert!(plan.validate(5, 4).is_err());
        assert!(plan.validate(7, 4).is_ok());
        let empty = FaultPlan::new()
            .reconfig_at(SimTime::from_millis(1), ReconfigTarget::Members(ReplicaSet::EMPTY));
        assert!(empty.validate(5, 4).is_err());
        // `live` targets are always in range.
        let live = FaultPlan::new().reconfig_at(SimTime::from_millis(1), ReconfigTarget::Live);
        assert!(live.validate(1, 1).is_ok());
    }

    #[test]
    fn migrate_round_trips_through_text_and_json() {
        let plan = FaultPlan::new()
            .migrate_at(SimTime(2_500), 42, 3)
            .migrate_at(SimTime::from_millis(7), 0, 1);
        let text = plan.to_string();
        assert_eq!(text, "migrate@2.5:42->3; migrate@7:0->1");
        let back = FaultPlan::parse(&text).unwrap();
        assert_eq!(back, plan, "migrate events must round-trip");
        let json = serde_json::to_string(&plan).unwrap();
        assert_eq!(
            json,
            r#"[{"at_us":2500,"kind":"migrate","item":42,"to":3},{"at_us":7000,"kind":"migrate","item":0,"to":1}]"#
        );
        // Site/client validation never rejects a migrate event; item and
        // shard ranges belong to MultiConfig::validate.
        assert!(plan.validate(1, 1).is_ok());
    }

    #[test]
    fn migrate_rejects_malformed_specs() {
        assert!(FaultPlan::parse("migrate@5:1").is_err()); // no arrow
        assert!(FaultPlan::parse("migrate@5:x->1").is_err()); // junk item
        assert!(FaultPlan::parse("migrate@5:1->y").is_err()); // junk shard
        assert!(FaultPlan::parse("migrate@5:1->2,3").is_err()); // arity
        assert!(FaultPlan::parse("migrate@x:1->2").is_err()); // bad time
    }

    #[test]
    fn shard_view_strips_migrations() {
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_millis(1), 2)
            .migrate_at(SimTime::from_millis(3), 9, 1);
        let view = plan.shard_view(0, 4, true);
        assert_eq!(view.to_string(), "crash@1:2");
    }

    #[test]
    fn shard_view_shares_reconfigs_across_shards() {
        // Reconfigurations are site-scoped cluster weather: every shard
        // replays them against its own items.
        let plan = FaultPlan::new()
            .reconfig_at(SimTime::from_millis(3), ReconfigTarget::Live)
            .abort_at(SimTime::from_millis(5), 1);
        let view = plan.shard_view(4, 8, false);
        assert_eq!(view.to_string(), "reconfig@3:live");
        assert_eq!(plan.shard_view(0, 8, true), plan);
    }

    #[test]
    fn plan_serializes_to_json_array() {
        let plan = FaultPlan::new().crash_at(SimTime::from_millis(5), 1);
        let json = serde_json::to_string(&plan).unwrap();
        assert_eq!(json, r#"[{"at_us":5000,"kind":"crash","site":1}]"#);
    }
}
