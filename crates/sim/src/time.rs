//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// As microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// As (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime(1_500).as_millis_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime(10);
        let b = SimTime(4);
        assert_eq!(a + b, SimTime(14));
        assert_eq!(a - b, SimTime(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime(14));
    }
}
