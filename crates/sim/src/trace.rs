//! Schedule tracing: recording a simulated run as an ordered
//! I/O-automaton schedule of the replicated serial system **B**.
//!
//! The simulator's event loop is an operational stand-in for the paper's
//! replicated system: each committed operation is one transaction manager
//! run (`CREATE`, its replica accesses, `REQUEST-COMMIT`, `COMMIT`), each
//! failed or forced-aborted attempt is a transaction that was *never
//! created* (`ABORT`). A [`TraceRecorder`] — attached to the simulator's
//! [`InvariantProbe`](crate::InvariantProbe) — captures that schedule as a
//! [`ScheduleTrace`], which `qc_replication::check_trace` then replays
//! through the Theorem 10 projection and the serial-system machinery.
//!
//! The recorder is purely observational: it draws nothing from the
//! simulator's RNG stream and mutates no simulator state, so a traced run
//! commits exactly the operations the untraced run commits
//! (`tests/conformance.rs` asserts metrics equality).
//!
//! [`trace_to_json`] renders a trace in a stable, diff-friendly byte
//! format (one event per line) for `--trace-dir` dumps and the golden
//! snapshot tests under `tests/golden/`.

use std::fmt::Write as _;

use qc_replication::{ScheduleTrace, TraceAction, TraceEvent, TraceTid};

use crate::time::SimTime;

/// Accumulates the schedule of one simulated run.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    trace: ScheduleTrace,
}

impl TraceRecorder {
    /// An empty recorder for a run over `sites` replicas under the quorum
    /// system labelled `quorum`, seeded with `seed`.
    #[must_use]
    pub fn new(quorum: impl Into<String>, sites: usize, seed: u64) -> Self {
        TraceRecorder {
            trace: ScheduleTrace::new(quorum, sites, seed),
        }
    }

    /// Append one action to the schedule.
    pub fn record(&mut self, at: SimTime, tid: TraceTid, action: TraceAction, faulted: bool) {
        self.trace.events.push(TraceEvent {
            at_us: at.as_micros(),
            tid,
            action,
            faulted,
        });
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trace.events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trace.events.is_empty()
    }

    /// Finish recording and return the trace.
    #[must_use]
    pub fn finish(self) -> ScheduleTrace {
        self.trace
    }
}

fn event_json(e: &TraceEvent) -> String {
    let mut s = String::new();
    write!(
        s,
        "{{\"at_us\":{},\"client\":{},\"op\":{},\"attempt\":{},\"faulted\":{},",
        e.at_us, e.tid.client, e.tid.op, e.tid.attempt, e.faulted
    )
    .expect("writing to a String cannot fail");
    match e.action {
        TraceAction::Create { kind } => {
            write!(s, "\"action\":\"CREATE\",\"kind\":\"{kind}\"")
        }
        TraceAction::ReadDm { site, vn, value } => {
            write!(s, "\"action\":\"READ-DM\",\"site\":{site},\"vn\":{vn},\"value\":{value}")
        }
        TraceAction::WriteDm { site, vn, value } => {
            write!(s, "\"action\":\"WRITE-DM\",\"site\":{site},\"vn\":{vn},\"value\":{value}")
        }
        TraceAction::ReadCfg { site, gen } => {
            write!(s, "\"action\":\"READ-CFG\",\"site\":{site},\"gen\":{gen}")
        }
        TraceAction::WriteCfg { site, gen, members } => {
            write!(s, "\"action\":\"WRITE-CFG\",\"site\":{site},\"gen\":{gen},\"members\":[")
                .expect("writing to a String cannot fail");
            for (i, m) in members.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                write!(s, "{m}").expect("writing to a String cannot fail");
            }
            write!(s, "]")
        }
        TraceAction::RequestCommit { vn, value } => {
            write!(s, "\"action\":\"REQUEST-COMMIT\",\"vn\":{vn},\"value\":{value}")
        }
        TraceAction::Commit => write!(s, "\"action\":\"COMMIT\""),
        TraceAction::Abort { kind, reason } => {
            write!(s, "\"action\":\"ABORT\",\"kind\":\"{kind}\",\"reason\":\"{reason}\"")
        }
    }
    .expect("writing to a String cannot fail");
    s.push('}');
    s
}

/// Render a trace in the stable `qc-trace-v1` JSON byte format.
///
/// One event per line, keys in a fixed order, a trailing newline: the
/// output for a given trace is byte-identical across runs and platforms,
/// so golden files diff cleanly.
#[must_use]
pub fn trace_to_json(trace: &ScheduleTrace) -> String {
    let mut out = String::from("{\n  \"format\": \"qc-trace-v1\",\n  \"quorum\": ");
    serde::escape_json_string(&trace.quorum, &mut out);
    write!(
        out,
        ",\n  \"sites\": {},\n  \"seed\": {},\n  \"initial\": {},\n  \"events\": [\n",
        trace.sites, trace.seed, trace.initial
    )
    .expect("writing to a String cannot fail");
    let n = trace.events.len();
    for (i, e) in trace.events.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&event_json(e));
        if i + 1 < n {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_replication::{AbortReason, TmKind};

    fn tid() -> TraceTid {
        TraceTid {
            client: 1,
            op: 2,
            attempt: 3,
        }
    }

    #[test]
    fn recorder_accumulates_in_order() {
        let mut r = TraceRecorder::new("majority(3)", 3, 7);
        assert!(r.is_empty());
        r.record(
            SimTime(10),
            tid(),
            TraceAction::Create { kind: TmKind::Read },
            false,
        );
        r.record(SimTime(11), tid(), TraceAction::Commit, true);
        assert_eq!(r.len(), 2);
        let t = r.finish();
        assert_eq!(t.quorum, "majority(3)");
        assert_eq!(t.sites, 3);
        assert_eq!(t.seed, 7);
        assert_eq!(t.events[0].at_us, 10);
        assert!(t.events[1].faulted);
    }

    #[test]
    fn json_format_is_stable() {
        let mut r = TraceRecorder::new("rowa(2)", 2, 0);
        r.record(
            SimTime(5),
            tid(),
            TraceAction::Create {
                kind: TmKind::Write,
            },
            false,
        );
        r.record(
            SimTime(5),
            tid(),
            TraceAction::ReadDm {
                site: 0,
                vn: 0,
                value: 0,
            },
            false,
        );
        r.record(
            SimTime(5),
            tid(),
            TraceAction::WriteDm {
                site: 1,
                vn: 1,
                value: 9,
            },
            false,
        );
        r.record(
            SimTime(5),
            tid(),
            TraceAction::RequestCommit { vn: 1, value: 9 },
            false,
        );
        r.record(SimTime(5), tid(), TraceAction::Commit, false);
        r.record(
            SimTime(6),
            tid(),
            TraceAction::Abort {
                kind: TmKind::Read,
                reason: AbortReason::Timeout,
            },
            true,
        );
        r.record(SimTime(7), tid(), TraceAction::ReadCfg { site: 0, gen: 0 }, false);
        r.record(
            SimTime(7),
            tid(),
            TraceAction::WriteCfg {
                site: 1,
                gen: 1,
                members: [0usize, 1].into_iter().collect(),
            },
            false,
        );
        let json = trace_to_json(&r.finish());
        let expected = "{\n  \"format\": \"qc-trace-v1\",\n  \"quorum\": \"rowa(2)\",\n  \
                        \"sites\": 2,\n  \"seed\": 0,\n  \"initial\": 0,\n  \"events\": [\n    \
                        {\"at_us\":5,\"client\":1,\"op\":2,\"attempt\":3,\"faulted\":false,\"action\":\"CREATE\",\"kind\":\"write\"},\n    \
                        {\"at_us\":5,\"client\":1,\"op\":2,\"attempt\":3,\"faulted\":false,\"action\":\"READ-DM\",\"site\":0,\"vn\":0,\"value\":0},\n    \
                        {\"at_us\":5,\"client\":1,\"op\":2,\"attempt\":3,\"faulted\":false,\"action\":\"WRITE-DM\",\"site\":1,\"vn\":1,\"value\":9},\n    \
                        {\"at_us\":5,\"client\":1,\"op\":2,\"attempt\":3,\"faulted\":false,\"action\":\"REQUEST-COMMIT\",\"vn\":1,\"value\":9},\n    \
                        {\"at_us\":5,\"client\":1,\"op\":2,\"attempt\":3,\"faulted\":false,\"action\":\"COMMIT\"},\n    \
                        {\"at_us\":6,\"client\":1,\"op\":2,\"attempt\":3,\"faulted\":true,\"action\":\"ABORT\",\"kind\":\"read\",\"reason\":\"timeout\"},\n    \
                        {\"at_us\":7,\"client\":1,\"op\":2,\"attempt\":3,\"faulted\":false,\"action\":\"READ-CFG\",\"site\":0,\"gen\":0},\n    \
                        {\"at_us\":7,\"client\":1,\"op\":2,\"attempt\":3,\"faulted\":false,\"action\":\"WRITE-CFG\",\"site\":1,\"gen\":1,\"members\":[0,1]}\n  \
                        ]\n}\n";
        assert_eq!(json, expected);
    }

    #[test]
    fn quorum_labels_are_escaped() {
        let r = TraceRecorder::new("odd \"label\"", 1, 0);
        let json = trace_to_json(&r.finish());
        assert!(json.contains("\"quorum\": \"odd \\\"label\\\"\""));
    }
}
