//! Parallel sweep runner: fan independent simulation configurations across
//! OS threads with `std::thread::scope` — no thread-pool dependency.
//!
//! The experiment binaries sweep a parameter grid (quorum system × failure
//! rate × latency model × seed) where every cell is an independent,
//! self-seeded simulation. [`run_batch`] runs such a grid across cores and
//! returns results *in input order*; because each [`SimConfig`] carries its
//! own RNG seed, every cell's [`Metrics`] are bit-identical to a serial
//! [`run`](crate::run) of the same config, regardless of thread count or
//! scheduling. The generic [`par_map`] underneath is shared by the
//! explorer-facing experiments too.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::metrics::Metrics;
use crate::sim::{run, SimConfig};

/// Number of worker threads to use by default: the machine's available
/// parallelism, or 1 if that cannot be determined.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Apply `f` to every item on up to `threads` scoped worker threads,
/// returning the results in input order.
///
/// Work is handed out through a shared atomic cursor, so threads stay busy
/// even when item costs are skewed; each result is written to the slot of
/// its item's index, which makes the output order (and therefore any fold
/// over it) independent of thread timing. `threads` is clamped to at least
/// 1 and at most the item count. A panic in `f` propagates to the caller
/// with its *original payload* — the workers are joined by hand rather
/// than letting `std::thread::scope` replace the payload with its generic
/// "a scoped thread panicked" message, so `should_panic(expected = …)`
/// tests and assertion messages from inside simulations survive the fan-out.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("work mutex")
                        .take()
                        .expect("each item is claimed exactly once");
                    let r = f(i, item);
                    *results[i].lock().expect("result mutex") = Some(r);
                })
            })
            .collect();
        // Join every worker before re-raising, so no thread outlives the
        // scope; the first panic payload (by spawn order) wins.
        let mut first_panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result mutex")
                .expect("every item was processed")
        })
        .collect()
}

/// Run every configuration (each with its own seed baked in) and return
/// the metrics in input order. Bit-identical to mapping [`run`] serially
/// over the same configs.
#[must_use]
pub fn run_batch(configs: Vec<SimConfig>, threads: usize) -> Vec<Metrics> {
    par_map(configs, threads, |_, config| run(config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use quorum::Majority;
    use std::sync::Arc;

    fn grid() -> Vec<SimConfig> {
        (0..6)
            .map(|i| {
                let mut c = SimConfig::new(Arc::new(Majority::new(5)));
                c.duration = SimTime::from_secs(2);
                c.seed = 1000 + i;
                c
            })
            .collect()
    }

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 4, 32] {
            let out = par_map((0..25).collect::<Vec<u64>>(), threads, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, (0..25).map(|x| x * x).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn par_map_empty_input() {
        let out: Vec<u64> = par_map(Vec::<u64>::new(), 8, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_preserves_panic_payloads() {
        // A worker panic must surface with its original payload, not the
        // scope's generic "a scoped thread panicked" message.
        let result = std::panic::catch_unwind(|| {
            par_map((0..16).collect::<Vec<u64>>(), 4, |_, x| {
                if x == 11 {
                    panic!("simulation {x} exploded");
                }
                x
            })
        });
        let payload = result.expect_err("a worker panicked");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic payload is a string");
        assert_eq!(msg, "simulation 11 exploded");
    }

    #[test]
    fn faulted_batch_matches_serial_bit_for_bit() {
        // A fault plan (crashes + aborts + retries) must not disturb the
        // batch runner's determinism guarantee.
        let faulted = || -> Vec<SimConfig> {
            grid()
                .into_iter()
                .map(|mut c| {
                    c.faults = crate::FaultPlan::random(c.seed, 5, c.clients, c.duration, 2, 2);
                    c.retry = crate::RetryPolicy::retries(3, SimTime::from_millis(5));
                    c.record_history = true;
                    c
                })
                .collect()
        };
        let serial: Vec<Metrics> = faulted().into_iter().map(run).collect();
        let parallel = run_batch(faulted(), 4);
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(format!("{p:?}"), format!("{s:?}"));
            assert_eq!(p.lemma_violations, 0, "violations: {:?}", p.violations);
        }
    }

    #[test]
    fn batch_matches_serial_bit_for_bit() {
        let serial: Vec<Metrics> = grid().into_iter().map(run).collect();
        for threads in [1, 3, 8] {
            let parallel = run_batch(grid(), threads);
            assert_eq!(parallel.len(), serial.len());
            for (p, s) in parallel.iter().zip(&serial) {
                assert_eq!(format!("{p:?}"), format!("{s:?}"), "threads={threads}");
            }
        }
    }
}
