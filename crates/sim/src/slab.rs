//! Per-operation state, interned in a slab reused across operations.
//!
//! The flat simulators (`sim.rs`, `shard.rs`) track at most one logical
//! operation in flight per client, possibly across several retry
//! attempts. The slab owns one [`PendingOp`] slot per client for the
//! lifetime of the run: beginning an operation writes the slot, an
//! attempt copies it out, a retry writes it back. Nothing on the
//! committed-op path allocates — the steady-state allocation profile of a
//! run is flat in the number of operations, which the debug-mode
//! counting-allocator test (`tests/alloc_steady.rs`) pins.
//!
//! The one-op-per-client assumption does NOT hold for the
//! nested-transaction harness (`txn_workload.rs`): a parallel program
//! node puts several children of one client in flight at once, and a
//! whole-transaction abort can straddle them. That harness therefore
//! keeps per-program-node runtime state (status + epoch guards) instead
//! of using this slab — see `tests/concurrent_siblings.rs` in
//! `nested-txn` for the pinned rationale.
//!
//! The slab also maintains the in-flight population as a counter, so the
//! periodic observability snapshots read it in O(1) instead of scanning
//! the client array per snapshot boundary.

use crate::time::SimTime;

/// A logical operation in flight for one client (possibly across retries).
///
/// Shared by the single-item and sharded simulators; the single-item
/// simulator pins `item` to 0.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingOp {
    /// Shard-local item index (always 0 in the single-item simulator).
    pub item: usize,
    /// Whether this is a logical read (else a write).
    pub read: bool,
    /// The value a write installs (unique per operation).
    pub value: u64,
    /// Client-local operation number (coordinate for drop coins).
    pub op_index: u64,
    /// 1-based attempt number.
    pub attempt: u32,
    /// When the operation (attempt 1) started.
    pub started: SimTime,
    /// Messages accumulated by earlier failed attempts.
    pub messages: u64,
    /// Simulated µs spent gathering read quorums, across all attempts.
    pub gather_us: u64,
    /// Simulated µs spent installing at write quorums, across attempts.
    pub install_us: u64,
    /// Simulated µs of retry backoff beyond the failed attempts' own
    /// phase time (so `gather + install + backoff` is exactly the
    /// operation's end-to-end latency if it commits).
    pub backoff_us: u64,
}

impl PendingOp {
    /// A fresh attempt-1 operation starting now.
    pub fn begin(item: usize, read: bool, value: u64, op_index: u64, started: SimTime) -> Self {
        PendingOp {
            item,
            read,
            value,
            op_index,
            attempt: 1,
            started,
            messages: 0,
            gather_us: 0,
            install_us: 0,
            backoff_us: 0,
        }
    }
}

/// One pre-sized [`PendingOp`] slot per client, allocated once at
/// simulation construction and reused for every operation of the run.
#[derive(Clone, Debug)]
pub(crate) struct OpSlab {
    slots: Vec<PendingOp>,
    live: Vec<bool>,
    in_flight: usize,
}

impl OpSlab {
    /// A slab with one (empty) slot per client.
    pub fn new(clients: usize) -> Self {
        OpSlab {
            slots: vec![PendingOp::begin(0, false, 0, 0, SimTime::ZERO); clients],
            live: vec![false; clients],
            in_flight: 0,
        }
    }

    /// Install `op` as `client`'s in-flight operation (fresh or retried).
    pub fn put(&mut self, client: usize, op: PendingOp) {
        if !self.live[client] {
            self.live[client] = true;
            self.in_flight += 1;
        }
        self.slots[client] = op;
    }

    /// Copy out and clear `client`'s in-flight operation, if any.
    pub fn take(&mut self, client: usize) -> Option<PendingOp> {
        if self.live[client] {
            self.live[client] = false;
            self.in_flight -= 1;
            Some(self.slots[client])
        } else {
            None
        }
    }

    /// Whether `client` has an operation in flight.
    pub fn is_live(&self, client: usize) -> bool {
        self.live[client]
    }

    /// Borrow `client`'s in-flight operation, if any (migration scans).
    pub fn get(&self, client: usize) -> Option<&PendingOp> {
        self.live[client].then(|| &self.slots[client])
    }

    /// Mutably borrow `client`'s in-flight operation, if any (migration
    /// re-keys `PendingOp::item` when the local keyspace shifts).
    pub fn get_mut(&mut self, client: usize) -> Option<&mut PendingOp> {
        self.live[client].then(|| &mut self.slots[client])
    }

    /// Number of slots (live or not).
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Remove the (ascending) slots `idxs` in one compaction pass,
    /// shifting higher slots down — the routed migration export path,
    /// where slots are keyed by local item. Every removed slot must be
    /// dead: migration aborts any parked op first.
    pub fn remove_many(&mut self, idxs: &[usize]) {
        let mut it = idxs.iter().peekable();
        let mut w = 0;
        for r in 0..self.slots.len() {
            if it.peek() == Some(&&r) {
                it.next();
                debug_assert!(!self.live[r], "migrating a slot with an op in flight");
                continue;
            }
            self.slots[w] = self.slots[r];
            self.live[w] = self.live[r];
            w += 1;
        }
        self.slots.truncate(w);
        self.live.truncate(w);
    }

    /// Insert dead slots at the (ascending, post-insertion) positions
    /// `idxs` in one pass, shifting higher slots up — the routed
    /// migration import path.
    pub fn insert_empty_many(&mut self, idxs: &[usize]) {
        let empty = PendingOp::begin(0, false, 0, 0, SimTime::ZERO);
        let mut slots = Vec::with_capacity(self.slots.len() + idxs.len());
        let mut live = Vec::with_capacity(self.live.len() + idxs.len());
        let mut it = idxs.iter().peekable();
        for r in 0..self.slots.len() {
            while it.peek() == Some(&&slots.len()) {
                it.next();
                slots.push(empty);
                live.push(false);
            }
            slots.push(self.slots[r]);
            live.push(self.live[r]);
        }
        for _ in it {
            slots.push(empty);
            live.push(false);
        }
        self.slots = slots;
        self.live = live;
    }

    /// Number of clients with an operation in flight (O(1); feeds the
    /// periodic snapshots).
    pub fn in_flight(&self) -> u64 {
        self.in_flight as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_lifecycle_tracks_in_flight() {
        let mut slab = OpSlab::new(2);
        assert_eq!(slab.in_flight(), 0);
        assert!(slab.take(0).is_none());

        slab.put(0, PendingOp::begin(3, true, 9, 1, SimTime(5)));
        assert!(slab.is_live(0));
        assert!(!slab.is_live(1));
        assert_eq!(slab.in_flight(), 1);

        let op = slab.take(0).expect("live slot");
        assert_eq!((op.item, op.read, op.value, op.op_index), (3, true, 9, 1));
        assert_eq!(op.attempt, 1);
        assert_eq!(slab.in_flight(), 0);
        assert!(slab.take(0).is_none());

        // A retry writes the (mutated) op back without touching the count
        // twice.
        let mut op2 = op;
        op2.attempt += 1;
        slab.put(0, op2);
        slab.put(0, op2);
        assert_eq!(slab.in_flight(), 1);
        assert_eq!(slab.take(0).unwrap().attempt, 2);
    }

    #[test]
    fn batch_remove_and_insert_shift_slots() {
        let mut slab = OpSlab::new(5);
        for i in [1usize, 4] {
            slab.put(i, PendingOp::begin(i, true, i as u64, 0, SimTime::ZERO));
        }
        // Remove dead slots 0 and 3: live slots 1 and 4 shift to 0 and 2.
        slab.remove_many(&[0, 3]);
        assert_eq!(slab.slots(), 3);
        assert_eq!(slab.in_flight(), 2);
        assert_eq!(slab.get(0).unwrap().value, 1);
        assert!(!slab.is_live(1));
        assert_eq!(slab.get(2).unwrap().value, 4);
        // Insert dead slots back at (final) positions 1 and 3, including a
        // tail append at 5.
        slab.insert_empty_many(&[1, 3, 5]);
        assert_eq!(slab.slots(), 6);
        assert_eq!(slab.in_flight(), 2);
        assert_eq!(slab.get(0).unwrap().value, 1);
        assert!(!slab.is_live(1));
        assert!(!slab.is_live(3));
        assert_eq!(slab.get(4).unwrap().value, 4);
        assert!(!slab.is_live(5));
    }
}
