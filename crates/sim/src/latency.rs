//! Message latency models.

use rand::Rng;

use crate::time::SimTime;

/// A model for one-way (or round-trip, as the caller decides) message
/// latency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Constant latency.
    Fixed(SimTime),
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: SimTime,
        /// Upper bound (inclusive).
        hi: SimTime,
    },
    /// Log-normal with the given parameters of the underlying normal, in
    /// microsecond scale: `exp(mu + sigma·Z)` µs. Captures the heavy tail
    /// of real networks.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
}

impl LatencyModel {
    /// A typical LAN: uniform 0.2–0.6 ms.
    pub fn lan() -> Self {
        LatencyModel::Uniform {
            lo: SimTime(200),
            hi: SimTime(600),
        }
    }

    /// A typical WAN: log-normal around ~20 ms with a heavy tail.
    pub fn wan() -> Self {
        LatencyModel::LogNormal {
            mu: 9.9, // exp(9.9) ≈ 19.9 ms
            sigma: 0.35,
        }
    }

    /// Sample one latency.
    ///
    /// Generic (rather than `&mut dyn RngCore`) so the per-message hot
    /// path monomorphizes over the simulator's concrete RNG and the draw
    /// inlines instead of paying an indirect call per word.
    pub fn sample<R: rand::RngCore + ?Sized>(&self, rng: &mut R) -> SimTime {
        match *self {
            LatencyModel::Fixed(t) => t,
            LatencyModel::Uniform { lo, hi } => {
                SimTime(rng.gen_range(lo.as_micros()..=hi.as_micros()))
            }
            LatencyModel::LogNormal { mu, sigma } => {
                // Box–Muller.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let raw = (mu + sigma * z).exp();
                // `exp` overflows to +∞ for extreme draws/parameters, and a
                // NaN mu/sigma propagates; `NaN as u64` is 0, i.e. a
                // zero-duration message hop that can stall simulated time.
                // Send non-finite draws to the nearest bound instead.
                let micros = if raw.is_nan() {
                    1.0
                } else {
                    raw.clamp(1.0, 60_000_000.0)
                };
                SimTime(micros as u64)
            }
        }
    }
}

/// Sample an exponential duration with the given mean.
pub fn sample_exponential<R: rand::RngCore + ?Sized>(mean: SimTime, rng: &mut R) -> SimTime {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let t = -(u.ln()) * mean.as_micros() as f64;
    SimTime(t.clamp(1.0, 1e15) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn fixed_is_fixed() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = LatencyModel::Fixed(SimTime(500));
        assert_eq!(m.sample(&mut rng), SimTime(500));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = LatencyModel::Uniform {
            lo: SimTime(100),
            hi: SimTime(200),
        };
        for _ in 0..1000 {
            let t = m.sample(&mut rng);
            assert!((100..=200).contains(&t.as_micros()));
        }
    }

    #[test]
    fn lognormal_mean_in_expected_ballpark() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = LatencyModel::wan();
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample(&mut rng).as_micros() as f64)
            .sum::<f64>()
            / n as f64;
        // E[lognormal] = exp(mu + sigma²/2) ≈ 21.2 ms.
        assert!((15_000.0..30_000.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn lognormal_bounds_pinned_over_seeded_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let m = LatencyModel::wan();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for _ in 0..50_000 {
            let t = m.sample(&mut rng).as_micros();
            assert!(t >= 1, "zero-duration hop");
            lo = lo.min(t);
            hi = hi.max(t);
        }
        // Pinned observed extremes of this seed's stream: any change to
        // the sampling transform shows up here.
        assert_eq!((lo, hi), (4048, 107247));
    }

    #[test]
    fn lognormal_clamps_pathological_parameters() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // exp overflow → upper clamp, not `inf as u64`.
        let m = LatencyModel::LogNormal { mu: 1e9, sigma: 0.0 };
        assert_eq!(m.sample(&mut rng), SimTime(60_000_000));
        // Underflow to 0.0 → floor of 1 µs.
        let m = LatencyModel::LogNormal { mu: -1e9, sigma: 0.0 };
        assert_eq!(m.sample(&mut rng), SimTime(1));
        // NaN parameters → floor, never a zero-duration sample.
        let m = LatencyModel::LogNormal {
            mu: f64::NAN,
            sigma: 1.0,
        };
        assert_eq!(m.sample(&mut rng), SimTime(1));
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mean = SimTime::from_millis(100);
        let n = 20_000;
        let avg: f64 = (0..n)
            .map(|_| sample_exponential(mean, &mut rng).as_micros() as f64)
            .sum::<f64>()
            / n as f64;
        assert!((avg - 100_000.0).abs() < 5_000.0, "avg {avg}");
    }
}
