//! Structure-of-arrays DM store arena shared by both simulators.
//!
//! A DM's state is a `(version number, value)` pair per site per item. The
//! simulators used to keep these as `Vec<(u64, u64)>` — array-of-structs —
//! but the hot path is *asymmetric*: version-number discovery scans the
//! version numbers of a whole responder set and touches a value only at
//! the running maximum, and the lemma sweep compares version numbers
//! first. Splitting the pair into two parallel arrays packs twice as many
//! version numbers per cache line for those scans.
//!
//! Layout: slot `item * n + site` (the sharded simulator's flat-arena
//! convention; the single-item simulator is the `items == 1` special
//! case).

use std::ops::Range;

use quorum::ReplicaSet;

/// One DM slot's complete migratable state:
/// `(vn, value, cfg_gen, cfg_members)`.
pub type SlotState = (u64, u64, u64, ReplicaSet);

/// Structure-of-arrays `(vn, value)` store arena, indexed `item·n + site`.
///
/// Each slot additionally carries the `(configuration, generation)` pair of
/// the paper's §4 dynamic scheme: `cfg_gen`/`cfg_members` are the
/// generation number and member set the site last saw installed. Both
/// start at `(0, full membership)` — the static configuration — and are
/// only touched by reconfigure ops, so static runs never read them on the
/// hot path.
#[derive(Clone, Debug)]
pub struct DmArena {
    vns: Vec<u64>,
    vals: Vec<u64>,
    cfg_gens: Vec<u64>,
    cfg_members: Vec<ReplicaSet>,
}

impl DmArena {
    /// An arena of `slots` stores, all at `(vn 0, value 0)` and
    /// configuration generation 0 with `sites_per_item` members.
    #[must_use]
    pub fn new_configured(slots: usize, sites_per_item: usize) -> Self {
        DmArena {
            vns: vec![0; slots],
            vals: vec![0; slots],
            cfg_gens: vec![0; slots],
            cfg_members: vec![ReplicaSet::full(sites_per_item); slots],
        }
    }

    /// An arena of `slots` stores, all at `(vn 0, value 0)`; every slot's
    /// initial configuration is the full `slots`-site membership (the
    /// single-item convention where `slots == n`).
    #[must_use]
    pub fn new(slots: usize) -> Self {
        Self::new_configured(slots, slots)
    }

    /// The `(generation, members)` configuration stored at `slot`.
    #[inline]
    #[must_use]
    pub fn cfg(&self, slot: usize) -> (u64, ReplicaSet) {
        (self.cfg_gens[slot], self.cfg_members[slot])
    }

    /// The configuration generation stored at `slot`.
    #[inline]
    #[must_use]
    pub fn cfg_gen(&self, slot: usize) -> u64 {
        self.cfg_gens[slot]
    }

    /// Install configuration `(gen, members)` at `slot`.
    #[inline]
    pub fn set_cfg(&mut self, slot: usize, gen: u64, members: ReplicaSet) {
        self.cfg_gens[slot] = gen;
        self.cfg_members[slot] = members;
    }

    /// The configuration-discovery fold: the `(gen, members)` of the last
    /// maximum generation among `sites` offset by `base`; `(0, EMPTY)` for
    /// an empty set.
    #[inline]
    #[must_use]
    pub fn discover_cfg(
        &self,
        base: usize,
        sites: impl IntoIterator<Item = usize>,
    ) -> (u64, ReplicaSet) {
        let mut gen = 0u64;
        let mut members = ReplicaSet::EMPTY;
        let mut any = false;
        for s in sites {
            let g = self.cfg_gens[base + s];
            if !any || g >= gen {
                gen = g;
                members = self.cfg_members[base + s];
                any = true;
            }
        }
        (gen, members)
    }

    /// Number of store slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vns.len()
    }

    /// Whether the arena has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vns.is_empty()
    }

    /// The version number at `slot`.
    #[inline]
    #[must_use]
    pub fn vn(&self, slot: usize) -> u64 {
        self.vns[slot]
    }

    /// The `(vn, value)` pair at `slot`.
    #[inline]
    #[must_use]
    pub fn get(&self, slot: usize) -> (u64, u64) {
        (self.vns[slot], self.vals[slot])
    }

    /// Install `(vn, value)` at `slot`.
    #[inline]
    pub fn set(&mut self, slot: usize, vn: u64, value: u64) {
        self.vns[slot] = vn;
        self.vals[slot] = value;
    }

    /// The discovery fold: the `(vn, value)` of the *last* maximum version
    /// among `sites` offset by `base` — exactly the
    /// `max_by_key(|(vn, _)| vn)` semantics the AoS code had (ties keep
    /// the later site), reading values only when the maximum advances.
    /// `(0, 0)` for an empty set.
    #[inline]
    #[must_use]
    pub fn discover(&self, base: usize, sites: impl IntoIterator<Item = usize>) -> (u64, u64) {
        let mut vn = 0u64;
        let mut val = 0u64;
        let mut any = false;
        for s in sites {
            let v = self.vns[base + s];
            if !any || v >= vn {
                vn = v;
                val = self.vals[base + s];
                any = true;
            }
        }
        (vn, val)
    }

    /// Extract one item's `n` consecutive slots starting at `base` as
    /// `(vn, value, cfg_gen, cfg_members)` tuples, removing them from the
    /// arena (later items shift down by `n`). The migration export path.
    #[must_use]
    pub fn remove_slots(&mut self, base: usize, n: usize) -> Vec<(u64, u64, u64, ReplicaSet)> {
        let vns = self.vns.drain(base..base + n);
        let vals = self.vals.drain(base..base + n);
        let gens = self.cfg_gens.drain(base..base + n);
        let members = self.cfg_members.drain(base..base + n);
        vns.zip(vals)
            .zip(gens.zip(members))
            .map(|((vn, val), (gen, m))| (vn, val, gen, m))
            .collect()
    }

    /// Insert one item's slots at `base` (later items shift up). The
    /// migration import path, inverse of [`DmArena::remove_slots`].
    pub fn insert_slots(&mut self, base: usize, slots: &[(u64, u64, u64, ReplicaSet)]) {
        // One block shift per array (a migration-heavy run inserts
        // thousands of items into arenas tens of thousands of slots deep).
        self.vns.splice(base..base, slots.iter().map(|s| s.0));
        self.vals.splice(base..base, slots.iter().map(|s| s.1));
        self.cfg_gens.splice(base..base, slots.iter().map(|s| s.2));
        self.cfg_members.splice(base..base, slots.iter().map(|s| s.3));
    }

    /// Extract several `n`-slot blocks (ascending, disjoint `bases`) in a
    /// single compaction pass — the batch form of
    /// [`DmArena::remove_slots`], one memmove of the arena instead of one
    /// per migrating item.
    #[must_use]
    pub fn remove_blocks(&mut self, bases: &[usize], n: usize) -> Vec<Vec<SlotState>> {
        debug_assert!(bases.windows(2).all(|w| w[0] + n <= w[1]));
        let mut out = Vec::with_capacity(bases.len());
        let mut block = Vec::new();
        let mut w = 0;
        let mut b = 0;
        for r in 0..self.vns.len() {
            if b < bases.len() && r >= bases[b] {
                if r == bases[b] {
                    block = Vec::with_capacity(n);
                }
                block.push((self.vns[r], self.vals[r], self.cfg_gens[r], self.cfg_members[r]));
                if r + 1 == bases[b] + n {
                    out.push(std::mem::take(&mut block));
                    b += 1;
                }
                continue;
            }
            self.vns[w] = self.vns[r];
            self.vals[w] = self.vals[r];
            self.cfg_gens[w] = self.cfg_gens[r];
            self.cfg_members[w] = self.cfg_members[r];
            w += 1;
        }
        self.vns.truncate(w);
        self.vals.truncate(w);
        self.cfg_gens.truncate(w);
        self.cfg_members.truncate(w);
        out
    }

    /// Insert several slot blocks at the given (ascending, post-insertion)
    /// base offsets in one pass — the batch inverse of
    /// [`DmArena::remove_blocks`].
    pub fn insert_blocks(&mut self, blocks: &[(usize, &[SlotState])]) {
        let added: usize = blocks.iter().map(|(_, s)| s.len()).sum();
        let mut vns = Vec::with_capacity(self.vns.len() + added);
        let mut vals = Vec::with_capacity(self.vals.len() + added);
        let mut gens = Vec::with_capacity(self.cfg_gens.len() + added);
        let mut members = Vec::with_capacity(self.cfg_members.len() + added);
        let push_block = |slots: &[SlotState],
                              vns: &mut Vec<u64>,
                              vals: &mut Vec<u64>,
                              gens: &mut Vec<u64>,
                              members: &mut Vec<ReplicaSet>| {
            for &(vn, val, gen, m) in slots {
                vns.push(vn);
                vals.push(val);
                gens.push(gen);
                members.push(m);
            }
        };
        let mut bi = 0;
        for r in 0..self.vns.len() {
            while bi < blocks.len() && blocks[bi].0 == vns.len() {
                push_block(blocks[bi].1, &mut vns, &mut vals, &mut gens, &mut members);
                bi += 1;
            }
            vns.push(self.vns[r]);
            vals.push(self.vals[r]);
            gens.push(self.cfg_gens[r]);
            members.push(self.cfg_members[r]);
        }
        for (_, slots) in &blocks[bi..] {
            push_block(slots, &mut vns, &mut vals, &mut gens, &mut members);
        }
        self.vns = vns;
        self.vals = vals;
        self.cfg_gens = gens;
        self.cfg_members = members;
    }

    /// Iterate `(site, vn, &value)` over one item's slots — the shape
    /// [`LemmaChecker::check_states`](qc_replication::LemmaChecker)
    /// consumes. `range` is in arena slots; sites are renumbered from 0.
    pub fn states(&self, range: Range<usize>) -> impl Iterator<Item = (usize, u64, &u64)> + '_ {
        let base = range.start;
        range.map(move |i| (i - base, self.vns[i], &self.vals[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut a = DmArena::new(6);
        assert_eq!(a.len(), 6);
        assert_eq!(a.get(4), (0, 0));
        a.set(4, 3, 99);
        assert_eq!(a.get(4), (3, 99));
        assert_eq!(a.vn(4), 3);
        assert_eq!(a.get(3), (0, 0));
    }

    #[test]
    fn discover_matches_max_by_key_semantics() {
        let mut a = DmArena::new(8);
        // Item 1 (base 4, n = 4): vns 2, 5, 5, 1 — ties on the max must
        // keep the *later* site, as Iterator::max_by_key does.
        a.set(4, 2, 10);
        a.set(5, 5, 20);
        a.set(6, 5, 30);
        a.set(7, 1, 40);
        let sites = [0usize, 1, 2, 3];
        let aos: Vec<(u64, u64)> = sites.iter().map(|&s| a.get(4 + s)).collect();
        let expect = aos.iter().copied().max_by_key(|&(vn, _)| vn).unwrap();
        assert_eq!(a.discover(4, sites), expect);
        assert_eq!(a.discover(4, sites), (5, 30));
        assert_eq!(a.discover(4, []), (0, 0));
    }

    #[test]
    fn configurations_start_full_and_discover_like_versions() {
        let mut a = DmArena::new_configured(6, 3);
        let full: ReplicaSet = ReplicaSet::full(3);
        assert_eq!(a.cfg(0), (0, full));
        assert_eq!(a.cfg_gen(5), 0);
        let shrunk: ReplicaSet = [0usize, 2].into_iter().collect();
        a.set_cfg(4, 2, shrunk);
        assert_eq!(a.cfg(4), (2, shrunk));
        // Discovery over item 1 (base 3): site 1 holds the maximum.
        assert_eq!(a.discover_cfg(3, [0usize, 1, 2]), (2, shrunk));
        assert_eq!(a.discover_cfg(3, [0usize, 2]), (0, full));
        assert_eq!(a.discover_cfg(3, []), (0, ReplicaSet::EMPTY));
    }

    #[test]
    fn remove_and_insert_slots_round_trip_an_item() {
        let mut a = DmArena::new_configured(9, 3);
        for slot in 0..9 {
            a.set(slot, slot as u64, slot as u64 * 10);
        }
        let shrunk: ReplicaSet = [0usize, 1].into_iter().collect();
        a.set_cfg(4, 7, shrunk);
        // Extract item 1 (slots 3..6); item 2 shifts down into its place.
        let moved = a.remove_slots(3, 3);
        assert_eq!(a.len(), 6);
        assert_eq!(moved[1], (4, 40, 7, shrunk));
        assert_eq!(a.get(3), (6, 60));
        // Re-insert at the front of another position and verify layout.
        a.insert_slots(0, &moved);
        assert_eq!(a.len(), 9);
        assert_eq!(a.get(0), (3, 30));
        assert_eq!(a.cfg(1), (7, shrunk));
        assert_eq!(a.get(3), (0, 0));
        assert_eq!(a.get(8), (8, 80));
    }

    #[test]
    fn batch_block_removal_and_insertion_round_trip() {
        let mut a = DmArena::new_configured(12, 3);
        for slot in 0..12 {
            a.set(slot, slot as u64, slot as u64 * 10);
        }
        // Extract items 0 and 2 (slots 0..3 and 6..9) in one pass.
        let blocks = a.remove_blocks(&[0, 6], 3);
        assert_eq!(a.len(), 6);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0][1].0, 1);
        assert_eq!(blocks[1][0], (6, 60, 0, ReplicaSet::full(3)));
        // Items 1 and 3 compacted down in order.
        assert_eq!(a.get(0), (3, 30));
        assert_eq!(a.get(3), (9, 90));
        // Re-insert both blocks at their original bases; the arena must
        // be byte-identical to the single-block round trip.
        a.insert_blocks(&[(0, &blocks[0]), (6, &blocks[1])]);
        assert_eq!(a.len(), 12);
        for slot in 0..12 {
            assert_eq!(a.get(slot), (slot as u64, slot as u64 * 10));
        }
        // A tail append (base past the current end) works too.
        let tail = a.remove_blocks(&[9], 3);
        a.insert_blocks(&[(9, &tail[0])]);
        assert_eq!(a.get(11), (11, 110));
    }

    #[test]
    fn states_renumbers_sites_per_item() {
        let mut a = DmArena::new(6);
        a.set(3, 7, 70);
        let got: Vec<(usize, u64, u64)> =
            a.states(3..6).map(|(s, vn, &v)| (s, vn, v)).collect();
        assert_eq!(got, vec![(0, 7, 70), (1, 0, 0), (2, 0, 0)]);
    }
}
