//! The discrete-event simulation of a quorum-replicated store.
//!
//! The paper is a theory paper; this simulator is the evaluation substrate
//! for the quantitative claims its introduction motivates — replication
//! "to improve availability, reliability and performance". Sites host one
//! replica each and crash/recover under an exponential failure process;
//! closed-loop clients issue logical reads and writes through the Gifford
//! protocol (version-number discovery against a read-quorum, then, for
//! writes, installation at a write-quorum); message costs and latencies are
//! accounted per operation.
//!
//! Protocol fidelity notes: quorum membership is decided by a
//! [`QuorumSpec`] predicate, so all the quorum systems in the `quorum`
//! crate plug in directly. Site state is sampled at operation start (an
//! operation shorter than a repair interval almost never straddles a
//! transition; failures mid-operation are modelled by the timeout).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use quorum::{QuorumSpec, ReplicaSet};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::latency::{sample_exponential, LatencyModel};
use crate::metrics::Metrics;
use crate::time::SimTime;

/// Which replicas the coordinator contacts in each phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContactPolicy {
    /// Contact every live replica; finish when a quorum of responses is in
    /// (lowest latency, highest message cost).
    AllLive,
    /// Contact a minimal quorum among the live replicas (lowest message
    /// cost; a single slow member delays the phase).
    MinimalQuorum,
}

/// Configuration of one simulation run.
#[derive(Clone)]
pub struct SimConfig {
    /// The quorum system (over replicas `0..n`).
    pub quorum: Arc<dyn QuorumSpec + Send + Sync>,
    /// One-way message latency model.
    pub latency: LatencyModel,
    /// Coordinator contact policy.
    pub contact: ContactPolicy,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Fraction of operations that are logical reads.
    pub read_fraction: f64,
    /// Client think time between operations.
    pub think_time: SimTime,
    /// Per-phase timeout: an operation fails if a phase's quorum is not
    /// assembled in this time.
    pub timeout: SimTime,
    /// Mean time to failure per site (`None` disables failures).
    pub mttf: Option<SimTime>,
    /// Mean time to repair per site.
    pub mttr: SimTime,
    /// Simulated duration.
    pub duration: SimTime,
    /// RNG seed.
    pub seed: u64,
}

impl std::fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConfig")
            .field("quorum", &self.quorum.label())
            .field("clients", &self.clients)
            .field("read_fraction", &self.read_fraction)
            .finish_non_exhaustive()
    }
}

impl SimConfig {
    /// A reasonable default over the given quorum system: 4 clients, 90%
    /// reads, LAN latencies, no failures, 10 simulated seconds.
    pub fn new(quorum: Arc<dyn QuorumSpec + Send + Sync>) -> Self {
        SimConfig {
            quorum,
            latency: LatencyModel::lan(),
            contact: ContactPolicy::AllLive,
            clients: 4,
            read_fraction: 0.9,
            think_time: SimTime::from_millis(1),
            timeout: SimTime::from_millis(50),
            mttf: None,
            mttr: SimTime::from_secs(2),
            duration: SimTime::from_secs(10),
            seed: 0,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Event {
    OpStart { client: usize },
    SiteDown { site: usize },
    SiteUp { site: usize },
}

/// The simulator state.
pub struct Simulation {
    config: SimConfig,
    rng: ChaCha8Rng,
    now: SimTime,
    queue: BinaryHeap<Reverse<(SimTime, u64, EventBox)>>,
    seq: u64,
    up: Vec<bool>,
    metrics: Metrics,
}

// BinaryHeap needs Ord; wrap the event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct EventBox(u8, usize);

impl EventBox {
    fn pack(e: Event) -> Self {
        match e {
            Event::OpStart { client } => EventBox(0, client),
            Event::SiteDown { site } => EventBox(1, site),
            Event::SiteUp { site } => EventBox(2, site),
        }
    }

    fn unpack(self) -> Event {
        match self.0 {
            0 => Event::OpStart { client: self.1 },
            1 => Event::SiteDown { site: self.1 },
            _ => Event::SiteUp { site: self.1 },
        }
    }
}

/// The outcome of one simulated phase: completion time offset and message
/// count, or a timeout.
struct PhaseOutcome {
    elapsed: SimTime,
    messages: u64,
    ok: bool,
}

impl Simulation {
    /// Create a simulation from a configuration.
    pub fn new(config: SimConfig) -> Self {
        let n = config.quorum.n();
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut sim = Simulation {
            rng,
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            up: vec![true; n],
            metrics: Metrics::default(),
            config,
        };
        for c in 0..sim.config.clients {
            // Stagger client starts to avoid phase lock.
            let jitter = SimTime(sim.rng.gen_range(0..1_000));
            sim.schedule(jitter, Event::OpStart { client: c });
        }
        if let Some(mttf) = sim.config.mttf {
            for s in 0..n {
                let t = sample_exponential(mttf, &mut sim.rng);
                sim.schedule(t, Event::SiteDown { site: s });
            }
        }
        sim
    }

    fn schedule(&mut self, delay: SimTime, e: Event) {
        self.seq += 1;
        self.queue
            .push(Reverse((self.now + delay, self.seq, EventBox::pack(e))));
    }

    /// Run to completion, consuming the simulator and returning metrics.
    pub fn run(mut self) -> Metrics {
        while let Some(Reverse((t, _, e))) = self.queue.pop() {
            if t > self.config.duration {
                break;
            }
            self.now = t;
            match e.unpack() {
                Event::OpStart { client } => self.handle_op(client),
                Event::SiteDown { site } => {
                    if self.up[site] {
                        self.up[site] = false;
                        self.metrics.site_failures += 1;
                    }
                    let repair = sample_exponential(self.config.mttr, &mut self.rng);
                    self.schedule(repair, Event::SiteUp { site });
                }
                Event::SiteUp { site } => {
                    self.up[site] = true;
                    if let Some(mttf) = self.config.mttf {
                        let fail = sample_exponential(mttf, &mut self.rng);
                        self.schedule(fail, Event::SiteDown { site });
                    }
                }
            }
        }
        self.metrics
    }

    fn live_set(&self) -> ReplicaSet {
        (0..self.up.len()).filter(|&s| self.up[s]).collect()
    }

    /// Simulate one quorum-gathering phase from the current site state.
    ///
    /// `targets` are contacted (one request + one response each if live;
    /// requests to dead sites are sent and lost); the phase completes at
    /// the earliest time the responder set satisfies `is_quorum`.
    fn phase(
        &mut self,
        targets: ReplicaSet,
        is_quorum: &dyn Fn(ReplicaSet) -> bool,
    ) -> PhaseOutcome {
        let mut responses: Vec<(SimTime, usize)> = Vec::new();
        let mut messages = 0u64;
        for s in targets {
            messages += 1; // request
            if self.up[s] {
                let rtt = self.config.latency.sample(&mut self.rng)
                    + self.config.latency.sample(&mut self.rng);
                messages += 1; // response
                responses.push((rtt, s));
            }
        }
        responses.sort();
        let mut have = ReplicaSet::new();
        for &(t, s) in &responses {
            if t > self.config.timeout {
                break;
            }
            have.insert(s);
            if is_quorum(have) {
                return PhaseOutcome {
                    elapsed: t,
                    messages,
                    ok: true,
                };
            }
        }
        PhaseOutcome {
            elapsed: self.config.timeout,
            messages,
            ok: false,
        }
    }

    fn read_targets(&mut self) -> Option<ReplicaSet> {
        let live = self.live_set();
        match self.config.contact {
            // Contacting a site known to be down buys nothing: it cannot
            // respond, so it can never help assemble the quorum.
            ContactPolicy::AllLive => Some(live),
            ContactPolicy::MinimalQuorum => self.config.quorum.find_read_quorum_bits(live),
        }
    }

    fn write_targets(&mut self) -> Option<ReplicaSet> {
        let live = self.live_set();
        match self.config.contact {
            ContactPolicy::AllLive => Some(live),
            ContactPolicy::MinimalQuorum => self.config.quorum.find_write_quorum_bits(live),
        }
    }

    fn handle_op(&mut self, client: usize) {
        let is_read = self.rng.gen_bool(self.config.read_fraction);
        let quorum = Arc::clone(&self.config.quorum);

        // Phase 1 (both kinds): version-number discovery at a read-quorum.
        let (mut elapsed, mut messages, mut ok) = match self.read_targets() {
            Some(targets) => {
                let q = Arc::clone(&quorum);
                let out = self.phase(targets, &move |s| q.is_read_quorum_bits(s));
                (out.elapsed, out.messages, out.ok)
            }
            None => (self.config.timeout, 0, false),
        };

        // Phase 2 (writes): install at a write-quorum.
        if ok && !is_read {
            match self.write_targets() {
                Some(targets) => {
                    let q = Arc::clone(&quorum);
                    let out = self.phase(targets, &move |s| q.is_write_quorum_bits(s));
                    elapsed += out.elapsed;
                    messages += out.messages;
                    ok = out.ok;
                }
                None => {
                    ok = false;
                }
            }
        }

        let stats = if is_read {
            &mut self.metrics.reads
        } else {
            &mut self.metrics.writes
        };
        if ok {
            stats.record_success(elapsed, messages);
        } else {
            stats.record_failure(messages);
        }
        let next = elapsed + self.config.think_time;
        self.schedule(next, Event::OpStart { client });
    }
}

/// Convenience: build and run in one call.
pub fn run(config: SimConfig) -> Metrics {
    Simulation::new(config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum::{Majority, Rowa};

    fn base(q: Arc<dyn QuorumSpec + Send + Sync>) -> SimConfig {
        let mut c = SimConfig::new(q);
        c.duration = SimTime::from_secs(5);
        c
    }

    #[test]
    fn healthy_cluster_is_fully_available() {
        let m = run(base(Arc::new(Majority::new(5))));
        assert!(m.reads.attempts > 100);
        assert_eq!(m.reads.availability(), 1.0);
        assert_eq!(m.writes.availability(), 1.0);
        assert_eq!(m.site_failures, 0);
    }

    #[test]
    fn rowa_reads_cost_less_than_majority_reads() {
        let mut c1 = base(Arc::new(Rowa::new(5)));
        c1.contact = ContactPolicy::MinimalQuorum;
        let rowa = run(c1);
        let mut c2 = base(Arc::new(Majority::new(5)));
        c2.contact = ContactPolicy::MinimalQuorum;
        let maj = run(c2);
        assert!(
            rowa.reads.messages_per_op() < maj.reads.messages_per_op(),
            "rowa {} vs majority {}",
            rowa.reads.messages_per_op(),
            maj.reads.messages_per_op()
        );
        // ROWA read = 1 round trip to 1 replica: 2 messages.
        assert!((rowa.reads.messages_per_op() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rowa_writes_suffer_under_failures() {
        let mut c = base(Arc::new(Rowa::new(5)));
        c.mttf = Some(SimTime::from_secs(3));
        c.mttr = SimTime::from_secs(3);
        c.read_fraction = 0.5;
        c.duration = SimTime::from_secs(30);
        let m = run(c);
        assert!(m.site_failures > 0);
        // With ~half the time one site down, ROWA writes fail often while
        // reads almost always succeed.
        assert!(m.writes.availability() < 0.9, "writes {}", m.writes.availability());
        assert!(m.reads.availability() > m.writes.availability());
    }

    #[test]
    fn majority_survives_minority_failures() {
        let mut c = base(Arc::new(Majority::new(5)));
        c.mttf = Some(SimTime::from_secs(10));
        c.mttr = SimTime::from_secs(1);
        c.read_fraction = 0.5;
        c.duration = SimTime::from_secs(30);
        let m = run(c);
        // 5 sites, short repairs: a majority is almost always up.
        assert!(m.reads.availability() > 0.97, "reads {}", m.reads.availability());
        assert!(m.writes.availability() > 0.95, "writes {}", m.writes.availability());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(base(Arc::new(Majority::new(3))));
        let b = run(base(Arc::new(Majority::new(3))));
        assert_eq!(a.reads.attempts, b.reads.attempts);
        assert_eq!(a.reads.messages, b.reads.messages);
    }

    #[test]
    fn minimal_quorum_contact_halves_read_messages() {
        let mut all = base(Arc::new(Majority::new(5)));
        all.contact = ContactPolicy::AllLive;
        let a = run(all);
        // AllLive read: 5 requests + 5 responses = 10 per op.
        assert!((a.reads.messages_per_op() - 10.0).abs() < 1e-9);
        let mut min = base(Arc::new(Majority::new(5)));
        min.contact = ContactPolicy::MinimalQuorum;
        let m = run(min);
        // MinimalQuorum read: 3 + 3 = 6 per op.
        assert!((m.reads.messages_per_op() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn all_live_skips_down_sites() {
        let mut sim = Simulation::new(base(Arc::new(Majority::new(5))));
        sim.up[0] = false;
        sim.up[3] = false;
        let targets = sim.read_targets().unwrap();
        assert_eq!(targets.iter().collect::<Vec<_>>(), vec![1, 2, 4]);
        // 3 requests + 3 responses — no messages wasted on dead sites.
        let q = Arc::clone(&sim.config.quorum);
        let out = sim.phase(targets, &move |s| q.is_read_quorum_bits(s));
        assert!(out.ok);
        assert_eq!(out.messages, 6);
    }

    #[test]
    fn writes_pay_two_phases() {
        let mut c = base(Arc::new(Majority::new(3)));
        c.contact = ContactPolicy::MinimalQuorum;
        c.read_fraction = 0.0;
        let m = run(c);
        // Write: read-quorum (2+2) + write-quorum (2+2) = 8 messages.
        assert!((m.writes.messages_per_op() - 8.0).abs() < 1e-9);
        assert!(m.writes.mean_latency_ms() > m.reads.mean_latency_ms());
    }
}
