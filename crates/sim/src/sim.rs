//! The discrete-event simulation of a quorum-replicated store.
//!
//! The paper is a theory paper; this simulator is the evaluation substrate
//! for the quantitative claims its introduction motivates — replication
//! "to improve availability, reliability and performance". Sites host one
//! replica each (a versioned `(vn, value)` store, Gifford's DM state) and
//! crash/recover under an exponential failure process and/or a
//! deterministic [`FaultPlan`]; closed-loop clients issue logical reads and
//! writes through the Gifford protocol (version-number discovery against a
//! read-quorum, then, for writes, installation at a write-quorum); message
//! costs and latencies are accounted per operation, and every committed
//! operation is fed through the runtime lemma monitor
//! ([`InvariantProbe`]).
//!
//! # Protocol fidelity
//!
//! Quorum membership is decided by a [`QuorumSpec`] predicate, so all the
//! quorum systems in the `quorum` crate plug in directly.
//!
//! **Crash visibility.** An earlier version of this simulator sampled site
//! state once, at operation start, so a site that crashed mid-operation
//! still "responded". That approximation is unsound once operations can
//! retry across repair intervals: an attempt must observe a crash that
//! lands between its request and the would-be response. The phase
//! simulation now checks, per contacted site, whether the site's next
//! scheduled crash (stochastic or planned) lands before the response would
//! complete; if so the response is lost and the quorum must be assembled
//! from the surviving sites or the attempt times out.
//!
//! **Atomic commit rounds.** A phase either assembles its quorum — and,
//! for writes, installs the new version at exactly the responding quorum —
//! or installs nothing. A timed-out write therefore leaves no partial
//! version behind. This is the simulation analogue of the paper's
//! transaction-abort semantics: an aborted (failed) operation has no
//! visible effect, so every committed point of the run is an "even point"
//! of the access sequence and Lemmas 7 and 8 must hold there (which the
//! probe asserts).
//!
//! **Failure classification.** An attempt that cannot possibly succeed —
//! the live sites contain no read (for reads) or no read+write quorum (for
//! writes) — fails fast as *unavailable* without sending messages. An
//! attempt whose quorum exists but does not assemble within the timeout
//! fails as a *timeout*. With a [`RetryPolicy`] of more than one attempt,
//! failed attempts back off exponentially and re-sample the site state, so
//! an operation that loses its quorum mid-flight degrades into a delayed
//! success once sites recover.
//!
//! # Hot path
//!
//! The event loop runs on the [`EventQueue`] machinery of
//! [`crate::queue`] (indexed calendar queue by default, binary-heap oracle
//! behind `QC_EVENT_QUEUE=heap`), drains every same-instant event per
//! clock advance, keeps per-op state in a pre-sized [`OpSlab`], the DM
//! stores in the SoA [`DmArena`], and the live-site set as a `u128`
//! bitset — the steady-state committed-op path allocates nothing (pinned
//! by `tests/alloc_steady.rs`). All of it is observationally invisible:
//! the pop order `(time, seq)` and the RNG draw order are unchanged, so
//! every pinned determinism digest and golden trace predates this layout.

use std::fmt;
use std::sync::Arc;

use quorum::{QuorumFamily, QuorumSpec, ReplicaSet, Thresholds};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qc_obs::causal::{AbortCause, EdgeKind, SpanKind, TxnRef as CausalTxnRef, TxnTrace, NO_SPAN};
use qc_obs::{
    EventKind, EventSink, ObsEvent, ObsOptions, ObsReport, OpRef, Phase, Snapshot,
    SnapshotExporter,
};
use qc_replication::{AbortReason, LemmaViolation, ScheduleTrace, TmKind, TraceAction, TraceTid};

use crate::arena::DmArena;
use crate::faults::{message_dropped, FaultEvent, FaultPlan, ReconfigTarget, RetryPolicy};
use crate::latency::{sample_exponential, LatencyModel};
use crate::metrics::{CommitRecord, Metrics};
use crate::probe::InvariantProbe;
use crate::queue::{EventQueue, QueueImpl, QueueKind};
use crate::slab::{OpSlab, PendingOp};
use crate::trace::TraceRecorder;
use crate::time::SimTime;

/// Which replicas the coordinator contacts in each phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContactPolicy {
    /// Contact every live replica; finish when a quorum of responses is in
    /// (lowest latency, highest message cost).
    AllLive,
    /// Contact a minimal quorum among the live replicas (lowest message
    /// cost; a single slow member delays the phase).
    MinimalQuorum,
}

/// When and how the simulator issues reconfigure ops (the paper's §4
/// dynamic-quorum scheme).
///
/// Dynamic quorums are strictly **opt-in**: with the default
/// ([`ReconfigPolicy::off`]) the simulator runs the exact static protocol
/// of PRs 1–6, byte for byte. When enabled, replica slots carry a
/// `(configuration, generation)` pair, data ops validate their cached
/// generation against a configuration read quorum, and reconfigure ops —
/// scripted via the fault plan's `reconfig@t:spec` verb and/or issued by
/// the reactive trigger — install new configurations mid-run following
/// Goldman–Lynch: the new configuration is written to a write quorum of
/// the *old* configuration, after which ops at stale generations are
/// rejected and retried under the new one.
///
/// The reactive trigger is the operational counterpart of `qc-reconfig`'s
/// `Spy` automaton: a periodic check (the Spy's always-enabled
/// `REQUEST-CREATE` output, discretized to a `poll` cadence) that spends a
/// bounded budget of reconfigurations (`max_reconfigs`, the Spy's
/// `used < max_reconfigs` guard) when the failure signal — the delta in
/// timeout/unavailable classifications already kept in
/// [`Metrics`](crate::Metrics) — indicates the current membership is
/// wrong. It draws nothing from the RNG stream, so reconfiguring runs
/// stay deterministic across thread counts and queue implementations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconfigPolicy {
    /// Master switch: when false, the simulator is exactly the static one.
    pub enabled: bool,
    /// Run the reactive spy trigger (scripted `reconfig@t` events work
    /// either way).
    pub reactive: bool,
    /// Cadence of the reactive trigger's failure-signal check.
    pub poll: SimTime,
    /// Minimum time between two reactive reconfigurations.
    pub cooldown: SimTime,
    /// Never shrink the membership below this size.
    pub min_members: usize,
    /// Budget of reactive reconfigurations per run (the Spy's
    /// `max_reconfigs`).
    pub max_reconfigs: u32,
}

impl ReconfigPolicy {
    /// Dynamic quorums disabled (the default): the static simulator.
    #[must_use]
    pub fn off() -> Self {
        ReconfigPolicy {
            enabled: false,
            reactive: false,
            poll: SimTime::from_millis(50),
            cooldown: SimTime::from_millis(200),
            min_members: 1,
            max_reconfigs: 64,
        }
    }

    /// Generation-aware protocol with the reactive spy trigger: poll the
    /// failure signal every 50 ms, reconfigure to the live membership,
    /// with a 200 ms cooldown between reconfigurations.
    #[must_use]
    pub fn reactive() -> Self {
        ReconfigPolicy {
            enabled: true,
            reactive: true,
            ..ReconfigPolicy::off()
        }
    }

    /// Generation-aware protocol, but only fault-plan `reconfig@t` events
    /// ever reconfigure.
    #[must_use]
    pub fn scripted_only() -> Self {
        ReconfigPolicy {
            enabled: true,
            reactive: false,
            ..ReconfigPolicy::off()
        }
    }
}

impl Default for ReconfigPolicy {
    fn default() -> Self {
        ReconfigPolicy::off()
    }
}

/// Configuration of one simulation run.
#[derive(Clone)]
pub struct SimConfig {
    /// The quorum system (over replicas `0..n`).
    pub quorum: Arc<dyn QuorumSpec + Send + Sync>,
    /// One-way message latency model.
    pub latency: LatencyModel,
    /// Coordinator contact policy.
    pub contact: ContactPolicy,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Fraction of operations that are logical reads.
    pub read_fraction: f64,
    /// Client think time between operations.
    pub think_time: SimTime,
    /// Per-phase timeout: an attempt fails if a phase's quorum is not
    /// assembled in this time.
    pub timeout: SimTime,
    /// Mean time to failure per site (`None` disables failures).
    pub mttf: Option<SimTime>,
    /// Mean time to repair per site.
    pub mttr: SimTime,
    /// Simulated duration.
    pub duration: SimTime,
    /// RNG seed.
    pub seed: u64,
    /// Deterministic injected faults (empty by default).
    pub faults: FaultPlan,
    /// Coordinator retry/backoff policy (one attempt by default).
    pub retry: RetryPolicy,
    /// Assert Lemmas 7 and 8 after every committed operation.
    pub monitor: bool,
    /// Record every committed operation in `Metrics::history`.
    pub record_history: bool,
    /// Observability options: per-phase spans, structured event log,
    /// periodic snapshots (all disabled by default; recording draws
    /// nothing from the RNG stream, so an observed run is event-for-event
    /// identical to an unobserved one).
    pub obs: ObsOptions,
    /// Event-queue implementation (defaults from `QC_EVENT_QUEUE`; both
    /// pop in identical order, so this never changes results — only
    /// wall-clock speed).
    pub queue: QueueKind,
    /// Dynamic-quorum reconfiguration policy (off by default; requires a
    /// ROWA or majority quorum system when enabled).
    pub reconfig: ReconfigPolicy,
}

impl std::fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConfig")
            .field("quorum", &self.quorum.label())
            .field("clients", &self.clients)
            .field("read_fraction", &self.read_fraction)
            .finish_non_exhaustive()
    }
}

impl SimConfig {
    /// A reasonable default over the given quorum system: 4 clients, 90%
    /// reads, LAN latencies, no failures or injected faults, no retries,
    /// monitoring on, 10 simulated seconds.
    pub fn new(quorum: Arc<dyn QuorumSpec + Send + Sync>) -> Self {
        SimConfig {
            quorum,
            latency: LatencyModel::lan(),
            contact: ContactPolicy::AllLive,
            clients: 4,
            read_fraction: 0.9,
            think_time: SimTime::from_millis(1),
            timeout: SimTime::from_millis(50),
            mttf: None,
            mttr: SimTime::from_secs(2),
            duration: SimTime::from_secs(10),
            seed: 0,
            faults: FaultPlan::new(),
            retry: RetryPolicy::default(),
            monitor: true,
            record_history: false,
            obs: ObsOptions::disabled(),
            queue: QueueKind::from_env(),
            reconfig: ReconfigPolicy::off(),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Event {
    OpStart { client: usize },
    SiteDown { site: usize },
    SiteUp { site: usize },
    PlanFault { idx: usize },
    Retry { client: usize },
    SpyCheck,
}

// The queue stores a compact packed form; `(time, seq)` alone orders
// events, so the payload needs no `Ord`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct EventBox(u8, usize);

impl EventBox {
    fn pack(e: Event) -> Self {
        match e {
            Event::OpStart { client } => EventBox(0, client),
            Event::SiteDown { site } => EventBox(1, site),
            Event::SiteUp { site } => EventBox(2, site),
            Event::PlanFault { idx } => EventBox(3, idx),
            Event::Retry { client } => EventBox(4, client),
            Event::SpyCheck => EventBox(5, 0),
        }
    }

    fn unpack(self) -> Event {
        match self.0 {
            0 => Event::OpStart { client: self.1 },
            1 => Event::SiteDown { site: self.1 },
            2 => Event::SiteUp { site: self.1 },
            3 => Event::PlanFault { idx: self.1 },
            4 => Event::Retry { client: self.1 },
            _ => Event::SpyCheck,
        }
    }
}

/// The outcome of one simulated phase: completion time offset, message
/// count, and the responding quorum (empty on timeout).
struct PhaseOutcome {
    elapsed: SimTime,
    messages: u64,
    responders: ReplicaSet,
    ok: bool,
}

/// Sentinel for "no stochastic crash scheduled".
const NO_CRASH: SimTime = SimTime(u64::MAX);

/// The simulator state.
pub struct Simulation {
    config: SimConfig,
    /// Sites (`quorum.n()`).
    n: usize,
    rng: ChaCha8Rng,
    now: SimTime,
    queue: QueueImpl<EventBox>,
    seq: u64,
    /// Live sites, as a bitset (`full(n)` when healthy).
    up: ReplicaSet,
    /// Per-site replica stores — the DM state, SoA layout.
    stores: DmArena,
    /// Next scheduled stochastic crash per site (for straddle detection;
    /// [`NO_CRASH`] when none).
    stoch_next_down: Vec<SimTime>,
    /// Planned crash times per site, ascending (for straddle detection).
    plan_crashes: Vec<Vec<SimTime>>,
    /// A pending forced abort per client.
    abort_flag: Vec<bool>,
    /// Per-client in-flight operation state, interned for the whole run.
    pending: OpSlab,
    op_counter: Vec<u64>,
    /// Scratch buffer for phase responses, reused across phases so the hot
    /// path allocates nothing per operation.
    scratch: Vec<(SimTime, usize)>,
    probe: InvariantProbe,
    /// Memoized outcome of the probe's store re-check (Lemmas 7/8(1a)/
    /// 8(1b)). The check is a pure function of the history digest and the
    /// store contents, so between mutations — write installs, corrupt
    /// injections, committed-write digests — its outcome is replayed
    /// instead of re-scanned. Cleared at every mutation site.
    arena_check: Option<Result<(), LemmaViolation>>,
    /// Threshold form of the quorum system, when it has one (ROWA and
    /// Majority do). The per-phase membership probes and per-op contact
    /// selection then run as inline popcounts instead of virtual calls;
    /// `None` falls back to the `dyn QuorumSpec` predicates.
    th: Option<Thresholds>,
    /// Quorum family of the system, when it has one (required for dynamic
    /// quorums: the size rules must extend to arbitrary member sets).
    family: Option<QuorumFamily>,
    /// Committed configuration generation (0 = the initial full
    /// membership; only reconfigure ops advance it).
    cur_gen: u64,
    /// Members of the committed configuration.
    cur_members: ReplicaSet,
    /// Per-client cached `(generation, members)` — clients act on their
    /// cache and learn newer generations only through stale rejections,
    /// exactly like a TM discovering a superseded configuration.
    client_cfg: Vec<(u64, ReplicaSet)>,
    /// Quorum override for the phase loop while a dynamic attempt runs:
    /// `(members, read_k, write_k)`. `None` outside dynamic attempts, so
    /// the static hot path is untouched.
    dyn_quorum: Option<(ReplicaSet, usize, usize)>,
    /// Reactive-trigger state: time of the last reconfiguration, budget
    /// spent, and the failure-signal level at the last poll.
    last_reconfig: SimTime,
    reconfigs_used: u32,
    last_failure_signal: u64,
    metrics: Metrics,
    /// Per-client causal segment history of the in-flight op, in causal
    /// order (`(edge kind, µs)`); only written when `config.obs.causal`
    /// is enabled. Mirrors the `PendingOp` phase accumulators exactly, so
    /// the trace built from it reconciles with end-to-end latency.
    causal_segs: Vec<Vec<(EdgeKind, u64)>>,
    /// Observability recordings (spans/events/snapshots per `config.obs`).
    obs: ObsReport,
    /// Periodic snapshot schedule, when enabled.
    snap: Option<SnapshotExporter>,
    /// Shard tag stamped on events and snapshots (always 0 here; the
    /// sharded simulator stamps real shard indices in its own loop).
    shard_tag: u32,
}

impl Simulation {
    /// Create a simulation from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the fault plan references sites or clients out of range.
    pub fn new(config: SimConfig) -> Self {
        let n = config.quorum.n();
        config
            .faults
            .validate(n, config.clients)
            .expect("fault plan out of range");
        let family = QuorumFamily::of(&*config.quorum);
        let has_scripted_reconfigs = config
            .faults
            .events()
            .iter()
            .any(|(_, e)| matches!(e, FaultEvent::Reconfig { .. }));
        if config.reconfig.enabled {
            assert!(
                family.is_some(),
                "dynamic quorums require a ROWA or majority quorum system, got {}",
                config.quorum.label()
            );
        } else {
            assert!(
                !has_scripted_reconfigs,
                "fault plan contains reconfig events but SimConfig::reconfig is disabled"
            );
        }
        assert!(
            !config
                .faults
                .events()
                .iter()
                .any(|(_, e)| matches!(e, FaultEvent::Migrate { .. })),
            "migrate events belong to the sharded simulator's elastic placement"
        );
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        let plan_crashes = (0..n)
            .map(|s| config.faults.crash_times_for(s).collect())
            .collect();
        let mut sim = Simulation {
            n,
            rng,
            now: SimTime::ZERO,
            queue: QueueImpl::new(config.queue),
            seq: 0,
            up: ReplicaSet::full(n),
            stores: DmArena::new(n),
            stoch_next_down: vec![NO_CRASH; n],
            plan_crashes,
            abort_flag: vec![false; config.clients],
            pending: OpSlab::new(config.clients),
            op_counter: vec![0; config.clients],
            scratch: Vec::new(),
            probe: InvariantProbe::new(),
            arena_check: None,
            th: config.quorum.thresholds(),
            family,
            cur_gen: 0,
            cur_members: ReplicaSet::full(n),
            client_cfg: vec![(0, ReplicaSet::full(n)); config.clients],
            dyn_quorum: None,
            last_reconfig: SimTime::ZERO,
            reconfigs_used: 0,
            last_failure_signal: 0,
            metrics: Metrics::default(),
            causal_segs: vec![Vec::new(); config.clients],
            obs: ObsReport::new(&config.obs),
            snap: config.obs.snapshot_every_us.map(SnapshotExporter::new),
            shard_tag: 0,
            config,
        };
        for c in 0..sim.config.clients {
            // Stagger client starts to avoid phase lock.
            let jitter = SimTime(sim.rng.gen_range(0..1_000));
            sim.schedule(jitter, Event::OpStart { client: c });
        }
        if let Some(mttf) = sim.config.mttf {
            for s in 0..n {
                let t = sample_exponential(mttf, &mut sim.rng);
                sim.stoch_next_down[s] = t;
                sim.schedule(t, Event::SiteDown { site: s });
            }
        }
        for idx in 0..sim.config.faults.len() {
            let at = sim.config.faults.events()[idx].0;
            sim.schedule(at, Event::PlanFault { idx });
        }
        if sim.config.reconfig.enabled && sim.config.reconfig.reactive {
            sim.schedule(sim.config.reconfig.poll, Event::SpyCheck);
        }
        sim
    }

    fn schedule(&mut self, delay: SimTime, e: Event) {
        self.seq += 1;
        self.queue.push(self.now + delay, self.seq, EventBox::pack(e));
    }

    /// Run to completion, consuming the simulator and returning metrics.
    pub fn run(mut self) -> Metrics {
        self.drive();
        self.metrics
    }

    /// Run to completion, returning the metrics *and* the observability
    /// report (spans, events, snapshots) recorded per `SimConfig::obs`.
    ///
    /// Observation is observational in the strict sense: it draws nothing
    /// from the RNG stream and schedules no events, so the returned
    /// metrics are bit-identical to what [`Simulation::run`] produces for
    /// the same configuration.
    pub fn run_observed(mut self) -> (Metrics, ObsReport) {
        self.drive();
        (self.metrics, self.obs)
    }

    /// Run to completion with a schedule-trace sink attached, returning
    /// the metrics *and* the recorded run as an ordered I/O-automaton
    /// schedule (see [`crate::trace`]).
    ///
    /// Tracing is observational: it draws nothing from the RNG stream, so
    /// the returned metrics are identical to what [`Simulation::run`]
    /// produces for the same configuration.
    pub fn run_traced(mut self) -> (Metrics, ScheduleTrace) {
        let recorder = TraceRecorder::new(
            self.config.quorum.label(),
            self.config.quorum.n(),
            self.config.seed,
        );
        self.probe.attach_sink(recorder);
        self.drive();
        let trace = self.probe.take_trace().expect("sink was attached above");
        (self.metrics, trace)
    }

    fn dispatch(&mut self, e: EventBox) {
        match e.unpack() {
            Event::OpStart { client } => self.handle_op(client),
            Event::Retry { client } => self.attempt_op(client),
            Event::PlanFault { idx } => self.handle_plan_fault(idx),
            Event::SpyCheck => self.spy_check(),
            Event::SiteDown { site } => {
                self.stoch_next_down[site] = NO_CRASH;
                if self.up.contains(site) {
                    self.up.remove(site);
                    self.metrics.site_failures += 1;
                    if self.obs.events.enabled() {
                        self.emit_obs(EventKind::Fault {
                            desc: format!("site-down:{site}"),
                        });
                    }
                }
                let repair = sample_exponential(self.config.mttr, &mut self.rng);
                self.schedule(repair, Event::SiteUp { site });
            }
            Event::SiteUp { site } => {
                if !self.up.contains(site) && self.obs.events.enabled() {
                    self.emit_obs(EventKind::Fault {
                        desc: format!("site-up:{site}"),
                    });
                }
                self.up.insert(site);
                if let Some(mttf) = self.config.mttf {
                    let fail = sample_exponential(mttf, &mut self.rng);
                    self.stoch_next_down[site] = self.now + fail;
                    self.schedule(fail, Event::SiteDown { site });
                }
            }
        }
    }

    fn drive(&mut self) {
        while let Some((t, _, e)) = self.queue.pop() {
            if t > self.config.duration {
                break;
            }
            // Snapshot boundaries crossed by this clock advance fire
            // before the event at `t` executes, so a snapshot reflects
            // exactly the state at its boundary time.
            self.fire_snapshots_through(t);
            self.now = t;
            self.dispatch(e);
            // Batched delivery: drain every remaining event at `t` —
            // including ones the handlers above schedule *at* `t` — before
            // re-entering the full dequeue path. `pop_at` keeps the exact
            // `(time, seq)` order, so this is pure amortization.
            while let Some((_, e)) = self.queue.pop_at(t) {
                self.dispatch(e);
            }
        }
        // Boundaries between the last event and the end of the run.
        self.fire_snapshots_through(self.config.duration);
        self.now = self.config.duration;
        // The stores must satisfy the lemmas at quiescence too (this is
        // what catches a Corrupt injection that no later read observed).
        if self.config.monitor {
            if let Err(v) = self.arena_check_memo() {
                self.record_violation_observed(format_args!("end-of-run: {v}"), None);
            }
        }
    }

    /// The probe's store re-check, memoized (see the `arena_check` field).
    /// Under dynamic quorums Lemma 8(1a)'s write quorum is evaluated over
    /// the committed membership.
    fn arena_check_memo(&mut self) -> Result<(), LemmaViolation> {
        match &self.arena_check {
            Some(r) => r.clone(),
            None => {
                let r = if self.config.reconfig.enabled {
                    let family = self.family.expect("checked in Simulation::new");
                    self.probe.check_arena_members(
                        &self.stores,
                        0,
                        self.n,
                        family,
                        self.cur_members,
                    )
                } else {
                    self.probe
                        .check_arena(&self.stores, 0, self.n, &*self.config.quorum)
                };
                self.arena_check = Some(r.clone());
                r
            }
        }
    }

    /// Emit every due snapshot with boundary time ≤ `t` (state as of the
    /// events processed so far).
    fn fire_snapshots_through(&mut self, t: SimTime) {
        loop {
            let due = match self.snap.as_mut() {
                Some(s) => s.next_due(t.as_micros()),
                None => return,
            };
            let Some(at_us) = due else { return };
            let snap = Snapshot {
                at_us,
                shard: self.shard_tag,
                ops_done: self.metrics.reads.successes + self.metrics.writes.successes,
                in_flight: self.pending.in_flight(),
                violations: self.metrics.lemma_violations,
                read_p50_us: self.metrics.reads.latency_hist().p50(),
                read_p99_us: self.metrics.reads.latency_hist().p99(),
                write_p50_us: self.metrics.writes.latency_hist().p50(),
                write_p99_us: self.metrics.writes.latency_hist().p99(),
            };
            self.obs.snapshots.push(snap);
            if self.obs.events.enabled() {
                self.obs.events.emit(ObsEvent {
                    at_us,
                    shard: self.shard_tag,
                    kind: EventKind::Snapshot(snap),
                });
            }
        }
    }

    /// Log a structured event at the current simulated instant.
    fn emit_obs(&mut self, kind: EventKind) {
        let at_us = self.now.as_micros();
        self.obs.events.emit(ObsEvent {
            at_us,
            shard: self.shard_tag,
            kind,
        });
    }

    /// Record a lemma violation in the metrics and, when the event log is
    /// enabled, as a structured event carrying the offending op (if the
    /// violation was detected at an op's commit).
    ///
    /// Takes pre-formatted arguments, not a `String`: the description is
    /// rendered only where it is actually retained (the capped metrics
    /// list, the event log), so no call path is forced to allocate first.
    fn record_violation_observed(&mut self, description: fmt::Arguments<'_>, op: Option<OpRef>) {
        if self.obs.events.enabled() {
            let desc = description.to_string();
            self.emit_obs(EventKind::Violation {
                desc: desc.clone(),
                op,
            });
            self.metrics.record_violation(desc);
        } else {
            self.metrics.record_violation_args(description);
        }
    }

    fn handle_plan_fault(&mut self, idx: usize) {
        self.metrics.injected_faults += 1;
        if self.obs.events.enabled() {
            let (at, e) = self.config.faults.events()[idx];
            let desc = e.text(at);
            self.emit_obs(EventKind::Fault { desc });
        }
        match self.config.faults.events()[idx].1 {
            FaultEvent::Crash { site } => {
                if self.up.contains(site) {
                    self.up.remove(site);
                    self.metrics.site_failures += 1;
                }
            }
            FaultEvent::Recover { site } => {
                self.up.insert(site);
            }
            FaultEvent::AbortClient { client } => {
                self.abort_flag[client] = true;
            }
            FaultEvent::Corrupt { site, vn, value } => {
                self.stores.set(site, vn, value);
                self.arena_check = None;
                // Sweep immediately: a later write's install can overwrite
                // the corrupted entry before any committed operation (or
                // the end-of-run sweep) would look at it, so detection at
                // injection time is the only seed-independent guarantee.
                if self.config.monitor {
                    if let Err(v) = self.arena_check_memo() {
                        let now = self.now;
                        self.record_violation_observed(
                            format_args!("t={now} corrupt injection: {v}"),
                            None,
                        );
                    }
                }
            }
            // Windows act at message time via drop_permille_at /
            // delay_extra_at; nothing to do when they open.
            FaultEvent::DropWindow { .. } | FaultEvent::DelayWindow { .. } => {}
            FaultEvent::Reconfig { target } => self.try_reconfigure(target, true),
            // Rejected at construction: the single-item simulator has no
            // shards to migrate between.
            FaultEvent::Migrate { .. } => unreachable!("rejected by Simulation::new"),
        }
    }

    /// The reactive trigger (see [`ReconfigPolicy`]): compare the failure
    /// signal — timeout + unavailable classifications — against the last
    /// poll, and reconfigure to the live membership when sites outside the
    /// membership recovered (grow) or member failures are causing op
    /// failures (shrink).
    fn spy_check(&mut self) {
        let signal = self.metrics.reads.timeouts
            + self.metrics.reads.unavailable
            + self.metrics.writes.timeouts
            + self.metrics.writes.unavailable;
        let delta = signal - self.last_failure_signal;
        self.last_failure_signal = signal;
        let live = self.live_set();
        let grow = !live.difference(self.cur_members).is_empty();
        let shrink = delta > 0 && !self.cur_members.difference(live).is_empty();
        if grow || shrink {
            self.try_reconfigure(ReconfigTarget::Live, false);
        }
        self.schedule(self.config.reconfig.poll, Event::SpyCheck);
    }

    /// Execute one reconfigure op if it is warranted and feasible.
    ///
    /// The op follows Goldman–Lynch §4 with the control plane taken as
    /// reliable: discovery reads the `(configuration, generation)` pair
    /// and the data state at a configuration read quorum of the *old*
    /// members, the new configuration is installed at a configuration
    /// write quorum of the old members (plus every live new member, so
    /// later configuration reads of the new membership see it), and the
    /// discovered data state is refreshed at a data write quorum of the
    /// *new* members. It completes at one instant, sends no messages, and
    /// draws nothing from the RNG stream, so enabling tracing or changing
    /// the thread count cannot perturb a reconfiguring run.
    fn try_reconfigure(&mut self, target: ReconfigTarget, scripted: bool) {
        let Some(family) = self.family else {
            if scripted {
                self.metrics.reconfig_failures += 1;
            }
            return;
        };
        let pol = self.config.reconfig;
        if !scripted {
            if self.reconfigs_used >= pol.max_reconfigs {
                return;
            }
            if self.reconfigs_used > 0 && self.now - self.last_reconfig < pol.cooldown {
                return;
            }
        }
        let live = self.live_set();
        let new_members = match target {
            ReconfigTarget::Live => live,
            ReconfigTarget::Members(m) => m,
        };
        if new_members.len() < pol.min_members || new_members == self.cur_members {
            return;
        }
        let old = self.cur_members;
        let discovery = live.intersection(old);
        let refresh = live.intersection(new_members);
        let feasible = discovery.len() >= QuorumFamily::config_quorum_size(old.len())
            && discovery.len() >= family.read_size(old.len())
            && refresh.len() >= family.write_size(new_members.len());
        if !feasible {
            if scripted {
                self.metrics.reconfig_failures += 1;
            }
            return;
        }
        let new_gen = self.cur_gen + 1;
        let (dvn, dval) = self.stores.discover(0, discovery);
        let install = discovery.union(refresh);
        if self.probe.has_sink() {
            let tid = TraceTid {
                client: u32::MAX,
                op: self.metrics.reconfigurations,
                attempt: 1,
            };
            let faulted = self.faulted_now();
            self.emit(
                tid,
                TraceAction::Create {
                    kind: TmKind::Reconfig,
                },
                faulted,
            );
            for s in discovery {
                let gen = self.stores.cfg_gen(s);
                self.emit(tid, TraceAction::ReadCfg { site: s, gen }, faulted);
            }
            for s in discovery {
                let (vn, value) = self.stores.get(s);
                self.emit(tid, TraceAction::ReadDm { site: s, vn, value }, faulted);
            }
            for s in install {
                self.emit(
                    tid,
                    TraceAction::WriteCfg {
                        site: s,
                        gen: new_gen,
                        members: new_members,
                    },
                    faulted,
                );
            }
            for s in refresh {
                self.emit(
                    tid,
                    TraceAction::WriteDm {
                        site: s,
                        vn: dvn,
                        value: dval,
                    },
                    faulted,
                );
            }
            self.emit(
                tid,
                TraceAction::RequestCommit {
                    vn: new_gen,
                    value: new_members.bits() as u64,
                },
                faulted,
            );
            self.emit(tid, TraceAction::Commit, faulted);
        }
        for s in install {
            self.stores.set_cfg(s, new_gen, new_members);
        }
        for s in refresh {
            self.stores.set(s, dvn, dval);
        }
        self.cur_gen = new_gen;
        self.cur_members = new_members;
        self.arena_check = None;
        if self.config.obs.spans {
            // The reconfigure op completes at one instant (reliable
            // control plane), so the fence is a zero-duration marker —
            // counted like vn_resolve/commit_round to keep the phase
            // counts meaningful.
            self.obs.spans.record(Phase::ReconfigFence, 0);
        }
        self.metrics.reconfigurations += 1;
        self.reconfigs_used += 1;
        self.last_reconfig = self.now;
        if self.obs.events.enabled() {
            self.emit_obs(EventKind::Fault {
                desc: format!("reconfig:gen{new_gen}:{new_members}"),
            });
        }
        if self.config.monitor {
            if let Err(v) = self.arena_check_memo() {
                let now = self.now;
                self.record_violation_observed(
                    format_args!("t={now} reconfig gen {new_gen}: {v}"),
                    None,
                );
            }
        }
    }

    fn live_set(&self) -> ReplicaSet {
        self.up
    }

    /// Whether any fault condition is active right now — a site down, or
    /// an open drop/delay window. Trace events are tagged with this so a
    /// reader can separate healthy-period actions from faulted-period
    /// ones.
    fn faulted_now(&self) -> bool {
        self.up != ReplicaSet::full(self.n)
            || self.config.faults.drop_permille_at(self.now) > 0
            || self.config.faults.delay_extra_at(self.now) > SimTime::ZERO
    }

    /// Whether `site` (up now) crashes at or before `t` — the straddle
    /// check: a response arriving at `t` is lost if the site's next
    /// stochastic or planned crash lands first.
    fn site_crashes_by(&self, site: usize, t: SimTime) -> bool {
        if self.stoch_next_down[site] <= t {
            return true;
        }
        let planned = &self.plan_crashes[site];
        let i = planned.partition_point(|&c| c <= self.now);
        i < planned.len() && planned[i] <= t
    }

    /// Simulate one quorum-gathering phase from the current site state
    /// (`write_phase` selects the quorum predicate).
    ///
    /// `targets` are contacted (one request + one response each if live;
    /// requests to dead sites are sent and lost); the phase completes at
    /// the earliest time the responder set satisfies the quorum predicate.
    /// Messages may be dropped by an active drop window, delayed by an
    /// active delay window, and responses are lost when the site crashes
    /// before the response would arrive.
    fn phase(
        &mut self,
        targets: ReplicaSet,
        client: usize,
        op_index: u64,
        attempt: u32,
        write_phase: bool,
    ) -> PhaseOutcome {
        let phase_no: u8 = if write_phase { 2 } else { 1 };
        let drop_permille = self.config.faults.drop_permille_at(self.now);
        let delay_extra = self.config.faults.delay_extra_at(self.now);
        let seed = self.config.seed;
        let mut responses = std::mem::take(&mut self.scratch);
        responses.clear();
        let mut messages = 0u64;
        for s in targets {
            messages += 1; // request
            if !self.up.contains(s) {
                continue;
            }
            if message_dropped(seed, client, op_index, attempt, phase_no, s, false, drop_permille)
            {
                self.metrics.dropped_messages += 1;
                continue;
            }
            let rtt = self.config.latency.sample(&mut self.rng)
                + self.config.latency.sample(&mut self.rng)
                + delay_extra
                + delay_extra;
            if self.site_crashes_by(s, self.now + rtt) {
                // The site dies before its response completes.
                continue;
            }
            messages += 1; // response
            if message_dropped(seed, client, op_index, attempt, phase_no, s, true, drop_permille)
            {
                self.metrics.dropped_messages += 1;
                continue;
            }
            responses.push((rtt, s));
        }
        // `(rtt, site)` pairs are distinct (sites differ), so an unstable
        // sort orders them exactly as a stable one would.
        responses.sort_unstable();
        let mut have = ReplicaSet::new();
        let mut outcome = PhaseOutcome {
            elapsed: self.config.timeout,
            messages,
            responders: ReplicaSet::new(),
            ok: false,
        };
        for &(t, s) in &responses {
            if t > self.config.timeout {
                break;
            }
            have.insert(s);
            if self.is_quorum(have, write_phase) {
                outcome = PhaseOutcome {
                    elapsed: t,
                    messages,
                    responders: have,
                    ok: true,
                };
                break;
            }
        }
        self.scratch = responses;
        outcome
    }

    /// Whether `have` includes the relevant quorum: the phase loop's
    /// membership probe, taken through [`Thresholds`] as a popcount when
    /// the quorum system has one (it agrees exactly with the predicates —
    /// asserted exhaustively in the quorum crate).
    #[inline]
    fn is_quorum(&self, have: ReplicaSet, write: bool) -> bool {
        // A dynamic attempt's quorums are over its cached membership; the
        // read side also demands a configuration read quorum so the
        // attempt can prove its generation is current.
        if let Some((members, rk, wk)) = self.dyn_quorum {
            let k = have.intersection(members).len();
            return k >= if write { wk } else { rk };
        }
        match self.th {
            Some(t) => {
                let k = have.intersection(ReplicaSet::full(t.n)).len();
                k >= if write { t.write_size } else { t.read_size }
            }
            None if write => self.config.quorum.is_write_quorum_bits(have),
            None => self.config.quorum.is_read_quorum_bits(have),
        }
    }

    /// Minimal quorum inside `available`, matching
    /// `find_*_quorum_bits` bit-for-bit: for threshold systems the greedy
    /// ascending-drop shrink keeps exactly the highest `k` live members.
    #[inline]
    fn find_quorum(&self, available: ReplicaSet, write: bool) -> Option<ReplicaSet> {
        match self.th {
            Some(t) => {
                let k = if write { t.write_size } else { t.read_size };
                let live = available.intersection(ReplicaSet::full(t.n));
                (live.len() >= k).then(|| live.keep_highest(k))
            }
            None if write => self.config.quorum.find_write_quorum_bits(available),
            None => self.config.quorum.find_read_quorum_bits(available),
        }
    }

    fn read_targets(&mut self) -> Option<ReplicaSet> {
        let live = self.live_set();
        if let Some((members, rk, _)) = self.dyn_quorum {
            // Contact live members even when they cannot assemble the
            // quorum: any single response can reveal a newer generation,
            // which is how a client with a stale cache ever recovers.
            let livem = live.intersection(members);
            return Some(match self.config.contact {
                ContactPolicy::AllLive => livem,
                ContactPolicy::MinimalQuorum if livem.len() >= rk => livem.keep_highest(rk),
                ContactPolicy::MinimalQuorum => livem,
            });
        }
        match self.config.contact {
            // Contacting a site known to be down buys nothing: it cannot
            // respond, so it can never help assemble the quorum.
            ContactPolicy::AllLive => Some(live),
            ContactPolicy::MinimalQuorum => self.find_quorum(live, false),
        }
    }

    fn write_targets(&mut self) -> Option<ReplicaSet> {
        let live = self.live_set();
        if let Some((members, _, wk)) = self.dyn_quorum {
            let livem = live.intersection(members);
            return (livem.len() >= wk).then(|| match self.config.contact {
                ContactPolicy::AllLive => livem,
                ContactPolicy::MinimalQuorum => livem.keep_highest(wk),
            });
        }
        match self.config.contact {
            ContactPolicy::AllLive => Some(live),
            ContactPolicy::MinimalQuorum => self.find_quorum(live, true),
        }
    }

    /// Start a fresh logical operation for `client`.
    fn handle_op(&mut self, client: usize) {
        let is_read = self.rng.gen_bool(self.config.read_fraction);
        let op_index = self.op_counter[client];
        self.op_counter[client] += 1;
        // A value unique across the run, so histories identify writes.
        let value = client as u64 * 1_000_000 + op_index + 1;
        self.pending
            .put(client, PendingOp::begin(0, is_read, value, op_index, self.now));
        self.attempt_op(client);
    }

    /// Run one attempt of `client`'s pending operation.
    fn attempt_op(&mut self, client: usize) {
        let mut op = match self.pending.take(client) {
            Some(op) => op,
            None => return,
        };

        // A forced abort (the paper's transaction-abort model): the
        // operation stops with no visible effect.
        if self.abort_flag[client] {
            self.abort_flag[client] = false;
            self.metrics.forced_aborts += 1;
            if self.probe.has_sink() {
                let kind = if op.read { TmKind::Read } else { TmKind::Write };
                self.emit(
                    trace_tid(client, &op),
                    TraceAction::Abort {
                        kind,
                        reason: AbortReason::Forced,
                    },
                    true,
                );
            }
            let stats = if op.read {
                &mut self.metrics.reads
            } else {
                &mut self.metrics.writes
            };
            stats.record_abort();
            self.causal_finish(client, &op, Some(AbortCause::Forced));
            self.schedule(self.config.think_time, Event::OpStart { client });
            return;
        }

        if self.config.reconfig.enabled {
            let family = self.family.expect("checked in Simulation::new");
            self.attempt_op_dynamic(client, op, family);
            return;
        }

        // Fail fast when the live sites cannot possibly hold the quorums
        // this operation needs (writes also need a read quorum for
        // version discovery).
        let feasible = match self.th {
            Some(t) => {
                let k = self.live_set().intersection(ReplicaSet::full(t.n)).len();
                if op.read {
                    k >= t.read_size
                } else {
                    k >= t.read_size && k >= t.write_size
                }
            }
            None => {
                let health = self.config.quorum.quorum_health(self.live_set());
                if op.read {
                    health.can_read()
                } else {
                    health.can_read() && health.can_write()
                }
            }
        };
        if !feasible {
            self.finish_failed_attempt(client, op, SimTime::ZERO, 0, true);
            return;
        }

        // Phase 1 (both kinds): version-number discovery at a read-quorum.
        let out1 = match self.read_targets() {
            Some(targets) => self.phase(targets, client, op.op_index, op.attempt, false),
            None => {
                self.finish_failed_attempt(client, op, SimTime::ZERO, 0, true);
                return;
            }
        };
        // Phase-span accounting (exact): every executed gather phase is
        // read_gather time, whether or not the attempt goes on to commit.
        op.gather_us += out1.elapsed.as_micros();
        self.causal_push(client, EdgeKind::ReadGather, out1.elapsed);
        if !out1.ok {
            self.finish_failed_attempt(client, op, out1.elapsed, out1.messages, false);
            return;
        }
        let (dvn, dval) = self.stores.discover(0, out1.responders);

        if op.read {
            if self.probe.has_sink() {
                let tid = trace_tid(client, &op);
                let faulted = self.faulted_now();
                self.emit(tid, TraceAction::Create { kind: TmKind::Read }, faulted);
                for s in out1.responders {
                    let (vn, value) = self.stores.get(s);
                    self.emit(tid, TraceAction::ReadDm { site: s, vn, value }, faulted);
                }
                self.emit(tid, TraceAction::RequestCommit { vn: dvn, value: dval }, faulted);
                self.emit(tid, TraceAction::Commit, faulted);
            }
            self.commit_op(client, op, out1.elapsed, out1.messages, dvn, dval);
            return;
        }

        // Phase 2 (writes): install at a write-quorum. A failed phase
        // installs nothing (atomic commit round).
        let out2 = match self.write_targets() {
            Some(targets) => self.phase(targets, client, op.op_index, op.attempt, true),
            None => {
                self.finish_failed_attempt(client, op, out1.elapsed, out1.messages, true);
                return;
            }
        };
        op.install_us += out2.elapsed.as_micros();
        self.causal_push(client, EdgeKind::WriteInstall, out2.elapsed);
        let elapsed = out1.elapsed + out2.elapsed;
        let messages = out1.messages + out2.messages;
        if !out2.ok {
            self.finish_failed_attempt(client, op, elapsed, messages, false);
            return;
        }
        let new_vn = dvn + 1;
        // Trace the block before the install loop so the READ-DM events
        // carry the pre-install store contents the discovery actually saw.
        if self.probe.has_sink() {
            let tid = trace_tid(client, &op);
            let faulted = self.faulted_now();
            self.emit(tid, TraceAction::Create { kind: TmKind::Write }, faulted);
            for s in out1.responders {
                let (vn, value) = self.stores.get(s);
                self.emit(tid, TraceAction::ReadDm { site: s, vn, value }, faulted);
            }
            for s in out2.responders {
                self.emit(
                    tid,
                    TraceAction::WriteDm {
                        site: s,
                        vn: new_vn,
                        value: op.value,
                    },
                    faulted,
                );
            }
            self.emit(
                tid,
                TraceAction::RequestCommit {
                    vn: new_vn,
                    value: op.value,
                },
                faulted,
            );
            self.emit(tid, TraceAction::Commit, faulted);
        }
        for s in out2.responders {
            self.stores.set(s, new_vn, op.value);
        }
        self.arena_check = None;
        self.commit_op(client, op, elapsed, messages, new_vn, op.value);
    }

    /// One attempt of a pending operation under dynamic quorums: the
    /// Gifford phases run over the client's *cached* `(generation,
    /// members)` pair, phase 1 doubles as the generation-currency check (a
    /// configuration read quorum of the cached members either confirms the
    /// generation or reveals the newer one), and a stale attempt aborts
    /// with [`AbortReason::Stale`] and retries under the adopted
    /// configuration without spending its retry budget.
    fn attempt_op_dynamic(&mut self, client: usize, mut op: PendingOp, family: QuorumFamily) {
        let (cgen, members) = self.client_cfg[client];
        let m = members.len();
        let rk = family
            .read_size(m)
            .max(QuorumFamily::config_quorum_size(m));
        let wk = family.write_size(m);
        self.dyn_quorum = Some((members, rk, wk));
        let livem = self.live_set().intersection(members);
        if livem.is_empty() {
            // Nothing to contact: no response could even reveal a newer
            // generation.
            self.finish_failed_attempt(client, op, SimTime::ZERO, 0, true);
            return;
        }
        let targets = self.read_targets().expect("dynamic read targets are always Some");
        let out1 = self.phase(targets, client, op.op_index, op.attempt, false);
        op.gather_us += out1.elapsed.as_micros();
        self.causal_push(client, EdgeKind::ReadGather, out1.elapsed);
        // Generation currency: any in-time response carrying a newer
        // generation supersedes this attempt, whether or not the phase
        // assembled its quorum.
        let seen = if out1.ok {
            out1.responders
        } else {
            self.responders_within_timeout()
        };
        let (sgen, smembers) = self.stores.discover_cfg(0, seen);
        if sgen > cgen {
            self.client_cfg[client] = (sgen, smembers);
            self.finish_stale_attempt(client, op, out1.elapsed, out1.messages);
            return;
        }
        if !out1.ok {
            // Structurally impossible (too few live members) counts as
            // unavailable; a quorum that exists but did not assemble in
            // time is a timeout.
            self.finish_failed_attempt(client, op, out1.elapsed, out1.messages, livem.len() < rk);
            return;
        }
        // The responders cover a configuration read quorum of the cached
        // members at generation `cgen`: had a newer configuration
        // committed, its install set would intersect them (both are
        // configuration majorities of the same membership), so `cgen` is
        // current and the data quorums below are over the right members.
        let (dvn, dval) = self.stores.discover(0, out1.responders);

        if op.read {
            if self.probe.has_sink() {
                let tid = trace_tid(client, &op);
                let faulted = self.faulted_now();
                self.emit(tid, TraceAction::Create { kind: TmKind::Read }, faulted);
                for s in out1.responders {
                    let gen = self.stores.cfg_gen(s);
                    self.emit(tid, TraceAction::ReadCfg { site: s, gen }, faulted);
                }
                for s in out1.responders {
                    let (vn, value) = self.stores.get(s);
                    self.emit(tid, TraceAction::ReadDm { site: s, vn, value }, faulted);
                }
                self.emit(tid, TraceAction::RequestCommit { vn: dvn, value: dval }, faulted);
                self.emit(tid, TraceAction::Commit, faulted);
            }
            self.commit_op(client, op, out1.elapsed, out1.messages, dvn, dval);
            return;
        }

        let out2 = match self.write_targets() {
            Some(targets) => self.phase(targets, client, op.op_index, op.attempt, true),
            None => {
                self.finish_failed_attempt(client, op, out1.elapsed, out1.messages, true);
                return;
            }
        };
        op.install_us += out2.elapsed.as_micros();
        self.causal_push(client, EdgeKind::WriteInstall, out2.elapsed);
        let elapsed = out1.elapsed + out2.elapsed;
        let messages = out1.messages + out2.messages;
        if !out2.ok {
            self.finish_failed_attempt(client, op, elapsed, messages, false);
            return;
        }
        let new_vn = dvn + 1;
        if self.probe.has_sink() {
            let tid = trace_tid(client, &op);
            let faulted = self.faulted_now();
            self.emit(tid, TraceAction::Create { kind: TmKind::Write }, faulted);
            for s in out1.responders {
                let gen = self.stores.cfg_gen(s);
                self.emit(tid, TraceAction::ReadCfg { site: s, gen }, faulted);
            }
            for s in out1.responders {
                let (vn, value) = self.stores.get(s);
                self.emit(tid, TraceAction::ReadDm { site: s, vn, value }, faulted);
            }
            for s in out2.responders {
                self.emit(
                    tid,
                    TraceAction::WriteDm {
                        site: s,
                        vn: new_vn,
                        value: op.value,
                    },
                    faulted,
                );
            }
            self.emit(
                tid,
                TraceAction::RequestCommit {
                    vn: new_vn,
                    value: op.value,
                },
                faulted,
            );
            self.emit(tid, TraceAction::Commit, faulted);
        }
        for s in out2.responders {
            self.stores.set(s, new_vn, op.value);
        }
        self.arena_check = None;
        self.commit_op(client, op, elapsed, messages, new_vn, op.value);
    }

    /// The sites whose responses to the last phase arrived within the
    /// timeout — the failed-phase view used for generation discovery.
    fn responders_within_timeout(&self) -> ReplicaSet {
        let mut set = ReplicaSet::new();
        for &(t, s) in &self.scratch {
            if t <= self.config.timeout {
                set.insert(s);
            }
        }
        set
    }

    /// Whether the causal flight recorder is on for this run.
    fn causal_on(&self) -> bool {
        self.config.obs.causal.enabled
    }

    /// Append a causal segment to the client's in-flight op. Zero
    /// durations are dropped — the trace only carries time that was
    /// actually spent, and the phase accumulators skip zeros the same
    /// way the segment list does, so the two stay in lockstep.
    fn causal_push(&mut self, client: usize, kind: EdgeKind, dur: SimTime) {
        if self.causal_on() && dur > SimTime::ZERO {
            self.causal_segs[client].push((kind, dur.as_micros()));
        }
    }

    /// Mirror `finish_stale_attempt`'s accumulator reclassification in
    /// the causal segment list: pop the stale attempt's gather segment
    /// (the attempt ran phase 1 only — a stale rejection happens at
    /// version resolution) and replace it with a `StaleRetry` segment
    /// covering the whole retry delay.
    fn causal_stale(&mut self, client: usize, attempt_elapsed: SimTime, delay: SimTime) {
        if !self.causal_on() {
            return;
        }
        let segs = &mut self.causal_segs[client];
        if attempt_elapsed > SimTime::ZERO {
            let popped = segs.pop();
            debug_assert_eq!(
                popped,
                Some((EdgeKind::ReadGather, attempt_elapsed.as_micros())),
                "stale attempt must end with its own gather segment"
            );
        }
        if delay > SimTime::ZERO {
            segs.push((EdgeKind::StaleRetry, delay.as_micros()));
        }
    }

    /// Build and record the causal trace for a finished (committed or
    /// terminally aborted) operation: a single `Access` root span whose
    /// segments are the client's accumulated causal history, laid
    /// back-to-back from the op's start. The segment sum equals the
    /// phase-accumulator sum by construction, so the trace reconciles
    /// exactly with end-to-end latency.
    #[allow(clippy::cast_possible_truncation)]
    fn causal_finish(&mut self, client: usize, op: &PendingOp, cause: Option<AbortCause>) {
        if !self.causal_on() {
            return;
        }
        let segs = std::mem::take(&mut self.causal_segs[client]);
        debug_assert_eq!(
            segs.iter().map(|&(_, d)| d).sum::<u64>(),
            op.gather_us + op.install_us + op.backoff_us,
            "causal segments must mirror the phase accumulators exactly"
        );
        let id = CausalTxnRef {
            client: client as u32,
            epoch: op.op_index as u32,
        };
        let mut trace = TxnTrace::new(id, self.shard_tag, op.started.as_micros());
        let root = trace.add_span(
            NO_SPAN,
            SpanKind::Access {
                item: op.item as u64,
                write: !op.read,
            },
        );
        let mut at = op.started.as_micros();
        trace.start_span(root, at);
        for (kind, dur) in segs {
            trace.push_seg(root, kind, at, dur, None);
            at += dur;
        }
        if let Some(c) = cause {
            trace.abort_span(root, at, c);
            trace.seal(at, false, root, cause);
        } else {
            trace.finish_span(root, at);
            trace.seal(at, true, NO_SPAN, None);
        }
        self.obs.causal.record(trace);
    }

    /// A stale-generation rejection: the attempt aborts with no visible
    /// effect and the operation retries immediately under the newly
    /// adopted configuration. The retry budget is untouched — the cached
    /// generation strictly increased, so these retries are bounded by the
    /// run's reconfiguration count — and the op's failure statistics don't
    /// move (only terminal outcomes count attempts).
    fn finish_stale_attempt(
        &mut self,
        client: usize,
        mut op: PendingOp,
        attempt_elapsed: SimTime,
        attempt_messages: u64,
    ) {
        self.metrics.stale_rejections += 1;
        if self.probe.has_sink() {
            let kind = if op.read { TmKind::Read } else { TmKind::Write };
            let faulted = self.faulted_now();
            self.emit(
                trace_tid(client, &op),
                TraceAction::Abort {
                    kind,
                    reason: AbortReason::Stale,
                },
                faulted,
            );
        }
        op.messages += attempt_messages;
        // A fresh attempt number keeps trace transaction names unique.
        op.attempt += 1;
        let delay = attempt_elapsed.max(SimTime(1));
        // The burned gather time is retry overhead, not useful gather
        // work: reclassify the stale attempt's elapsed (accumulated into
        // `gather_us` when phase 1 ran) as retry_backoff. The phase sum
        // still equals end-to-end latency exactly.
        op.gather_us -= attempt_elapsed.as_micros();
        op.backoff_us += delay.as_micros();
        self.causal_stale(client, attempt_elapsed, delay);
        self.pending.put(client, op);
        self.schedule(delay, Event::Retry { client });
    }

    /// Record one trace action at the current instant (no-op without an
    /// attached sink). Tracing never touches the RNG stream, so traced and
    /// untraced runs are event-for-event identical.
    fn emit(&mut self, tid: TraceTid, action: TraceAction, faulted: bool) {
        let now = self.now;
        if let Some(sink) = self.probe.sink_mut() {
            sink.record(now, tid, action, faulted);
        }
    }

    /// Commit the pending operation: record metrics/history, assert the
    /// lemmas, schedule the client's next operation.
    fn commit_op(
        &mut self,
        client: usize,
        op: PendingOp,
        attempt_elapsed: SimTime,
        attempt_messages: u64,
        vn: u64,
        value: u64,
    ) {
        let total = (self.now - op.started) + attempt_elapsed;
        let messages = op.messages + attempt_messages;
        let stats = if op.read {
            &mut self.metrics.reads
        } else {
            &mut self.metrics.writes
        };
        stats.record_success(total, messages);
        if self.config.obs.spans {
            // Exact reconciliation: gather + install + backoff == total by
            // construction (see the PendingOp accumulator docs). The
            // vn_resolve and commit_round phases take zero *simulated*
            // time in this simulator — version resolution happens when the
            // gather completes and the commit round is atomic — so they
            // are recorded as zero-duration spans, one per committed op,
            // keeping phase counts meaningful (DESIGN.md §5.4).
            debug_assert_eq!(
                op.gather_us + op.install_us + op.backoff_us,
                total.as_micros(),
                "phase spans must reconcile exactly with end-to-end latency"
            );
            self.obs.spans.record(Phase::ReadGather, op.gather_us);
            self.obs.spans.record(Phase::VnResolve, 0);
            if !op.read {
                self.obs.spans.record(Phase::WriteInstall, op.install_us);
            }
            self.obs.spans.record(Phase::CommitRound, 0);
            if op.backoff_us > 0 {
                self.obs.spans.record(Phase::RetryBackoff, op.backoff_us);
            }
        }
        self.causal_finish(client, &op, None);
        if self.config.record_history {
            self.metrics.history.push(CommitRecord {
                client,
                read: op.read,
                vn,
                value,
            });
        }
        if self.config.monitor {
            // Same clauses and first-offender order as the probe's
            // `on_{read,write}_commit_arena`, with the store re-check
            // memoized: a committed read mutates nothing, so between
            // writes every read replays the last outcome. A committed
            // write digests into the history first (dropping the memo —
            // its inputs changed) and re-scans.
            let check = if op.read {
                self.probe.check_read_value(value)
            } else {
                self.arena_check = None;
                self.probe.commit_write_digest(vn, value)
            }
            .and_then(|()| self.arena_check_memo());
            if let Err(v) = check {
                let kind = if op.read { "read" } else { "write" };
                let op_ref = OpRef {
                    client: client as u64,
                    op: op.op_index,
                    attempt: op.attempt,
                    kind,
                    vn,
                    value,
                };
                let now = self.now;
                self.record_violation_observed(
                    format_args!("t={now} client={client} {kind}: {v}"),
                    Some(op_ref),
                );
            }
        }
        self.schedule(
            attempt_elapsed + self.config.think_time,
            Event::OpStart { client },
        );
    }

    /// A failed attempt: retry with backoff if the policy allows, else
    /// record the failure and move the client on.
    fn finish_failed_attempt(
        &mut self,
        client: usize,
        mut op: PendingOp,
        attempt_elapsed: SimTime,
        attempt_messages: u64,
        unavailable: bool,
    ) {
        // Each attempt is its own transaction in the paper's sense; a
        // failed one was "never created" and appears only as an ABORT.
        if self.probe.has_sink() {
            let kind = if op.read { TmKind::Read } else { TmKind::Write };
            let reason = if unavailable {
                AbortReason::Unavailable
            } else {
                AbortReason::Timeout
            };
            let faulted = self.faulted_now();
            self.emit(trace_tid(client, &op), TraceAction::Abort { kind, reason }, faulted);
        }
        op.messages += attempt_messages;
        if op.attempt < self.config.retry.attempts {
            op.attempt += 1;
            let stats = if op.read {
                &mut self.metrics.reads
            } else {
                &mut self.metrics.writes
            };
            stats.record_retry();
            // Never reschedule at the current instant: a fail-fast
            // unavailable attempt takes zero sim time, and with a zero
            // backoff/think time the client would spin forever at one
            // timestamp against the same dead sites.
            let delay = (attempt_elapsed + self.config.retry.backoff_before(op.attempt))
                .max(SimTime(1));
            // The attempt's own phase time is already in gather/install;
            // only the extra sleep (including the 1 µs floor) is backoff.
            op.backoff_us += (delay - attempt_elapsed).as_micros();
            self.causal_push(client, EdgeKind::RetryBackoff, delay - attempt_elapsed);
            self.pending.put(client, op);
            self.schedule(delay, Event::Retry { client });
            return;
        }
        let stats = if op.read {
            &mut self.metrics.reads
        } else {
            &mut self.metrics.writes
        };
        if unavailable {
            stats.record_unavailable(op.messages);
        } else {
            stats.record_failure(op.messages);
        }
        self.causal_finish(client, &op, Some(AbortCause::QuorumUnavailable));
        // Same zero-time guard as the retry path above.
        self.schedule(
            (attempt_elapsed + self.config.think_time).max(SimTime(1)),
            Event::OpStart { client },
        );
    }
}

/// The trace name of one attempt: each attempt of each logical operation
/// is a fresh transaction.
fn trace_tid(client: usize, op: &PendingOp) -> TraceTid {
    TraceTid {
        client: client as u32,
        op: op.op_index,
        attempt: op.attempt,
    }
}

/// Convenience: build and run in one call.
pub fn run(config: SimConfig) -> Metrics {
    Simulation::new(config).run()
}

/// Convenience: build and run with schedule tracing in one call.
pub fn run_traced(config: SimConfig) -> (Metrics, ScheduleTrace) {
    Simulation::new(config).run_traced()
}

/// Convenience: build and run with observability recording in one call.
pub fn run_observed(config: SimConfig) -> (Metrics, ObsReport) {
    Simulation::new(config).run_observed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum::{Majority, Rowa};

    fn base(q: Arc<dyn QuorumSpec + Send + Sync>) -> SimConfig {
        let mut c = SimConfig::new(q);
        c.duration = SimTime::from_secs(5);
        c
    }

    #[test]
    fn healthy_cluster_is_fully_available() {
        let m = run(base(Arc::new(Majority::new(5))));
        assert!(m.reads.attempts > 100);
        assert_eq!(m.reads.availability(), 1.0);
        assert_eq!(m.writes.availability(), 1.0);
        assert_eq!(m.site_failures, 0);
        assert_eq!(m.lemma_violations, 0);
    }

    #[test]
    fn rowa_reads_cost_less_than_majority_reads() {
        let mut c1 = base(Arc::new(Rowa::new(5)));
        c1.contact = ContactPolicy::MinimalQuorum;
        let rowa = run(c1);
        let mut c2 = base(Arc::new(Majority::new(5)));
        c2.contact = ContactPolicy::MinimalQuorum;
        let maj = run(c2);
        assert!(
            rowa.reads.messages_per_op() < maj.reads.messages_per_op(),
            "rowa {} vs majority {}",
            rowa.reads.messages_per_op(),
            maj.reads.messages_per_op()
        );
        // ROWA read = 1 round trip to 1 replica: 2 messages.
        assert!((rowa.reads.messages_per_op() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rowa_writes_suffer_under_failures() {
        let mut c = base(Arc::new(Rowa::new(5)));
        c.mttf = Some(SimTime::from_secs(3));
        c.mttr = SimTime::from_secs(3);
        c.read_fraction = 0.5;
        c.duration = SimTime::from_secs(30);
        let m = run(c);
        assert!(m.site_failures > 0);
        // With ~half the time one site down, ROWA writes fail often while
        // reads almost always succeed.
        assert!(m.writes.availability() < 0.9, "writes {}", m.writes.availability());
        assert!(m.reads.availability() > m.writes.availability());
        assert_eq!(m.lemma_violations, 0);
    }

    #[test]
    fn majority_survives_minority_failures() {
        let mut c = base(Arc::new(Majority::new(5)));
        c.mttf = Some(SimTime::from_secs(10));
        c.mttr = SimTime::from_secs(1);
        c.read_fraction = 0.5;
        c.duration = SimTime::from_secs(30);
        let m = run(c);
        // 5 sites, short repairs: a majority is almost always up.
        assert!(m.reads.availability() > 0.97, "reads {}", m.reads.availability());
        assert!(m.writes.availability() > 0.95, "writes {}", m.writes.availability());
        assert_eq!(m.lemma_violations, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(base(Arc::new(Majority::new(3))));
        let b = run(base(Arc::new(Majority::new(3))));
        assert_eq!(a.reads.attempts, b.reads.attempts);
        assert_eq!(a.reads.messages, b.reads.messages);
    }

    #[test]
    fn heap_oracle_and_calendar_queue_agree_exactly() {
        for (mttf, rf) in [(None, 0.9), (Some(SimTime::from_secs(3)), 0.5)] {
            let mut cal = base(Arc::new(Majority::new(5)));
            cal.queue = QueueKind::Calendar;
            cal.mttf = mttf;
            cal.read_fraction = rf;
            let mut heap = cal.clone();
            heap.queue = QueueKind::Heap;
            assert_eq!(run(cal).digest(), run(heap).digest());
        }
    }

    #[test]
    fn minimal_quorum_contact_halves_read_messages() {
        let mut all = base(Arc::new(Majority::new(5)));
        all.contact = ContactPolicy::AllLive;
        let a = run(all);
        // AllLive read: 5 requests + 5 responses = 10 per op.
        assert!((a.reads.messages_per_op() - 10.0).abs() < 1e-9);
        let mut min = base(Arc::new(Majority::new(5)));
        min.contact = ContactPolicy::MinimalQuorum;
        let m = run(min);
        // MinimalQuorum read: 3 + 3 = 6 per op.
        assert!((m.reads.messages_per_op() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn all_live_skips_down_sites() {
        let mut sim = Simulation::new(base(Arc::new(Majority::new(5))));
        sim.up.remove(0);
        sim.up.remove(3);
        let targets = sim.read_targets().unwrap();
        assert_eq!(targets.iter().collect::<Vec<_>>(), vec![1, 2, 4]);
        // 3 requests + 3 responses — no messages wasted on dead sites.
        let out = sim.phase(targets, 0, 0, 1, false);
        assert!(out.ok);
        assert_eq!(out.messages, 6);
        assert_eq!(out.responders.len(), 3);
    }

    #[test]
    fn writes_pay_two_phases() {
        let mut c = base(Arc::new(Majority::new(3)));
        c.contact = ContactPolicy::MinimalQuorum;
        c.read_fraction = 0.0;
        let m = run(c);
        // Write: read-quorum (2+2) + write-quorum (2+2) = 8 messages.
        assert!((m.writes.messages_per_op() - 8.0).abs() < 1e-9);
        assert!(m.writes.mean_latency_ms() > m.reads.mean_latency_ms());
    }

    #[test]
    fn history_versions_are_contiguous() {
        let mut c = base(Arc::new(Majority::new(3)));
        c.read_fraction = 0.5;
        c.record_history = true;
        c.duration = SimTime::from_secs(2);
        let m = run(c);
        assert_eq!(m.lemma_violations, 0, "violations: {:?}", m.violations);
        let mut vn = 0;
        for rec in &m.history {
            if rec.read {
                assert_eq!(rec.vn, vn, "read saw a non-current version");
            } else {
                assert_eq!(rec.vn, vn + 1, "write skipped a version");
                vn = rec.vn;
            }
        }
        assert!(vn > 0, "no writes committed");
    }

    #[test]
    fn forced_aborts_have_no_visible_effect() {
        let mut c = base(Arc::new(Majority::new(3)));
        c.read_fraction = 0.0;
        c.record_history = true;
        c.faults = FaultPlan::new()
            .abort_at(SimTime::from_millis(100), 0)
            .abort_at(SimTime::from_millis(200), 1);
        let m = run(c);
        assert_eq!(m.forced_aborts, 2);
        assert_eq!(m.writes.aborted, 2);
        assert_eq!(m.lemma_violations, 0, "violations: {:?}", m.violations);
        // Committed versions still advance one at a time.
        for w in m.history.windows(2) {
            assert_eq!(w[1].vn, w[0].vn + 1);
        }
    }

    #[test]
    fn total_quorum_loss_fails_fast_and_retries_recover() {
        // All 3 sites down from 1 s to 2 s: no quorum exists.
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_secs(1), 0)
            .crash_at(SimTime::from_secs(1), 1)
            .crash_at(SimTime::from_secs(1), 2)
            .recover_at(SimTime::from_secs(2), 0)
            .recover_at(SimTime::from_secs(2), 1)
            .recover_at(SimTime::from_secs(2), 2);
        let mut no_retry = base(Arc::new(Majority::new(3)));
        no_retry.faults = plan.clone();
        no_retry.duration = SimTime::from_secs(4);
        let m1 = run(no_retry);
        assert!(m1.reads.unavailable + m1.writes.unavailable > 0);
        assert_eq!(m1.lemma_violations, 0, "violations: {:?}", m1.violations);

        // With generous retries the outage degrades into delayed successes.
        let mut with_retry = base(Arc::new(Majority::new(3)));
        with_retry.faults = plan;
        with_retry.duration = SimTime::from_secs(4);
        with_retry.retry = RetryPolicy::retries(12, SimTime::from_millis(200));
        let m2 = run(with_retry);
        assert!(m2.reads.retries + m2.writes.retries > 0);
        assert!(
            m2.reads.availability() > m1.reads.availability(),
            "retry {} vs no-retry {}",
            m2.reads.availability(),
            m1.reads.availability()
        );
        assert_eq!(m2.lemma_violations, 0, "violations: {:?}", m2.violations);
    }

    #[test]
    fn corrupt_injection_trips_the_monitor() {
        let mut c = base(Arc::new(Majority::new(3)));
        c.faults = FaultPlan::new().corrupt_at(SimTime::from_secs(1), 0, 999, 123);
        let m = run(c);
        assert!(m.lemma_violations > 0, "monitor failed to fire");
        assert!(!m.violations.is_empty());
    }

    #[test]
    fn straddled_crash_loses_the_response() {
        // Site 2 crashes at t = 100 µs. A phase started just before, whose
        // responses land after the crash, must not count site 2.
        let mut c = base(Arc::new(Majority::new(3)));
        c.latency = LatencyModel::Fixed(SimTime(300));
        c.faults = FaultPlan::new().crash_at(SimTime(100), 2);
        let mut sim = Simulation::new(c);
        sim.now = SimTime(50);
        let out = sim.phase(ReplicaSet::full(3), 0, 0, 1, false);
        // Sites 0 and 1 respond (quorum); site 2's response is lost.
        assert!(out.ok);
        assert!(!out.responders.contains(2));
        // 3 requests + 2 responses.
        assert_eq!(out.messages, 5);
    }

    #[test]
    fn enabled_but_idle_dynamic_majority_matches_the_static_run() {
        // With a majority system the dynamic read quorum equals the static
        // one (read size == configuration quorum size), so a dynamic run
        // in which no reconfiguration ever fires draws the same RNG stream
        // and commits the same operations as the static simulator.
        let static_run = run(base(Arc::new(Majority::new(5))));
        let mut c = base(Arc::new(Majority::new(5)));
        c.reconfig = ReconfigPolicy::scripted_only();
        let dynamic_run = run(c);
        assert_eq!(static_run.digest(), dynamic_run.digest());
    }

    #[test]
    fn reactive_reconfig_restores_rowa_write_availability() {
        // ROWA writes need every member: a single crashed site blanks
        // write availability for the whole outage under the static
        // protocol, while the reactive trigger shrinks the membership out
        // from under the crash and grows it back on recovery.
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_secs(1), 4)
            .recover_at(SimTime::from_secs(3), 4);
        let mut stat = base(Arc::new(Rowa::new(5)));
        stat.read_fraction = 0.0;
        stat.faults = plan.clone();
        let s = run(stat);
        let mut dy = base(Arc::new(Rowa::new(5)));
        dy.read_fraction = 0.0;
        dy.faults = plan;
        dy.reconfig = ReconfigPolicy::reactive();
        let d = run(dy);
        assert!(d.reconfigurations >= 2, "reconfigurations {}", d.reconfigurations);
        assert_eq!(d.lemma_violations, 0, "violations: {:?}", d.violations);
        assert!(
            d.writes.availability() > 0.9 && s.writes.availability() < 0.7,
            "dynamic {} static {}",
            d.writes.availability(),
            s.writes.availability()
        );
    }

    #[test]
    fn scripted_reconfig_installs_the_requested_membership() {
        let shrunk: ReplicaSet = [0usize, 1, 2].into_iter().collect();
        let mut c = base(Arc::new(Majority::new(5)));
        c.read_fraction = 0.5;
        c.faults = FaultPlan::new()
            .reconfig_at(SimTime::from_secs(1), ReconfigTarget::Members(shrunk));
        c.reconfig = ReconfigPolicy::scripted_only();
        let mut sim = Simulation::new(c);
        sim.drive();
        assert_eq!(sim.cur_gen, 1);
        assert_eq!(sim.cur_members, shrunk);
        assert_eq!(sim.metrics.reconfigurations, 1);
        assert_eq!(sim.metrics.reconfig_failures, 0);
        // Ops ran before and after the switch; stale rejections happen at
        // the boundary (each client's first post-switch attempt).
        assert!(sim.metrics.stale_rejections > 0);
        assert_eq!(sim.metrics.lemma_violations, 0, "{:?}", sim.metrics.violations);
    }

    #[test]
    fn infeasible_scripted_reconfig_is_counted_not_executed() {
        // Moving to a membership whose data write quorum cannot be
        // assembled from live sites (both requested members are down and
        // stay down) must fail.
        let dead: ReplicaSet = [3usize, 4].into_iter().collect();
        let mut c = base(Arc::new(Rowa::new(5)));
        c.faults = FaultPlan::new()
            .crash_at(SimTime::from_millis(500), 4)
            .crash_at(SimTime::from_millis(500), 3)
            .reconfig_at(SimTime::from_secs(1), ReconfigTarget::Members(dead));
        c.reconfig = ReconfigPolicy::scripted_only();
        let m = run(c);
        assert_eq!(m.reconfigurations, 0);
        assert_eq!(m.reconfig_failures, 1);
    }

    #[test]
    #[should_panic(expected = "reconfig events")]
    fn scripted_reconfigs_require_the_policy_enabled() {
        let mut c = base(Arc::new(Majority::new(3)));
        c.faults = FaultPlan::new().reconfig_at(SimTime::from_secs(1), ReconfigTarget::Live);
        let _ = Simulation::new(c);
    }

    #[test]
    #[should_panic(expected = "ROWA or majority")]
    fn dynamic_quorums_require_a_resizable_family() {
        use quorum::Weighted;
        let mut c = base(Arc::new(Weighted::new(vec![2, 1, 1], 3, 2)));
        c.reconfig = ReconfigPolicy::reactive();
        let _ = Simulation::new(c);
    }
}
